#ifndef STREAMASP_GRAPH_COMPONENTS_H_
#define STREAMASP_GRAPH_COMPONENTS_H_

#include <vector>

#include "graph/graph.h"

namespace streamasp {

/// Result of a component decomposition: `component_of[u]` is the 0-based
/// component index of node u; `num_components` is the number of components.
/// Index assignment is deterministic; ConnectedComponents orders components
/// by their smallest contained node, StronglyConnectedComponents orders
/// them topologically (see below).
struct ComponentAssignment {
  std::vector<int> component_of;
  int num_components = 0;

  /// Groups nodes by component: result[c] lists the nodes of component c in
  /// increasing order.
  std::vector<std::vector<NodeId>> Groups() const;
};

/// Connected components of an undirected graph (self-loops are irrelevant).
ComponentAssignment ConnectedComponents(const UndirectedGraph& graph);

/// True iff the graph has at most one connected component among its nodes
/// (the empty graph counts as connected).
bool IsConnected(const UndirectedGraph& graph);

/// Strongly connected components of a digraph (iterative Tarjan).
/// Components are numbered in topological order of the condensation: every
/// edge u -> v crossing components satisfies
/// component_of[u] < component_of[v]. With dependency edges pointing from
/// body predicates to head predicates, evaluating components 0, 1, 2, ...
/// is therefore a valid bottom-up grounding order.
ComponentAssignment StronglyConnectedComponents(const Digraph& graph);

}  // namespace streamasp

#endif  // STREAMASP_GRAPH_COMPONENTS_H_
