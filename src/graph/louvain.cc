#include "graph/louvain.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace streamasp {

namespace {

/// Renumbers arbitrary community labels to 0..k-1, ordered by the smallest
/// node carrying each label.
ComponentAssignment Compact(const std::vector<int>& labels) {
  ComponentAssignment result;
  result.component_of.assign(labels.size(), -1);
  std::unordered_map<int, int> remap;
  int next = 0;
  for (size_t u = 0; u < labels.size(); ++u) {
    auto [it, inserted] = remap.emplace(labels[u], next);
    if (inserted) ++next;
    result.component_of[u] = it->second;
  }
  result.num_components = next;
  return result;
}

/// One pass of greedy local moving on `graph`. `community_of` is updated in
/// place. Returns true if at least one node moved.
bool LocalMovingPass(const UndirectedGraph& graph, double resolution,
                     double total_weight, std::vector<int>* community_of,
                     std::vector<double>* community_total_degree) {
  bool moved_any = false;
  const double two_m = 2.0 * total_weight;
  std::unordered_map<int, double> weight_to_community;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const int old_community = (*community_of)[u];
    const double degree_u = graph.WeightedDegree(u);

    // Sum of edge weights from u to each adjacent community. Self-loops
    // stay with u under any move, so they are excluded.
    weight_to_community.clear();
    weight_to_community[old_community] += 0.0;  // Ensure key exists.
    for (const UndirectedGraph::Edge& e : graph.Neighbors(u)) {
      weight_to_community[(*community_of)[e.to]] += e.weight;
    }

    // Remove u from its community for gain computation.
    (*community_total_degree)[old_community] -= degree_u;

    // Gain of joining community c (relative, constant terms dropped):
    //   k_{i,in}(c) - gamma * k_i * Sigma_tot(c) / (2m)
    int best_community = old_community;
    double best_gain =
        weight_to_community[old_community] -
        resolution * degree_u * (*community_total_degree)[old_community] /
            two_m;
    for (const auto& [candidate, weight_in] : weight_to_community) {
      if (candidate == old_community) continue;
      const double gain =
          weight_in - resolution * degree_u *
                          (*community_total_degree)[candidate] / two_m;
      // Strict improvement, with lowest-id tie-break to keep runs
      // deterministic.
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_community = candidate;
      } else if (gain > best_gain - 1e-12 && candidate < best_community) {
        best_community = candidate;
      }
    }

    (*community_total_degree)[best_community] += degree_u;
    if (best_community != old_community) {
      (*community_of)[u] = best_community;
      moved_any = true;
    }
  }
  return moved_any;
}

/// Builds the aggregated graph whose nodes are the communities of `graph`.
/// Intra-community weight becomes a self-loop.
UndirectedGraph Aggregate(const UndirectedGraph& graph,
                          const ComponentAssignment& communities) {
  UndirectedGraph aggregated(communities.num_components);
  // Accumulate pairwise weights to avoid a quadratic explosion of parallel
  // edges across levels.
  std::unordered_map<uint64_t, double> pair_weight;
  std::vector<double> self_weight(communities.num_components, 0.0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const int cu = communities.component_of[u];
    self_weight[cu] += graph.SelfLoopWeight(u);
    for (const UndirectedGraph::Edge& e : graph.Neighbors(u)) {
      if (e.to < u) continue;  // Count each undirected edge once.
      const int cv = communities.component_of[e.to];
      if (cu == cv) {
        self_weight[cu] += e.weight;
      } else {
        const uint64_t key =
            (static_cast<uint64_t>(std::min(cu, cv)) << 32) |
            static_cast<uint64_t>(std::max(cu, cv));
        pair_weight[key] += e.weight;
      }
    }
  }
  for (int c = 0; c < communities.num_components; ++c) {
    if (self_weight[c] > 0.0) {
      aggregated.AddEdge(static_cast<NodeId>(c), static_cast<NodeId>(c),
                         self_weight[c]);
    }
  }
  for (const auto& [key, weight] : pair_weight) {
    aggregated.AddEdge(static_cast<NodeId>(key >> 32),
                       static_cast<NodeId>(key & 0xFFFFFFFFULL), weight);
  }
  return aggregated;
}

}  // namespace

double Modularity(const UndirectedGraph& graph,
                  const std::vector<int>& community_of, double resolution) {
  assert(community_of.size() == graph.num_nodes());
  const double m = graph.TotalWeight();
  if (m <= 0.0) return 0.0;

  // Intra-community edge weight and per-community degree sums.
  std::unordered_map<int, double> total_degree;
  double intra = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    total_degree[community_of[u]] += graph.WeightedDegree(u);
    intra += graph.SelfLoopWeight(u);
    for (const UndirectedGraph::Edge& e : graph.Neighbors(u)) {
      if (e.to > u) continue;  // Count each edge once.
      if (community_of[u] == community_of[e.to]) intra += e.weight;
    }
  }
  double q = intra / m;
  const double two_m = 2.0 * m;
  for (const auto& [community, degree] : total_degree) {
    (void)community;
    q -= resolution * (degree / two_m) * (degree / two_m);
  }
  return q;
}

ComponentAssignment LouvainCommunities(const UndirectedGraph& graph,
                                       const LouvainOptions& options) {
  const NodeId n = graph.num_nodes();
  ComponentAssignment result;
  result.component_of.assign(n, 0);
  if (n == 0) {
    result.num_components = 0;
    return result;
  }
  // node_to_community maps original nodes through all aggregation levels.
  std::vector<int> node_to_community(n);
  for (NodeId u = 0; u < n; ++u) node_to_community[u] = static_cast<int>(u);

  UndirectedGraph level_graph = graph;
  double previous_modularity = -1.0;

  for (int level = 0; level < options.max_levels; ++level) {
    const double total_weight = level_graph.TotalWeight();
    std::vector<int> community_of(level_graph.num_nodes());
    std::vector<double> community_total_degree(level_graph.num_nodes());
    for (NodeId u = 0; u < level_graph.num_nodes(); ++u) {
      community_of[u] = static_cast<int>(u);
      community_total_degree[u] = level_graph.WeightedDegree(u);
    }

    if (total_weight > 0.0) {
      while (LocalMovingPass(level_graph, options.resolution, total_weight,
                             &community_of, &community_total_degree)) {
      }
    }

    const ComponentAssignment level_assignment = Compact(community_of);

    // Push the level's assignment down to original nodes.
    for (NodeId u = 0; u < n; ++u) {
      node_to_community[u] =
          level_assignment.component_of[node_to_community[u]];
    }

    const double q =
        Modularity(graph, node_to_community, options.resolution);
    const bool converged =
        level_assignment.num_components ==
            static_cast<int>(level_graph.num_nodes()) ||
        q - previous_modularity < options.min_modularity_gain;
    previous_modularity = q;
    if (converged) break;
    level_graph = Aggregate(level_graph, level_assignment);
  }

  return Compact(node_to_community);
}

}  // namespace streamasp
