#ifndef STREAMASP_GRAPH_LOUVAIN_H_
#define STREAMASP_GRAPH_LOUVAIN_H_

#include <vector>

#include "graph/components.h"
#include "graph/graph.h"

namespace streamasp {

/// Options for Louvain community detection.
struct LouvainOptions {
  /// Resolution parameter gamma of Lambiotte et al. (arXiv:0812.1770);
  /// larger values favor more, smaller communities. The paper fixes 1.0
  /// (its footnote 8).
  double resolution = 1.0;

  /// Stop when a full aggregation round improves modularity by less than
  /// this.
  double min_modularity_gain = 1e-9;

  /// Safety cap on aggregation rounds.
  int max_levels = 32;
};

/// Modularity Q of an assignment at the given resolution:
///   Q = (1/2m) * sum_ij [A_ij - gamma * k_i k_j / (2m)] * delta(c_i, c_j)
/// Returns 0 for graphs with no edges.
double Modularity(const UndirectedGraph& graph,
                  const std::vector<int>& community_of, double resolution);

/// Louvain community detection (Blondel et al. 2008): greedy local moving
/// plus graph aggregation, repeated until modularity stops improving.
///
/// Deterministic: nodes are visited in index order, ties broken toward the
/// lowest community id, so repeated runs give identical partitions.
/// Community ids in the result are compacted to 0..k-1 ordered by smallest
/// contained node.
ComponentAssignment LouvainCommunities(const UndirectedGraph& graph,
                                       const LouvainOptions& options = {});

}  // namespace streamasp

#endif  // STREAMASP_GRAPH_LOUVAIN_H_
