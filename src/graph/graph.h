#ifndef STREAMASP_GRAPH_GRAPH_H_
#define STREAMASP_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace streamasp {

/// Dense node index used by all graph algorithms.
using NodeId = uint32_t;

/// A weighted undirected graph with optional self-loops, stored as
/// adjacency lists. Nodes are 0..num_nodes()-1. Parallel edges are allowed
/// and treated additively by weight-based algorithms (Louvain).
///
/// This is the substrate for the paper's input dependency graph: nodes are
/// input predicates, edges are "must be processed together" relations, and
/// self-loops mark atom-level dependency within a predicate (paper §II-B).
class UndirectedGraph {
 public:
  /// An incident edge: neighbor plus weight.
  struct Edge {
    NodeId to;
    double weight;
  };

  UndirectedGraph() = default;

  /// Creates a graph with `num_nodes` isolated nodes.
  explicit UndirectedGraph(NodeId num_nodes) : adjacency_(num_nodes) {}

  /// Adds an isolated node, returning its id.
  NodeId AddNode();

  /// Adds an undirected edge {u, v} with the given weight. u == v adds a
  /// self-loop (stored once). Requires valid node ids.
  void AddEdge(NodeId u, NodeId v, double weight = 1.0);

  /// True iff an edge {u, v} exists (including self-loops when u == v).
  bool HasEdge(NodeId u, NodeId v) const;

  NodeId num_nodes() const { return static_cast<NodeId>(adjacency_.size()); }

  /// Number of distinct AddEdge calls (parallel edges counted separately).
  size_t num_edges() const { return num_edges_; }

  /// Edges incident to `u`, excluding self-loops.
  const std::vector<Edge>& Neighbors(NodeId u) const { return adjacency_[u]; }

  /// Total self-loop weight at `u` (0 when none).
  double SelfLoopWeight(NodeId u) const;

  /// True iff `u` has a self-loop.
  bool HasSelfLoop(NodeId u) const;

  /// Sum of all edge weights, self-loops counted once. This is "m" in the
  /// modularity formula.
  double TotalWeight() const;

  /// Weighted degree of `u`: sum of incident edge weights, self-loops
  /// counted twice (the standard modularity convention).
  double WeightedDegree(NodeId u) const;

 private:
  std::vector<std::vector<Edge>> adjacency_;  // Excludes self-loops.
  std::vector<double> self_loops_;            // Indexed by node; may be short.
  size_t num_edges_ = 0;
};

/// A directed undweighted graph stored as out-adjacency lists.
///
/// Used for the EP2 (body → head) edges of the extended dependency graph
/// and for the grounder's predicate dependency analysis.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(NodeId num_nodes)
      : out_(num_nodes), in_(num_nodes) {}

  NodeId AddNode();

  /// Adds the directed edge u -> v (duplicates ignored is NOT guaranteed;
  /// callers that care deduplicate, algorithms here tolerate duplicates).
  void AddEdge(NodeId u, NodeId v);

  bool HasEdge(NodeId u, NodeId v) const;

  NodeId num_nodes() const { return static_cast<NodeId>(out_.size()); }
  size_t num_edges() const { return num_edges_; }

  const std::vector<NodeId>& Successors(NodeId u) const { return out_[u]; }
  const std::vector<NodeId>& Predecessors(NodeId u) const { return in_[u]; }

  /// All nodes reachable from `start` following edges forward, including
  /// `start` itself (a directed path may be empty).
  std::vector<NodeId> ReachableFrom(NodeId start) const;

  /// Reachability as a bitset (vector<bool> indexed by node), including
  /// `start`.
  std::vector<bool> ReachableSetFrom(NodeId start) const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  size_t num_edges_ = 0;
};

}  // namespace streamasp

#endif  // STREAMASP_GRAPH_GRAPH_H_
