#include "graph/graph.h"

#include <cassert>
#include <deque>

namespace streamasp {

NodeId UndirectedGraph::AddNode() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void UndirectedGraph::AddEdge(NodeId u, NodeId v, double weight) {
  assert(u < num_nodes() && v < num_nodes());
  if (u == v) {
    if (self_loops_.size() < adjacency_.size()) {
      self_loops_.resize(adjacency_.size(), 0.0);
    }
    self_loops_[u] += weight;
  } else {
    adjacency_[u].push_back(Edge{v, weight});
    adjacency_[v].push_back(Edge{u, weight});
  }
  ++num_edges_;
}

bool UndirectedGraph::HasEdge(NodeId u, NodeId v) const {
  assert(u < num_nodes() && v < num_nodes());
  if (u == v) return HasSelfLoop(u);
  for (const Edge& e : adjacency_[u]) {
    if (e.to == v) return true;
  }
  return false;
}

double UndirectedGraph::SelfLoopWeight(NodeId u) const {
  assert(u < num_nodes());
  return u < self_loops_.size() ? self_loops_[u] : 0.0;
}

bool UndirectedGraph::HasSelfLoop(NodeId u) const {
  return SelfLoopWeight(u) > 0.0;
}

double UndirectedGraph::TotalWeight() const {
  double total = 0.0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const Edge& e : adjacency_[u]) total += e.weight;
    total += 2.0 * SelfLoopWeight(u);
  }
  return total / 2.0;  // Each non-loop edge was counted from both sides.
}

double UndirectedGraph::WeightedDegree(NodeId u) const {
  assert(u < num_nodes());
  double degree = 2.0 * SelfLoopWeight(u);
  for (const Edge& e : adjacency_[u]) degree += e.weight;
  return degree;
}

NodeId Digraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

void Digraph::AddEdge(NodeId u, NodeId v) {
  assert(u < num_nodes() && v < num_nodes());
  out_[u].push_back(v);
  in_[v].push_back(u);
  ++num_edges_;
}

bool Digraph::HasEdge(NodeId u, NodeId v) const {
  assert(u < num_nodes() && v < num_nodes());
  for (NodeId w : out_[u]) {
    if (w == v) return true;
  }
  return false;
}

std::vector<NodeId> Digraph::ReachableFrom(NodeId start) const {
  const std::vector<bool> reachable = ReachableSetFrom(start);
  std::vector<NodeId> out;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (reachable[u]) out.push_back(u);
  }
  return out;
}

std::vector<bool> Digraph::ReachableSetFrom(NodeId start) const {
  assert(start < num_nodes());
  std::vector<bool> visited(num_nodes(), false);
  std::deque<NodeId> frontier{start};
  visited[start] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : out_[u]) {
      if (!visited[v]) {
        visited[v] = true;
        frontier.push_back(v);
      }
    }
  }
  return visited;
}

}  // namespace streamasp
