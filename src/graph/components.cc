#include "graph/components.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace streamasp {

std::vector<std::vector<NodeId>> ComponentAssignment::Groups() const {
  std::vector<std::vector<NodeId>> groups(num_components);
  for (NodeId u = 0; u < component_of.size(); ++u) {
    const int c = component_of[u];
    assert(c >= 0 && c < num_components);
    groups[c].push_back(u);
  }
  return groups;
}

ComponentAssignment ConnectedComponents(const UndirectedGraph& graph) {
  ComponentAssignment result;
  result.component_of.assign(graph.num_nodes(), -1);
  int next_component = 0;
  for (NodeId start = 0; start < graph.num_nodes(); ++start) {
    if (result.component_of[start] != -1) continue;
    // BFS flood fill; component ids follow smallest-contained-node order
    // because we scan starts in increasing order.
    const int component = next_component++;
    std::deque<NodeId> frontier{start};
    result.component_of[start] = component;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const UndirectedGraph::Edge& e : graph.Neighbors(u)) {
        if (result.component_of[e.to] == -1) {
          result.component_of[e.to] = component;
          frontier.push_back(e.to);
        }
      }
    }
  }
  result.num_components = next_component;
  return result;
}

bool IsConnected(const UndirectedGraph& graph) {
  if (graph.num_nodes() == 0) return true;
  return ConnectedComponents(graph).num_components <= 1;
}

ComponentAssignment StronglyConnectedComponents(const Digraph& graph) {
  // Iterative Tarjan. Tarjan naturally emits SCCs in reverse topological
  // order of the condensation (sinks first); we flip ids at the end so
  // callers get a forward topological numbering.
  const NodeId n = graph.num_nodes();
  ComponentAssignment result;
  result.component_of.assign(n, -1);

  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  int next_index = 0;
  int next_component = 0;

  // Explicit DFS frame: node plus position in its successor list.
  struct Frame {
    NodeId node;
    size_t next_child;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    call_stack.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const NodeId u = frame.node;
      const std::vector<NodeId>& successors = graph.Successors(u);
      if (frame.next_child < successors.size()) {
        const NodeId v = successors[frame.next_child++];
        if (index[v] == -1) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          call_stack.push_back(Frame{v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const NodeId parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
        if (lowlink[u] == index[u]) {
          // u is the root of an SCC; pop the component.
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component_of[w] = next_component;
            if (w == u) break;
          }
          ++next_component;
        }
      }
    }
  }

  // Flip Tarjan's reverse-topological ids into forward topological order.
  result.num_components = next_component;
  for (NodeId u = 0; u < n; ++u) {
    result.component_of[u] = next_component - 1 - result.component_of[u];
  }
  return result;
}

}  // namespace streamasp
