#ifndef STREAMASP_GROUND_INCREMENTAL_GROUNDER_H_
#define STREAMASP_GROUND_INCREMENTAL_GROUNDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "asp/program.h"
#include "ground/ground_program.h"
#include "ground/grounder.h"
#include "util/status.h"

namespace streamasp {

/// Tuning knobs for window-to-window grounding reuse.
struct IncrementalGroundingOptions {
  /// Full re-grounding threshold: when the *net* per-atom delta magnitude
  /// (expirations + admissions after cancelling churn that nets out)
  /// exceeds this fraction of the window size, replaying the delta would
  /// touch most of the cache anyway, so the grounder rebuilds from
  /// scratch instead. slide == window (tumbling) always lands above any
  /// fraction < 2.0, so tumbling streams degrade gracefully to per-window
  /// full grounding.
  double fallback_delta_fraction = 0.5;

  /// Compaction threshold: retraction tombstones atoms and rule slots in
  /// place, so a long-running sliding stream accumulates garbage in the
  /// cache. When dead rule slots (or tombstoned atoms) exceed this
  /// fraction of the store, the next window rebuilds from scratch, which
  /// resets the arena. Bounds cache memory to O(live ground program).
  double compact_garbage_fraction = 0.5;

  /// Assemble the per-window output program (scratch copy of the store +
  /// fact rules + the shared simplification pass). Callers that solve
  /// through an IncrementalSolver consume the cached store and the
  /// GroundingDelta directly, so they disable assembly and skip that
  /// whole per-window linear pass — the delta-driven replacement of the
  /// simplify cost ROADMAP calls out. With assembly off, output() is
  /// stale/empty and only cached_rules()/last_delta()/atom_table() are
  /// meaningful; num_rules/num_facts stats count the raw store instead of
  /// the simplified output.
  bool assemble_output = true;
};

/// Window-to-window incremental grounder: caches the instantiation of the
/// previous window and, given the fact delta between overlapping windows,
/// retracts ground rules whose support expired and instantiates only the
/// rule instances enabled by admitted facts.
///
/// Correctness model (see ARCHITECTURE.md, "Incremental window
/// grounding"): the cache is an *overgrounded* program — instantiation
/// without eager negation resolution is monotone in the input facts, so
/// the cached rule set is always a superset of what a fresh grounding of
/// the current window would emit, and the superfluous instances (bodies
/// depending on atoms no current fact can derive) cannot fire under
/// stable-model semantics. Retraction is support-counting (DRed-style
/// delete without rederive): an atom whose last deriving rule or window
/// fact disappears is retracted and its dependent rule instances are
/// removed transitively. Positive cycles can survive retraction
/// unsupported; they are unfounded sets, which the solver falsifies, so
/// over-retention never changes the answer sets. The per-window output is
/// a scratch copy of the cached store (kept dense by swap-compaction)
/// plus the window's fact rules, passed through the same
/// equivalence-preserving simplification the batch Grounder uses
/// (GroundingOptions::simplify) — simplification is window-specific, so
/// it runs on the copy and never touches the cache. Net: for every
/// window, GroundWindow's output has exactly the stable models of
/// Grounder::Ground(program, facts), while only the fact delta is ever
/// re-instantiated.
///
/// Not thread-safe: one instance serves one (sub-)stream from one thread
/// at a time. The parallel reasoner keeps one instance per partition; the
/// async engine's workers each own their reasoner and therefore their own
/// grounders.
class IncrementalGrounder {
 public:
  /// The windower-supplied fact delta between two consecutive windows:
  /// window(previous_sequence) - expired + admitted == the current window,
  /// as multisets. Supplying it lets GroundWindow skip its own snapshot
  /// diff; a delta whose previous_sequence does not match the cached
  /// window (e.g. an async worker that sees every Nth window) or whose
  /// counts are inconsistent with the facts vector is ignored in favour
  /// of the snapshot diff. A shape-consistent hint's *contents* are
  /// trusted in Release builds (supplying the above invariant is the
  /// emitting windower's contract, which the windowing tests pin down);
  /// Debug builds re-verify the applied delta against the facts multiset
  /// and fail the call on a lying hint.
  struct FactDelta {
    uint64_t previous_sequence = 0;
    std::vector<Atom> expired;
    std::vector<Atom> admitted;
  };

  /// `program` must outlive the grounder and must not change between
  /// calls (the compiled rule set and dependency components are cached).
  IncrementalGrounder(const Program* program, GroundingOptions options = {},
                      IncrementalGroundingOptions incremental = {});
  ~IncrementalGrounder();

  IncrementalGrounder(const IncrementalGrounder&) = delete;
  IncrementalGrounder& operator=(const IncrementalGrounder&) = delete;

  /// Grounds the window with sequence number `sequence` holding exactly
  /// `facts` (ground atoms; duplicates allowed and preserved as duplicate
  /// fact rules, mirroring Grounder). The returned program is owned by
  /// the grounder and valid until the next GroundWindow/Invalidate call.
  /// `delta` optionally carries the windower's expired/admitted sets (see
  /// FactDelta); `stats` receives this call's counters, including the
  /// reuse counters.
  StatusOr<const GroundProgram*> GroundWindow(
      uint64_t sequence, const std::vector<Atom>& facts,
      const FactDelta* delta = nullptr, GroundingStats* stats = nullptr);

  /// Drops the cache; the next GroundWindow fully regrounds. Called
  /// internally when a grounding error leaves the cache inconsistent.
  void Invalidate();

  /// True when a cached window is available for delta reuse.
  bool cache_valid() const;

  /// Whether this grounder assembles the per-window output program
  /// (IncrementalGroundingOptions::assemble_output). Callers that solve
  /// from output() must check this: with assembly off only the delta
  /// view is maintained.
  bool assembles_output() const;

  /// Sequence number of the cached window (meaningful iff cache_valid()).
  uint64_t cached_sequence() const;

  /// The persistent instantiation store (window facts excluded — those are
  /// described by last_delta().fact_delta). Valid after a successful
  /// GroundWindow, until the next GroundWindow/Invalidate call. Together
  /// with the fact rules this is answer-equivalent to the assembled,
  /// simplified output (see the class comment's correctness model).
  const std::vector<GroundRule>& cached_rules() const;

  /// The persistent atom table behind the cached rules' (stable) ids.
  const AtomTable& atom_table() const;

  /// Replay recipe for the last GroundWindow call: what the window
  /// retracted, appended, and changed among the fact rules. Feed to
  /// IncrementalSolver::SolveWindow.
  const GroundingDelta& last_delta() const;

  /// Running totals over all GroundWindow calls on this instance.
  const GroundingStats& cumulative_stats() const { return cumulative_; }

 private:
  class Engine;
  std::unique_ptr<Engine> engine_;
  GroundingStats cumulative_;
};

}  // namespace streamasp

#endif  // STREAMASP_GROUND_INCREMENTAL_GROUNDER_H_
