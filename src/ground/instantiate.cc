#include "ground/instantiate.h"

#include <algorithm>

namespace streamasp {
namespace ground_internal {

bool MatchTerm(const Term& pattern, const Term& ground, Binding* binding) {
  switch (pattern.kind()) {
    case TermKind::kInteger:
    case TermKind::kSymbol:
      return pattern == ground;
    case TermKind::kArithmetic: {
      // Matching cannot invert arithmetic: the expression must already be
      // fully bound, in which case it folds to an integer and compares.
      const Term folded = SubstituteTerm(pattern, *binding);
      return folded.is_integer() && folded == ground;
    }
    case TermKind::kVariable: {
      if (const Term* bound = binding->Get(pattern.symbol())) {
        return *bound == ground;
      }
      binding->Push(pattern.symbol(), ground);
      return true;
    }
    case TermKind::kFunction: {
      if (!ground.is_function() || ground.symbol() != pattern.symbol() ||
          ground.args().size() != pattern.args().size()) {
        return false;
      }
      for (size_t i = 0; i < pattern.args().size(); ++i) {
        if (!MatchTerm(pattern.args()[i], ground.args()[i], binding)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool MatchPackedTerm(const Term& pattern, PackedTerm ground,
                     Binding* binding) {
  switch (pattern.kind()) {
    case TermKind::kInteger:
      // Inline packing of the pattern constant, then one word compare
      // (out-of-range integers escape to the same canonical arena id the
      // ground word would carry, so equality still holds word-wise).
      return PackedTerm::Integer(pattern.integer_value()) == ground;
    case TermKind::kSymbol:
      return PackedTerm::Symbol(pattern.symbol()) == ground;
    case TermKind::kVariable: {
      const PackedTerm bound = binding->GetPacked(pattern.symbol());
      if (bound.has_value()) return bound == ground;
      binding->Push(pattern.symbol(), ground);
      return true;
    }
    case TermKind::kArithmetic: {
      const Term folded = SubstituteTerm(pattern, *binding);
      return folded.is_integer() && PackedTerm(folded) == ground;
    }
    case TermKind::kFunction: {
      // Compound pattern: only a compound ground value can match; unpack
      // it once and fall back to the recursive matcher.
      if (!ground.is_escape()) return false;
      const Term ground_term =
          PackedTermArena::Global().TermOf(ground.escape_id());
      return MatchTerm(pattern, ground_term, binding);
    }
  }
  return false;
}

Term SubstituteTerm(const Term& term, const Binding& binding) {
  switch (term.kind()) {
    case TermKind::kInteger:
    case TermKind::kSymbol:
      return term;
    case TermKind::kVariable: {
      const Term* bound = binding.Get(term.symbol());
      return bound != nullptr ? *bound : term;
    }
    case TermKind::kFunction: {
      std::vector<Term> args;
      args.reserve(term.args().size());
      for (const Term& arg : term.args()) {
        args.push_back(SubstituteTerm(arg, binding));
      }
      return Term::Function(term.symbol(), std::move(args));
    }
    case TermKind::kArithmetic:
      // Term::Arithmetic constant-folds once both operands are ground
      // integers; otherwise the (partially substituted) expression
      // remains, signalling an undefined or still-open computation.
      return Term::Arithmetic(term.arith_op(),
                              SubstituteTerm(term.args()[0], binding),
                              SubstituteTerm(term.args()[1], binding));
  }
  return term;
}

bool ContainsUnfoldedArithmetic(const Term& term) {
  if (term.is_arithmetic()) return true;
  if (term.is_function()) {
    for (const Term& arg : term.args()) {
      if (ContainsUnfoldedArithmetic(arg)) return true;
    }
  }
  return false;
}

bool ContainsUnfoldedArithmetic(const Atom& atom) {
  for (const Term& arg : atom.args()) {
    if (ContainsUnfoldedArithmetic(arg)) return true;
  }
  return false;
}

Atom SubstituteAtom(const Atom& atom, const Binding& binding) {
  std::vector<Term> args;
  args.reserve(atom.args().size());
  for (const Term& arg : atom.args()) {
    args.push_back(SubstituteTerm(arg, binding));
  }
  return Atom(atom.predicate(), std::move(args));
}

Atom SubstituteAtomFast(const Atom& atom, bool pattern_ground,
                        const Binding& binding) {
  if (pattern_ground) return atom;  // Nothing to substitute.
  std::vector<Term> args;
  args.reserve(atom.args().size());
  for (const Term& arg : atom.args()) {
    switch (arg.kind()) {
      case TermKind::kInteger:
      case TermKind::kSymbol:
        args.push_back(arg);  // Ground constant: plain copy.
        break;
      case TermKind::kVariable: {
        // Safety guarantees head/negative variables are bound by the
        // positive body, so the lookup hits; unbound variables (only
        // possible on unsafe input the engines reject earlier) stay put.
        const Term* bound = binding.Get(arg.symbol());
        args.push_back(bound != nullptr ? *bound : arg);
        break;
      }
      case TermKind::kFunction:
      case TermKind::kArithmetic:
        args.push_back(SubstituteTerm(arg, binding));
        break;
    }
  }
  return Atom(atom.predicate(), std::move(args));
}

void PrecomputeGroundFlags(CompiledRule* rule) {
  rule->heads_ground.clear();
  rule->heads_ground.reserve(rule->heads.size());
  for (const Atom& head : rule->heads) {
    rule->heads_ground.push_back(head.IsGround());
  }
  rule->negatives_ground.clear();
  rule->negatives_ground.reserve(rule->negatives.size());
  for (const Atom& negative : rule->negatives) {
    rule->negatives_ground.push_back(negative.IsGround());
  }
}

bool ResolveComparisons(const CompiledRule& rule, Binding* binding,
                        std::vector<bool>* comparison_done,
                        std::vector<size_t>* newly_done) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t c = 0; c < rule.comparisons.size(); ++c) {
      if ((*comparison_done)[c]) continue;
      const Literal& cmp = rule.comparisons[c];
      const Term lhs = SubstituteTerm(cmp.lhs(), *binding);
      const Term rhs = SubstituteTerm(cmp.rhs(), *binding);
      if (lhs.IsGround() && rhs.IsGround()) {
        // SubstituteTerm already folded foldable arithmetic; what remains
        // is undefined (symbolic operand, division by zero) => false.
        if (ContainsUnfoldedArithmetic(lhs) ||
            ContainsUnfoldedArithmetic(rhs)) {
          return false;
        }
        if (!EvaluateComparison(cmp.op(), lhs, rhs)) return false;
        (*comparison_done)[c] = true;
        newly_done->push_back(c);
        progress = true;
        continue;
      }
      if (cmp.op() != ComparisonOp::kEqual) continue;
      // Assignment form: a bare unbound variable against a ground value.
      const bool lhs_assignable = lhs.is_variable() && rhs.IsGround() &&
                                  !ContainsUnfoldedArithmetic(rhs);
      const bool rhs_assignable = rhs.is_variable() && lhs.IsGround() &&
                                  !ContainsUnfoldedArithmetic(lhs);
      if (lhs_assignable || rhs_assignable) {
        const Term& variable = lhs_assignable ? lhs : rhs;
        const Term& value = lhs_assignable ? rhs : lhs;
        binding->Push(variable.symbol(), value);
        (*comparison_done)[c] = true;
        newly_done->push_back(c);
        progress = true;
      }
    }
  }
  return true;
}

void SimplifyGroundRules(size_t num_atoms, const std::vector<bool>& derivable,
                         std::vector<GroundRule>* rules_io) {
  std::vector<GroundRule>& rules = *rules_io;
  std::vector<bool> definitely_true(num_atoms, false);
  std::vector<bool> removed(rules.size(), false);

  // Pass 0: erase negative literals over atoms that no rule can derive —
  // `not a` with underivable `a` always holds.
  for (GroundRule& rule : rules) {
    auto& neg = rule.negative_body;
    neg.erase(std::remove_if(neg.begin(), neg.end(),
                             [&](GroundAtomId id) {
                               return id >= derivable.size() || !derivable[id];
                             }),
              neg.end());
  }

  // Fixpoint: propagate definite facts through positive bodies.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t r = 0; r < rules.size(); ++r) {
      if (removed[r]) continue;
      GroundRule& rule = rules[r];

      // A definitely-true head atom satisfies the rule outright.
      bool satisfied = false;
      for (GroundAtomId h : rule.head) {
        if (definitely_true[h]) {
          satisfied = true;
          break;
        }
      }
      // So does a definitely-true negative-body atom falsifying the body.
      if (!satisfied) {
        for (GroundAtomId n : rule.negative_body) {
          if (definitely_true[n]) {
            satisfied = true;
            break;
          }
        }
      }
      if (satisfied) {
        removed[r] = true;
        changed = true;
        continue;
      }

      auto& pos = rule.positive_body;
      const size_t before = pos.size();
      pos.erase(std::remove_if(
                    pos.begin(), pos.end(),
                    [&](GroundAtomId id) { return definitely_true[id]; }),
                pos.end());
      if (pos.size() != before) changed = true;

      if (rule.is_fact() && !definitely_true[rule.head.front()]) {
        definitely_true[rule.head.front()] = true;
        removed[r] = true;  // Re-emitted once, below.
        changed = true;
      }
    }
  }

  std::vector<GroundRule> output;
  output.reserve(rules.size());
  for (GroundAtomId a = 0; a < num_atoms; ++a) {
    if (definitely_true[a]) {
      output.push_back(GroundRule{{a}, {}, {}});
    }
  }
  for (size_t r = 0; r < rules.size(); ++r) {
    if (!removed[r]) output.push_back(std::move(rules[r]));
  }
  rules = std::move(output);
}

}  // namespace ground_internal
}  // namespace streamasp
