#include "ground/incremental_grounder.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asp/literal.h"
#include "graph/components.h"
#include "graph/graph.h"
#include "ground/instantiate.h"

namespace streamasp {

namespace {

using ground_internal::Binding;
using ground_internal::CompiledRule;
using ground_internal::ContainsUnfoldedArithmetic;
using ground_internal::MatchPackedTerm;
using ground_internal::MatchTerm;
using ground_internal::PrecomputeGroundFlags;
using ground_internal::PredicateExtension;
using ground_internal::ResolveComparisons;
using ground_internal::SubstituteAtomFast;
using ground_internal::SubstituteTerm;

constexpr uint32_t kNoPosition = static_cast<uint32_t>(-1);
constexpr uint32_t kNoSlot = static_cast<uint32_t>(-1);

/// Net per-atom change between two fact multisets.
using NetDelta = std::unordered_map<Atom, int64_t, AtomHash>;

}  // namespace

/// The retained instantiation state. The evaluation core mirrors
/// grounder.cc's InstantiationEngine (same shared primitives, same
/// old/delta/full semi-naive range discipline) but differs in three ways:
///  * extensions, the atom table and the emitted rule store persist across
///    GroundWindow calls; each window replays only its fact delta;
///  * negative literals are never eagerly resolved against "final"
///    extensions (extensions are never final across windows) — the
///    per-window simplification pass recovers the lost pruning;
///  * emitted rules carry support/dependency bookkeeping so expired facts
///    retract their dependent instances (support counting).
class IncrementalGrounder::Engine {
 public:
  Engine(const Program* program, GroundingOptions options,
         IncrementalGroundingOptions incremental)
      : program_(program), options_(options), inc_(incremental) {}

  Status GroundWindow(uint64_t sequence, const std::vector<Atom>& facts,
                      const FactDelta* delta, GroundingStats* stats);

  void Invalidate() { cache_valid_ = false; }
  bool cache_valid() const { return cache_valid_; }
  bool assembles_output() const { return inc_.assemble_output; }
  uint64_t cached_sequence() const { return cached_sequence_; }
  const GroundProgram& output() const { return out_; }
  const std::vector<GroundRule>& store() const { return store_; }
  const AtomTable& atom_table() const { return out_.atoms(); }
  const GroundingDelta& last_delta() const { return delta_; }

 private:
  // --- static program analysis (built once) ---
  Status Prepare();
  int PredIndex(const PredicateSignature& sig);

  // --- dynamic cache primitives ---
  AtomTable& atoms() { return out_.mutable_atoms(); }
  GroundAtomId InternAtom(const Atom& atom);
  void Derive(GroundAtomId id);
  GroundAtomId AddDerivedAtom(const Atom& atom);
  void RetractAtom(GroundAtomId id, std::vector<GroundAtomId>* worklist);
  /// Marks a store rule dead (kills compact away in CompactStore).
  void KillRule(uint32_t slot, std::vector<GroundAtomId>* worklist);
  /// Swap-compacts the marked dead slots out of the dense store.
  void CompactStore();
  void RemoveBodyRef(GroundAtomId atom, uint32_t slot);
  Status EmitIncrementalRule(GroundRule rule);
  /// Builds the per-window output: scratch copy of the store + window
  /// fact rules, optionally simplified; fills the output stat counters.
  void AssembleOutput();

  // --- per-window phases ---
  Status ComputeNetDelta(const std::vector<Atom>& facts,
                         const FactDelta* delta, NetDelta* net,
                         bool* used_snapshot_diff) const;
  Status ApplyNetDelta(const NetDelta& net);
  Status CheckWindowCounts(const std::vector<Atom>& facts) const;
  Status Rebuild(const std::vector<Atom>& facts);
  Status EvaluateWindow();
  Status EvaluateComponentIncremental(int component,
                                      const std::vector<CompiledRule*>& rules);
  Status EvaluateRuleAt(CompiledRule* rule, int component,
                        size_t delta_position, bool round1);
  Status MatchFrom(CompiledRule* rule, size_t literal_index, int component,
                   size_t delta_position, bool round1, Binding* binding,
                   std::vector<GroundAtomId>* matched,
                   std::vector<bool>* comparison_done);
  Status EmitInstance(CompiledRule* rule, const Binding& binding,
                      const std::vector<GroundAtomId>& matched);
  std::pair<size_t, size_t> LiteralRange(const CompiledRule& rule,
                                         size_t position, int component,
                                         size_t delta_position,
                                         bool round1) const;

  const Program* program_;
  GroundingOptions options_;
  IncrementalGroundingOptions inc_;
  bool prepared_ = false;

  std::unordered_map<PredicateSignature, int, PredicateSignatureHash>
      pred_index_;
  std::vector<PredicateSignature> pred_signatures_;
  /// Component of each predicate; -1 for predicates first seen as input
  /// facts after Prepare (no rule reads them, so they never take part in
  /// range computations).
  std::vector<int> pred_component_;
  int num_components_ = 0;
  std::vector<CompiledRule> compiled_;
  std::vector<std::vector<CompiledRule*>> component_rules_;
  std::vector<CompiledRule*> constraints_;
  /// Rules with no positive body atoms: their instances are independent of
  /// the input facts, so they fire once per rebuild and persist.
  std::vector<CompiledRule*> groundless_;

  // --- dynamic cache (reset by Rebuild) ---
  bool cache_valid_ = false;
  uint64_t cached_sequence_ = 0;
  GroundProgram out_;  ///< Owns the atom table + the per-window output.
  std::vector<bool> derivable_;
  std::vector<int> atom_pred_;         ///< Atom id -> predicate index.
  std::vector<uint32_t> support_;      ///< Deriving rules + window count.
  std::vector<uint32_t> ext_pos_;      ///< Atom id -> extension position.
  std::vector<std::vector<uint32_t>> body_rules_;  ///< Atom -> rule slots.
  std::vector<PredicateExtension> extensions_;
  /// The cached instantiation, kept dense by swap-compaction after each
  /// retraction batch; the per-window output program is a scratch copy of
  /// it (plus the window's fact rules) so per-window simplification never
  /// touches the cache.
  std::vector<GroundRule> store_;
  std::vector<bool> alive_;            ///< Per store slot; all true between
                                       ///< windows (kills compact away).
  std::vector<uint32_t> dead_slots_;   ///< Kill batch awaiting compaction.
  size_t tombstoned_atoms_ = 0;
  std::unordered_map<Atom, uint32_t, AtomHash> window_counts_;
  size_t window_total_ = 0;

  /// Replay recipe of the last GroundWindow call (see ground_program.h).
  GroundingDelta delta_;

  GroundingStats call_stats_;

 public:
  const GroundingStats& call_stats() const { return call_stats_; }
};

int IncrementalGrounder::Engine::PredIndex(const PredicateSignature& sig) {
  auto it = pred_index_.find(sig);
  if (it != pred_index_.end()) return it->second;
  const int index = static_cast<int>(pred_signatures_.size());
  pred_index_.emplace(sig, index);
  pred_signatures_.push_back(sig);
  // Predicates registered after Prepare have no rules: component -1.
  if (prepared_) pred_component_.push_back(-1);
  extensions_.resize(pred_signatures_.size());
  return index;
}

Status IncrementalGrounder::Engine::Prepare() {
  STREAMASP_RETURN_IF_ERROR(program_->Validate());

  for (const Rule& rule : program_->rules()) {
    for (const Atom& a : rule.head()) PredIndex(a.signature());
    for (const Literal& l : rule.body()) {
      if (l.is_atom()) PredIndex(l.atom().signature());
    }
  }

  Digraph dependencies(static_cast<NodeId>(pred_signatures_.size()));
  for (const Rule& rule : program_->rules()) {
    for (const Atom& head : rule.head()) {
      const int head_pred = PredIndex(head.signature());
      for (const Literal& l : rule.body()) {
        if (!l.is_atom()) continue;
        dependencies.AddEdge(
            static_cast<NodeId>(PredIndex(l.atom().signature())),
            static_cast<NodeId>(head_pred));
      }
    }
    for (size_t i = 0; i + 1 < rule.head().size(); ++i) {
      for (size_t j = i + 1; j < rule.head().size(); ++j) {
        const NodeId a =
            static_cast<NodeId>(PredIndex(rule.head()[i].signature()));
        const NodeId b =
            static_cast<NodeId>(PredIndex(rule.head()[j].signature()));
        dependencies.AddEdge(a, b);
        dependencies.AddEdge(b, a);
      }
    }
  }
  const ComponentAssignment components =
      StronglyConnectedComponents(dependencies);
  num_components_ = components.num_components;
  pred_component_ = components.component_of;
  extensions_.resize(pred_signatures_.size());

  component_rules_.assign(num_components_, {});
  compiled_.reserve(program_->rules().size());
  for (const Rule& rule : program_->rules()) {
    if (rule.body().empty()) continue;  // Facts are seeded separately.
    CompiledRule cr;
    for (const Atom& head : rule.head()) {
      cr.heads.push_back(head);
      cr.head_preds.push_back(PredIndex(head.signature()));
    }
    for (const Literal& l : rule.body()) {
      switch (l.kind()) {
        case Literal::Kind::kPositiveAtom:
          cr.positive.push_back(l.atom());
          cr.positive_preds.push_back(PredIndex(l.atom().signature()));
          break;
        case Literal::Kind::kNegativeAtom:
          cr.negatives.push_back(l.atom());
          cr.negative_preds.push_back(PredIndex(l.atom().signature()));
          break;
        case Literal::Kind::kComparison: {
          cr.comparisons.push_back(l);
          std::vector<SymbolId> vars;
          l.CollectVariables(&vars);
          std::sort(vars.begin(), vars.end());
          vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
          cr.comparison_vars.push_back(std::move(vars));
          break;
        }
      }
    }
    PrecomputeGroundFlags(&cr);
    cr.component = cr.heads.empty()
                       ? num_components_
                       : pred_component_[cr.head_preds.front()];
    if (!cr.heads.empty()) {
      for (size_t i = 0; i < cr.positive.size(); ++i) {
        if (pred_component_[cr.positive_preds[i]] == cr.component) {
          cr.recursive = true;
          cr.same_component_positions.push_back(i);
        }
      }
    }
    compiled_.push_back(std::move(cr));
  }
  // Pointers into compiled_ are stable from here on.
  for (CompiledRule& cr : compiled_) {
    if (cr.positive.empty()) {
      groundless_.push_back(&cr);
    } else if (cr.heads.empty()) {
      constraints_.push_back(&cr);
    } else {
      component_rules_[cr.component].push_back(&cr);
    }
  }
  prepared_ = true;
  return OkStatus();
}

GroundAtomId IncrementalGrounder::Engine::InternAtom(const Atom& atom) {
  const GroundAtomId id = atoms().Intern(atom);
  if (id >= atom_pred_.size()) {
    atom_pred_.resize(id + 1, -2);
    derivable_.resize(id + 1, false);
    support_.resize(id + 1, 0);
    ext_pos_.resize(id + 1, kNoPosition);
    body_rules_.resize(id + 1);
  }
  if (atom_pred_[id] == -2) atom_pred_[id] = PredIndex(atom.signature());
  return id;
}

void IncrementalGrounder::Engine::Derive(GroundAtomId id) {
  assert(!derivable_[id]);
  derivable_[id] = true;
  PredicateExtension& ext = extensions_[atom_pred_[id]];
  ext_pos_[id] = static_cast<uint32_t>(ext.atoms.size());
  ext.atoms.push_back(id);
}

GroundAtomId IncrementalGrounder::Engine::AddDerivedAtom(const Atom& atom) {
  const GroundAtomId id = InternAtom(atom);
  if (!derivable_[id]) Derive(id);
  return id;
}

void IncrementalGrounder::Engine::RemoveBodyRef(GroundAtomId atom,
                                                uint32_t slot) {
  std::vector<uint32_t>& refs = body_rules_[atom];
  for (size_t i = 0; i < refs.size(); ++i) {
    if (refs[i] == slot) {
      refs[i] = refs.back();
      refs.pop_back();
      return;
    }
  }
}

void IncrementalGrounder::Engine::KillRule(
    uint32_t slot, std::vector<GroundAtomId>* worklist) {
  assert(alive_[slot]);
  alive_[slot] = false;
  ++call_stats_.rules_retracted;
  const GroundRule& rule = store_[slot];
  for (GroundAtomId b : rule.positive_body) RemoveBodyRef(b, slot);
  for (GroundAtomId h : rule.head) {
    assert(support_[h] > 0);
    if (--support_[h] == 0 && derivable_[h]) worklist->push_back(h);
  }
  dead_slots_.push_back(slot);
}

void IncrementalGrounder::Engine::CompactStore() {
  if (dead_slots_.empty()) return;
  // Highest slot first: the rule pulled into each hole is then always
  // alive, so body references need retargeting exactly once.
  std::sort(dead_slots_.begin(), dead_slots_.end(),
            std::greater<uint32_t>());
  // Publish the exact replay order so a mirroring consumer (the
  // incremental solver) can apply the identical swap-compaction and keep
  // its rule indices aligned with the store's slot numbering.
  delta_.retracted_slots.insert(delta_.retracted_slots.end(),
                                dead_slots_.begin(), dead_slots_.end());
  for (const uint32_t slot : dead_slots_) {
    const uint32_t last = static_cast<uint32_t>(store_.size() - 1);
    if (slot != last) {
      GroundRule moved = std::move(store_[last]);
      for (GroundAtomId b : moved.positive_body) {
        for (uint32_t& ref : body_rules_[b]) {
          if (ref == last) {
            ref = slot;
            break;
          }
        }
      }
      store_[slot] = std::move(moved);
      alive_[slot] = true;
    }
    store_.pop_back();
    alive_.pop_back();
  }
  dead_slots_.clear();
}

void IncrementalGrounder::Engine::RetractAtom(
    GroundAtomId id, std::vector<GroundAtomId>* worklist) {
  assert(derivable_[id] && support_[id] == 0);
  derivable_[id] = false;
  PredicateExtension& ext = extensions_[atom_pred_[id]];
  ext.atoms[ext_pos_[id]] = kInvalidGroundAtom;
  ext_pos_[id] = kNoPosition;
  ++tombstoned_atoms_;
  // Dependent instances lose a positive-body atom that no current fact
  // can derive: remove them (their heads may cascade).
  std::vector<uint32_t> dependents = std::move(body_rules_[id]);
  body_rules_[id].clear();
  for (uint32_t slot : dependents) {
    if (alive_[slot]) KillRule(slot, worklist);
  }
}

Status IncrementalGrounder::Engine::EmitIncrementalRule(GroundRule rule) {
  if (store_.size() >= options_.max_ground_rules) {
    return ResourceExhaustedError(
        "ground rule limit exceeded (" +
        std::to_string(options_.max_ground_rules) +
        "); the program may not be finitely groundable");
  }
  const uint32_t slot = static_cast<uint32_t>(store_.size());
  for (GroundAtomId b : rule.positive_body) body_rules_[b].push_back(slot);
  for (GroundAtomId h : rule.head) ++support_[h];
  store_.push_back(std::move(rule));
  alive_.push_back(true);
  ++call_stats_.rules_new;
  return OkStatus();
}

Status IncrementalGrounder::Engine::ComputeNetDelta(
    const std::vector<Atom>& facts, const FactDelta* delta,
    NetDelta* net, bool* used_snapshot_diff) const {
  net->clear();
  // A snapshot diff counts as a *resync* only when the caller supplied a
  // hint that could not be used (chain gap after a kDropOldest eviction,
  // or an inconsistent hint): the computed delta is still exact, but
  // downstream consumers treat their incrementally maintained solve state
  // as suspect. Hint-less callers diff every window by design — that is
  // the normal mode, not a resync.
  *used_snapshot_diff = false;
  if (delta != nullptr && delta->previous_sequence == cached_sequence_) {
    int64_t total_change = 0;
    for (const Atom& a : delta->admitted) {
      ++(*net)[a];
      ++total_change;
    }
    for (const Atom& e : delta->expired) {
      --(*net)[e];
      --total_change;
    }
    // Validate the hint against the snapshot: totals must agree and no
    // expiry may exceed the cached multiplicity. Inconsistent hints (or
    // hints relative to a window this grounder never saw) fall through to
    // the snapshot diff below.
    bool consistent =
        static_cast<int64_t>(window_total_) + total_change ==
        static_cast<int64_t>(facts.size());
    if (consistent) {
      for (const auto& [atom, change] : *net) {
        if (change >= 0) continue;
        const auto it = window_counts_.find(atom);
        const int64_t have =
            it == window_counts_.end() ? 0 : static_cast<int64_t>(it->second);
        if (have + change < 0) {
          consistent = false;
          break;
        }
      }
    }
    if (consistent) return OkStatus();
    net->clear();
  }
  *used_snapshot_diff = delta != nullptr;
  // Snapshot diff: net = multiset(facts) - multiset(cached window).
  for (const Atom& a : facts) ++(*net)[a];
  for (const auto& [atom, count] : window_counts_) {
    (*net)[atom] -= static_cast<int64_t>(count);
  }
  for (auto it = net->begin(); it != net->end();) {
    it = it->second == 0 ? net->erase(it) : std::next(it);
  }
  return OkStatus();
}

Status IncrementalGrounder::Engine::ApplyNetDelta(const NetDelta& net) {
  // Open a fresh admission window on every extension.
  for (PredicateExtension& ext : extensions_) {
    ext.window_start = ext.atoms.size();
  }

  // Retract first: expired support disappears before admitted facts (or
  // the delta replay) can re-derive anything, so an atom that loses its
  // facts and regains them via a new rule firing takes the tombstone ->
  // re-append path and lands in the admission delta.
  std::vector<GroundAtomId> worklist;
  for (const auto& [atom, change] : net) {
    if (change >= 0) continue;
    const GroundAtomId id = atoms().Lookup(atom);
    if (id == kInvalidGroundAtom) {
      return InternalError("expired fact was never interned");
    }
    const uint32_t drop = static_cast<uint32_t>(-change);
    auto it = window_counts_.find(atom);
    if (it == window_counts_.end() || it->second < drop ||
        support_[id] < drop) {
      return InternalError("fact delta inconsistent with cached window");
    }
    it->second -= drop;
    if (it->second == 0) window_counts_.erase(it);
    support_[id] -= drop;
    delta_.fact_delta.emplace_back(id, change);
    if (support_[id] == 0 && derivable_[id]) worklist.push_back(id);
  }
  while (!worklist.empty()) {
    const GroundAtomId id = worklist.back();
    worklist.pop_back();
    if (!derivable_[id] || support_[id] != 0) continue;
    RetractAtom(id, &worklist);
  }
  CompactStore();

  for (const auto& [atom, change] : net) {
    if (change <= 0) continue;
    if (!atom.IsGround()) {
      return InvalidArgumentError("non-ground input fact: " +
                                  atom.ToString(program_->symbol_table()));
    }
    const GroundAtomId id = InternAtom(atom);
    window_counts_[atom] += static_cast<uint32_t>(change);
    support_[id] += static_cast<uint32_t>(change);
    delta_.fact_delta.emplace_back(id, change);
    if (!derivable_[id]) Derive(id);
  }
  return OkStatus();
}

/// Debug-only contract check: after applying the net delta, the tracked
/// window multiset must equal the facts vector exactly. Release builds
/// trust a shape-consistent hint's contents (the emitting windowers are
/// tested to uphold the invariant); the Debug and sanitizer CI legs run
/// every differential test through this full comparison.
Status IncrementalGrounder::Engine::CheckWindowCounts(
    const std::vector<Atom>& facts) const {
#ifndef NDEBUG
  std::unordered_map<Atom, uint32_t, AtomHash> expected;
  for (const Atom& fact : facts) ++expected[fact];
  if (expected != window_counts_) {
    return InternalError(
        "window delta hint disagrees with the window's facts");
  }
#else
  (void)facts;
#endif
  return OkStatus();
}

std::pair<size_t, size_t> IncrementalGrounder::Engine::LiteralRange(
    const CompiledRule& rule, size_t position, int component,
    size_t delta_position, bool round1) const {
  const int pred = rule.positive_preds[position];
  const PredicateExtension& ext = extensions_[pred];
  const bool in_component =
      component < num_components_ && pred_component_[pred] == component;
  if (in_component) {
    if (position < delta_position) return {0, ext.delta_begin};
    if (position == delta_position) return {ext.delta_begin, ext.delta_end};
    return {0, ext.delta_end};
  }
  // External predicate (earlier component or fact-only): its delta is this
  // window's admissions, consumed in round 1 only.
  if (!round1) return {0, ext.atoms.size()};
  if (position < delta_position) return {0, ext.window_start};
  if (position == delta_position) return {ext.window_start, ext.atoms.size()};
  return {0, ext.atoms.size()};
}

Status IncrementalGrounder::Engine::MatchFrom(
    CompiledRule* rule, size_t literal_index, int component,
    size_t delta_position, bool round1, Binding* binding,
    std::vector<GroundAtomId>* matched,
    std::vector<bool>* comparison_done) {
  if (literal_index == rule->positive.size()) {
    return EmitInstance(rule, *binding, *matched);
  }

  const Atom& pattern = rule->positive[literal_index];
  const int pred = rule->positive_preds[literal_index];
  PredicateExtension& ext = extensions_[pred];
  const auto [range_begin, range_end] =
      LiteralRange(*rule, literal_index, component, delta_position, round1);
  if (range_begin >= range_end) return OkStatus();

  int index_position = -1;
  PackedTerm index_key;
  for (size_t p = 0; p < pattern.args().size(); ++p) {
    Term substituted = SubstituteTerm(pattern.args()[p], *binding);
    if (substituted.IsGround()) {
      index_position = static_cast<int>(p);
      index_key = PackedTerm(substituted);
      break;
    }
  }

  // Buckets are keyed by the argument's packed word, read off the atom
  // table's columnar mirror — no Term hashing on the probe or build path.
  const std::vector<uint32_t>* bucket = nullptr;
  if (index_position >= 0) {
    if (ext.indexes.empty()) ext.indexes.resize(pattern.args().size());
    ground_internal::PositionIndex& index = ext.indexes[index_position];
    while (index.indexed_until < ext.atoms.size()) {
      const uint32_t i = static_cast<uint32_t>(index.indexed_until++);
      if (ext.atoms[i] == kInvalidGroundAtom) continue;  // Tombstone.
      index.map[atoms().PackedArgs(ext.atoms[i])[index_position].bits()]
          .push_back(i);
    }
    auto it = index.map.find(index_key.bits());
    if (it == index.map.end()) return OkStatus();
    bucket = &it->second;
  }

  auto try_candidate = [&](size_t extension_index) -> Status {
    const GroundAtomId id = ext.atoms[extension_index];
    if (id == kInvalidGroundAtom) return OkStatus();  // Retracted.
    const PackedTerm* candidate_args = atoms().PackedArgs(id);
    const size_t mark = binding->Mark();
    bool matches = atoms().PackedArity(id) == pattern.args().size();
    for (size_t p = 0; matches && p < pattern.args().size(); ++p) {
      matches = MatchPackedTerm(pattern.args()[p], candidate_args[p], binding);
    }
    if (matches) {
      std::vector<size_t> newly_done;
      const bool comparisons_hold =
          ResolveComparisons(*rule, binding, comparison_done, &newly_done);
      if (comparisons_hold) {
        (*matched)[literal_index] = id;
        STREAMASP_RETURN_IF_ERROR(
            MatchFrom(rule, literal_index + 1, component, delta_position,
                      round1, binding, matched, comparison_done));
      }
      for (size_t c : newly_done) (*comparison_done)[c] = false;
    }
    binding->RewindTo(mark);
    return OkStatus();
  };

  if (bucket != nullptr) {
    // Iterate by index over a size snapshot: a later literal of the same
    // predicate can lazily extend this very index while we are suspended
    // in the recursion, reallocating the bucket under a range-for (the
    // map's value reference itself survives rehashing). Entries appended
    // mid-iteration lie beyond range_end and are skipped regardless.
    const size_t bucket_size = bucket->size();
    for (size_t b = 0; b < bucket_size; ++b) {
      const uint32_t i = (*bucket)[b];
      if (i < range_begin || i >= range_end) continue;
      STREAMASP_RETURN_IF_ERROR(try_candidate(i));
    }
  } else {
    for (size_t i = range_begin; i < range_end; ++i) {
      STREAMASP_RETURN_IF_ERROR(try_candidate(i));
    }
  }
  return OkStatus();
}

Status IncrementalGrounder::Engine::EmitInstance(
    CompiledRule* rule, const Binding& binding,
    const std::vector<GroundAtomId>& matched) {
  GroundRule ground;
  ground.positive_body.assign(matched.begin(), matched.end());

  // Unlike the batch engine, negative literals are never resolved against
  // a "fully evaluated" extension: under sliding windows every extension
  // can still change, so the literal is kept and the per-window simplify
  // pass prunes what the current window makes underivable.
  for (size_t i = 0; i < rule->negatives.size(); ++i) {
    const Atom instance = SubstituteAtomFast(rule->negatives[i],
                                             rule->negatives_ground[i], binding);
    assert(instance.IsGround() && "safety guarantees ground negatives");
    if (ContainsUnfoldedArithmetic(instance)) {
      return OkStatus();  // Undefined arithmetic: skip the instance.
    }
    ground.negative_body.push_back(InternAtom(instance));
  }

  for (size_t h = 0; h < rule->heads.size(); ++h) {
    const Atom instance =
        SubstituteAtomFast(rule->heads[h], rule->heads_ground[h], binding);
    assert(instance.IsGround() && "safety guarantees ground heads");
    if (ContainsUnfoldedArithmetic(instance)) {
      return OkStatus();  // Undefined arithmetic: skip the instance.
    }
    ground.head.push_back(AddDerivedAtom(instance));
  }
  return EmitIncrementalRule(std::move(ground));
}

Status IncrementalGrounder::Engine::EvaluateRuleAt(CompiledRule* rule,
                                                   int component,
                                                   size_t delta_position,
                                                   bool round1) {
  Binding binding;
  std::vector<GroundAtomId> matched(rule->positive.size(),
                                    kInvalidGroundAtom);
  std::vector<bool> comparison_done(rule->comparisons.size(), false);
  std::vector<size_t> upfront_done;
  if (!ResolveComparisons(*rule, &binding, &comparison_done,
                          &upfront_done)) {
    return OkStatus();  // The rule can never fire.
  }
  return MatchFrom(rule, 0, component, delta_position, round1, &binding,
                   &matched, &comparison_done);
}

Status IncrementalGrounder::Engine::EvaluateComponentIncremental(
    int component, const std::vector<CompiledRule*>& rules) {
  if (rules.empty()) return OkStatus();

  std::vector<int> component_preds;
  if (component < num_components_) {
    for (size_t p = 0; p < pred_signatures_.size(); ++p) {
      if (pred_component_[p] == component) {
        component_preds.push_back(static_cast<int>(p));
        extensions_[p].delta_begin = extensions_[p].window_start;
        extensions_[p].delta_end = extensions_[p].atoms.size();
      }
    }
  }

  // Round 1: every position whose predicate has a window delta (admitted
  // facts or atoms derived by earlier components this window) takes the
  // delta role once; earlier positions see old-only, later ones see
  // everything — each new combination fires at its first delta position.
  for (CompiledRule* rule : rules) {
    for (size_t j = 0; j < rule->positive.size(); ++j) {
      const auto [db, de] = LiteralRange(*rule, j, component, j, true);
      if (db >= de) continue;
      STREAMASP_RETURN_IF_ERROR(EvaluateRuleAt(rule, component, j, true));
    }
  }

  // Semi-naive fixpoint for in-component recursion: later rounds advance
  // only the component's own deltas (external deltas were consumed in
  // round 1 and are full-range from here on).
  for (;;) {
    bool any_delta = false;
    for (int p : component_preds) {
      extensions_[p].delta_begin = extensions_[p].delta_end;
      extensions_[p].delta_end = extensions_[p].atoms.size();
      if (extensions_[p].delta_begin < extensions_[p].delta_end) {
        any_delta = true;
      }
    }
    if (!any_delta) break;
    for (CompiledRule* rule : rules) {
      if (!rule->recursive) continue;
      for (size_t j : rule->same_component_positions) {
        STREAMASP_RETURN_IF_ERROR(
            EvaluateRuleAt(rule, component, j, false));
      }
    }
  }
  return OkStatus();
}

Status IncrementalGrounder::Engine::EvaluateWindow() {
  for (int c = 0; c < num_components_; ++c) {
    STREAMASP_RETURN_IF_ERROR(
        EvaluateComponentIncremental(c, component_rules_[c]));
  }
  return EvaluateComponentIncremental(num_components_, constraints_);
}

Status IncrementalGrounder::Engine::Rebuild(const std::vector<Atom>& facts) {
  // Atom interning restarts, but the previous window's population is the
  // best size estimate: reserve up front so the hot Intern loop never
  // rehashes mid-window.
  const size_t previous_atoms = out_.num_atoms();
  out_ = GroundProgram();
  if (previous_atoms > 0) out_.mutable_atoms().Reserve(previous_atoms);
  derivable_.clear();
  atom_pred_.clear();
  support_.clear();
  ext_pos_.clear();
  body_rules_.clear();
  extensions_.assign(pred_signatures_.size(), PredicateExtension{});
  store_.clear();
  alive_.clear();
  dead_slots_.clear();
  tombstoned_atoms_ = 0;
  window_counts_.clear();

  // Seed the program's own facts as permanently supported rules.
  for (const Rule& rule : program_->rules()) {
    if (!rule.body().empty()) continue;
    GroundRule ground;
    for (const Atom& head : rule.head()) {
      if (!head.IsGround()) {
        return InvalidArgumentError(
            "non-ground fact: " + rule.ToString(program_->symbol_table()));
      }
      ground.head.push_back(AddDerivedAtom(head));
    }
    STREAMASP_RETURN_IF_ERROR(EmitIncrementalRule(std::move(ground)));
  }
  // Window facts: derivable + supported, but their fact rules live in the
  // per-window output, not the cache.
  for (const Atom& fact : facts) {
    if (!fact.IsGround()) {
      return InvalidArgumentError("non-ground input fact: " +
                                  fact.ToString(program_->symbol_table()));
    }
    const GroundAtomId id = InternAtom(fact);
    ++window_counts_[fact];
    ++support_[id];
    if (!derivable_[id]) Derive(id);
  }
  // A rebuild restarts slot numbering and atom interning, so the delta's
  // fact view is the full window multiset, not a diff.
  for (const auto& [atom, count] : window_counts_) {
    delta_.fact_delta.emplace_back(atoms().Lookup(atom),
                                   static_cast<int64_t>(count));
  }

  // Fact-independent rules fire exactly once per rebuild.
  for (CompiledRule* rule : groundless_) {
    STREAMASP_RETURN_IF_ERROR(
        EvaluateRuleAt(rule, rule->component, 0, true));
  }

  // With empty window_start marks everything seeded above is this
  // window's delta, so the shared delta replay performs the full
  // bottom-up instantiation.
  for (PredicateExtension& ext : extensions_) ext.window_start = 0;
  return EvaluateWindow();
}

void IncrementalGrounder::Engine::AssembleOutput() {
  // Scratch copy of the cache + the window's fact rules. Simplification
  // (when enabled, as in the batch grounder) runs on the copy only: it is
  // window-specific — definite facts differ per window — so it can never
  // be folded into the cache itself.
  std::vector<GroundRule>& rules = out_.mutable_rules();
  rules.clear();
  rules.reserve(store_.size() + window_total_);
  rules.assign(store_.begin(), store_.end());
  for (const auto& [atom, count] : window_counts_) {
    const GroundAtomId id = atoms().Lookup(atom);
    assert(id != kInvalidGroundAtom);
    for (uint32_t c = 0; c < count; ++c) {
      rules.push_back(GroundRule{{id}, {}, {}});
    }
  }
  call_stats_.num_rules_raw = rules.size();
  if (options_.simplify) {
    ground_internal::SimplifyGroundRules(atoms().size(), derivable_, &rules);
  }
  call_stats_.num_rules = rules.size();
  call_stats_.num_atoms = atoms().size();
  for (const GroundRule& rule : rules) {
    if (rule.is_fact()) ++call_stats_.num_facts;
    if (rule.is_constraint()) ++call_stats_.num_constraints;
  }
}

Status IncrementalGrounder::Engine::GroundWindow(
    uint64_t sequence, const std::vector<Atom>& facts,
    const FactDelta* delta, GroundingStats* stats) {
  call_stats_ = GroundingStats{};
  if (!prepared_) STREAMASP_RETURN_IF_ERROR(Prepare());

  const size_t store_before = store_.size();
  bool full = !cache_valid_;
  if (!full) {
    // Memory bound: retraction tombstones extension slots and leaks the
    // retracted atoms' table entries; rebuild once they dominate.
    if (static_cast<double>(tombstoned_atoms_) >
        inc_.compact_garbage_fraction * static_cast<double>(atoms().size())) {
      full = true;
    }
  }
  NetDelta net;
  bool resynced = false;
  if (!full) {
    STREAMASP_RETURN_IF_ERROR(ComputeNetDelta(facts, delta, &net, &resynced));
    size_t magnitude = 0;
    for (const auto& [atom, change] : net) {
      magnitude += static_cast<size_t>(std::llabs(change));
    }
    if (static_cast<double>(magnitude) >
        inc_.fallback_delta_fraction *
            static_cast<double>(std::max<size_t>(facts.size(), 1))) {
      full = true;
    }
  }

  delta_ = GroundingDelta{};
  delta_.full_rebuild = full;
  delta_.resynced = !full && resynced;
  delta_.sequence = sequence;
  delta_.previous_sequence = cached_sequence_;
  delta_.store_size_before = store_before;

  Status status = OkStatus();
  if (full) {
    // A rebuild discards the cache wholesale; rules_retracted stays 0 —
    // it counts only instances removed by expired-fact retraction.
    call_stats_.incremental_fallbacks = 1;
    status = Rebuild(facts);
    delta_.new_rules_begin = 0;  // The whole store is this window's.
  } else {
    call_stats_.incremental_windows = 1;
    status = ApplyNetDelta(net);
    // Retraction and compaction are done; everything EvaluateWindow
    // appends from here on is the window's new-rule tail.
    delta_.new_rules_begin = store_.size();
    if (status.ok()) status = CheckWindowCounts(facts);
    if (status.ok()) status = EvaluateWindow();
  }
  if (!status.ok()) {
    cache_valid_ = false;  // Partially applied state is unusable.
    return status;
  }
  window_total_ = facts.size();
  call_stats_.rules_retained =
      full ? 0 : store_before - call_stats_.rules_retracted;
  if (inc_.assemble_output) {
    AssembleOutput();
  } else {
    // Delta consumers solve from the store directly; report raw store
    // sizes instead of the (never built) simplified output.
    call_stats_.num_rules_raw = store_.size() + window_total_;
    call_stats_.num_rules = call_stats_.num_rules_raw;
    call_stats_.num_atoms = atoms().size();
    call_stats_.num_facts = window_total_;
  }
  cache_valid_ = true;
  cached_sequence_ = sequence;
  call_stats_.atom_table_bytes = atoms().ApproxBytes();
  if (stats != nullptr) *stats = call_stats_;
  return OkStatus();
}

IncrementalGrounder::IncrementalGrounder(
    const Program* program, GroundingOptions options,
    IncrementalGroundingOptions incremental)
    : engine_(std::make_unique<Engine>(program, options, incremental)) {}

IncrementalGrounder::~IncrementalGrounder() = default;

StatusOr<const GroundProgram*> IncrementalGrounder::GroundWindow(
    uint64_t sequence, const std::vector<Atom>& facts,
    const FactDelta* delta, GroundingStats* stats) {
  STREAMASP_RETURN_IF_ERROR(
      engine_->GroundWindow(sequence, facts, delta, stats));
  cumulative_.Accumulate(engine_->call_stats());
  return &engine_->output();
}

void IncrementalGrounder::Invalidate() { engine_->Invalidate(); }

bool IncrementalGrounder::cache_valid() const {
  return engine_->cache_valid();
}

bool IncrementalGrounder::assembles_output() const {
  return engine_->assembles_output();
}

uint64_t IncrementalGrounder::cached_sequence() const {
  return engine_->cached_sequence();
}

const std::vector<GroundRule>& IncrementalGrounder::cached_rules() const {
  return engine_->store();
}

const AtomTable& IncrementalGrounder::atom_table() const {
  return engine_->atom_table();
}

const GroundingDelta& IncrementalGrounder::last_delta() const {
  return engine_->last_delta();
}

}  // namespace streamasp
