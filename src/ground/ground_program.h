#ifndef STREAMASP_GROUND_GROUND_PROGRAM_H_
#define STREAMASP_GROUND_GROUND_PROGRAM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "asp/atom.h"
#include "asp/packed_term.h"
#include "asp/symbol_table.h"

namespace streamasp {

/// Dense id of a ground atom within one grounding.
using GroundAtomId = uint32_t;

/// Sentinel for "no atom".
inline constexpr GroundAtomId kInvalidGroundAtom =
    static_cast<GroundAtomId>(-1);

/// Hashes an Atom by mixing its packed argument words instead of the deep
/// recursive Term hash: each argument folds to one tagged 64-bit word
/// (compound arguments to their canonical arena id), so the per-probe cost
/// is a handful of bit operations per argument regardless of term depth.
struct PackedAtomHash {
  size_t operator()(const Atom& a) const {
    uint64_t h = PackedBitsHash()(a.predicate());
    for (const Term& arg : a.args()) {
      h = HashCombine(h, PackedBitsHash()(PackedTerm(arg).bits()));
    }
    return h;
  }
};

/// Bidirectional map between ground Atoms and dense ids, used to give the
/// solver an integer-indexed view of the ground program. The table also
/// keeps a columnar packed-argument mirror (one tagged 64-bit word per
/// argument slot) so the grounder's match loops and join indexes can read
/// candidate arguments slot-wise without touching the Atom's Term vector.
class AtomTable {
 public:
  AtomTable() = default;

  AtomTable(const AtomTable&) = default;
  AtomTable& operator=(const AtomTable&) = default;
  AtomTable(AtomTable&&) noexcept = default;
  AtomTable& operator=(AtomTable&&) noexcept = default;

  /// Returns the id for `atom`, interning on first use (a single hash
  /// probe: try_emplace on both the hit and the miss path).
  GroundAtomId Intern(const Atom& atom);

  /// Returns the id for `atom` or kInvalidGroundAtom if never interned.
  GroundAtomId Lookup(const Atom& atom) const;

  /// The atom for an id. Requires a valid id.
  const Atom& GetAtom(GroundAtomId id) const;

  /// The packed argument words of an id, PackedArity(id) slots. Requires
  /// a valid id; the pointer is invalidated by the next Intern.
  const PackedTerm* PackedArgs(GroundAtomId id) const {
    return packed_args_.data() + arg_offsets_[id];
  }
  uint32_t PackedArity(GroundAtomId id) const {
    return arg_offsets_[id + 1] - arg_offsets_[id];
  }

  /// Pre-sizes the table for `atoms` entries (e.g. the previous window's
  /// atom count in the incremental engines).
  void Reserve(size_t atoms);

  /// Approximate retained bytes: atom payloads + packed mirror + index.
  size_t ApproxBytes() const;

  size_t size() const { return atoms_.size(); }

 private:
  std::unordered_map<Atom, GroundAtomId, PackedAtomHash> index_;
  std::vector<Atom> atoms_;
  /// Columnar packed mirror of every atom's arguments: atom id's slots
  /// are packed_args_[arg_offsets_[id] .. arg_offsets_[id + 1]).
  std::vector<uint32_t> arg_offsets_{0};
  std::vector<PackedTerm> packed_args_;
};

/// A variable-free rule over dense atom ids:
///
///   head[0] | ... | head[h-1]
///     :- positive_body..., not negative_body... .
///
/// head.empty() encodes an integrity constraint.
struct GroundRule {
  std::vector<GroundAtomId> head;
  std::vector<GroundAtomId> positive_body;
  std::vector<GroundAtomId> negative_body;

  bool is_fact() const {
    return head.size() == 1 && positive_body.empty() &&
           negative_body.empty();
  }
  bool is_constraint() const { return head.empty(); }

  friend bool operator==(const GroundRule& a, const GroundRule& b) {
    return a.head == b.head && a.positive_body == b.positive_body &&
           a.negative_body == b.negative_body;
  }
};

/// The window-to-window change of a persistent ground-rule store, as
/// published by IncrementalGrounder after every GroundWindow call and
/// consumed by IncrementalSolver to patch its search structures instead of
/// rebuilding them. Atom ids are stable across the windows a delta spans:
/// the producing grounder interns atoms into one persistent AtomTable, so
/// solver-side per-atom indices survive (only a full_rebuild resets them).
///
/// The store itself is a dense vector<GroundRule> kept compact by
/// swap-compaction; the delta therefore describes an exact replay recipe
/// rather than rule identities:
///   1. `retracted_slots` lists the killed slots in descending order —
///      the exact order the producer compacted them. A consumer mirroring
///      the store replays each step as "move the last rule into the hole
///      (if distinct), then shrink by one", which keeps its own indices
///      aligned with the producer's slot numbering.
///   2. rules [new_rules_begin, store.size()) were appended this window.
///   3. `fact_delta` is the net multiplicity change of the *window fact*
///      rules, which live outside the store (they change every window).
struct GroundingDelta {
  /// The cache was rebuilt from scratch (first window, oversized delta,
  /// compaction, prior error): slot numbering and atom ids both restart,
  /// so consumers must drop mirrored state and re-ingest the whole store.
  /// fact_delta then carries the full window multiset as additions.
  bool full_rebuild = true;

  /// The producer recovered this window by snapshot diff because the
  /// caller's delta hint could not be applied (chain gap after a
  /// kDropOldest eviction, or an inconsistent hint). The replay recipe is
  /// exact — slot numbering and atom ids are unaffected — but consumers
  /// that maintain state keyed on the *continuity* of the hint chain
  /// (e.g. IncrementalSolver's maintained fixpoint) reset it deliberately
  /// instead of relying on downstream desync detection. Always false on a
  /// full_rebuild and for hint-less callers (who diff every window by
  /// design).
  bool resynced = false;

  /// Sequence number of the window this delta produced.
  uint64_t sequence = 0;

  /// Sequence number of the cached window this delta transitions FROM
  /// (meaningful iff !full_rebuild). Lets a mirroring consumer verify
  /// the exactly-once-in-order application chain even when the rule
  /// delta happens to be empty.
  uint64_t previous_sequence = 0;

  /// Store size before retraction, for consumer-side sync validation.
  size_t store_size_before = 0;

  /// Killed store slots in descending (compaction-replay) order.
  std::vector<uint32_t> retracted_slots;

  /// First store index of this window's newly instantiated rules.
  size_t new_rules_begin = 0;

  /// Net change per window-fact atom: positive counts admit copies of the
  /// fact rule {id.}, negative counts expire them.
  std::vector<std::pair<GroundAtomId, int64_t>> fact_delta;
};

/// The output of grounding: a propositional (variable-free) program, its
/// atom table, and bookkeeping used by the solver and by tests.
class GroundProgram {
 public:
  GroundProgram() = default;

  GroundProgram(AtomTable atoms, std::vector<GroundRule> rules)
      : atoms_(std::move(atoms)), rules_(std::move(rules)) {}

  GroundProgram(const GroundProgram&) = default;
  GroundProgram& operator=(const GroundProgram&) = default;
  GroundProgram(GroundProgram&&) noexcept = default;
  GroundProgram& operator=(GroundProgram&&) noexcept = default;

  const AtomTable& atoms() const { return atoms_; }
  AtomTable& mutable_atoms() { return atoms_; }

  const std::vector<GroundRule>& rules() const { return rules_; }
  std::vector<GroundRule>& mutable_rules() { return rules_; }

  void AddRule(GroundRule rule) { rules_.push_back(std::move(rule)); }

  /// Number of interned ground atoms (ids are 0..num_atoms()-1).
  size_t num_atoms() const { return atoms_.size(); }

  /// Renders the ground program in ASP syntax, one rule per line.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  AtomTable atoms_;
  std::vector<GroundRule> rules_;
};

}  // namespace streamasp

#endif  // STREAMASP_GROUND_GROUND_PROGRAM_H_
