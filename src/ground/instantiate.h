#ifndef STREAMASP_GROUND_INSTANTIATE_H_
#define STREAMASP_GROUND_INSTANTIATE_H_

/// Shared machinery of the bottom-up instantiators: variable bindings with
/// trail-based undo, term matching/substitution, comparison resolution,
/// the compiled-rule representation, per-predicate extensions with lazy
/// join indexes, and the equivalence-preserving ground-program
/// simplification. Used by both the batch Grounder (ground/grounder.cc)
/// and the window-to-window IncrementalGrounder
/// (ground/incremental_grounder.cc), which differ only in how they drive
/// these primitives (one-shot semi-naive vs delta-replay over a retained
/// extension cache).

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asp/atom.h"
#include "asp/literal.h"
#include "asp/term.h"
#include "ground/ground_program.h"

namespace streamasp {
namespace ground_internal {

/// Variable binding with trail-based undo. Rules have few variables, so a
/// linear-scanned vector beats a hash map.
class Binding {
 public:
  const Term* Get(SymbolId var) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->first == var) return &it->second;
    }
    return nullptr;
  }

  void Push(SymbolId var, const Term& value) {
    entries_.emplace_back(var, value);
  }

  size_t Mark() const { return entries_.size(); }
  void RewindTo(size_t mark) { entries_.resize(mark); }

  bool IsBound(SymbolId var) const { return Get(var) != nullptr; }

 private:
  std::vector<std::pair<SymbolId, Term>> entries_;
};

/// Unifies a (possibly variable-containing) pattern with a ground term,
/// extending `binding`. On mismatch the caller rewinds using its mark.
bool MatchTerm(const Term& pattern, const Term& ground, Binding* binding);

/// Applies `binding` to a term. Unbound variables are left in place (the
/// result is ground iff all variables are bound).
Term SubstituteTerm(const Term& term, const Binding& binding);

/// True iff the (ground) term still contains an arithmetic node, i.e. the
/// expression could not be folded to an integer: symbolic operands or
/// division/modulo by zero. Such instances are undefined and skipped,
/// matching Clingo's treatment of undefined arithmetic.
bool ContainsUnfoldedArithmetic(const Term& term);
bool ContainsUnfoldedArithmetic(const Atom& atom);

Atom SubstituteAtom(const Atom& atom, const Binding& binding);

/// Lazily built hash index over one argument position of an extension.
struct PositionIndex {
  std::unordered_map<Term, std::vector<uint32_t>, TermHash> map;
  size_t indexed_until = 0;  // Extension prefix already indexed.
};

/// All derived ("possible") ground atoms of one predicate, in derivation
/// order, plus semi-naive window bounds and join indexes. Entries may be
/// tombstoned (kInvalidGroundAtom) by the incremental engine when an atom
/// is retracted; scans and index buckets skip tombstones.
struct PredicateExtension {
  std::vector<GroundAtomId> atoms;
  // Semi-naive bounds, only meaningful while this predicate's component is
  // being instantiated:
  //   old   = [0, delta_begin)
  //   delta = [delta_begin, delta_end)
  size_t delta_begin = 0;
  size_t delta_end = 0;
  // Extension size at the start of the current window (incremental engine
  // only): [window_start, atoms.size()) is the window's admission delta.
  size_t window_start = 0;
  std::vector<PositionIndex> indexes;  // Sized to arity on first use.
};

/// A rule preprocessed for instantiation.
struct CompiledRule {
  std::vector<Atom> heads;
  std::vector<int> head_preds;
  std::vector<Atom> positive;         // Positive body atoms, body order.
  std::vector<int> positive_preds;
  std::vector<Literal> comparisons;
  std::vector<std::vector<SymbolId>> comparison_vars;
  std::vector<Atom> negatives;
  std::vector<int> negative_preds;
  int component = 0;
  bool recursive = false;
  std::vector<size_t> same_component_positions;  // Indices into `positive`.
};

/// Attempts to resolve pending comparison literals under `binding`.
/// Comparisons whose two sides become ground are evaluated (undefined
/// arithmetic counts as false); `Var = expr` assignments whose other side
/// is ground bind the variable. Loops until no progress. Indexes of newly
/// resolved comparisons are appended to *newly_done so callers can unmark
/// them on backtracking (bindings themselves are rewound via the binding
/// mark). Returns false when a comparison is violated or an assignment
/// clashes with an existing binding.
bool ResolveComparisons(const CompiledRule& rule, Binding* binding,
                        std::vector<bool>* comparison_done,
                        std::vector<size_t>* newly_done);

/// Equivalence-preserving simplification of a ground program, in place:
/// negative literals on underivable atoms are erased, definite facts are
/// propagated out of positive bodies, and rules satisfied outright (a
/// definitely-true head or negative-body atom) are dropped. `derivable`
/// marks atoms some rule (or fact) can derive; it may over-approximate
/// (extra true bits weaken the pass but never change the stable models).
/// Stable models are preserved exactly. `num_atoms` bounds the atom ids
/// appearing in `rules`.
void SimplifyGroundRules(size_t num_atoms, const std::vector<bool>& derivable,
                         std::vector<GroundRule>* rules);

}  // namespace ground_internal
}  // namespace streamasp

#endif  // STREAMASP_GROUND_INSTANTIATE_H_
