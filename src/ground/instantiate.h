#ifndef STREAMASP_GROUND_INSTANTIATE_H_
#define STREAMASP_GROUND_INSTANTIATE_H_

/// Shared machinery of the bottom-up instantiators: variable bindings with
/// trail-based undo, term matching/substitution, comparison resolution,
/// the compiled-rule representation, per-predicate extensions with lazy
/// join indexes, and the equivalence-preserving ground-program
/// simplification. Used by both the batch Grounder (ground/grounder.cc)
/// and the window-to-window IncrementalGrounder
/// (ground/incremental_grounder.cc), which differ only in how they drive
/// these primitives (one-shot semi-naive vs delta-replay over a retained
/// extension cache).

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asp/atom.h"
#include "asp/literal.h"
#include "asp/packed_term.h"
#include "asp/term.h"
#include "ground/ground_program.h"

namespace streamasp {
namespace ground_internal {

/// Variable binding with trail-based undo. Rules have few variables, so a
/// linear-scanned vector beats a hash map. Each entry carries the bound
/// value twice: as a Term (for substitution) and as its packed word (so
/// the slot-wise match loop compares one 64-bit word per already-bound
/// variable instead of a deep Term comparison).
class Binding {
 public:
  struct Entry {
    SymbolId var;
    Term term;
    PackedTerm packed;
  };

  const Term* Get(SymbolId var) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->var == var) return &it->term;
    }
    return nullptr;
  }

  /// Packed value of `var`, or the none word when unbound (bound values
  /// are never none, so none doubles as the not-found sentinel).
  PackedTerm GetPacked(SymbolId var) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->var == var) return it->packed;
    }
    return PackedTerm();
  }

  void Push(SymbolId var, const Term& value) {
    entries_.push_back(Entry{var, value, PackedTerm(value)});
  }

  /// Pushes a value already in packed form (the slot-wise match path);
  /// the Term twin is materialized from the packed word.
  void Push(SymbolId var, PackedTerm value) {
    entries_.push_back(Entry{var, value.ToTerm(), value});
  }

  size_t Mark() const { return entries_.size(); }
  void RewindTo(size_t mark) { entries_.resize(mark); }

  bool IsBound(SymbolId var) const { return Get(var) != nullptr; }

 private:
  std::vector<Entry> entries_;
};

/// Unifies a (possibly variable-containing) pattern with a ground term,
/// extending `binding`. On mismatch the caller rewinds using its mark.
bool MatchTerm(const Term& pattern, const Term& ground, Binding* binding);

/// Slot-wise variant over a packed candidate argument, the grounders'
/// match-loop fast path: inline pattern kinds and already-bound variables
/// compare as single words; only compound patterns (or compound ground
/// values on the arena escape path) fall back to the recursive MatchTerm.
bool MatchPackedTerm(const Term& pattern, PackedTerm ground,
                     Binding* binding);

/// Applies `binding` to a term. Unbound variables are left in place (the
/// result is ground iff all variables are bound).
Term SubstituteTerm(const Term& term, const Binding& binding);

/// True iff the (ground) term still contains an arithmetic node, i.e. the
/// expression could not be folded to an integer: symbolic operands or
/// division/modulo by zero. Such instances are undefined and skipped,
/// matching Clingo's treatment of undefined arithmetic.
bool ContainsUnfoldedArithmetic(const Term& term);
bool ContainsUnfoldedArithmetic(const Atom& atom);

Atom SubstituteAtom(const Atom& atom, const Binding& binding);

/// Substitution fast path shared by both grounders' EmitInstance tails:
/// when `pattern_ground` (the precomputed Atom::IsGround() of the
/// pattern, cached in CompiledRule) the atom is returned as-is with no
/// per-argument work, and otherwise variable and constant arguments are
/// resolved directly — the generic recursive SubstituteTerm runs only for
/// compound/arithmetic arguments.
Atom SubstituteAtomFast(const Atom& atom, bool pattern_ground,
                        const Binding& binding);

/// Lazily built hash index over one argument position of an extension,
/// keyed by the argument's packed 64-bit word (deep Term hashing only
/// happens once per distinct compound value, inside arena interning).
struct PositionIndex {
  std::unordered_map<uint64_t, std::vector<uint32_t>, PackedBitsHash> map;
  size_t indexed_until = 0;  // Extension prefix already indexed.
};

/// All derived ("possible") ground atoms of one predicate, in derivation
/// order, plus semi-naive window bounds and join indexes. Entries may be
/// tombstoned (kInvalidGroundAtom) by the incremental engine when an atom
/// is retracted; scans and index buckets skip tombstones.
struct PredicateExtension {
  std::vector<GroundAtomId> atoms;
  // Semi-naive bounds, only meaningful while this predicate's component is
  // being instantiated:
  //   old   = [0, delta_begin)
  //   delta = [delta_begin, delta_end)
  size_t delta_begin = 0;
  size_t delta_end = 0;
  // Extension size at the start of the current window (incremental engine
  // only): [window_start, atoms.size()) is the window's admission delta.
  size_t window_start = 0;
  std::vector<PositionIndex> indexes;  // Sized to arity on first use.
};

/// A rule preprocessed for instantiation.
struct CompiledRule {
  std::vector<Atom> heads;
  std::vector<int> head_preds;
  std::vector<Atom> positive;         // Positive body atoms, body order.
  std::vector<int> positive_preds;
  std::vector<Literal> comparisons;
  std::vector<std::vector<SymbolId>> comparison_vars;
  std::vector<Atom> negatives;
  std::vector<int> negative_preds;
  int component = 0;
  bool recursive = false;
  std::vector<size_t> same_component_positions;  // Indices into `positive`.
  // Precomputed Atom::IsGround() per head/negative pattern, so
  // SubstituteAtomFast can short-circuit without walking the args.
  std::vector<bool> heads_ground;
  std::vector<bool> negatives_ground;
};

/// Fills the precomputed per-pattern groundness flags; call once after a
/// CompiledRule's heads/negatives are final (both engines' CompileRules).
void PrecomputeGroundFlags(CompiledRule* rule);

/// Attempts to resolve pending comparison literals under `binding`.
/// Comparisons whose two sides become ground are evaluated (undefined
/// arithmetic counts as false); `Var = expr` assignments whose other side
/// is ground bind the variable. Loops until no progress. Indexes of newly
/// resolved comparisons are appended to *newly_done so callers can unmark
/// them on backtracking (bindings themselves are rewound via the binding
/// mark). Returns false when a comparison is violated or an assignment
/// clashes with an existing binding.
bool ResolveComparisons(const CompiledRule& rule, Binding* binding,
                        std::vector<bool>* comparison_done,
                        std::vector<size_t>* newly_done);

/// Equivalence-preserving simplification of a ground program, in place:
/// negative literals on underivable atoms are erased, definite facts are
/// propagated out of positive bodies, and rules satisfied outright (a
/// definitely-true head or negative-body atom) are dropped. `derivable`
/// marks atoms some rule (or fact) can derive; it may over-approximate
/// (extra true bits weaken the pass but never change the stable models).
/// Stable models are preserved exactly. `num_atoms` bounds the atom ids
/// appearing in `rules`.
void SimplifyGroundRules(size_t num_atoms, const std::vector<bool>& derivable,
                         std::vector<GroundRule>* rules);

}  // namespace ground_internal
}  // namespace streamasp

#endif  // STREAMASP_GROUND_INSTANTIATE_H_
