#include "ground/grounder.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asp/literal.h"
#include "graph/components.h"
#include "graph/graph.h"
#include "ground/instantiate.h"

namespace streamasp {

namespace {

using ground_internal::Binding;
using ground_internal::CompiledRule;
using ground_internal::ContainsUnfoldedArithmetic;
using ground_internal::MatchPackedTerm;
using ground_internal::MatchTerm;
using ground_internal::PrecomputeGroundFlags;
using ground_internal::PredicateExtension;
using ground_internal::ResolveComparisons;
using ground_internal::SubstituteAtomFast;
using ground_internal::SubstituteTerm;

class InstantiationEngine {
 public:
  InstantiationEngine(const Program& program,
                      const std::vector<Atom>& input_facts,
                      const GroundingOptions& options)
      : program_(program), input_facts_(input_facts), options_(options) {}

  Status Run();

  GroundProgram TakeResult() {
    return GroundProgram(std::move(atoms_), std::move(rules_));
  }

  GroundingStats stats;

 private:
  int PredIndex(const PredicateSignature& sig) {
    auto it = pred_index_.find(sig);
    if (it != pred_index_.end()) return it->second;
    const int index = static_cast<int>(pred_signatures_.size());
    pred_index_.emplace(sig, index);
    pred_signatures_.push_back(sig);
    return index;
  }

  /// Interns an atom; if newly derivable, appends it to its predicate's
  /// extension.
  GroundAtomId AddDerivedAtom(const Atom& atom) {
    const GroundAtomId id = atoms_.Intern(atom);
    if (id >= derivable_.size()) derivable_.resize(id + 1, false);
    if (!derivable_[id]) {
      derivable_[id] = true;
      const int pred = PredIndex(atom.signature());
      if (static_cast<size_t>(pred) >= extensions_.size()) {
        extensions_.resize(pred + 1);
      }
      extensions_[pred].atoms.push_back(id);
    }
    return id;
  }

  /// Interns an atom without marking it derivable (negative-body use).
  GroundAtomId InternOnly(const Atom& atom) {
    const GroundAtomId id = atoms_.Intern(atom);
    if (id >= derivable_.size()) derivable_.resize(id + 1, false);
    return id;
  }

  Status EmitGroundRule(GroundRule rule) {
    if (rules_.size() >= options_.max_ground_rules) {
      return ResourceExhaustedError(
          "ground rule limit exceeded (" +
          std::to_string(options_.max_ground_rules) +
          "); the program may not be finitely groundable");
    }
    rules_.push_back(std::move(rule));
    return OkStatus();
  }

  Status SeedFacts();
  Status CompileRules(const ComponentAssignment& components);
  Status BuildDependencies();
  Status InstantiateComponent(int component);
  Status EvaluateRule(CompiledRule* rule, int current_component,
                      int delta_position);
  Status MatchFrom(CompiledRule* rule, size_t literal_index,
                   int current_component, int delta_position,
                   Binding* binding, std::vector<GroundAtomId>* matched,
                   std::vector<bool>* comparison_done);
  Status EmitInstance(CompiledRule* rule, int current_component,
                      const Binding& binding,
                      const std::vector<GroundAtomId>& matched);

  /// Computes the visible index range of `rule`'s positive literal
  /// `position` for the current round.
  std::pair<size_t, size_t> LiteralRange(const CompiledRule& rule,
                                         size_t position,
                                         int current_component,
                                         int delta_position) const;

  const Program& program_;
  const std::vector<Atom>& input_facts_;
  const GroundingOptions& options_;

  std::unordered_map<PredicateSignature, int, PredicateSignatureHash>
      pred_index_;
  std::vector<PredicateSignature> pred_signatures_;
  std::vector<int> pred_component_;
  std::vector<PredicateExtension> extensions_;

  AtomTable atoms_;
  std::vector<bool> derivable_;
  std::vector<GroundRule> rules_;

  std::vector<CompiledRule> compiled_;
  std::vector<std::vector<CompiledRule*>> component_rules_;
  std::vector<CompiledRule*> constraints_;
  int num_components_ = 0;
};

Status InstantiationEngine::BuildDependencies() {
  // Register every predicate so indexes are stable.
  for (const Rule& rule : program_.rules()) {
    for (const Atom& a : rule.head()) PredIndex(a.signature());
    for (const Literal& l : rule.body()) {
      if (l.is_atom()) PredIndex(l.atom().signature());
    }
  }
  for (const Atom& fact : input_facts_) PredIndex(fact.signature());

  Digraph dependencies(static_cast<NodeId>(pred_signatures_.size()));
  for (const Rule& rule : program_.rules()) {
    for (const Atom& head : rule.head()) {
      const int head_pred = PredIndex(head.signature());
      for (const Literal& l : rule.body()) {
        if (!l.is_atom()) continue;
        dependencies.AddEdge(
            static_cast<NodeId>(PredIndex(l.atom().signature())),
            static_cast<NodeId>(head_pred));
      }
    }
    // Disjunctive head predicates must be instantiated together: a rule
    // deriving one of them can retroactively feed rules over another.
    for (size_t i = 0; i + 1 < rule.head().size(); ++i) {
      for (size_t j = i + 1; j < rule.head().size(); ++j) {
        const NodeId a =
            static_cast<NodeId>(PredIndex(rule.head()[i].signature()));
        const NodeId b =
            static_cast<NodeId>(PredIndex(rule.head()[j].signature()));
        dependencies.AddEdge(a, b);
        dependencies.AddEdge(b, a);
      }
    }
  }

  const ComponentAssignment components =
      StronglyConnectedComponents(dependencies);
  num_components_ = components.num_components;
  pred_component_ = components.component_of;
  extensions_.resize(pred_signatures_.size());
  return CompileRules(components);
}

Status InstantiationEngine::CompileRules(const ComponentAssignment&) {
  component_rules_.assign(num_components_, {});
  compiled_.reserve(program_.rules().size());
  for (const Rule& rule : program_.rules()) {
    if (rule.body().empty()) continue;  // Facts are seeded separately.
    CompiledRule cr;
    for (const Atom& head : rule.head()) {
      cr.heads.push_back(head);
      cr.head_preds.push_back(PredIndex(head.signature()));
    }
    for (const Literal& l : rule.body()) {
      switch (l.kind()) {
        case Literal::Kind::kPositiveAtom:
          cr.positive.push_back(l.atom());
          cr.positive_preds.push_back(PredIndex(l.atom().signature()));
          break;
        case Literal::Kind::kNegativeAtom:
          cr.negatives.push_back(l.atom());
          cr.negative_preds.push_back(PredIndex(l.atom().signature()));
          break;
        case Literal::Kind::kComparison: {
          cr.comparisons.push_back(l);
          std::vector<SymbolId> vars;
          l.CollectVariables(&vars);
          std::sort(vars.begin(), vars.end());
          vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
          cr.comparison_vars.push_back(std::move(vars));
          break;
        }
      }
    }
    PrecomputeGroundFlags(&cr);
    if (cr.heads.empty()) {
      // Constraints run after all components are fully instantiated.
      cr.component = num_components_;
      compiled_.push_back(std::move(cr));
      continue;
    }
    // All head predicates share a component (mutual edges); schedule the
    // rule there.
    cr.component = pred_component_[cr.head_preds.front()];
    for (size_t i = 0; i < cr.positive.size(); ++i) {
      if (pred_component_[cr.positive_preds[i]] == cr.component) {
        cr.recursive = true;
        cr.same_component_positions.push_back(i);
      }
    }
    compiled_.push_back(std::move(cr));
  }
  // Pointers into compiled_ are stable from here on.
  for (CompiledRule& cr : compiled_) {
    if (cr.heads.empty()) {
      constraints_.push_back(&cr);
    } else {
      component_rules_[cr.component].push_back(&cr);
    }
  }
  return OkStatus();
}

Status InstantiationEngine::SeedFacts() {
  for (const Rule& rule : program_.rules()) {
    if (!rule.body().empty()) continue;
    GroundRule ground;
    for (const Atom& head : rule.head()) {
      if (!head.IsGround()) {
        return InvalidArgumentError(
            "non-ground fact: " + rule.ToString(program_.symbol_table()));
      }
      ground.head.push_back(AddDerivedAtom(head));
    }
    STREAMASP_RETURN_IF_ERROR(EmitGroundRule(std::move(ground)));
  }
  for (const Atom& fact : input_facts_) {
    if (!fact.IsGround()) {
      return InvalidArgumentError("non-ground input fact: " +
                                  fact.ToString(program_.symbol_table()));
    }
    GroundRule ground;
    ground.head.push_back(AddDerivedAtom(fact));
    STREAMASP_RETURN_IF_ERROR(EmitGroundRule(std::move(ground)));
  }
  return OkStatus();
}

std::pair<size_t, size_t> InstantiationEngine::LiteralRange(
    const CompiledRule& rule, size_t position, int current_component,
    int delta_position) const {
  const PredicateExtension& ext = extensions_[rule.positive_preds[position]];
  const bool same_component =
      pred_component_[rule.positive_preds[position]] == current_component &&
      current_component < num_components_;
  if (!same_component) {
    return {0, ext.atoms.size()};
  }
  // Semi-naive decomposition: literals before the delta position see the
  // old window, the delta position sees only the delta, later ones see
  // old+delta. delta_position < 0 (non-recursive evaluation) sees
  // everything visible this round.
  if (delta_position < 0) {
    return {0, ext.delta_end};
  }
  if (position < static_cast<size_t>(delta_position)) {
    return {0, ext.delta_begin};
  }
  if (position == static_cast<size_t>(delta_position)) {
    return {ext.delta_begin, ext.delta_end};
  }
  return {0, ext.delta_end};
}

Status InstantiationEngine::MatchFrom(
    CompiledRule* rule, size_t literal_index, int current_component,
    int delta_position, Binding* binding,
    std::vector<GroundAtomId>* matched,
    std::vector<bool>* comparison_done) {
  if (literal_index == rule->positive.size()) {
    return EmitInstance(rule, current_component, *binding, *matched);
  }

  const Atom& pattern = rule->positive[literal_index];
  const int pred = rule->positive_preds[literal_index];
  PredicateExtension& ext = extensions_[pred];
  const auto [range_begin, range_end] =
      LiteralRange(*rule, literal_index, current_component, delta_position);
  if (range_begin >= range_end) return OkStatus();

  // Pick an argument position that is ground under the current binding to
  // drive an index lookup; fall back to a scan.
  int index_position = -1;
  PackedTerm index_key;
  for (size_t p = 0; p < pattern.args().size(); ++p) {
    Term substituted = SubstituteTerm(pattern.args()[p], *binding);
    if (substituted.IsGround()) {
      index_position = static_cast<int>(p);
      index_key = PackedTerm(substituted);
      break;
    }
  }

  // The candidate list: either an index bucket or the full range. Buckets
  // are keyed by the argument's packed word, read off the atom table's
  // columnar mirror — no Term hashing on the probe or build path.
  const std::vector<uint32_t>* bucket = nullptr;
  if (index_position >= 0) {
    if (ext.indexes.empty()) ext.indexes.resize(pattern.args().size());
    ground_internal::PositionIndex& index = ext.indexes[index_position];
    // Extend the index to cover the whole extension (cheap, amortized).
    while (index.indexed_until < ext.atoms.size()) {
      const uint32_t i = static_cast<uint32_t>(index.indexed_until++);
      index.map[atoms_.PackedArgs(ext.atoms[i])[index_position].bits()]
          .push_back(i);
    }
    auto it = index.map.find(index_key.bits());
    if (it == index.map.end()) return OkStatus();
    bucket = &it->second;
  }

  auto try_candidate = [&](size_t extension_index) -> Status {
    const GroundAtomId id = ext.atoms[extension_index];
    const PackedTerm* candidate_args = atoms_.PackedArgs(id);
    const size_t mark = binding->Mark();
    bool matches = atoms_.PackedArity(id) == pattern.args().size();
    for (size_t p = 0; matches && p < pattern.args().size(); ++p) {
      matches = MatchPackedTerm(pattern.args()[p], candidate_args[p], binding);
    }
    if (matches) {
      // Resolve comparisons/assignments that just became ground; prune on
      // failure. Assignment bindings land on the same trail and are
      // rewound with the candidate's mark.
      std::vector<size_t> newly_done;
      const bool comparisons_hold =
          ResolveComparisons(*rule, binding, comparison_done, &newly_done);
      if (comparisons_hold) {
        (*matched)[literal_index] = id;
        STREAMASP_RETURN_IF_ERROR(
            MatchFrom(rule, literal_index + 1, current_component,
                      delta_position, binding, matched, comparison_done));
      }
      for (size_t c : newly_done) (*comparison_done)[c] = false;
    }
    binding->RewindTo(mark);
    return OkStatus();
  };

  if (bucket != nullptr) {
    // Iterate by index over a size snapshot: a later literal of the same
    // predicate can lazily extend this very index while we are suspended
    // in the recursion, reallocating the bucket under a range-for (the
    // map's value reference itself survives rehashing). Entries appended
    // mid-iteration lie beyond range_end and are skipped regardless.
    const size_t bucket_size = bucket->size();
    for (size_t b = 0; b < bucket_size; ++b) {
      const uint32_t i = (*bucket)[b];
      if (i < range_begin || i >= range_end) continue;
      STREAMASP_RETURN_IF_ERROR(try_candidate(i));
    }
  } else {
    for (size_t i = range_begin; i < range_end; ++i) {
      STREAMASP_RETURN_IF_ERROR(try_candidate(i));
    }
  }
  return OkStatus();
}

Status InstantiationEngine::EmitInstance(
    CompiledRule* rule, int current_component, const Binding& binding,
    const std::vector<GroundAtomId>& matched) {
  GroundRule ground;
  ground.positive_body.assign(matched.begin(), matched.end());

  for (size_t i = 0; i < rule->negatives.size(); ++i) {
    const Atom instance = SubstituteAtomFast(rule->negatives[i],
                                             rule->negatives_ground[i], binding);
    assert(instance.IsGround() && "safety guarantees ground negatives");
    if (ContainsUnfoldedArithmetic(instance)) {
      return OkStatus();  // Undefined arithmetic: skip the instance.
    }
    const int pred = rule->negative_preds[i];
    const bool fully_evaluated =
        pred_component_[pred] < current_component;
    if (fully_evaluated) {
      // The predicate's extension is final: an underivable atom can never
      // become true, so `not atom` is certainly satisfied — drop it.
      const GroundAtomId existing = atoms_.Lookup(instance);
      if (existing == kInvalidGroundAtom || !derivable_[existing]) {
        continue;
      }
      ground.negative_body.push_back(existing);
    } else {
      ground.negative_body.push_back(InternOnly(instance));
    }
  }

  for (size_t i = 0; i < rule->heads.size(); ++i) {
    const Atom instance =
        SubstituteAtomFast(rule->heads[i], rule->heads_ground[i], binding);
    assert(instance.IsGround() && "safety guarantees ground heads");
    if (ContainsUnfoldedArithmetic(instance)) {
      return OkStatus();  // Undefined arithmetic: skip the instance.
    }
    ground.head.push_back(AddDerivedAtom(instance));
  }
  return EmitGroundRule(std::move(ground));
}

Status InstantiationEngine::EvaluateRule(CompiledRule* rule,
                                         int current_component,
                                         int delta_position) {
  Binding binding;
  std::vector<GroundAtomId> matched(rule->positive.size(),
                                    kInvalidGroundAtom);
  std::vector<bool> comparison_done(rule->comparisons.size(), false);
  // Variable-free comparisons and seed assignments (X = 3 + 4) decide or
  // pre-bind before any literal is matched.
  std::vector<size_t> upfront_done;
  if (!ResolveComparisons(*rule, &binding, &comparison_done,
                          &upfront_done)) {
    return OkStatus();  // The rule can never fire.
  }
  return MatchFrom(rule, 0, current_component, delta_position, &binding,
                   &matched, &comparison_done);
}

Status InstantiationEngine::InstantiateComponent(int component) {
  const std::vector<CompiledRule*>& rules = component_rules_[component];
  if (rules.empty()) return OkStatus();

  // Same-component predicates: snapshot the current extension as the first
  // delta window (everything derived so far is "new" for this component).
  std::vector<int> component_preds;
  for (size_t p = 0; p < pred_signatures_.size(); ++p) {
    if (pred_component_[p] == component) {
      component_preds.push_back(static_cast<int>(p));
      extensions_[p].delta_begin = 0;
      extensions_[p].delta_end = extensions_[p].atoms.size();
    }
  }

  // Non-recursive rules fire exactly once: their positive bodies only read
  // fully evaluated predicates.
  for (CompiledRule* rule : rules) {
    if (!rule->recursive) {
      STREAMASP_RETURN_IF_ERROR(EvaluateRule(rule, component, -1));
    }
  }
  // Refresh the delta to include atoms the non-recursive rules derived.
  for (int p : component_preds) {
    extensions_[p].delta_end = extensions_[p].atoms.size();
  }

  // Semi-naive fixpoint for recursive rules.
  for (;;) {
    bool any_delta = false;
    for (int p : component_preds) {
      if (extensions_[p].delta_begin < extensions_[p].delta_end) {
        any_delta = true;
        break;
      }
    }
    if (!any_delta) break;

    for (CompiledRule* rule : rules) {
      if (!rule->recursive) continue;
      for (size_t j : rule->same_component_positions) {
        STREAMASP_RETURN_IF_ERROR(
            EvaluateRule(rule, component, static_cast<int>(j)));
      }
    }

    // Advance windows: this round's derivations become the next delta.
    for (int p : component_preds) {
      extensions_[p].delta_begin = extensions_[p].delta_end;
      extensions_[p].delta_end = extensions_[p].atoms.size();
    }
  }
  return OkStatus();
}

Status InstantiationEngine::Run() {
  STREAMASP_RETURN_IF_ERROR(program_.Validate());
  STREAMASP_RETURN_IF_ERROR(BuildDependencies());
  STREAMASP_RETURN_IF_ERROR(SeedFacts());
  for (int c = 0; c < num_components_; ++c) {
    STREAMASP_RETURN_IF_ERROR(InstantiateComponent(c));
  }
  // Constraints see the final extensions of every predicate.
  for (CompiledRule* constraint : constraints_) {
    STREAMASP_RETURN_IF_ERROR(
        EvaluateRule(constraint, num_components_, -1));
  }

  stats.num_rules_raw = rules_.size();
  if (options_.simplify) {
    if (derivable_.size() < atoms_.size()) {
      derivable_.resize(atoms_.size(), false);
    }
    ground_internal::SimplifyGroundRules(atoms_.size(), derivable_, &rules_);
  }
  stats.num_rules = rules_.size();
  stats.num_atoms = atoms_.size();
  stats.atom_table_bytes = atoms_.ApproxBytes();
  for (const GroundRule& rule : rules_) {
    if (rule.is_fact()) ++stats.num_facts;
    if (rule.is_constraint()) ++stats.num_constraints;
  }
  return OkStatus();
}

}  // namespace

StatusOr<GroundProgram> Grounder::Ground(const Program& program,
                                         GroundingStats* stats) const {
  return Ground(program, {}, stats);
}

StatusOr<GroundProgram> Grounder::Ground(const Program& program,
                                         const std::vector<Atom>& input_facts,
                                         GroundingStats* stats) const {
  InstantiationEngine engine(program, input_facts, options_);
  STREAMASP_RETURN_IF_ERROR(engine.Run());
  if (stats != nullptr) *stats = engine.stats;
  return engine.TakeResult();
}

}  // namespace streamasp
