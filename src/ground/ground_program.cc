#include "ground/ground_program.h"

#include <cassert>

namespace streamasp {

GroundAtomId AtomTable::Intern(const Atom& atom) {
  auto it = index_.find(atom);
  if (it != index_.end()) return it->second;
  const GroundAtomId id = static_cast<GroundAtomId>(atoms_.size());
  atoms_.push_back(atom);
  index_.emplace(atom, id);
  return id;
}

GroundAtomId AtomTable::Lookup(const Atom& atom) const {
  auto it = index_.find(atom);
  return it == index_.end() ? kInvalidGroundAtom : it->second;
}

const Atom& AtomTable::GetAtom(GroundAtomId id) const {
  assert(id < atoms_.size());
  return atoms_[id];
}

std::string GroundProgram::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (const GroundRule& rule : rules_) {
    for (size_t i = 0; i < rule.head.size(); ++i) {
      if (i > 0) out += " | ";
      out += atoms_.GetAtom(rule.head[i]).ToString(symbols);
    }
    const bool has_body =
        !rule.positive_body.empty() || !rule.negative_body.empty();
    if (has_body || rule.head.empty()) {
      if (!rule.head.empty()) out += " ";
      out += ":- ";
      bool first = true;
      for (GroundAtomId id : rule.positive_body) {
        if (!first) out += ", ";
        first = false;
        out += atoms_.GetAtom(id).ToString(symbols);
      }
      for (GroundAtomId id : rule.negative_body) {
        if (!first) out += ", ";
        first = false;
        out += "not " + atoms_.GetAtom(id).ToString(symbols);
      }
    }
    out += ".\n";
  }
  return out;
}

}  // namespace streamasp
