#include "ground/ground_program.h"

#include <cassert>

namespace streamasp {

GroundAtomId AtomTable::Intern(const Atom& atom) {
  const GroundAtomId next = static_cast<GroundAtomId>(atoms_.size());
  auto [it, inserted] = index_.try_emplace(atom, next);
  if (inserted) {
    atoms_.push_back(atom);
    for (const Term& arg : atom.args()) {
      packed_args_.push_back(PackedTerm(arg));
    }
    arg_offsets_.push_back(static_cast<uint32_t>(packed_args_.size()));
  }
  return it->second;
}

void AtomTable::Reserve(size_t atoms) {
  index_.reserve(atoms);
  atoms_.reserve(atoms);
  arg_offsets_.reserve(atoms + 1);
  packed_args_.reserve(atoms * 2);  // Stream predicates are arity <= 2.
}

size_t AtomTable::ApproxBytes() const {
  size_t bytes = atoms_.capacity() * sizeof(Atom) +
                 arg_offsets_.capacity() * sizeof(uint32_t) +
                 packed_args_.capacity() * sizeof(PackedTerm);
  for (const Atom& atom : atoms_) {
    // Term arguments live out-of-line in the Atom's vector; one index
    // entry (key copy + id + bucket link) per atom.
    bytes += atom.args().capacity() * sizeof(Term) + sizeof(Atom) +
             sizeof(GroundAtomId) + 2 * sizeof(void*);
  }
  return bytes;
}

GroundAtomId AtomTable::Lookup(const Atom& atom) const {
  auto it = index_.find(atom);
  return it == index_.end() ? kInvalidGroundAtom : it->second;
}

const Atom& AtomTable::GetAtom(GroundAtomId id) const {
  assert(id < atoms_.size());
  return atoms_[id];
}

std::string GroundProgram::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (const GroundRule& rule : rules_) {
    for (size_t i = 0; i < rule.head.size(); ++i) {
      if (i > 0) out += " | ";
      out += atoms_.GetAtom(rule.head[i]).ToString(symbols);
    }
    const bool has_body =
        !rule.positive_body.empty() || !rule.negative_body.empty();
    if (has_body || rule.head.empty()) {
      if (!rule.head.empty()) out += " ";
      out += ":- ";
      bool first = true;
      for (GroundAtomId id : rule.positive_body) {
        if (!first) out += ", ";
        first = false;
        out += atoms_.GetAtom(id).ToString(symbols);
      }
      for (GroundAtomId id : rule.negative_body) {
        if (!first) out += ", ";
        first = false;
        out += "not " + atoms_.GetAtom(id).ToString(symbols);
      }
    }
    out += ".\n";
  }
  return out;
}

}  // namespace streamasp
