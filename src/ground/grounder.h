#ifndef STREAMASP_GROUND_GROUNDER_H_
#define STREAMASP_GROUND_GROUNDER_H_

#include <cstdint>
#include <vector>

#include "asp/program.h"
#include "ground/ground_program.h"
#include "util/status.h"

namespace streamasp {

/// Tuning knobs for grounding.
struct GroundingOptions {
  /// Apply equivalence-preserving simplification after instantiation:
  /// definite facts are removed from positive bodies, rules with a
  /// definitely-true negative-body atom (or a definitely-true head atom)
  /// are dropped, and negative literals on underivable atoms are erased.
  /// Stable models are preserved exactly; the solver just gets a (often
  /// dramatically) smaller program. Mirrors what Clingo's grounder does.
  bool simplify = true;

  /// Safety valve on the number of ground rule instantiations; grounding
  /// fails with kResourceExhausted beyond this. Programs with function
  /// symbols can otherwise diverge.
  size_t max_ground_rules = 50'000'000;
};

/// Counters describing one grounding run (also used by benchmarks).
/// Returned by value per call — Grounder and IncrementalGrounder keep no
/// shared mutable stats state, so concurrent Ground calls cannot race.
struct GroundingStats {
  size_t num_atoms = 0;          ///< Interned ground atoms.
  size_t num_rules = 0;          ///< Emitted ground rules after simplify.
  size_t num_rules_raw = 0;      ///< Emitted ground rules before simplify.
  size_t num_facts = 0;          ///< Rules that are definite facts.
  size_t num_constraints = 0;    ///< Ground integrity constraints.

  // --- incremental reuse counters (all zero for a batch Grounder run; see
  // ground/incremental_grounder.h) ---
  size_t rules_retained = 0;   ///< Cached ground rules carried over.
  size_t rules_retracted = 0;  ///< Cached rules dropped with expired facts.
  size_t rules_new = 0;        ///< Rules instantiated from admitted facts.
  size_t incremental_windows = 0;   ///< Calls that reused the cache.
  size_t incremental_fallbacks = 0; ///< Calls that reground from scratch.

  /// Approximate bytes retained by the run's AtomTable (atom payloads,
  /// packed-argument mirror, intern index) — the grounding side of the
  /// pipeline's bytes-per-triple counter. Per-partition tables are
  /// disjoint, so Accumulate sums.
  size_t atom_table_bytes = 0;

  /// Field-wise accumulation (max-free: every counter is additive), used
  /// when aggregating per-partition stats into a per-window total.
  void Accumulate(const GroundingStats& other) {
    num_atoms += other.num_atoms;
    num_rules += other.num_rules;
    num_rules_raw += other.num_rules_raw;
    num_facts += other.num_facts;
    num_constraints += other.num_constraints;
    rules_retained += other.rules_retained;
    rules_retracted += other.rules_retracted;
    rules_new += other.rules_new;
    incremental_windows += other.incremental_windows;
    incremental_fallbacks += other.incremental_fallbacks;
    atom_table_bytes += other.atom_table_bytes;
  }
};

/// Bottom-up instantiator: turns a (safe) non-ground program plus input
/// facts into an equivalent GroundProgram.
///
/// The algorithm follows Calimeri/Perri/Ricca's dependency-driven scheme
/// (the same family Clingo and DLV use):
///   1. build the predicate dependency graph (body -> head; mutual edges
///      between disjunctive head predicates),
///   2. condense it into strongly connected components, topologically
///      ordered,
///   3. instantiate each component bottom-up with semi-naive evaluation,
///      so recursive rules only re-fire on newly derived atoms,
///   4. optionally simplify (see GroundingOptions::simplify).
///
/// Negative literals whose predicate is fully evaluated (earlier
/// component) are resolved eagerly: underivable atoms delete the literal.
/// Negation within a component (unstratified programs) is left to the
/// solver, which is what makes the pipeline complete for arbitrary normal
/// programs rather than just stratified ones.
class Grounder {
 public:
  explicit Grounder(GroundingOptions options = {}) : options_(options) {}

  /// Grounds `program` (whose rules may include facts). When `stats` is
  /// non-null it receives this call's counters — per-call snapshot
  /// semantics, so concurrent Ground calls on one Grounder never race.
  StatusOr<GroundProgram> Ground(const Program& program,
                                 GroundingStats* stats = nullptr) const;

  /// Grounds `program` extended with `input_facts` (the reasoner's window
  /// contents). The facts must be ground atoms.
  StatusOr<GroundProgram> Ground(const Program& program,
                                 const std::vector<Atom>& input_facts,
                                 GroundingStats* stats = nullptr) const;

 private:
  GroundingOptions options_;
};

}  // namespace streamasp

#endif  // STREAMASP_GROUND_GROUNDER_H_
