#ifndef STREAMASP_GROUND_GROUNDER_H_
#define STREAMASP_GROUND_GROUNDER_H_

#include <cstdint>
#include <vector>

#include "asp/program.h"
#include "ground/ground_program.h"
#include "util/status.h"

namespace streamasp {

/// Tuning knobs for grounding.
struct GroundingOptions {
  /// Apply equivalence-preserving simplification after instantiation:
  /// definite facts are removed from positive bodies, rules with a
  /// definitely-true negative-body atom (or a definitely-true head atom)
  /// are dropped, and negative literals on underivable atoms are erased.
  /// Stable models are preserved exactly; the solver just gets a (often
  /// dramatically) smaller program. Mirrors what Clingo's grounder does.
  bool simplify = true;

  /// Safety valve on the number of ground rule instantiations; grounding
  /// fails with kResourceExhausted beyond this. Programs with function
  /// symbols can otherwise diverge.
  size_t max_ground_rules = 50'000'000;
};

/// Counters describing one grounding run (also used by benchmarks).
struct GroundingStats {
  size_t num_atoms = 0;          ///< Interned ground atoms.
  size_t num_rules = 0;          ///< Emitted ground rules after simplify.
  size_t num_rules_raw = 0;      ///< Emitted ground rules before simplify.
  size_t num_facts = 0;          ///< Rules that are definite facts.
  size_t num_constraints = 0;    ///< Ground integrity constraints.
};

/// Bottom-up instantiator: turns a (safe) non-ground program plus input
/// facts into an equivalent GroundProgram.
///
/// The algorithm follows Calimeri/Perri/Ricca's dependency-driven scheme
/// (the same family Clingo and DLV use):
///   1. build the predicate dependency graph (body -> head; mutual edges
///      between disjunctive head predicates),
///   2. condense it into strongly connected components, topologically
///      ordered,
///   3. instantiate each component bottom-up with semi-naive evaluation,
///      so recursive rules only re-fire on newly derived atoms,
///   4. optionally simplify (see GroundingOptions::simplify).
///
/// Negative literals whose predicate is fully evaluated (earlier
/// component) are resolved eagerly: underivable atoms delete the literal.
/// Negation within a component (unstratified programs) is left to the
/// solver, which is what makes the pipeline complete for arbitrary normal
/// programs rather than just stratified ones.
class Grounder {
 public:
  explicit Grounder(GroundingOptions options = {}) : options_(options) {}

  /// Grounds `program` (whose rules may include facts).
  StatusOr<GroundProgram> Ground(const Program& program) const;

  /// Grounds `program` extended with `input_facts` (the reasoner's window
  /// contents). The facts must be ground atoms.
  StatusOr<GroundProgram> Ground(const Program& program,
                                 const std::vector<Atom>& input_facts) const;

  /// Stats from the most recent Ground call. Not thread-safe across
  /// concurrent Ground calls on the same Grounder; the parallel reasoner
  /// gives each worker its own Grounder.
  const GroundingStats& stats() const { return stats_; }

 private:
  GroundingOptions options_;
  mutable GroundingStats stats_;
};

}  // namespace streamasp

#endif  // STREAMASP_GROUND_GROUNDER_H_
