#ifndef STREAMASP_SERVER_EVENT_LOOP_H_
#define STREAMASP_SERVER_EVENT_LOOP_H_

#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace streamasp {

/// A minimal single-threaded epoll reactor: one thread multiplexing
/// readability across any number of non-blocking file descriptors, so a
/// transport serves N connections with one thread instead of N reader
/// threads. This is the event-driven half of the session server's
/// O(pool + 1) thread budget — reasoning scales with the shared pool,
/// transport with this loop, and neither with the session count.
///
/// Model:
///   * Watch(fd, on_readable) registers a level-triggered readability
///     handler. Handlers run on the loop thread, one at a time — a
///     handler that blocks stalls every other connection (head-of-line),
///     which is the documented trade-off of the single-thread design;
///     keep handlers to non-blocking reads plus bounded work.
///   * Post(fn) runs a closure on the loop thread (any thread may call
///     it; an eventfd wakes the loop).
///   * Unwatch(fd) deregisters; the fd itself is not closed.
///
/// Thread-safety: Post and Stop are safe from any thread. Watch/Unwatch
/// must be called from the loop thread or while the loop is not running
/// (before Start / after Stop) — the registration map is not guarded
/// against concurrent dispatch.
class EventLoop {
 public:
  using ReadyFn = std::function<void()>;

  /// Acquires the epoll and wakeup descriptors; Start reports any
  /// acquisition failure.
  EventLoop();

  /// Stops the loop (if running) and releases the descriptors.
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers a level-triggered readability handler for `fd` (which
  /// should be non-blocking — the loop redelivers while data remains).
  Status Watch(int fd, ReadyFn on_readable);

  /// Deregisters `fd`. No-op when it was never watched.
  void Unwatch(int fd);

  /// Enqueues `fn` for execution on the loop thread. Safe from any
  /// thread, including the loop thread itself (runs on the next tick).
  void Post(std::function<void()> fn);

  /// Spawns the loop thread. kFailedPrecondition when already started,
  /// kInternal when descriptor acquisition failed at construction.
  Status Start();

  /// Stops and joins the loop thread. Idempotent; safe from any thread
  /// except the loop thread itself. Watched fds stay registered (and
  /// open) — callers tear their connections down after Stop returns.
  void Stop();

 private:
  void Run();
  void RunPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd that interrupts epoll_wait.
  Status init_status_ = OkStatus();

  /// Loop-thread-only (plus pre-Start/post-Stop callers, per the class
  /// contract): fd -> readability handler.
  std::unordered_map<int, ReadyFn> handlers_;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;

  std::mutex lifecycle_mutex_;
  std::thread thread_;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace streamasp

#endif  // STREAMASP_SERVER_EVENT_LOOP_H_
