#include "server/server.h"

#include <utility>

namespace streamasp {

Status ValidateServerConfig(const ServerConfig& config) {
  if (config.max_sessions == 0) {
    return InvalidArgumentError("server max_sessions must be >= 1");
  }
  return OkStatus();
}

StreamServer::StreamServer(ServerConfig config) : config_([&config] {
      if (config.max_sessions == 0) config.max_sessions = 1;
      return config;
    }()) {
  if (config_.shared_pool_threads > 0) {
    pool_ = std::make_shared<SharedReasonerPool>(config_.shared_pool_threads);
  }
}

StreamServer::~StreamServer() { CloseAll(); }

StatusOr<std::shared_ptr<StreamSession>> StreamServer::CreateSession(
    std::string name, SessionOptions options, SessionEventHandler handler) {
  const bool pooled = pool_ != nullptr && options.engine.pipeline.async;
  if (pooled) {
    // Async sessions reason on the shared pool: O(pool) reasoning
    // threads across all tenants, weighted fair scheduling between them.
    // The session's weight/inflight knobs were already mapped onto
    // pool_weight/pool_max_inflight by StreamSession::Create's caller
    // contract (ValidateSessionOptions + field mapping).
    options.engine.pipeline.shared_pool = pool_;
  } else if (config_.session_reasoner_threads > 0 &&
             options.engine.pipeline.reasoner.num_threads == 0) {
    // Unpooled fair multiplexing: without this, every tenant's reasoner
    // would default to all cores and the sessions would thrash each
    // other. Never applied to pooled sessions — each reasoner slot would
    // spawn an inner pool and multiply the thread count back up.
    options.engine.pipeline.reasoner.num_threads =
        config_.session_reasoner_threads;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= config_.max_sessions) {
      return ResourceExhaustedError(
          "session limit reached (" + std::to_string(config_.max_sessions) +
          "); close a session first");
    }
    if (sessions_.count(name) != 0) {
      return InvalidArgumentError("session '" + name + "' already exists");
    }
  }
  // Build outside the lock: Create parses and grounds the program, which
  // can take a while — don't stall the registry. The name is re-checked
  // on insert in case of a racing create.
  STREAMASP_ASSIGN_OR_RETURN(
      std::unique_ptr<StreamSession> session,
      StreamSession::Create(name, std::move(options), std::move(handler)));
  std::shared_ptr<StreamSession> shared(std::move(session));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= config_.max_sessions) {
      return ResourceExhaustedError(
          "session limit reached (" + std::to_string(config_.max_sessions) +
          "); close a session first");
    }
    if (!sessions_.emplace(name, shared).second) {
      return InvalidArgumentError("session '" + name + "' already exists");
    }
  }
  return shared;
}

StatusOr<std::shared_ptr<StreamSession>> StreamServer::FindSession(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return NotFoundError("no session named '" + name + "'");
  }
  return it->second;
}

Status StreamServer::CloseSession(const std::string& name) {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      return NotFoundError("no session named '" + name + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Drain outside the lock — closing waits for in-flight windows, and
  // other tenants must keep creating/finding sessions meanwhile.
  session->Close();
  return OkStatus();
}

void StreamServer::CloseAll() {
  std::vector<std::shared_ptr<StreamSession>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    doomed.reserve(sessions_.size());
    for (auto& entry : sessions_) doomed.push_back(std::move(entry.second));
    sessions_.clear();
  }
  for (auto& session : doomed) session->Close();
}

std::vector<std::string> StreamServer::session_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& entry : sessions_) names.push_back(entry.first);
  return names;
}

size_t StreamServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace streamasp
