#include "server/session.h"

#include <exception>
#include <optional>
#include <utility>

#include "asp/parser.h"
#include "util/logging.h"

namespace streamasp {

Status ValidateSessionOptions(const SessionOptions& options) {
  if (options.admission == BackpressurePolicy::kDropOldest) {
    return InvalidArgumentError(
        "session admission supports kBlock or kReject only (dropping "
        "accepted batches would break the session's refusal accounting)");
  }
  if (options.weight == 0) {
    return InvalidArgumentError("session weight must be >= 1");
  }
  const bool async = options.engine.pipeline.async;
  if (options.max_queued_windows > 0 && !async) {
    return InvalidArgumentError(
        "session max_queued_windows requires an async engine (sync "
        "engines reason every window before Push returns; set async=1)");
  }
  if (options.max_inflight > 0 && !async) {
    return InvalidArgumentError(
        "session max_inflight requires an async engine (sync engines "
        "reason one window at a time; set async=1)");
  }
  return OkStatus();
}

StatusOr<std::unique_ptr<StreamSession>> StreamSession::Create(
    std::string name, SessionOptions options, SessionEventHandler handler) {
  if (name.empty()) {
    return InvalidArgumentError("session name must not be empty");
  }
  STREAMASP_RETURN_IF_ERROR(ValidateSessionOptions(options));
  // Map the session-level fairness knobs onto the pipeline: the quota is
  // engine-level admission control either way; the weight and inflight
  // cap take effect when the server injects its shared pool below.
  options.engine.pipeline.pool_weight = options.weight;
  options.engine.pipeline.pool_max_inflight = options.max_inflight;
  options.engine.pipeline.max_queued_windows = options.max_queued_windows;
  // Pooled async sessions pump inline (no pump thread), so a kReject
  // tenant's "never block the transport" promise must hold at the window
  // queue too: translate the admission policy to window-level kReject
  // shedding instead of the default blocking backpressure.
  const bool pooled_async =
      options.engine.pipeline.async &&
      (options.engine.pipeline.shared_pool != nullptr ||
       options.engine.pipeline.shared_queue != nullptr);
  if (pooled_async && options.admission == BackpressurePolicy::kReject) {
    options.engine.pipeline.backpressure = BackpressurePolicy::kReject;
  }
  std::string program_text = options.program_text;
  std::unique_ptr<StreamSession> session(new StreamSession(
      std::move(name), std::move(options), std::move(handler)));
  STREAMASP_RETURN_IF_ERROR(session->Init(program_text));
  return session;
}

StreamSession::StreamSession(std::string name, SessionOptions options,
                             SessionEventHandler handler)
    : name_(std::move(name)),
      options_(std::move(options)),
      handler_(std::move(handler)),
      symbols_(MakeSymbolTable()),
      queue_(std::max<size_t>(1, options_.ingest_queue_capacity),
             BackpressurePolicy::kBlock),
      inline_pump_(options_.engine.pipeline.async &&
                   (options_.engine.pipeline.shared_pool != nullptr ||
                    options_.engine.pipeline.shared_queue != nullptr)) {}

Status StreamSession::Init(const std::string& program_text) {
  Parser parser(symbols_);
  STREAMASP_ASSIGN_OR_RETURN(Program program,
                             parser.ParseProgram(program_text));
  program_ = std::make_unique<Program>(std::move(program));
  // The engine is built only after program_ has its final heap address
  // (it must outlive the engine).
  STREAMASP_ASSIGN_OR_RETURN(
      engine_, StreamEngine::Create(
                   program_.get(), options_.engine,
                   [this](EmissionEvent& event) { OnEmission(event); }));
  // Pooled async sessions pump collaboratively (zero threads); everyone
  // else gets the dedicated pump thread.
  if (!inline_pump_) pump_ = std::thread([this] { PumpLoop(); });
  return OkStatus();
}

StreamSession::~StreamSession() { Close(); }

Status StreamSession::Push(std::vector<Triple> batch) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (state_ != SessionState::kRunning) {
      return FailedPreconditionError("session '" + name_ + "' is " +
                                     SessionStateName(state_));
    }
  }
  const uint64_t items = batch.size();
  if (options_.admission == BackpressurePolicy::kReject &&
      queued_commands_.load(std::memory_order_acquire) >=
          std::max<size_t>(1, options_.ingest_queue_capacity)) {
    rejected_batches_.fetch_add(1, std::memory_order_relaxed);
    rejected_items_.fetch_add(items, std::memory_order_relaxed);
    return ResourceExhaustedError(
        "session '" + name_ + "' saturated: ingest queue at capacity (" +
        std::to_string(options_.ingest_queue_capacity) + " batches)");
  }
  queued_commands_.fetch_add(1, std::memory_order_acq_rel);
  IngestCommand command;
  command.batch = std::move(batch);
  if (queue_.Push(std::move(command)) == QueuePushResult::kClosed) {
    queued_commands_.fetch_sub(1, std::memory_order_acq_rel);
    // A closer may be waiting for the queue-depth mirror to settle.
    pump_cv_.notify_all();
    return FailedPreconditionError("session '" + name_ + "' is closed");
  }
  pushed_batches_.fetch_add(1, std::memory_order_relaxed);
  pushed_items_.fetch_add(items, std::memory_order_relaxed);
  if (inline_pump_) PumpDrain();
  return OkStatus();
}

Status StreamSession::Flush() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (state_ != SessionState::kRunning) {
      return FailedPreconditionError("session '" + name_ + "' is " +
                                     SessionStateName(state_));
    }
  }
  // Ticket before enqueue: flush commands complete in queue order, and
  // every flush command enqueued by a ticket >= ours necessarily sits
  // behind our previously pushed batches — so once flush_completed_
  // reaches our ticket, an engine-level Flush has covered them.
  uint64_t ticket = 0;
  {
    std::lock_guard<std::mutex> lock(flush_mutex_);
    ticket = ++flush_tickets_;
  }
  queued_commands_.fetch_add(1, std::memory_order_acq_rel);
  IngestCommand command;
  command.flush = true;
  if (queue_.Push(std::move(command)) == QueuePushResult::kClosed) {
    queued_commands_.fetch_sub(1, std::memory_order_acq_rel);
    pump_cv_.notify_all();
    return FailedPreconditionError("session '" + name_ + "' is closed");
  }
  // Inline mode: our flush command may be served by us (pumping here) or
  // by whichever pusher holds the baton; the ticket wait below covers
  // both.
  if (inline_pump_) PumpDrain();
  std::unique_lock<std::mutex> lock(flush_mutex_);
  flush_cv_.wait(lock, [this, ticket] { return flush_completed_ >= ticket; });
  return OkStatus();
}

void StreamSession::Close() {
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    if (close_started_) {
      // Someone else is (or was) draining: wait out the teardown so every
      // Close() returns with the session fully closed.
      closed_cv_.wait(lock,
                      [this] { return state_ == SessionState::kClosed; });
      return;
    }
    close_started_ = true;
    state_ = SessionState::kDraining;
  }
  // Stop admission; the pump drains every already-queued command (Pop
  // and TryPop hand out the remainder after Close), acking queued flush
  // barriers on the way out.
  queue_.Close();
  if (inline_pump_) {
    // Become the pumper for whatever is left, then wait out any racing
    // pusher still holding the baton or mid-enqueue.
    PumpDrain();
    std::unique_lock<std::mutex> lock(pump_mutex_);
    pump_cv_.wait(lock, [this] {
      return !pumping_ &&
             queued_commands_.load(std::memory_order_acquire) == 0;
    });
  } else if (pump_.joinable()) {
    pump_.join();
  }
  // End-of-stream: emit the trailing partial window and deliver every
  // in-flight emission before reporting kClosed.
  try {
    if (engine_ != nullptr) engine_->Flush();
  } catch (const std::exception& e) {
    STREAMASP_LOG(kError) << "session '" << name_
                          << "': close-time flush threw: " << e.what();
  } catch (...) {
    STREAMASP_LOG(kError) << "session '" << name_
                          << "': close-time flush threw";
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    // Inside the lock so stats() never reads a half-dead engine.
    engine_.reset();
    state_ = SessionState::kClosed;
  }
  closed_cv_.notify_all();
}

void StreamSession::ProcessCommand(IngestCommand& command) {
  try {
    if (!command.batch.empty()) engine_->PushBatch(command.batch);
    if (command.flush) engine_->Flush();
  } catch (const std::exception& e) {
    // A sync-mode event handler that throws surfaces here; the pump
    // must outlive it or the whole session wedges.
    STREAMASP_LOG(kError) << "session '" << name_
                          << "': pump caught: " << e.what();
  } catch (...) {
    STREAMASP_LOG(kError) << "session '" << name_ << "': pump caught";
  }
  if (command.flush) {
    {
      std::lock_guard<std::mutex> lock(flush_mutex_);
      ++flush_completed_;
    }
    flush_cv_.notify_all();
  }
  command = IngestCommand();
  queued_commands_.fetch_sub(1, std::memory_order_acq_rel);
}

void StreamSession::PumpLoop() {
  IngestCommand command;
  while (queue_.Pop(&command)) ProcessCommand(command);
}

void StreamSession::PumpDrain() {
  std::unique_lock<std::mutex> lock(pump_mutex_);
  if (pumping_) return;  // The holder's TryPop re-check under this mutex
                         // runs after our enqueue, so our command is seen.
  pumping_ = true;
  // TryPop under the lock, process outside it: a pusher that enqueues
  // while we process either observes pumping_ (and leaves the command to
  // our next TryPop) or arrives after we cleared the baton and takes it
  // itself — nothing strands.
  while (true) {
    std::optional<IngestCommand> command = queue_.TryPop();
    if (!command.has_value()) break;
    lock.unlock();
    ProcessCommand(*command);
    lock.lock();
  }
  pumping_ = false;
  lock.unlock();
  pump_cv_.notify_all();
}

void StreamSession::OnEmission(EmissionEvent& event) {
  switch (event.kind) {
    case EmissionEvent::Kind::kResult:
      result_events_.fetch_add(1, std::memory_order_relaxed);
      break;
    case EmissionEvent::Kind::kError:
      error_events_.fetch_add(1, std::memory_order_relaxed);
      break;
    case EmissionEvent::Kind::kShed:
      shed_events_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  const uint64_t sequence =
      next_event_sequence_.fetch_add(1, std::memory_order_relaxed);
  if (handler_ != nullptr) {
    SessionEvent wrapped{name_, sequence, *symbols_, event};
    handler_(wrapped);
  }
}

SessionState StreamSession::state() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

SessionStats StreamSession::stats() const {
  SessionStats out;
  out.pushed_batches = pushed_batches_.load(std::memory_order_relaxed);
  out.pushed_items = pushed_items_.load(std::memory_order_relaxed);
  out.rejected_batches = rejected_batches_.load(std::memory_order_relaxed);
  out.rejected_items = rejected_items_.load(std::memory_order_relaxed);
  out.result_events = result_events_.load(std::memory_order_relaxed);
  out.error_events = error_events_.load(std::memory_order_relaxed);
  out.shed_events = shed_events_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_mutex_);
  out.state = state_;
  if (engine_ != nullptr) out.engine = engine_->stats();
  return out;
}

}  // namespace streamasp
