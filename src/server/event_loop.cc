#include "server/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <utility>

namespace streamasp {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    init_status_ =
        InternalError(std::string("epoll_create1: ") + std::strerror(errno));
    return;
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    init_status_ =
        InternalError(std::string("eventfd: ") + std::strerror(errno));
    return;
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) < 0) {
    init_status_ =
        InternalError(std::string("epoll_ctl(wakeup): ") +
                      std::strerror(errno));
  }
}

EventLoop::~EventLoop() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Watch(int fd, ReadyFn on_readable) {
  STREAMASP_RETURN_IF_ERROR(init_status_);
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
    return InternalError(std::string("epoll_ctl(add): ") +
                         std::strerror(errno));
  }
  handlers_[fd] = std::move(on_readable);
  return OkStatus();
}

void EventLoop::Unwatch(int fd) {
  if (epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  handlers_.erase(fd);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    // A full eventfd counter (EAGAIN) already guarantees a pending wake.
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

Status EventLoop::Start() {
  STREAMASP_RETURN_IF_ERROR(init_status_);
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) return FailedPreconditionError("EventLoop already started");
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { Run(); });
  return OkStatus();
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!started_ || stopping_) {
      // Not running (or another Stop is in flight); still join a thread
      // a racing Stop may have left for us — thread_.join below is what
      // makes Stop's return mean "the loop thread is gone".
      if (stopping_ && thread_.joinable() &&
          thread_.get_id() != std::this_thread::get_id()) {
        // Fall through outside the lock.
      } else {
        return;
      }
    } else {
      stopping_ = true;
    }
  }
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  started_ = false;
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (std::function<void()>& task : tasks) task();
}

void EventLoop::Run() {
  epoll_event events[64];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(lifecycle_mutex_);
      if (stopping_) return;
    }
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd fatally broken; nothing recoverable here.
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        RunPosted();
        continue;
      }
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // Unwatched by an earlier handler.
      // Copy before calling: the handler may Unwatch (erase) itself.
      ReadyFn handler = it->second;
      handler();
    }
  }
}

}  // namespace streamasp
