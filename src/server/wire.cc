#include "server/wire.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "streamrule/answer.h"
#include "streamrule/parallel_reasoner.h"
#include "util/strings.h"

namespace streamasp {

namespace {

std::string FormatCompleteness(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

/// Splits a request line on single spaces, dropping empty tokens (so
/// accidental double spaces don't produce phantom fields).
std::vector<std::string> Tokens(std::string_view line) {
  std::vector<std::string> tokens;
  for (std::string& piece : StrSplit(line, ' ')) {
    if (!piece.empty()) tokens.push_back(std::move(piece));
  }
  return tokens;
}

Status ApplyOpenOption(std::string_view key, std::string_view value,
                       SessionOptions* options) {
  int64_t number = 0;
  const bool is_number = ParseInt64(value, &number);
  auto require_count = [&](const char* what) -> Status {
    if (!is_number || number < 0) {
      return InvalidArgumentError(std::string("open option ") + what +
                                  " needs a non-negative integer, got '" +
                                  std::string(value) + "'");
    }
    return OkStatus();
  };
  if (key == "window") {
    STREAMASP_RETURN_IF_ERROR(require_count("window"));
    options->engine.pipeline.window_size = static_cast<size_t>(number);
  } else if (key == "slide") {
    STREAMASP_RETURN_IF_ERROR(require_count("slide"));
    options->engine.pipeline.window_slide = static_cast<size_t>(number);
  } else if (key == "shards") {
    STREAMASP_RETURN_IF_ERROR(require_count("shards"));
    options->engine.num_shards = static_cast<size_t>(number);
  } else if (key == "async") {
    STREAMASP_RETURN_IF_ERROR(require_count("async"));
    options->engine.pipeline.async = number != 0;
  } else if (key == "inflight") {
    STREAMASP_RETURN_IF_ERROR(require_count("inflight"));
    options->engine.pipeline.max_inflight_windows =
        static_cast<size_t>(number);
  } else if (key == "workers") {
    STREAMASP_RETURN_IF_ERROR(require_count("workers"));
    options->engine.pipeline.num_reason_workers = static_cast<size_t>(number);
  } else if (key == "batch") {
    STREAMASP_RETURN_IF_ERROR(require_count("batch"));
    options->engine.router_batch_size = static_cast<size_t>(number);
  } else if (key == "queue") {
    STREAMASP_RETURN_IF_ERROR(require_count("queue"));
    options->ingest_queue_capacity = static_cast<size_t>(number);
  } else if (key == "weight") {
    if (!is_number || number < 1) {
      return InvalidArgumentError("open option weight needs a positive "
                                  "integer, got '" +
                                  std::string(value) + "'");
    }
    options->weight = static_cast<size_t>(number);
  } else if (key == "max_queued") {
    STREAMASP_RETURN_IF_ERROR(require_count("max_queued"));
    options->max_queued_windows = static_cast<size_t>(number);
  } else if (key == "max_inflight") {
    STREAMASP_RETURN_IF_ERROR(require_count("max_inflight"));
    options->max_inflight = static_cast<size_t>(number);
  } else if (key == "reuse") {
    if (value == "none") {
      options->engine.pipeline.reuse_grounding = false;
      options->engine.pipeline.reuse_solving = false;
    } else if (value == "ground") {
      options->engine.pipeline.reuse_grounding = true;
    } else if (value == "solve") {
      options->engine.pipeline.reuse_solving = true;
    } else {
      return InvalidArgumentError("open option reuse must be none|ground|"
                                  "solve, got '" +
                                  std::string(value) + "'");
    }
  } else if (key == "admission") {
    if (value == "block") {
      options->admission = BackpressurePolicy::kBlock;
    } else if (value == "reject") {
      options->admission = BackpressurePolicy::kReject;
    } else {
      return InvalidArgumentError("open option admission must be block|"
                                  "reject, got '" +
                                  std::string(value) + "'");
    }
  } else {
    return InvalidArgumentError("unknown open option '" + std::string(key) +
                                "'");
  }
  return OkStatus();
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(payload);
  return frame;
}

void FrameDecoder::Feed(std::string_view data) {
  if (!status_.ok()) return;
  buffer_.append(data);
}

bool FrameDecoder::Next(std::string* payload) {
  if (!status_.ok()) return false;
  if (buffer_.size() - offset_ < 4) {
    // Reclaim the consumed prefix while we wait for more bytes.
    if (offset_ > 0) {
      buffer_.erase(0, offset_);
      offset_ = 0;
    }
    return false;
  }
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + offset_;
  const uint32_t length = (static_cast<uint32_t>(p[0]) << 24) |
                          (static_cast<uint32_t>(p[1]) << 16) |
                          (static_cast<uint32_t>(p[2]) << 8) |
                          static_cast<uint32_t>(p[3]);
  if (length > kMaxFramePayload) {
    status_ = InvalidArgumentError(
        "oversized frame: " + std::to_string(length) + " bytes (limit " +
        std::to_string(kMaxFramePayload) + ")");
    buffer_.clear();
    offset_ = 0;
    return false;
  }
  if (buffer_.size() - offset_ - 4 < length) {
    if (offset_ > 0) {
      buffer_.erase(0, offset_);
      offset_ = 0;
    }
    return false;
  }
  payload->assign(buffer_, offset_ + 4, length);
  offset_ += 4 + length;
  if (offset_ == buffer_.size()) {
    buffer_.clear();
    offset_ = 0;
  }
  return true;
}

StatusOr<WireRequest> ParseRequest(std::string_view payload) {
  std::vector<std::string> lines = StrSplit(payload, '\n');
  if (lines.empty()) return InvalidArgumentError("empty request");
  const std::vector<std::string> head = Tokens(lines[0]);
  if (head.empty()) return InvalidArgumentError("empty request");

  WireRequest request;
  const std::string& verb = head[0];
  if (verb == "ping") {
    request.command = WireRequest::Command::kPing;
    return request;
  }
  if (head.size() < 2) {
    return InvalidArgumentError("request '" + verb + "' needs a session name");
  }
  request.session = head[1];
  if (verb == "open") {
    request.command = WireRequest::Command::kOpen;
    for (size_t i = 2; i < head.size(); ++i) {
      const size_t eq = head[i].find('=');
      if (eq == std::string::npos) {
        return InvalidArgumentError("open option '" + head[i] +
                                    "' is not key=value");
      }
      const std::string_view key = std::string_view(head[i]).substr(0, eq);
      const std::string_view value =
          std::string_view(head[i]).substr(eq + 1);
      if (key == "v") {
        // Protocol version, not a session option: parse it here so the
        // broker can reject before any option is acted on. Any integer
        // is accepted at parse time — which versions the server speaks
        // is the broker's decision.
        int64_t version = 0;
        if (!ParseInt64(value, &version) || version < 0) {
          return InvalidArgumentError(
              "open option v needs a non-negative integer, got '" +
              std::string(value) + "'");
        }
        request.protocol_version = version;
        request.has_version = true;
        continue;
      }
      STREAMASP_RETURN_IF_ERROR(
          ApplyOpenOption(key, value, &request.options));
    }
    std::vector<std::string> program(lines.begin() + 1, lines.end());
    request.options.program_text = StrJoin(program, "\n");
    return request;
  }
  if (verb == "push") {
    request.command = WireRequest::Command::kPush;
    for (size_t i = 1; i < lines.size(); ++i) {
      std::string_view line = StripWhitespace(lines[i]);
      if (!line.empty()) request.lines.emplace_back(line);
    }
    return request;
  }
  if (verb == "flush") {
    request.command = WireRequest::Command::kFlush;
    return request;
  }
  if (verb == "stats") {
    request.command = WireRequest::Command::kStats;
    return request;
  }
  if (verb == "close") {
    request.command = WireRequest::Command::kClose;
    return request;
  }
  return InvalidArgumentError("unknown request verb '" + verb + "'");
}

StatusOr<Triple> ParseTripleLine(std::string_view line, SymbolTable& symbols) {
  const std::vector<std::string> tokens = Tokens(line);
  if (tokens.size() < 2 || tokens.size() > 3) {
    return InvalidArgumentError(
        "triple line needs '<predicate> <subject> [<object>]', got '" +
        std::string(line) + "'");
  }
  auto parse_term = [&symbols](const std::string& token) {
    int64_t number = 0;
    if (ParseInt64(token, &number)) return PackedTerm::Integer(number);
    return PackedTerm::Symbol(symbols.Intern(token));
  };
  Triple triple;
  triple.predicate = symbols.Intern(tokens[0]);
  triple.subject = parse_term(tokens[1]);
  if (tokens.size() == 3) triple.object = parse_term(tokens[2]);
  return triple;
}

std::string FormatOk(std::string_view verb, std::string_view session) {
  std::string out = "ok ";
  out.append(verb);
  if (!session.empty()) {
    out.push_back(' ');
    out.append(session);
  }
  return out;
}

std::string_view ErrorCodeSlug(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "unknown_session";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kResourceExhausted:
      return "quota_exceeded";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
  }
  return "internal";
}

std::string FormatOpenOk(std::string_view session) {
  std::string out = FormatOk("open", session);
  out.append(" v=");
  out.append(std::to_string(kProtocolVersion));
  return out;
}

std::string FormatError(std::string_view verb, std::string_view session,
                        const Status& status) {
  return FormatError(verb, session, status, ErrorCodeSlug(status.code()));
}

std::string FormatError(std::string_view verb, std::string_view session,
                        const Status& status, std::string_view code) {
  std::string out = "error ";
  out.append(verb);
  if (!session.empty()) {
    out.push_back(' ');
    out.append(session);
  }
  out.append(" code=");
  out.append(code);
  out.push_back(' ');
  out.append(status.ToString());
  return out;
}

std::string FormatStats(std::string_view session, const SessionStats& stats) {
  std::string out = FormatOk("stats", session);
  auto field = [&out](const char* key, uint64_t value) {
    out.push_back('\n');
    out.append(key);
    out.push_back('=');
    out.append(std::to_string(value));
  };
  out.append("\nstate=");
  out.append(SessionStateName(stats.state));
  field("pushed_batches", stats.pushed_batches);
  field("pushed_items", stats.pushed_items);
  field("rejected_batches", stats.rejected_batches);
  field("rejected_items", stats.rejected_items);
  field("result_events", stats.result_events);
  field("error_events", stats.error_events);
  field("shed_events", stats.shed_events);
  field("num_shards", stats.engine.num_shards);
  field("delivered_windows", stats.engine.delivered_windows);
  field("delivered_answers", stats.engine.delivered_answers);
  field("delivery_errors", stats.engine.delivery_errors);
  field("shed_windows", stats.engine.shed_windows());
  out.append("\ncompleteness=");
  out.append(FormatCompleteness(stats.engine.completeness()));
  return out;
}

std::string FormatEvent(const SessionEvent& event) {
  std::string out = "event ";
  out.append(event.session);
  const std::string seq = std::to_string(event.session_sequence);
  switch (event.event.kind) {
    case EmissionEvent::Kind::kResult: {
      out.append(" result seq=");
      out.append(seq);
      out.append(" completeness=");
      out.append(FormatCompleteness(event.event.completeness));
      out.append(" items=");
      out.append(std::to_string(event.event.window->items.size()));
      out.append(" answers=");
      out.append(std::to_string(event.event.result->answers.size()));
      for (const GroundAnswer& answer : event.event.result->answers) {
        out.push_back('\n');
        out.append(AnswerToString(answer, event.symbols));
      }
      break;
    }
    case EmissionEvent::Kind::kError:
      out.append(" error seq=");
      out.append(seq);
      out.push_back(' ');
      out.append(event.event.status.ToString());
      break;
    case EmissionEvent::Kind::kShed:
      out.append(" shed seq=");
      out.append(seq);
      out.append(" items=");
      out.append(std::to_string(event.event.window->items.size()));
      break;
  }
  return out;
}

}  // namespace streamasp
