#ifndef STREAMASP_SERVER_TCP_H_
#define STREAMASP_SERVER_TCP_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "server/event_loop.h"
#include "server/server.h"
#include "util/status.h"

namespace streamasp {

/// TCP front end for the session server: listens on a loopback port,
/// frames the wire protocol (src/server/wire.h) with 4-byte big-endian
/// length prefixes, and runs one SessionBroker per accepted connection.
/// All sockets are non-blocking and multiplexed on a single EventLoop
/// thread — accepts and reads for every connection share it, so the
/// transport costs one thread no matter how many sessions are connected
/// (the old design spawned a reader thread per connection). Replies and
/// subscription events are written back framed from whichever thread
/// produces them, serialized per connection. Dropping a connection
/// closes the sessions it opened.
///
/// Head-of-line caveat: requests execute inline on the loop thread, so
/// one connection's slow request (a blocking kBlock push into a
/// saturated session, an expensive open) delays reads for every other
/// connection. Sessions meant to saturate under concurrent clients
/// should open with admission=reject, which refuses instead of
/// blocking; the multi-tenant isolation suite runs that way.
///
/// This is a smoke-test/demo transport, not a hardened network server:
/// no TLS, no auth, no write backpressure beyond the socket buffer.
class TcpServer {
 public:
  struct Options {
    /// 0 binds an ephemeral port (read it back from port()).
    uint16_t port = 0;
    int backlog = 16;
    /// Bound on concurrently served connections; accepts beyond it are
    /// closed immediately (the client sees EOF).
    size_t max_connections = 256;
  };

  /// `server` must outlive this transport.
  TcpServer(StreamServer* server, Options options);

  /// Stops listening and tears down every connection.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the event loop. kInternal on socket
  /// errors; kFailedPrecondition when already started.
  Status Start();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// Number of currently served connections.
  size_t num_connections() const;

  /// Stops the event loop, shuts every connection down, and drains the
  /// sessions those connections opened. Idempotent.
  void Stop();

 private:
  struct Connection;

  /// Loop-thread handlers.
  void OnAcceptable();
  void OnReadable(const std::shared_ptr<Connection>& connection);
  void TeardownConnection(const std::shared_ptr<Connection>& connection);

  StreamServer* const server_;
  const Options options_;

  EventLoop loop_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  mutable std::mutex mutex_;
  bool started_ = false;
  bool stopping_ = false;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
};

}  // namespace streamasp

#endif  // STREAMASP_SERVER_TCP_H_
