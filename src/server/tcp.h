#ifndef STREAMASP_SERVER_TCP_H_
#define STREAMASP_SERVER_TCP_H_

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "server/server.h"
#include "util/status.h"

namespace streamasp {

/// Minimal TCP front end for the session server: listens on a loopback
/// port, frames the wire protocol (src/server/wire.h) with 4-byte
/// big-endian length prefixes, and runs one SessionBroker per accepted
/// connection (reader thread per connection; replies and subscription
/// events are written back framed, serialized by the broker). Dropping a
/// connection closes the sessions it opened.
///
/// This is a smoke-test/demo transport, not a hardened network server:
/// no TLS, no auth, no write backpressure beyond the socket buffer.
class TcpServer {
 public:
  struct Options {
    /// 0 binds an ephemeral port (read it back from port()).
    uint16_t port = 0;
    int backlog = 16;
  };

  /// `server` must outlive this transport.
  TcpServer(StreamServer* server, Options options);

  /// Stops listening and tears down every connection.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the accept thread. kInternal on socket
  /// errors; kFailedPrecondition when already started.
  Status Start();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  /// Stops accepting, shuts every connection down, joins all threads,
  /// and drains the sessions those connections opened. Idempotent.
  void Stop();

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Connection> connection);

  StreamServer* const server_;
  const Options options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex mutex_;
  bool started_ = false;
  bool stopping_ = false;
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace streamasp

#endif  // STREAMASP_SERVER_TCP_H_
