#ifndef STREAMASP_SERVER_WIRE_H_
#define STREAMASP_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "asp/symbol_table.h"
#include "server/session.h"
#include "stream/triple.h"
#include "util/status.h"

namespace streamasp {

/// The session server's wire protocol: transport payloads are UTF-8
/// text, one request or reply per payload, lines separated by '\n'. The
/// TCP transport frames each payload with a 4-byte big-endian length
/// prefix; the in-proc transport passes payloads through unframed.
///
/// Requests (first line = verb, space-separated fields):
///   ping
///   open <session> [key=value ...]        + program-text lines
///   push <session>                        + one triple per line
///   flush <session>
///   stats <session>
///   close <session>
///
/// open options: window=N slide=N shards=N async=0|1 inflight=N
///   workers=N reuse=none|ground|solve queue=N admission=block|reject
///   batch=N weight=N max_queued=N max_inflight=N v=N
///
/// Versioning: `v=N` on open declares the client's protocol version.
/// The server rejects versions it does not speak (code=
/// unsupported_version) and stamps its own version onto the open reply
/// (`ok open <session> v=1`), so clients negotiate by sending their
/// version and reading back the server's. An open without `v` is
/// accepted as a current-version client (the field predates no release,
/// so there is no legacy fleet to protect — omitting it just skips the
/// client-side check).
///
/// Triple lines: `<predicate> <subject> [<object>]` — integer tokens
/// become integer terms, anything else is interned as a symbol.
///
/// Replies (one per request, in request order):
///   ok open <session> v=1
///   ok <verb> <session>
///   ok stats <session>                    + key=value lines
///   error <verb> <session> code=<slug> <message>
///
/// The error `code=` field is the machine-readable half of the reply
/// (ErrorCodeSlug: quota_exceeded, unknown_session, invalid_argument,
/// failed_precondition, unsupported_version, internal); the message
/// after it is human-oriented and unstable.
///
/// Subscription events (interleaved between replies, never inside one):
///   event <session> result seq=N completeness=C items=N answers=N
///                                         + one rendered answer per line
///   event <session> error seq=N <message>
///   event <session> shed seq=N items=N

/// The protocol version this server speaks (stamped on open replies).
inline constexpr int64_t kProtocolVersion = 1;

/// Frame-size ceiling: a decoder rejects larger frames as a protocol
/// error instead of buffering unboundedly.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// Wraps one payload in the TCP framing: 4-byte big-endian length +
/// payload bytes.
std::string EncodeFrame(std::string_view payload);

/// Incremental decoder for the length-prefixed stream: feed raw bytes,
/// pop complete payloads. After status() goes bad (oversized frame) the
/// decoder stays wedged — close the connection.
class FrameDecoder {
 public:
  void Feed(std::string_view data);

  /// Moves the next complete payload into `*payload`. False when no
  /// complete frame is buffered (or the decoder is wedged).
  bool Next(std::string* payload);

  const Status& status() const { return status_; }

 private:
  std::string buffer_;
  size_t offset_ = 0;  ///< Consumed prefix of buffer_.
  Status status_ = OkStatus();
};

/// One parsed client request.
struct WireRequest {
  enum class Command { kPing, kOpen, kPush, kFlush, kStats, kClose };

  Command command = Command::kPing;
  std::string session;

  /// kOpen only: options assembled from key=value fields; program text
  /// from the remaining lines lands in options.program_text.
  SessionOptions options;

  /// kPush only: the triple lines (unparsed — the broker parses them
  /// against the target session's symbol table).
  std::vector<std::string> lines;

  /// kOpen only: the client's declared protocol version (`v=N`).
  /// has_version is false when the open carried no `v` field — such
  /// opens are accepted as current-version clients.
  int64_t protocol_version = kProtocolVersion;
  bool has_version = false;
};

/// Parses one request payload. kInvalidArgument on an unknown verb,
/// missing session, or malformed option.
StatusOr<WireRequest> ParseRequest(std::string_view payload);

/// Parses one `<predicate> <subject> [<object>]` line against `symbols`.
StatusOr<Triple> ParseTripleLine(std::string_view line, SymbolTable& symbols);

/// The machine-readable error slug for a status code: the stable
/// contract clients switch on (the message text is not). kNotFound maps
/// to unknown_session and kResourceExhausted to quota_exceeded — the
/// only entities the protocol looks up or limits are sessions and their
/// quotas.
std::string_view ErrorCodeSlug(StatusCode code);

/// Reply/event formatting (the broker's half of the protocol).
std::string FormatOk(std::string_view verb, std::string_view session);
/// The versioned open acknowledgement: `ok open <session> v=1`.
std::string FormatOpenOk(std::string_view session);
/// `error <verb> <session> code=<slug> <message>`, slug derived from
/// status.code() via ErrorCodeSlug.
std::string FormatError(std::string_view verb, std::string_view session,
                        const Status& status);
/// Same, with an explicit slug overriding the derived one (the broker's
/// unsupported_version rejection rides an kInvalidArgument status).
std::string FormatError(std::string_view verb, std::string_view session,
                        const Status& status, std::string_view code);
std::string FormatStats(std::string_view session, const SessionStats& stats);
std::string FormatEvent(const SessionEvent& event);

}  // namespace streamasp

#endif  // STREAMASP_SERVER_WIRE_H_
