#ifndef STREAMASP_SERVER_WIRE_H_
#define STREAMASP_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "asp/symbol_table.h"
#include "server/session.h"
#include "stream/triple.h"
#include "util/status.h"

namespace streamasp {

/// The session server's wire protocol: transport payloads are UTF-8
/// text, one request or reply per payload, lines separated by '\n'. The
/// TCP transport frames each payload with a 4-byte big-endian length
/// prefix; the in-proc transport passes payloads through unframed.
///
/// Requests (first line = verb, space-separated fields):
///   ping
///   open <session> [key=value ...]        + program-text lines
///   push <session>                        + one triple per line
///   flush <session>
///   stats <session>
///   close <session>
///
/// open options: window=N slide=N shards=N async=0|1 inflight=N
///   workers=N reuse=none|ground|solve queue=N admission=block|reject
///   batch=N
///
/// Triple lines: `<predicate> <subject> [<object>]` — integer tokens
/// become integer terms, anything else is interned as a symbol.
///
/// Replies (one per request, in request order):
///   ok <verb> <session>
///   ok stats <session>                    + key=value lines
///   error <verb> <session> <message>
///
/// Subscription events (interleaved between replies, never inside one):
///   event <session> result seq=N completeness=C items=N answers=N
///                                         + one rendered answer per line
///   event <session> error seq=N <message>
///   event <session> shed seq=N items=N

/// Frame-size ceiling: a decoder rejects larger frames as a protocol
/// error instead of buffering unboundedly.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// Wraps one payload in the TCP framing: 4-byte big-endian length +
/// payload bytes.
std::string EncodeFrame(std::string_view payload);

/// Incremental decoder for the length-prefixed stream: feed raw bytes,
/// pop complete payloads. After status() goes bad (oversized frame) the
/// decoder stays wedged — close the connection.
class FrameDecoder {
 public:
  void Feed(std::string_view data);

  /// Moves the next complete payload into `*payload`. False when no
  /// complete frame is buffered (or the decoder is wedged).
  bool Next(std::string* payload);

  const Status& status() const { return status_; }

 private:
  std::string buffer_;
  size_t offset_ = 0;  ///< Consumed prefix of buffer_.
  Status status_ = OkStatus();
};

/// One parsed client request.
struct WireRequest {
  enum class Command { kPing, kOpen, kPush, kFlush, kStats, kClose };

  Command command = Command::kPing;
  std::string session;

  /// kOpen only: options assembled from key=value fields; program text
  /// from the remaining lines lands in options.program_text.
  SessionOptions options;

  /// kPush only: the triple lines (unparsed — the broker parses them
  /// against the target session's symbol table).
  std::vector<std::string> lines;
};

/// Parses one request payload. kInvalidArgument on an unknown verb,
/// missing session, or malformed option.
StatusOr<WireRequest> ParseRequest(std::string_view payload);

/// Parses one `<predicate> <subject> [<object>]` line against `symbols`.
StatusOr<Triple> ParseTripleLine(std::string_view line, SymbolTable& symbols);

/// Reply/event formatting (the broker's half of the protocol).
std::string FormatOk(std::string_view verb, std::string_view session);
std::string FormatError(std::string_view verb, std::string_view session,
                        const Status& status);
std::string FormatStats(std::string_view session, const SessionStats& stats);
std::string FormatEvent(const SessionEvent& event);

}  // namespace streamasp

#endif  // STREAMASP_SERVER_WIRE_H_
