#include "server/tcp.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "server/broker.h"
#include "server/wire.h"
#include "util/logging.h"

namespace streamasp {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return InternalError(std::string("fcntl(O_NONBLOCK): ") +
                         std::strerror(errno));
  }
  return OkStatus();
}

}  // namespace

/// One accepted client: its non-blocking socket, the broker serving it,
/// and the frame decoder reassembling requests from the read stream.
/// Reads happen only on the event-loop thread; writes (replies and
/// subscription events) come from whichever thread produced them,
/// serialized by write_mutex_.
struct TcpServer::Connection {
  int fd = -1;
  FrameDecoder decoder;
  std::unique_ptr<SessionBroker> broker;

  std::mutex write_mutex_;
  bool write_failed = false;

  /// Sends one framed payload; after the first failure the connection
  /// goes write-dead (the loop notices EOF/reset and tears down). The
  /// socket is non-blocking, so a full send buffer (EAGAIN) briefly
  /// parks this writer in poll(POLLOUT) — writers are session emitter
  /// threads or the loop thread replying to a request, and the payloads
  /// are small, so the wait is bounded by the client draining.
  void SendFramed(const std::string& payload) {
    const std::string frame = EncodeFrame(payload);
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (write_failed) return;
    size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd writable{};
        writable.fd = fd;
        writable.events = POLLOUT;
        if (::poll(&writable, 1, /*timeout_ms=*/1000) > 0) continue;
        // A client that drains nothing for a full second is treated as a
        // slow-consumer failure rather than blocking the emitter forever.
        write_failed = true;
        return;
      }
      write_failed = true;
      return;
    }
  }
};

TcpServer::TcpServer(StreamServer* server, Options options)
    : server_(server), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return FailedPreconditionError("TcpServer already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError("bind: " + error);
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError("listen: " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError("getsockname: " + error);
  }
  port_ = ntohs(bound.sin_port);
  Status status = SetNonBlocking(listen_fd_);
  if (status.ok()) status = loop_.Watch(listen_fd_, [this] { OnAcceptable(); });
  if (status.ok()) status = loop_.Start();
  if (!status.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  return OkStatus();
}

size_t TcpServer::num_connections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connections_.size();
}

void TcpServer::OnAcceptable() {
  // Level-triggered: drain the accept queue so one wakeup admits every
  // pending client.
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (queue drained) or listener shut down.
    }
    bool at_capacity;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      at_capacity =
          stopping_ || connections_.size() >= options_.max_connections;
    }
    if (at_capacity || !SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    connection->broker = std::make_unique<SessionBroker>(
        server_, [connection_raw = connection.get()](std::string payload) {
          connection_raw->SendFramed(payload);
        });
    {
      std::lock_guard<std::mutex> lock(mutex_);
      connections_.emplace(fd, connection);
    }
    Status watched =
        loop_.Watch(fd, [this, connection] { OnReadable(connection); });
    if (!watched.ok()) {
      STREAMASP_LOG(kWarning)
          << "tcp connection rejected: " << watched.ToString();
      TeardownConnection(connection);
    }
  }
}

void TcpServer::OnReadable(const std::shared_ptr<Connection>& connection) {
  // Level-triggered: drain the socket so one wakeup consumes everything
  // buffered, then dispatch each complete frame inline.
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) {
      TeardownConnection(connection);  // EOF or fatal error.
      return;
    }
    connection->decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
    std::string payload;
    while (connection->decoder.Next(&payload)) {
      connection->broker->HandleRequest(payload);
    }
    if (!connection->decoder.status().ok()) {
      STREAMASP_LOG(kWarning) << "tcp connection dropped: "
                              << connection->decoder.status().ToString();
      TeardownConnection(connection);
      return;
    }
  }
}

void TcpServer::TeardownConnection(
    const std::shared_ptr<Connection>& connection) {
  loop_.Unwatch(connection->fd);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.erase(connection->fd);
  }
  // Destroying the broker drains this connection's sessions; their final
  // emissions still flow through SendFramed (which no-ops once the peer
  // is gone and the first send fails).
  connection->broker.reset();
  ::shutdown(connection->fd, SHUT_RDWR);
  ::close(connection->fd);
}

void TcpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  // Stop the loop first: afterwards no handler runs, so this thread owns
  // every connection and may Unwatch/teardown freely (the EventLoop
  // contract allows Watch/Unwatch while the loop is not running).
  loop_.Stop();
  std::vector<std::shared_ptr<Connection>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    doomed.reserve(connections_.size());
    for (auto& [fd, connection] : connections_) doomed.push_back(connection);
    connections_.clear();
  }
  for (auto& connection : doomed) {
    loop_.Unwatch(connection->fd);
    connection->broker.reset();  // Drains the connection's sessions.
    ::shutdown(connection->fd, SHUT_RDWR);
    ::close(connection->fd);
  }
  if (listen_fd_ >= 0) {
    loop_.Unwatch(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace streamasp
