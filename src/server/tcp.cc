#include "server/tcp.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/broker.h"
#include "server/wire.h"
#include "util/logging.h"

namespace streamasp {

/// One accepted client: its socket, the broker serving it, and the
/// reader thread pumping frames into the broker.
struct TcpServer::Connection {
  int fd = -1;
  std::thread reader;
  std::mutex write_mutex_;
  bool write_failed = false;

  /// Sends one framed payload; after the first failure the connection
  /// goes write-dead (the reader notices EOF/reset and tears down).
  void SendFramed(const std::string& payload) {
    const std::string frame = EncodeFrame(payload);
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (write_failed) return;
    size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        write_failed = true;
        return;
      }
      sent += static_cast<size_t>(n);
    }
  }
};

TcpServer::TcpServer(StreamServer* server, Options options)
    : server_(server), options_(options) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return FailedPreconditionError("TcpServer already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError("bind: " + error);
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError("listen: " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError("getsockname: " + error);
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void TcpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener shut down (Stop) or fatally broken.
    }
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      connections_.push_back(connection);
    }
    connection->reader =
        std::thread([this, connection] { ServeConnection(connection); });
  }
}

void TcpServer::ServeConnection(std::shared_ptr<Connection> connection) {
  {
    // Broker scope: destroyed (draining this connection's sessions)
    // before the reader exits, while SendFramed is still safe to call.
    SessionBroker broker(server_, [connection](std::string payload) {
      connection->SendFramed(payload);
    });
    FrameDecoder decoder;
    char buffer[16384];
    bool open = true;
    while (open) {
      const ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
      std::string payload;
      while (decoder.Next(&payload)) broker.HandleRequest(payload);
      if (!decoder.status().ok()) {
        STREAMASP_LOG(kWarning)
            << "tcp connection dropped: " << decoder.status().ToString();
        open = false;
      }
    }
  }
  ::shutdown(connection->fd, SHUT_RDWR);
}

void TcpServer::Stop() {
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    connections.swap(connections_);
  }
  if (listen_fd_ >= 0) {
    // Unblocks accept() so the accept thread exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& connection : connections) {
    // Unblocks the reader's recv(); its broker then drains the sessions.
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
    ::close(connection->fd);
  }
}

}  // namespace streamasp
