#include "server/broker.h"

#include <deque>
#include <utility>
#include <vector>

namespace streamasp {

SessionBroker::SessionBroker(StreamServer* server, SendFn send)
    : server_(server), send_(std::move(send)) {}

SessionBroker::~SessionBroker() {
  std::vector<std::string> doomed;
  {
    std::lock_guard<std::mutex> lock(owned_mutex_);
    doomed.assign(owned_.begin(), owned_.end());
    owned_.clear();
  }
  // Draining a session flushes its last emissions through Send — the
  // send_ callable must stay valid until these closes finish, which is
  // why transports destroy the broker before their own send machinery.
  for (const std::string& name : doomed) {
    // kNotFound just means someone closed it server-side already.
    Status status = server_->CloseSession(name);
    (void)status;
  }
}

void SessionBroker::Send(std::string payload) {
  std::lock_guard<std::mutex> lock(send_mutex_);
  send_(std::move(payload));
}

void SessionBroker::HandleRequest(std::string_view payload) {
  StatusOr<WireRequest> parsed = ParseRequest(payload);
  if (!parsed.ok()) {
    Send(FormatError("request", "", parsed.status()));
    return;
  }
  WireRequest& request = *parsed;
  switch (request.command) {
    case WireRequest::Command::kPing:
      Send(FormatOk("ping", ""));
      return;
    case WireRequest::Command::kOpen:
      HandleOpen(std::move(request));
      return;
    case WireRequest::Command::kPush:
      HandlePush(request);
      return;
    case WireRequest::Command::kFlush: {
      StatusOr<std::shared_ptr<StreamSession>> session =
          server_->FindSession(request.session);
      if (!session.ok()) {
        Send(FormatError("flush", request.session, session.status()));
        return;
      }
      Status status = (*session)->Flush();
      Send(status.ok() ? FormatOk("flush", request.session)
                       : FormatError("flush", request.session, status));
      return;
    }
    case WireRequest::Command::kStats: {
      StatusOr<std::shared_ptr<StreamSession>> session =
          server_->FindSession(request.session);
      if (!session.ok()) {
        Send(FormatError("stats", request.session, session.status()));
        return;
      }
      Send(FormatStats(request.session, (*session)->stats()));
      return;
    }
    case WireRequest::Command::kClose: {
      {
        std::lock_guard<std::mutex> lock(owned_mutex_);
        owned_.erase(request.session);
      }
      Status status = server_->CloseSession(request.session);
      Send(status.ok() ? FormatOk("close", request.session)
                       : FormatError("close", request.session, status));
      return;
    }
  }
}

void SessionBroker::HandleOpen(WireRequest request) {
  const std::string name = request.session;
  if (request.has_version && request.protocol_version != kProtocolVersion) {
    // Reject BEFORE creating anything: a client speaking another version
    // may mean different things by the very options it just sent.
    Send(FormatError(
        "open", name,
        InvalidArgumentError(
            "unsupported protocol version v=" +
            std::to_string(request.protocol_version) +
            " (this server speaks v=" + std::to_string(kProtocolVersion) +
            ")"),
        "unsupported_version"));
    return;
  }
  StatusOr<std::shared_ptr<StreamSession>> session = server_->CreateSession(
      name, std::move(request.options),
      [this](const SessionEvent& event) { Send(FormatEvent(event)); });
  if (!session.ok()) {
    Send(FormatError("open", name, session.status()));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(owned_mutex_);
    owned_.insert(name);
  }
  Send(FormatOpenOk(name));
}

void SessionBroker::HandlePush(const WireRequest& request) {
  StatusOr<std::shared_ptr<StreamSession>> session =
      server_->FindSession(request.session);
  if (!session.ok()) {
    Send(FormatError("push", request.session, session.status()));
    return;
  }
  std::vector<Triple> batch;
  batch.reserve(request.lines.size());
  for (const std::string& line : request.lines) {
    StatusOr<Triple> triple = ParseTripleLine(line, (*session)->symbols());
    if (!triple.ok()) {
      Send(FormatError("push", request.session, triple.status()));
      return;
    }
    batch.push_back(*triple);
  }
  Status status = (*session)->Push(std::move(batch));
  Send(status.ok() ? FormatOk("push", request.session)
                   : FormatError("push", request.session, status));
}

namespace {

/// The in-process transport: Send() executes the request inline on the
/// calling thread through a private broker; server→client payloads are
/// delivered to the Receive handler (buffered and replayed in order when
/// none is installed yet). The client handler must not call Send() from
/// inside a delivery — deliveries are serialized on the same lock.
class InProcConnection : public SessionTransport {
 public:
  explicit InProcConnection(StreamServer* server)
      : broker_(std::make_unique<SessionBroker>(
            server, [this](std::string payload) {
              DeliverToClient(std::move(payload));
            })) {}

  ~InProcConnection() override { Close(); }

  Status Send(std::string payload) override {
    std::lock_guard<std::mutex> lock(request_mutex_);
    if (broker_ == nullptr) {
      return FailedPreconditionError("connection is closed");
    }
    broker_->HandleRequest(payload);
    return OkStatus();
  }

  void Receive(PayloadHandler handler) override {
    std::deque<std::string> replay;
    {
      std::lock_guard<std::mutex> lock(client_mutex_);
      handler_ = std::move(handler);
      replay.swap(buffered_);
      if (handler_ == nullptr) return;
      for (std::string& payload : replay) handler_(std::move(payload));
    }
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(request_mutex_);
    // Destroying the broker drains this connection's sessions; their
    // final events still flow through DeliverToClient.
    broker_.reset();
  }

 private:
  void DeliverToClient(std::string payload) {
    std::lock_guard<std::mutex> lock(client_mutex_);
    if (handler_ != nullptr) {
      handler_(std::move(payload));
    } else {
      buffered_.push_back(std::move(payload));
    }
  }

  std::mutex request_mutex_;
  std::unique_ptr<SessionBroker> broker_;

  std::mutex client_mutex_;
  PayloadHandler handler_;
  std::deque<std::string> buffered_;
};

}  // namespace

std::unique_ptr<SessionTransport> StreamServer::Connect() {
  return std::make_unique<InProcConnection>(this);
}

}  // namespace streamasp
