#ifndef STREAMASP_SERVER_SESSION_H_
#define STREAMASP_SERVER_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "asp/program.h"
#include "streamrule/engine.h"
#include "util/bounded_queue.h"
#include "util/status.h"

namespace streamasp {

/// Lifecycle of a stream session.
///
///   kRunning ──Close()──► kDraining ──(queue drained, engine flushed)──►
///   kClosed
///
/// Push/Flush are accepted in kRunning only; Close is idempotent from any
/// state and safe under in-flight windows (it drains what was admitted —
/// every admitted batch is windowed, reasoned, and delivered before the
/// session reports kClosed).
enum class SessionState { kRunning, kDraining, kClosed };

constexpr const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kRunning:
      return "running";
    case SessionState::kDraining:
      return "draining";
    case SessionState::kClosed:
      return "closed";
  }
  return "unknown";
}

/// One delivery of a session's ordered emission stream: the engine's
/// EmissionEvent plus the session context a multi-tenant consumer needs
/// to route and render it. Delivered from the session's engine thread
/// (pump, emitter, or merge — one at a time, in strictly increasing
/// session_sequence order); the handler must not call back into the
/// session.
struct SessionEvent {
  /// The session's name (stable for the session's lifetime).
  const std::string& session;
  /// Per-session emission counter, contiguous from 0 across all kinds.
  uint64_t session_sequence;
  /// The session's symbol table — what renders this event's answers.
  const SymbolTable& symbols;
  /// The underlying ordered emission (result | error | shed). Owned by
  /// the delivering thread; contents may be stolen.
  EmissionEvent& event;
};

using SessionEventHandler = std::function<void(const SessionEvent&)>;

/// Everything a client registers a session with: the program text and
/// the engine spec, plus the session's own admission control.
struct SessionOptions {
  /// ASP program source, parsed against the session's private symbol
  /// table (sessions share no symbols — full tenant isolation).
  std::string program_text;

  /// Engine shape and tuning (streamrule/engine.h): window geometry,
  /// shards, async staging, reuse flags, backpressure, admission filter.
  EngineConfig engine;

  /// Bound on batches queued between Push and the session's pump thread
  /// — the per-session admission budget.
  size_t ingest_queue_capacity = 16;

  /// What Push does when the session is saturated (the ingest queue is
  /// at capacity): kBlock backpressures the caller (lossless); kReject
  /// refuses the batch with kResourceExhausted so one tenant's overload
  /// never blocks the transport thread serving others. kDropOldest is
  /// rejected at Create — silently dropping accepted batches would break
  /// the session's at-most-once-refusal accounting. On a shared reasoner
  /// pool (inline pump), kReject additionally switches the engine's
  /// window queue to rejecting backpressure, so saturation sheds windows
  /// (counted, tombstoned) rather than blocking the pushing transport
  /// thread.
  BackpressurePolicy admission = BackpressurePolicy::kBlock;

  /// DRR weight of this session on the server's shared reasoner pool
  /// (>= 1): its share of reasoning dispatch slots while contending with
  /// other sessions. Ignored (but still validated) when the session runs
  /// on dedicated threads instead of a shared pool.
  size_t weight = 1;

  /// Cap on this session's concurrently reasoning windows on the shared
  /// pool (async engines only). 0 picks the engine default
  /// (min(max_inflight_windows, pool threads)).
  size_t max_inflight = 0;

  /// Per-session window quota (async engines only): when > 0, a window
  /// closing while this many are already admitted-but-undelivered is
  /// shed at the ingest boundary — counted and tombstoned — instead of
  /// queued, bounding the session's buffered reasoning debt regardless
  /// of backpressure policy.
  size_t max_queued_windows = 0;
};

/// Structural validation of SessionOptions, applied by Create before any
/// engine is built. Returns kInvalidArgument with a table-testable
/// message; the engine validator catches the deeper pipeline rules.
Status ValidateSessionOptions(const SessionOptions& options);

/// Point-in-time view of a session (SessionStats from stats(), safe from
/// any thread).
struct SessionStats {
  SessionState state = SessionState::kRunning;
  uint64_t pushed_batches = 0;
  uint64_t pushed_items = 0;
  /// Batches/items refused by admission control (kReject saturation).
  uint64_t rejected_batches = 0;
  uint64_t rejected_items = 0;
  /// Emissions delivered to the event handler, by kind.
  uint64_t result_events = 0;
  uint64_t error_events = 0;
  uint64_t shed_events = 0;
  /// The engine's unified snapshot.
  EngineStats engine;

  uint64_t events() const {
    return result_events + error_events + shed_events;
  }
};

/// One named, single-tenant stream session: a private symbol table, a
/// parsed program, a StreamEngine, and a bounded ingest queue. Clients
/// push triple batches and subscribe to the ordered SessionEvent stream.
///
/// The ingest queue is drained in one of two modes:
///   * Dedicated pump thread (sync or standalone-async engines): the
///     pump decouples transport threads from reasoning, so a slow
///     session backpressures (or sheds) its own queue without stalling
///     its siblings.
///   * Collaborative inline pump (async engines on a shared reasoner
///     pool): whichever pusher finds no active pumper drains the queue
///     itself under a baton, so the session costs zero threads. Safe
///     because a pooled async PushBatch only windows and enqueues —
///     reasoning happens on the pool — and FIFO order is preserved by
///     the single-baton drain. This is what keeps a 64-session server at
///     O(pool + 1 event loop) threads instead of O(sessions).
///
/// Thread-safety: Push/Flush/Close/stats from any thread, concurrently.
/// The event handler must not call back into the session (the pump or
/// emitter delivering it would deadlock on itself).
class StreamSession {
 public:
  /// Parses the program, builds the engine, starts the pump. Fails on an
  /// unparsable/invalid program or options the engine validator rejects.
  static StatusOr<std::unique_ptr<StreamSession>> Create(
      std::string name, SessionOptions options, SessionEventHandler handler);

  /// Closes (drains) the session, then joins the pump.
  ~StreamSession();

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Queues one batch for the pump. Returns kFailedPrecondition when the
  /// session is not running, kResourceExhausted when kReject admission
  /// refuses a saturated push; blocks instead under kBlock admission.
  Status Push(std::vector<Triple> batch);

  /// Live barrier: blocks until everything pushed before this call has
  /// been windowed, reasoned, and delivered (the trailing partial window
  /// included). The session remains running. kFailedPrecondition when
  /// not running.
  Status Flush();

  /// Drains and closes: stops admission (kDraining), lets the pump
  /// finish every queued batch, flushes the engine end-of-stream, then
  /// reports kClosed. Idempotent and thread-safe — concurrent and
  /// repeated calls all return after the session is closed.
  void Close();

  SessionState state() const;
  SessionStats stats() const;

  const std::string& name() const { return name_; }
  /// The session's private symbol table (what ParseTripleLine and event
  /// rendering use). Thread-safe by SymbolTable's own contract.
  SymbolTable& symbols() { return *symbols_; }
  const Program& program() const { return *program_; }

 private:
  /// One unit of pump work: a batch to push, then optionally a flush
  /// barrier to acknowledge.
  struct IngestCommand {
    std::vector<Triple> batch;
    bool flush = false;
  };

  StreamSession(std::string name, SessionOptions options,
                SessionEventHandler handler);

  Status Init(const std::string& program_text);
  void PumpLoop();
  /// One ingest command end to end: engine push/flush, flush-ticket ack,
  /// queue-depth bookkeeping. Shared by both pump modes.
  void ProcessCommand(IngestCommand& command);
  /// Collaborative pump (inline mode): drains the ingest queue under the
  /// pump baton, or returns immediately when another pumper holds it (the
  /// holder's TryPop re-check under pump_mutex_ will see our command).
  void PumpDrain();
  /// The engine's emission handler: wraps events with session context.
  void OnEmission(EmissionEvent& event);

  const std::string name_;
  SessionOptions options_;
  SessionEventHandler handler_;

  SymbolTablePtr symbols_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<StreamEngine> engine_;

  BoundedQueue<IngestCommand> queue_;
  /// Depth mirror for kReject admission (atomic so Push never takes the
  /// pump's locks): incremented before enqueue, decremented after the
  /// pump finishes a command.
  std::atomic<size_t> queued_commands_{0};
  /// True when the engine runs async on a shared pool: no pump thread is
  /// spawned; pushers drain the queue collaboratively via PumpDrain.
  const bool inline_pump_;
  std::thread pump_;
  std::mutex pump_mutex_;
  std::condition_variable pump_cv_;
  bool pumping_ = false;  ///< Baton: guarded by pump_mutex_.

  mutable std::mutex state_mutex_;
  SessionState state_ = SessionState::kRunning;
  std::condition_variable closed_cv_;
  bool close_started_ = false;

  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  uint64_t flush_tickets_ = 0;
  uint64_t flush_completed_ = 0;

  std::atomic<uint64_t> pushed_batches_{0};
  std::atomic<uint64_t> pushed_items_{0};
  std::atomic<uint64_t> rejected_batches_{0};
  std::atomic<uint64_t> rejected_items_{0};
  std::atomic<uint64_t> result_events_{0};
  std::atomic<uint64_t> error_events_{0};
  std::atomic<uint64_t> shed_events_{0};
  std::atomic<uint64_t> next_event_sequence_{0};
};

}  // namespace streamasp

#endif  // STREAMASP_SERVER_SESSION_H_
