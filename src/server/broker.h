#ifndef STREAMASP_SERVER_BROKER_H_
#define STREAMASP_SERVER_BROKER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "server/server.h"
#include "server/wire.h"

namespace streamasp {

/// The server end of one connection: parses wire-protocol request
/// payloads, drives the StreamServer, and pushes reply/event payloads
/// back through `send`. One broker per connection; HandleRequest must be
/// serialized by the caller (the transport's reader thread), but `send`
/// is called both from HandleRequest (replies) and from session engine
/// threads (subscription events) — the broker serializes those itself,
/// so `send` never runs concurrently with itself.
///
/// The broker owns the sessions this connection opened: its destructor
/// closes (drains) any still-open ones, which is what gives a dropped
/// TCP connection or a destroyed in-proc transport clean teardown under
/// in-flight windows.
class SessionBroker {
 public:
  using SendFn = std::function<void(std::string payload)>;

  SessionBroker(StreamServer* server, SendFn send);

  /// Closes every session this connection opened (draining in-flight
  /// windows). No sends happen after the destructor returns.
  ~SessionBroker();

  SessionBroker(const SessionBroker&) = delete;
  SessionBroker& operator=(const SessionBroker&) = delete;

  /// Handles one request payload, sending exactly one reply (events may
  /// interleave before it, never inside it).
  void HandleRequest(std::string_view payload);

 private:
  void HandleOpen(WireRequest request);
  void HandlePush(const WireRequest& request);
  void Send(std::string payload);

  StreamServer* const server_;
  SendFn send_;
  std::mutex send_mutex_;

  /// Names of the sessions opened over this connection and not yet
  /// closed through it.
  std::mutex owned_mutex_;
  std::unordered_set<std::string> owned_;
};

}  // namespace streamasp

#endif  // STREAMASP_SERVER_BROKER_H_
