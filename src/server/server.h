#ifndef STREAMASP_SERVER_SERVER_H_
#define STREAMASP_SERVER_SERVER_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "server/session.h"
#include "stream/transport.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace streamasp {

/// Server-wide tenancy limits and the shared reasoning substrate.
struct ServerConfig {
  /// Bound on concurrently open sessions; CreateSession refuses beyond
  /// it with kResourceExhausted.
  size_t max_sessions = 64;

  /// Default reasoner thread budget applied to an UNPOOLED session whose
  /// config leaves reasoner threads at 0 (the engine's "all cores"
  /// default would let one tenant claim the machine). 0 disables the
  /// override. Pooled sessions never receive it: their reasoning runs
  /// inline on shared-pool workers, and a per-slot inner pool would
  /// multiply the thread count right back up.
  size_t session_reasoner_threads = 2;

  /// Workers in the process-wide SharedReasonerPool every async session's
  /// reasoning runs on, scheduled by weighted deficit round-robin across
  /// per-session lanes (util/thread_pool.h). The default sizes the pool
  /// to the machine, making total reasoning threads O(hardware) instead
  /// of O(sessions x workers). 0 disables pooling entirely — every async
  /// session then spawns its own dedicated workers as before. Sync
  /// sessions always reason on their pump thread, pool or not.
  size_t shared_pool_threads = DefaultThreadCount();
};

/// Structural validation of ServerConfig with table-testable messages.
Status ValidateServerConfig(const ServerConfig& config);

/// The multi-tenant front end: a named-session registry over shared
/// reasoner resources. Transports call CreateSession/FindSession/
/// CloseSession; each session runs its own engine, pump, and symbol
/// table, isolated from its siblings except for CPU.
///
/// Sessions are handed out as shared_ptr so a connection can keep
/// pushing into a session another thread is concurrently closing — the
/// session object outlives registry removal and refuses cleanly.
///
/// Thread-safe throughout.
class StreamServer {
 public:
  /// A config rejected by ValidateServerConfig is corrected to the
  /// nearest valid value (max_sessions 0 -> 1) so a default-constructed
  /// server is always usable; callers wanting the error surface validate
  /// first.
  explicit StreamServer(ServerConfig config = {});

  /// Closes every remaining session.
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Registers and starts a session. kInvalidArgument on a duplicate
  /// name, kResourceExhausted at max_sessions; otherwise whatever
  /// StreamSession::Create reports (parse/validation failures).
  StatusOr<std::shared_ptr<StreamSession>> CreateSession(
      std::string name, SessionOptions options, SessionEventHandler handler);

  /// kNotFound when no session has this name.
  StatusOr<std::shared_ptr<StreamSession>> FindSession(
      const std::string& name) const;

  /// Removes the session from the registry and drains it (blocking until
  /// kClosed). kNotFound when absent — a second CloseSession of the same
  /// name reports kNotFound while the first blocks in Close(), which is
  /// the idempotence transports want.
  Status CloseSession(const std::string& name);

  /// Closes every open session (registry order is unspecified; each
  /// close drains fully).
  void CloseAll();

  std::vector<std::string> session_names() const;
  size_t num_sessions() const;
  const ServerConfig& config() const { return config_; }

  /// The process-wide reasoning pool async sessions are scheduled on
  /// (null when config.shared_pool_threads == 0).
  const std::shared_ptr<SharedReasonerPool>& shared_pool() const {
    return pool_;
  }

  /// Opens an in-process connection speaking the wire protocol
  /// (src/server/wire.h) against this server — the same code path the
  /// TCP transport drives, minus the socket. Defined in broker.cc.
  std::unique_ptr<SessionTransport> Connect();

 private:
  const ServerConfig config_;
  /// Outlives every session: sessions hold it by shared_ptr through
  /// their pipeline options, so late session teardown stays safe even if
  /// the server dies first.
  std::shared_ptr<SharedReasonerPool> pool_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<StreamSession>> sessions_;
};

}  // namespace streamasp

#endif  // STREAMASP_SERVER_SERVER_H_
