#ifndef STREAMASP_STREAMRULE_REASONER_H_
#define STREAMASP_STREAMRULE_REASONER_H_

#include <cstdint>
#include <vector>

#include "asp/program.h"
#include "ground/grounder.h"
#include "ground/incremental_grounder.h"
#include "solve/incremental_solver.h"
#include "solve/solver.h"
#include "stream/format.h"
#include "stream/triple.h"
#include "streamrule/answer.h"
#include "util/status.h"

namespace streamasp {

/// Configuration of a reasoner instance.
struct ReasonerOptions {
  GroundingOptions grounding;
  SolverOptions solving;

  /// Apply the program's #show projection to the returned answers.
  bool project_to_shown = true;

  /// Reuse grounding across overlapping windows: the owning layer (the
  /// parallel reasoner) keeps one IncrementalGrounder per partition
  /// sub-stream and routes windows through the incremental Process
  /// overload instead of batch-grounding from scratch. Answers are
  /// unchanged (see ground/incremental_grounder.h); only the grounding
  /// work shrinks to the window delta.
  ///
  /// Solving reuse rides the same routing: with solving.reuse_solving set
  /// the owning layer pairs each partition grounder with a persistent
  /// IncrementalSolver fed by the grounder's GroundingDelta, and the
  /// grounder skips its per-window output assembly/simplification pass
  /// (the solver consumes the cached store directly). reuse_solving
  /// implies reuse_grounding; disjunctive programs keep the cold solve
  /// path (see solve/incremental_solver.h).
  bool reuse_grounding = false;

  /// Tuning for the incremental cache (used when reuse_grounding is set).
  IncrementalGroundingOptions incremental;
};

/// The outcome of reasoning over one window.
struct ReasonerResult {
  std::vector<GroundAnswer> answers;

  /// End-to-end latency in milliseconds, including RDF→ASP conversion as
  /// the paper requires, plus the breakdown.
  double latency_ms = 0;
  double convert_ms = 0;
  double ground_ms = 0;
  double solve_ms = 0;

  GroundingStats grounding;
  /// Solver reuse counters (all zero on the cold solve path).
  SolverStats solving;
};

/// The reasoner R of the StreamRule architecture (the dashed box of
/// Figure 1): data-format conversion + grounding + stable-model solving
/// over one whole input window.
///
/// Thread-compatible: Process() is const and keeps no mutable state, so
/// the parallel reasoner PR can run one Reasoner per worker thread over a
/// shared Program/SymbolTable.
class Reasoner {
 public:
  /// `program` must outlive the reasoner. The data format processor is
  /// configured from the program's declared input predicates.
  Reasoner(const Program* program, ReasonerOptions options = {});

  /// Full pipeline on a triple window: convert → ground → solve.
  StatusOr<ReasonerResult> Process(const TripleWindow& window) const;

  /// Incremental variant: grounds through `grounder` (caller-owned, one
  /// per sub-stream, calls serialized by the caller), reusing the cached
  /// instantiation of the previous window. The window's expired/admitted
  /// delta (when present) is converted alongside the items and handed to
  /// the grounder as a diff hint. Passing a null grounder falls back to
  /// the batch path.
  ///
  /// `solver` optionally carries the paired persistent IncrementalSolver
  /// (same ownership and serialization contract as the grounder): when
  /// non-null, the solve phase patches it with the grounder's
  /// GroundingDelta instead of building a cold engine over the assembled
  /// output — pair it with a grounder whose assemble_output is off. Null
  /// keeps the cold Solver::Solve tail.
  StatusOr<ReasonerResult> Process(const TripleWindow& window,
                                   IncrementalGrounder* grounder,
                                   IncrementalSolver* solver = nullptr) const;

  /// Same pipeline when the caller already has ASP facts.
  StatusOr<ReasonerResult> ProcessFacts(const std::vector<Atom>& facts) const;

  /// Fact-level incremental variant; `delta` and `solver` may be null.
  StatusOr<ReasonerResult> ProcessFactsIncremental(
      uint64_t sequence, const std::vector<Atom>& facts,
      const IncrementalGrounder::FactDelta* delta,
      IncrementalGrounder* grounder,
      IncrementalSolver* solver = nullptr) const;

  const Program& program() const { return *program_; }

 private:
  /// Shared solve + answer-extraction tail of the cold Process variants.
  Status SolveGround(const GroundProgram& ground, ReasonerResult* result) const;

  /// Warm tail: patches `solver` with the grounder's last delta and
  /// enumerates. A detectably out-of-sync mirror is repaired in place by
  /// invalidating both engines and regrounding the window once.
  Status SolveIncremental(uint64_t sequence, const std::vector<Atom>& facts,
                          IncrementalGrounder* grounder,
                          IncrementalSolver* solver,
                          ReasonerResult* result) const;

  /// Maps solver models (dense ids of `atoms`) to projected, normalized
  /// GroundAnswers in one pass per model: atoms outside the #show
  /// projection are filtered during extraction rather than copied and
  /// projected afterwards.
  void ExtractAnswers(const AtomTable& atoms,
                      const std::vector<AnswerSet>& models,
                      ReasonerResult* result) const;

  const Program* program_;
  ReasonerOptions options_;
  DataFormatProcessor format_;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_REASONER_H_
