#ifndef STREAMASP_STREAMRULE_PIPELINE_H_
#define STREAMASP_STREAMRULE_PIPELINE_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "depgraph/decomposition.h"
#include "stream/query_processor.h"
#include "streamrule/accuracy.h"
#include "streamrule/emission.h"
#include "streamrule/parallel_reasoner.h"
#include "util/bounded_queue.h"
#include "util/status.h"

namespace streamasp {

/// Configuration for the end-to-end pipeline.
struct PipelineOptions {
  /// Tuple-based window size handed to the reasoning layer.
  size_t window_size = 10000;

  /// Sliding windows: emit a window every `window_slide` surviving items
  /// once the first window_size items have arrived, re-processing the
  /// overlapping suffix (CQELS/C-SPARQL semantics). 0 or == window_size
  /// keeps tumbling windows. Sliding windows carry expired/admitted
  /// deltas, which reuse_grounding consumes. In the sharded engine the
  /// slide is global: the router punctuates every shard with its routed
  /// split of the global delta at each boundary (see
  /// external_delta_punctuation).
  size_t window_slide = 0;

  /// Internal (set by the sharded engine, leave false elsewhere): window
  /// boundaries and eviction are driven externally through
  /// CloseWindow(WindowDelta) instead of by this pipeline's windower —
  /// the query processor only retains survivors between punctuations and
  /// window_size/window_slide stop mattering. The emitted windows carry
  /// the injected deltas, so reuse_grounding/reuse_solving see the same
  /// incremental shape as internally slid windows.
  bool external_delta_punctuation = false;

  /// Reuse grounding across overlapping windows: each reasoning worker
  /// keeps a per-partition IncrementalGrounder that retracts the rule
  /// instances of expired facts and grounds only what admitted facts
  /// enable, falling back to full re-grounding on oversized deltas (see
  /// ground/incremental_grounder.h). Answers are unchanged; the
  /// reuse counters land in PipelineStats. Shorthand for
  /// reasoner.reasoner.reuse_grounding — Create ORs the two.
  bool reuse_grounding = false;

  /// Reuse solving across overlapping windows: each reasoning worker
  /// pairs its per-partition incremental grounders with persistent
  /// IncrementalSolvers that patch the previous window's search
  /// structures with the grounder's rule delta (and warm-start the
  /// search from the previous model) instead of rebuilding the solver
  /// per window; the grounder's per-window output assembly and
  /// simplification pass is skipped too (see solve/incremental_solver.h).
  /// Implies reuse_grounding. Answers are unchanged; the solver reuse
  /// counters land in PipelineStats. Shorthand for
  /// reasoner.reasoner.solving.reuse_solving — Create ORs the two.
  bool reuse_solving = false;

  /// Run whole-window reasoning (R) instead of dependency-partitioned
  /// parallel reasoning (PR). Mostly for baselines.
  bool disable_partitioning = false;

  /// Run the staged asynchronous engine: ingest/windowing on the caller
  /// thread, reasoning on a pool of workers with several windows in
  /// flight, answers delivered by an ordered emitter. false keeps the
  /// fully synchronous one-window-at-a-time loop (the differential-testing
  /// oracle for the async path).
  bool async = false;

  /// Capacity of the window work queue between the windower and the
  /// reasoning workers (async only). Together with the workers this bounds
  /// how many windows are in flight at once. Must be >= 1.
  size_t max_inflight_windows = 4;

  /// Reasoning worker threads (async only); each owns a full
  /// ParallelReasoner. 0 picks min(max_inflight_windows,
  /// hardware_concurrency). Ignored when shared_pool/shared_queue is set
  /// — pooled pipelines spawn no workers of their own.
  size_t num_reason_workers = 0;

  /// Process-wide shared reasoning executor (async only). When set, the
  /// pipeline spawns NO reasoning workers and NO emitter thread: every
  /// admitted window becomes one unit-cost task on the pipeline's DRR
  /// lane of this pool, reasoned inline on a pool worker (the reasoner's
  /// inner pool collapses to inline mode), and ordered delivery is
  /// collaborative — whichever task (or shedding caller) completes next
  /// drains the reorder buffer. The emission contract is unchanged: one
  /// thread at a time, strictly increasing sequence order, byte-identical
  /// output under kBlock. Backpressure, shedding, admission filtering and
  /// every PipelineStats counter behave exactly as in dedicated-worker
  /// async mode. The pool must outlive the pipeline (holding the
  /// shared_ptr here guarantees it).
  std::shared_ptr<SharedReasonerPool> shared_pool;

  /// DRR weight of this pipeline's lane on shared_pool (>= 1): the share
  /// of dispatch slots it receives while contending with other lanes.
  size_t pool_weight = 1;

  /// Cap on this pipeline's concurrently reasoning windows on the shared
  /// pool. 0 picks min(max_inflight_windows, pool threads). Also sizes
  /// the pipeline's reasoner-slot set — the cap guarantees a free slot
  /// for every running task.
  size_t pool_max_inflight = 0;

  /// Per-session window quota, enforced at the ingest boundary like the
  /// admission filter (async only): when > 0, a window closing while
  /// this many windows are already admitted-but-undelivered is shed as a
  /// rejection (counted, tombstoned, delta folded) instead of queued.
  /// Unlike kReject backpressure this bounds queued + reasoning windows
  /// together, which is the per-tenant quota the session server exposes.
  size_t max_queued_windows = 0;

  /// Internal (set by the sharded engine, leave null elsewhere): a
  /// pre-built pool lane shared by all shard pipelines of one engine, so
  /// the tenant's weight and inflight cap apply engine-wide rather than
  /// per shard. Overrides shared_pool's lane creation; each pipeline
  /// still sizes its own reasoner slots to the lane's cap.
  std::shared_ptr<SharedReasonerPool::Queue> shared_queue;

  /// What Push does when the work queue is full (async only). kBlock is
  /// lossless and keeps async output identical to sync; kDropOldest /
  /// kReject shed load under overload — every shed window is counted in
  /// PipelineStats AND surfaces as a tombstone on the ShedCallback, in
  /// strict sequence order, so ordered consumers (the sharded engine's
  /// merge) release the sequence's slot instead of waiting forever.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;

  /// Caller-controlled admission control (deterministic load shedding):
  /// when set, every window the windower closes is offered to this
  /// predicate on the caller thread; returning false sheds the window
  /// exactly like a kReject refusal — counted as rejected, delta folded
  /// into the next emission, tombstone delivered — independent of the
  /// backpressure policy, and in sync mode too (where the queue-based
  /// policies never engage). The overload test suite uses it to drive
  /// reproducible shed patterns; a production caller can use it as an
  /// upstream load-shedding hook (e.g. shed when a latency SLO is
  /// already blown). Must be pure/thread-safe if the same options object
  /// is shared across shard pipelines.
  std::function<bool(const TripleWindow&)> admission_filter;

  InputDependencyOptions dependency;
  DecompositionOptions decomposition;
  ParallelReasonerOptions reasoner;
};

/// Rolling statistics over every window the pipeline processed. Snapshots
/// are returned by value from StreamRulePipeline::stats(), which is safe
/// to call from any thread while the async engine runs.
struct PipelineStats {
  uint64_t windows = 0;  ///< Windows reasoned successfully.
  uint64_t items = 0;    ///< Items in those windows.
  uint64_t answers = 0;
  double total_latency_ms = 0;  ///< Sum of per-window reasoning latency.
  double max_latency_ms = 0;
  double total_critical_path_ms = 0;
  uint64_t errors = 0;

  // --- async engine counters (zero in sync mode, except that the
  // admission filter counts under rejected_windows in both modes) ---
  uint64_t enqueued_windows = 0;  ///< Windows admitted to the work queue.
  uint64_t dropped_windows = 0;   ///< Evicted by kDropOldest backpressure.
  uint64_t rejected_windows = 0;  ///< Refused by kReject backpressure or
                                  ///< the admission filter.
  size_t max_queue_depth = 0;     ///< Work-queue high-water mark.
  size_t max_reorder_depth = 0;   ///< Ordered-emitter buffer high-water mark.

  // --- graceful-degradation accounting (streamrule/accuracy.h) ---
  uint64_t shed_items = 0;  ///< Items in shed (dropped/rejected) windows.

  // --- grounding reuse counters (zero without reuse_grounding), summed
  // over every partition of every reasoned window ---
  uint64_t incremental_windows = 0;   ///< Partition groundings that reused.
  uint64_t grounding_fallbacks = 0;   ///< Full re-groundings (first window,
                                      ///< oversized delta, compaction).
  uint64_t grounding_rules_retained = 0;
  uint64_t grounding_rules_retracted = 0;
  uint64_t grounding_rules_new = 0;

  // --- solver reuse counters (zero without reuse_solving), summed over
  // every partition of every reasoned window ---
  uint64_t incremental_solve_windows = 0;  ///< Partition solves that patched
                                           ///< the persistent engine.
  uint64_t solve_rebuilds = 0;      ///< Full solver re-ingests (first window,
                                    ///< grounder fallback).
  uint64_t solver_rules_retained = 0;
  uint64_t solver_rules_retracted = 0;
  uint64_t solver_rules_new = 0;
  uint64_t warm_start_hits = 0;     ///< Partition solves guided by the
                                    ///< previous window's model.
  uint64_t atoms_touched = 0;       ///< Atom assignments recomputed (the
                                    ///< touched cone on maintained windows,
                                    ///< the full atom count elsewhere).
  uint64_t assignments_reused = 0;  ///< Assignments carried over verbatim
                                    ///< from the maintained fixpoint.
  uint64_t fixpoint_maintained_windows = 0;  ///< Partition solves answered
                                    ///< by committing the delta patch into
                                    ///< the maintained model alone.

  // --- phase-time totals summed over every partition of every reasoned
  // window (CPU-ish; partitions run concurrently), for the bench gates ---
  double total_ground_ms = 0;
  double total_solve_ms = 0;

  // --- compact-data-plane footprint (high-water marks, not totals):
  // how many bytes the packed plane retains per triple it holds ---
  size_t window_store_bytes = 0;  ///< Peak windower/query retained bytes,
                                  ///< sampled on the caller thread at each
                                  ///< window close.
  size_t atom_table_bytes = 0;    ///< Peak per-window AtomTable bytes
                                  ///< (summed over partitions).
  uint64_t max_window_items = 0;  ///< Largest reasoned window.

  double mean_latency_ms() const {
    return windows == 0 ? 0.0 : total_latency_ms / static_cast<double>(windows);
  }

  /// Windows lost to load shedding (evicted + refused), i.e. the number
  /// of tombstones the pipeline emitted.
  uint64_t shed_windows() const { return dropped_windows + rejected_windows; }

  /// Exact stream-level completeness under load shedding: items reasoned
  /// over items admitted by the windower (accuracy.h CompletenessRatio).
  /// Exactly 1.0 when nothing was shed. Windows lost to reasoning
  /// *errors* are tracked separately (errors) and not counted here.
  double completeness() const {
    return CompletenessRatio(items, items + shed_items);
  }

  /// Retained data-plane bytes (window store + grounding atom table, both
  /// at peak) per triple of the largest window — the machine-independent
  /// memory-compactness gate benched by tools/check_bench_regression.py.
  double bytes_per_triple() const {
    return max_window_items == 0
               ? 0.0
               : static_cast<double>(window_store_bytes + atom_table_bytes) /
                     static_cast<double>(max_window_items);
  }
};

/// The full extended-StreamRule loop behind one call: design-time input
/// dependency analysis, then stream in → filter → window → partition →
/// parallel reasoning → combined answers out. This is the one-stop API the
/// examples hand-assemble from parts; it owns the query processor and the
/// reasoner(s) and reports rolling statistics.
///
///   auto pipeline = StreamRulePipeline::Create(&program, options,
///       [](const TripleWindow& w, const ParallelReasonerResult& r) { ... });
///   pipeline->Push(triple);   // repeatedly
///   pipeline->Flush();        // end of stream
///
/// With options.async set, the run-time is a staged engine:
///
///   caller thread:  ingest → filter → windower ─┐
///                                               ▼
///                        BoundedQueue<TripleWindow> (backpressure)
///                                               ▼
///   worker threads: ParallelReasoner #1..#N (one window each, several
///                                            windows in flight)
///                                               ▼
///   emitter thread: reorder buffer keyed by window sequence →
///                   ResultCallback strictly in window order
///
/// The callback is always invoked from exactly one thread at a time and
/// strictly in window-sequence order, even when windows complete out of
/// order. With the lossless kBlock policy the observable output is
/// byte-identical to async=false.
///
/// Thread-safety contract:
///   * Push / PushBatch / CloseWindow / Flush must be called from one
///     thread at a time (they share the windower's mutable state). That
///     thread need not be the one that created the pipeline.
///   * stats() and the simple accessors are safe from any thread, at any
///     time, including while the async engine is mid-window.
///   * The result (and error) callback runs on the caller thread in sync
///     mode and on the single emitter thread in async mode — never on two
///     threads at once, always in strictly increasing sequence order.
///   * Callbacks must not call back into Push/Flush on the same pipeline
///     (the emitter would deadlock waiting for itself).
class StreamRulePipeline {
 public:
  /// Legacy adapter surface. The primary emission surface is the single
  /// ordered EmissionHandler (streamrule/emission.h); the callback trio
  /// below is kept so existing call sites migrate mechanically — the trio
  /// Create wraps them in one handler internally.
  ///
  /// Called once per processed window with the window and its result. The
  /// window is owned by the delivering thread and discarded right after
  /// the callback returns, so the callback is handed a mutable reference
  /// and may steal the window's contents (lambdas taking
  /// `const TripleWindow&` bind as usual) — which is how the sharded
  /// engine forwards sub-windows to its merge stage without copying.
  using ResultCallback = std::function<void(
      TripleWindow&, const ParallelReasonerResult&)>;

  /// Called when reasoning over a window fails. Delivered from the same
  /// thread and in the same strict sequence order as ResultCallback, so a
  /// consumer that tracks window sequences (e.g. the sharded engine's
  /// ordered merge) sees exactly one delivery — success or error — per
  /// *reasoned* window. Under the lossless kBlock policy every admitted
  /// window is reasoned; a shed window delivers neither callback but
  /// surfaces as a tombstone on the ShedCallback instead, keeping the
  /// one-delivery-per-emitted-window invariant across all three channels.
  /// Installing it also makes sync mode convert reasoning exceptions into
  /// error deliveries (matching async mode) instead of letting them
  /// propagate out of Push, so the one-delivery-per-reasoned-window
  /// guarantee holds in both modes. Optional; without it errors are only
  /// logged and counted in PipelineStats::errors.
  using ErrorCallback = std::function<void(TripleWindow&, const Status&)>;

  /// Tombstone channel: called once per shed window with the unreasoned
  /// window (items intact — the consumer can count the loss; the delta of
  /// a synchronously shed window has already been folded back into the
  /// windower, see StreamQueryProcessor::FoldShedDelta). Delivered from
  /// the same thread and interleaved in the same strict sequence order as
  /// Result/Error callbacks, so an ordered consumer sees exactly one
  /// delivery — result, error, or tombstone — for every window the
  /// windower emitted, and can release per-sequence bookkeeping (the
  /// sharded engine's merge slot) instead of stalling on a gap. Optional;
  /// without it shed windows are still counted in PipelineStats and their
  /// tombstones silently discarded in order.
  using ShedCallback = std::function<void(TripleWindow&)>;

  /// Runs design-time analysis on `program` (which must outlive the
  /// pipeline) and wires the run-time components, delivering every
  /// emitted window — result, error, or shed tombstone — as one ordered
  /// EmissionEvent. With a handler the error channel is always present:
  /// sync-mode reasoning exceptions are converted into kError events
  /// instead of propagating out of Push, exactly as if an ErrorCallback
  /// were installed. Fails when the program is invalid, declares no
  /// usable input predicates, or the options are inconsistent
  /// (streamrule/validate.h).
  static StatusOr<std::unique_ptr<StreamRulePipeline>> Create(
      const Program* program, PipelineOptions options,
      EmissionHandler handler);

  /// Callback-trio adapter over the handler surface, preserving the trio
  /// semantics bit for bit: a null error_callback keeps sync-mode
  /// exceptions propagating out of Push, and null error/shed callbacks
  /// silently discard their events.
  static StatusOr<std::unique_ptr<StreamRulePipeline>> Create(
      const Program* program, PipelineOptions options,
      ResultCallback callback, ErrorCallback error_callback = nullptr,
      ShedCallback shed_callback = nullptr);

  /// Drains every admitted window (without flushing a partial one), then
  /// stops the engine threads.
  ~StreamRulePipeline();

  StreamRulePipeline(const StreamRulePipeline&) = delete;
  StreamRulePipeline& operator=(const StreamRulePipeline&) = delete;

  /// Feeds one raw stream item. In async mode this may block (kBlock
  /// backpressure) or shed a window (kDropOldest/kReject) when
  /// max_inflight_windows is reached.
  void Push(const Triple& triple);

  /// Feeds a batch.
  void PushBatch(const std::vector<Triple>& triples);

  /// Closes the current window right now, regardless of how full it is,
  /// and admits it to the engine exactly as a count-triggered close would
  /// (a no-op when nothing is pending). Unlike Flush this never waits for
  /// reasoning: it is the punctuation hook external windowers — e.g. the
  /// sharded engine's router, which aligns per-shard sub-windows on global
  /// window boundaries — use to drive boundaries themselves. Same thread
  /// discipline as Push.
  void CloseWindow();

  /// Delta-carrying punctuation (requires
  /// PipelineOptions::external_delta_punctuation): evicts delta.expired
  /// from the retained buffer, then admits the remaining contents as one
  /// sliding window whose TripleWindow delta is exactly `delta` — how the
  /// sharded engine's router extends sliding global windows (and with
  /// them the grounding/solving reuse stack) to every shard. Same thread
  /// discipline and non-waiting semantics as CloseWindow().
  void CloseWindow(WindowDelta delta);

  /// Emits the trailing partial window and, in async mode, blocks until
  /// every in-flight window has been reasoned and its callback delivered.
  /// The pipeline remains usable afterwards.
  void Flush();

  /// Thread-safe snapshot of the rolling statistics.
  PipelineStats stats() const;

  const PartitioningPlan& plan() const { return plan_; }
  const DecompositionInfo& decomposition_info() const { return info_; }

  /// Reasoning workers actually running (0 in sync mode, and 0 in
  /// shared-pool mode — pooled pipelines own no reasoning threads; see
  /// pool_queue() for their execution lane).
  size_t num_reason_workers() const { return workers_.size(); }

  /// The pipeline's lane on the shared reasoner pool (null outside
  /// shared-pool mode). Exposes the lane's weight, inflight cap and
  /// task counters for tests and the session server's stats surface.
  const std::shared_ptr<SharedReasonerPool::Queue>& pool_queue() const {
    return pool_queue_;
  }

 private:
  /// A reasoned (or shed) window parked in the reorder buffer until every
  /// lower-sequence window has been delivered. Shed windows ride the same
  /// buffer so tombstones interleave with results in sequence order.
  struct CompletedWindow {
    TripleWindow window;
    StatusOr<ParallelReasonerResult> result{InternalError("not run")};
    bool shed = false;  ///< Tombstone: deliver via ShedCallback.
  };

  /// Shared Create body: normalizes + validates options, runs design-time
  /// analysis, constructs. `has_error_channel` is false only for the trio
  /// adapter without an ErrorCallback (sync exceptions then propagate).
  static StatusOr<std::unique_ptr<StreamRulePipeline>> CreateInternal(
      const Program* program, PipelineOptions options,
      EmissionHandler handler, bool has_error_channel);

  StreamRulePipeline(const Program* program, PipelineOptions options,
                     PartitioningPlan plan, DecompositionInfo info,
                     EmissionHandler handler, bool has_error_channel);

  void StartAsyncEngine();
  /// Shared-pool variant of StartAsyncEngine: build (or adopt) the DRR
  /// lane and the reasoner slots instead of spawning worker threads.
  void StartSharedPoolEngine();
  /// One admitted window's unit of work on the shared pool: TryPop a
  /// window from the work queue (a miss means an eviction consumed it —
  /// benign surplus), reason it on a checked-out slot, park the outcome
  /// in the reorder buffer, then collaborate on ordered delivery.
  void PoolTask();
  /// Emitter-less ordered delivery: whoever calls first (a finishing pool
  /// task, a shedding caller) takes the drain baton and delivers every
  /// deliverable window in sequence order; concurrent callers see the
  /// baton held and return — the holder's re-check after each delivery
  /// observes their insertions, so nothing is stranded.
  void DrainCompleted();
  /// Stage boundary: windower output → work queue (applies backpressure).
  void EnqueueWindow(TripleWindow window);
  /// The synchronous oracle path: reason + emit on the caller thread.
  void ProcessWindowSync(TripleWindow& window);
  void ReasonWorkerLoop(size_t worker_index);
  void EmitterLoop();
  /// Records stats and invokes the callback for one reasoned window (the
  /// callback may gut `window`, which the caller is about to discard).
  void DeliverResult(TripleWindow& window,
                     const StatusOr<ParallelReasonerResult>& result);
  /// Accounts for one shed window and routes its tombstone into the
  /// emission stream (directly in sync mode; via the reorder buffer in
  /// async mode). `evicted` distinguishes asynchronous kDropOldest
  /// evictions (counted dropped, delta NOT folded — the gap is
  /// mid-stream) from synchronous refusals (kReject / admission filter:
  /// counted rejected, delta folded into the next emission).
  void ShedWindow(TripleWindow window, bool evicted);
  /// Invokes the shed callback (if any) for one tombstone.
  void DeliverShed(TripleWindow& window);
  /// True when the smallest completed sequence has no smaller sequence
  /// still in flight. Requires emit_mutex_.
  bool CanEmitLocked() const;

  const Program* program_;
  PipelineOptions options_;
  PartitioningPlan plan_;
  DecompositionInfo info_;
  EmissionHandler handler_;
  /// False only via the trio adapter with no ErrorCallback: sync-mode
  /// reasoning exceptions then propagate out of Push instead of being
  /// converted into kError emissions.
  bool has_error_channel_ = true;
  std::unique_ptr<StreamQueryProcessor> query_;

  /// Sync mode's single reasoner (null in async mode).
  std::unique_ptr<ParallelReasoner> sync_reasoner_;

  mutable std::mutex stats_mutex_;
  PipelineStats stats_;

  // --- async engine state (untouched in sync mode) ---
  std::unique_ptr<BoundedQueue<TripleWindow>> work_queue_;
  std::vector<std::unique_ptr<ParallelReasoner>> worker_reasoners_;
  std::vector<std::thread> workers_;
  std::thread emitter_;

  // --- shared-pool engine state (null/empty outside shared-pool mode) ---
  /// This pipeline's DRR lane (created from options_.shared_pool, or
  /// adopted from options_.shared_queue in the sharded engine).
  std::shared_ptr<SharedReasonerPool::Queue> pool_queue_;
  /// Checked-in reasoner slots. Sized to the lane's inflight cap: at most
  /// that many of the lane's tasks run concurrently (engine-wide when the
  /// lane is shared across shard pipelines, so this pipeline's share is
  /// never larger), hence checkout always finds a free slot.
  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<ParallelReasoner>> free_slots_;
  /// Drain baton (guarded by emit_mutex_): true while some thread is
  /// inside DrainCompleted's delivery loop.
  bool draining_ = false;

  std::mutex emit_mutex_;
  std::condition_variable emit_cv_;     ///< Wakes the emitter.
  std::condition_variable drained_cv_;  ///< Wakes Flush waiters.
  std::map<uint64_t, CompletedWindow> completed_;  ///< Reorder buffer.
  std::set<uint64_t> inflight_;  ///< Admitted, not yet reasoned.
  size_t delivering_ = 0;  ///< Windows mid-callback on the emitter.
  bool shutdown_ = false;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_PIPELINE_H_
