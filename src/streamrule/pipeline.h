#ifndef STREAMASP_STREAMRULE_PIPELINE_H_
#define STREAMASP_STREAMRULE_PIPELINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "depgraph/decomposition.h"
#include "stream/query_processor.h"
#include "streamrule/parallel_reasoner.h"
#include "util/status.h"

namespace streamasp {

/// Configuration for the end-to-end pipeline.
struct PipelineOptions {
  /// Tuple-based window size handed to the reasoning layer.
  size_t window_size = 10000;

  /// Run whole-window reasoning (R) instead of dependency-partitioned
  /// parallel reasoning (PR). Mostly for baselines.
  bool disable_partitioning = false;

  InputDependencyOptions dependency;
  DecompositionOptions decomposition;
  ParallelReasonerOptions reasoner;
};

/// Rolling statistics over every window the pipeline processed.
struct PipelineStats {
  uint64_t windows = 0;
  uint64_t items = 0;
  uint64_t answers = 0;
  double total_latency_ms = 0;
  double max_latency_ms = 0;
  double total_critical_path_ms = 0;
  uint64_t errors = 0;

  double mean_latency_ms() const {
    return windows == 0 ? 0.0 : total_latency_ms / static_cast<double>(windows);
  }
};

/// The full extended-StreamRule loop behind one call: design-time input
/// dependency analysis, then stream in → filter → window → partition →
/// parallel reasoning → combined answers out. This is the one-stop API the
/// examples hand-assemble from parts; it owns the query processor and the
/// reasoner and reports rolling statistics.
///
///   auto pipeline = StreamRulePipeline::Create(&program, options,
///       [](const TripleWindow& w, const ParallelReasonerResult& r) { ... });
///   pipeline->Push(triple);   // repeatedly
///   pipeline->Flush();        // end of stream
class StreamRulePipeline {
 public:
  /// Called once per processed window with the window and its result.
  using ResultCallback = std::function<void(
      const TripleWindow&, const ParallelReasonerResult&)>;

  /// Runs design-time analysis on `program` (which must outlive the
  /// pipeline) and wires the run-time components. Fails when the program
  /// is invalid or declares no usable input predicates.
  static StatusOr<std::unique_ptr<StreamRulePipeline>> Create(
      const Program* program, PipelineOptions options,
      ResultCallback callback);

  /// Feeds one raw stream item.
  void Push(const Triple& triple);

  /// Feeds a batch.
  void PushBatch(const std::vector<Triple>& triples);

  /// Processes the trailing partial window.
  void Flush();

  const PipelineStats& stats() const { return stats_; }
  const PartitioningPlan& plan() const { return plan_; }
  const DecompositionInfo& decomposition_info() const { return info_; }

 private:
  StreamRulePipeline(const Program* program, PipelineOptions options,
                     PartitioningPlan plan, DecompositionInfo info,
                     ResultCallback callback);

  void ProcessWindow(const TripleWindow& window);

  PipelineOptions options_;
  PartitioningPlan plan_;
  DecompositionInfo info_;
  ResultCallback callback_;
  ParallelReasoner reasoner_;
  std::unique_ptr<StreamQueryProcessor> query_;
  PipelineStats stats_;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_PIPELINE_H_
