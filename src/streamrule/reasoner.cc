#include "streamrule/reasoner.h"

#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace streamasp {

Reasoner::Reasoner(const Program* program, ReasonerOptions options)
    : program_(program), options_(options) {
  const Status status =
      format_.DeclareInputPredicates(program_->input_predicates());
  if (!status.ok()) {
    // Input predicates with arity > 2 cannot arrive as triples; such
    // programs can still be used via ProcessFacts.
    STREAMASP_LOG(kWarning) << "data format processor: " << status;
  }
}

StatusOr<ReasonerResult> Reasoner::Process(const TripleWindow& window) const {
  WallTimer total;
  WallTimer phase;
  STREAMASP_ASSIGN_OR_RETURN(std::vector<Atom> facts,
                             format_.ToFacts(window.items));
  const double convert_ms = phase.ElapsedMillis();

  STREAMASP_ASSIGN_OR_RETURN(ReasonerResult result, ProcessFacts(facts));
  result.convert_ms = convert_ms;
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ReasonerResult> Reasoner::Process(
    const TripleWindow& window, IncrementalGrounder* grounder,
    IncrementalSolver* solver) const {
  if (grounder == nullptr) return Process(window);
  WallTimer total;
  WallTimer phase;
  STREAMASP_ASSIGN_OR_RETURN(std::vector<Atom> facts,
                             format_.ToFacts(window.items));
  // The windower's delta (when present and not the first window) becomes
  // the grounder's diff hint; conversion of the delta counts as
  // conversion time, as the paper requires for all data transformation.
  // The hint is relative to the window named by delta_base — under load
  // shedding that may be further back than sequence-1 (folded deltas
  // net the change across the shed gap); the grounder/solver compare it
  // against their cached sequence and snapshot-diff on mismatch.
  IncrementalGrounder::FactDelta delta;
  const IncrementalGrounder::FactDelta* delta_ptr = nullptr;
  if (window.has_delta && window.delta_base != TripleWindow::kNoDeltaBase) {
    delta.previous_sequence = window.delta_base;
    STREAMASP_ASSIGN_OR_RETURN(delta.expired,
                               format_.ToFacts(window.expired));
    STREAMASP_ASSIGN_OR_RETURN(delta.admitted,
                               format_.ToFacts(window.admitted));
    delta_ptr = &delta;
  }
  const double convert_ms = phase.ElapsedMillis();

  STREAMASP_ASSIGN_OR_RETURN(
      ReasonerResult result,
      ProcessFactsIncremental(window.sequence, facts, delta_ptr, grounder,
                              solver));
  result.convert_ms = convert_ms;
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ReasonerResult> Reasoner::ProcessFacts(
    const std::vector<Atom>& facts) const {
  ReasonerResult result;
  WallTimer total;

  WallTimer phase;
  const Grounder grounder(options_.grounding);
  STREAMASP_ASSIGN_OR_RETURN(GroundProgram ground,
                             grounder.Ground(*program_, facts,
                                             &result.grounding));
  result.ground_ms = phase.ElapsedMillis();

  STREAMASP_RETURN_IF_ERROR(SolveGround(ground, &result));
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ReasonerResult> Reasoner::ProcessFactsIncremental(
    uint64_t sequence, const std::vector<Atom>& facts,
    const IncrementalGrounder::FactDelta* delta,
    IncrementalGrounder* grounder, IncrementalSolver* solver) const {
  if (solver == nullptr && !grounder->assembles_output()) {
    // The cold tail would silently solve the never-assembled (stale or
    // empty) output program; fail loudly instead.
    return InvalidArgumentError(
        "grounder has assemble_output=false but no IncrementalSolver was "
        "supplied; pair the engines or enable output assembly");
  }
  ReasonerResult result;
  WallTimer total;

  WallTimer phase;
  STREAMASP_ASSIGN_OR_RETURN(
      const GroundProgram* ground,
      grounder->GroundWindow(sequence, facts, delta, &result.grounding));
  result.ground_ms = phase.ElapsedMillis();

  if (solver != nullptr) {
    STREAMASP_RETURN_IF_ERROR(
        SolveIncremental(sequence, facts, grounder, solver, &result));
  } else {
    STREAMASP_RETURN_IF_ERROR(SolveGround(*ground, &result));
  }
  result.latency_ms = total.ElapsedMillis();
  return result;
}

Status Reasoner::SolveGround(const GroundProgram& ground,
                             ReasonerResult* result) const {
  WallTimer phase;
  const Solver solver(options_.solving);
  STREAMASP_ASSIGN_OR_RETURN(std::vector<AnswerSet> models,
                             solver.Solve(ground));
  result->solve_ms = phase.ElapsedMillis();
  ExtractAnswers(ground.atoms(), models, result);
  return OkStatus();
}

Status Reasoner::SolveIncremental(uint64_t sequence,
                                  const std::vector<Atom>& facts,
                                  IncrementalGrounder* grounder,
                                  IncrementalSolver* solver,
                                  ReasonerResult* result) const {
  WallTimer phase;
  std::vector<AnswerSet> models;
  Status status = solver->SolveWindow(
      grounder->last_delta(), grounder->cached_rules(),
      grounder->atom_table().size(), &models, &result->solving);
  double reground_ms = 0;
  if (status.code() == StatusCode::kFailedPrecondition) {
    // The mirror lost sync with the grounder cache (a skipped or failed
    // window upstream). Repair in place: invalidate both engines and
    // reground this window — the rebuilt cache publishes a full_rebuild
    // delta the solver can always consume. Costs one full regrounding on
    // a path that normal operation never takes.
    STREAMASP_LOG(kWarning) << "window " << sequence
                            << ": incremental solver resync: " << status;
    grounder->Invalidate();
    solver->Invalidate();
    WallTimer reground;
    GroundingStats resync_grounding;
    STREAMASP_RETURN_IF_ERROR(
        grounder->GroundWindow(sequence, facts, nullptr, &resync_grounding)
            .status());
    // The repair grounding is ground-phase work on top of the window's
    // first grounding, not a replacement for its stats.
    result->grounding.Accumulate(resync_grounding);
    reground_ms = reground.ElapsedMillis();
    result->ground_ms += reground_ms;
    status = solver->SolveWindow(
        grounder->last_delta(), grounder->cached_rules(),
        grounder->atom_table().size(), &models, &result->solving);
  }
  STREAMASP_RETURN_IF_ERROR(status);
  result->solve_ms = phase.ElapsedMillis() - reground_ms;
  ExtractAnswers(grounder->atom_table(), models, result);
  return OkStatus();
}

void Reasoner::ExtractAnswers(const AtomTable& atoms,
                              const std::vector<AnswerSet>& models,
                              ReasonerResult* result) const {
  const std::vector<PredicateSignature>& shown =
      program_->shown_predicates();
  const bool project = options_.project_to_shown && !shown.empty();
  result->answers.reserve(models.size());
  for (const AnswerSet& model : models) {
    GroundAnswer answer;
    answer.reserve(model.atoms.size());
    for (GroundAtomId id : model.atoms) {
      const Atom& atom = atoms.GetAtom(id);
      if (project) {
        // Filter during extraction (same membership test ProjectAnswer
        // runs) instead of materializing the full answer and copying the
        // projected subsequence out of it.
        bool keep = false;
        for (const PredicateSignature& sig : shown) {
          if (atom.signature() == sig) {
            keep = true;
            break;
          }
        }
        if (!keep) continue;
      }
      answer.push_back(atom);
    }
    NormalizeAnswer(&answer);
    result->answers.push_back(std::move(answer));
  }
}

}  // namespace streamasp
