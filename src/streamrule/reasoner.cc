#include "streamrule/reasoner.h"

#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace streamasp {

Reasoner::Reasoner(const Program* program, ReasonerOptions options)
    : program_(program), options_(options) {
  const Status status =
      format_.DeclareInputPredicates(program_->input_predicates());
  if (!status.ok()) {
    // Input predicates with arity > 2 cannot arrive as triples; such
    // programs can still be used via ProcessFacts.
    STREAMASP_LOG(kWarning) << "data format processor: " << status;
  }
}

StatusOr<ReasonerResult> Reasoner::Process(const TripleWindow& window) const {
  WallTimer total;
  WallTimer phase;
  STREAMASP_ASSIGN_OR_RETURN(std::vector<Atom> facts,
                             format_.ToFacts(window.items));
  const double convert_ms = phase.ElapsedMillis();

  STREAMASP_ASSIGN_OR_RETURN(ReasonerResult result, ProcessFacts(facts));
  result.convert_ms = convert_ms;
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ReasonerResult> Reasoner::ProcessFacts(
    const std::vector<Atom>& facts) const {
  ReasonerResult result;
  WallTimer total;

  WallTimer phase;
  const Grounder grounder(options_.grounding);
  STREAMASP_ASSIGN_OR_RETURN(GroundProgram ground,
                             grounder.Ground(*program_, facts));
  result.grounding = grounder.stats();
  result.ground_ms = phase.ElapsedMillis();

  phase.Restart();
  const Solver solver(options_.solving);
  STREAMASP_ASSIGN_OR_RETURN(std::vector<AnswerSet> models,
                             solver.Solve(ground));
  result.solve_ms = phase.ElapsedMillis();

  const std::vector<PredicateSignature>& shown =
      program_->shown_predicates();
  const bool project = options_.project_to_shown && !shown.empty();
  result.answers.reserve(models.size());
  for (const AnswerSet& model : models) {
    GroundAnswer answer;
    answer.reserve(model.atoms.size());
    for (GroundAtomId id : model.atoms) {
      answer.push_back(ground.atoms().GetAtom(id));
    }
    NormalizeAnswer(&answer);
    if (project) answer = ProjectAnswer(answer, shown);
    result.answers.push_back(std::move(answer));
  }
  result.latency_ms = total.ElapsedMillis();
  return result;
}

}  // namespace streamasp
