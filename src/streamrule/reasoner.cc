#include "streamrule/reasoner.h"

#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace streamasp {

Reasoner::Reasoner(const Program* program, ReasonerOptions options)
    : program_(program), options_(options) {
  const Status status =
      format_.DeclareInputPredicates(program_->input_predicates());
  if (!status.ok()) {
    // Input predicates with arity > 2 cannot arrive as triples; such
    // programs can still be used via ProcessFacts.
    STREAMASP_LOG(kWarning) << "data format processor: " << status;
  }
}

StatusOr<ReasonerResult> Reasoner::Process(const TripleWindow& window) const {
  WallTimer total;
  WallTimer phase;
  STREAMASP_ASSIGN_OR_RETURN(std::vector<Atom> facts,
                             format_.ToFacts(window.items));
  const double convert_ms = phase.ElapsedMillis();

  STREAMASP_ASSIGN_OR_RETURN(ReasonerResult result, ProcessFacts(facts));
  result.convert_ms = convert_ms;
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ReasonerResult> Reasoner::Process(
    const TripleWindow& window, IncrementalGrounder* grounder) const {
  if (grounder == nullptr) return Process(window);
  WallTimer total;
  WallTimer phase;
  STREAMASP_ASSIGN_OR_RETURN(std::vector<Atom> facts,
                             format_.ToFacts(window.items));
  // The windower's delta (when present and not the first window) becomes
  // the grounder's diff hint; conversion of the delta counts as
  // conversion time, as the paper requires for all data transformation.
  IncrementalGrounder::FactDelta delta;
  const IncrementalGrounder::FactDelta* delta_ptr = nullptr;
  if (window.has_delta && window.sequence > 0) {
    delta.previous_sequence = window.sequence - 1;
    STREAMASP_ASSIGN_OR_RETURN(delta.expired,
                               format_.ToFacts(window.expired));
    STREAMASP_ASSIGN_OR_RETURN(delta.admitted,
                               format_.ToFacts(window.admitted));
    delta_ptr = &delta;
  }
  const double convert_ms = phase.ElapsedMillis();

  STREAMASP_ASSIGN_OR_RETURN(
      ReasonerResult result,
      ProcessFactsIncremental(window.sequence, facts, delta_ptr, grounder));
  result.convert_ms = convert_ms;
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ReasonerResult> Reasoner::ProcessFacts(
    const std::vector<Atom>& facts) const {
  ReasonerResult result;
  WallTimer total;

  WallTimer phase;
  const Grounder grounder(options_.grounding);
  STREAMASP_ASSIGN_OR_RETURN(GroundProgram ground,
                             grounder.Ground(*program_, facts,
                                             &result.grounding));
  result.ground_ms = phase.ElapsedMillis();

  STREAMASP_RETURN_IF_ERROR(SolveGround(ground, &result));
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ReasonerResult> Reasoner::ProcessFactsIncremental(
    uint64_t sequence, const std::vector<Atom>& facts,
    const IncrementalGrounder::FactDelta* delta,
    IncrementalGrounder* grounder) const {
  ReasonerResult result;
  WallTimer total;

  WallTimer phase;
  STREAMASP_ASSIGN_OR_RETURN(
      const GroundProgram* ground,
      grounder->GroundWindow(sequence, facts, delta, &result.grounding));
  result.ground_ms = phase.ElapsedMillis();

  STREAMASP_RETURN_IF_ERROR(SolveGround(*ground, &result));
  result.latency_ms = total.ElapsedMillis();
  return result;
}

Status Reasoner::SolveGround(const GroundProgram& ground,
                             ReasonerResult* result) const {
  WallTimer phase;
  const Solver solver(options_.solving);
  STREAMASP_ASSIGN_OR_RETURN(std::vector<AnswerSet> models,
                             solver.Solve(ground));
  result->solve_ms = phase.ElapsedMillis();

  const std::vector<PredicateSignature>& shown =
      program_->shown_predicates();
  const bool project = options_.project_to_shown && !shown.empty();
  result->answers.reserve(models.size());
  for (const AnswerSet& model : models) {
    GroundAnswer answer;
    answer.reserve(model.atoms.size());
    for (GroundAtomId id : model.atoms) {
      answer.push_back(ground.atoms().GetAtom(id));
    }
    NormalizeAnswer(&answer);
    if (project) answer = ProjectAnswer(answer, shown);
    result->answers.push_back(std::move(answer));
  }
  return OkStatus();
}

}  // namespace streamasp
