#ifndef STREAMASP_STREAMRULE_PARTITIONING_HANDLER_H_
#define STREAMASP_STREAMRULE_PARTITIONING_HANDLER_H_

#include <atomic>
#include <vector>

#include "asp/atom.h"
#include "depgraph/partitioning_plan.h"
#include "stream/triple.h"

namespace streamasp {

/// Algorithm 1 of the paper: splits an input window into sub-windows
/// following the partitioning plan computed at design time.
///
///   1. group(W) classifies the window's items by predicate;
///   2. each group is routed to every community its predicate maps to
///      (duplicated predicates are copied into several partitions);
///   3. the sub-windows are returned in community order.
///
/// Items whose predicate the plan does not know (e.g. the stream query's
/// filter let something unexpected through) are routed to community 0 so
/// no data is silently lost; the count of such strays is reported.
class PartitioningHandler {
 public:
  /// The plan is copied; handlers are immutable afterwards and safe to
  /// share across threads.
  explicit PartitioningHandler(PartitioningPlan plan);

  /// Partitions a triple window. The result has plan.num_communities()
  /// entries; entries may be empty. `count_strays` controls whether
  /// fallback-routed items bump the stray_items() diagnostic — callers
  /// re-partitioning auxiliary views of a window (e.g. its
  /// expired/admitted delta) pass false so each item is counted once.
  std::vector<std::vector<Triple>> Partition(
      const std::vector<Triple>& window, bool count_strays = true) const;

  /// Same routing for windows already converted to ASP facts.
  std::vector<std::vector<Atom>> PartitionFacts(
      const std::vector<Atom>& window) const;

  const PartitioningPlan& plan() const { return plan_; }

  /// Items routed to the fallback community because their predicate was
  /// not in the plan (cumulative across calls; informational only).
  uint64_t stray_items() const {
    return stray_items_.load(std::memory_order_relaxed);
  }

 private:
  PartitioningPlan plan_;
  mutable std::atomic<uint64_t> stray_items_{0};
};

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_PARTITIONING_HANDLER_H_
