#ifndef STREAMASP_STREAMRULE_EMISSION_H_
#define STREAMASP_STREAMRULE_EMISSION_H_

#include <cstdint>
#include <functional>

#include "util/status.h"

namespace streamasp {

struct TripleWindow;
struct ParallelReasonerResult;

/// One delivery of an engine's ordered emission stream. Every window an
/// engine emits — reasoned, failed, or shed — surfaces as exactly one
/// EmissionEvent, delivered from one thread at a time in strictly
/// increasing sequence order across all three kinds. This is the unified
/// replacement for the ResultCallback/ErrorCallback/ShedCallback trio:
/// ordered consumers (the sharded merge, the session server) track one
/// stream instead of interleaving three.
struct EmissionEvent {
  enum class Kind : uint8_t {
    kResult,  ///< Window reasoned successfully; `result` is set.
    kError,   ///< Reasoning (or cross-shard merging) failed; `status` set.
    kShed,    ///< Tombstone: the window was shed unreasoned, items intact.
  };

  Kind kind = Kind::kResult;

  /// The emitted window's sequence (== window->sequence): strictly
  /// increasing over successive events, with no gaps under a lossless
  /// configuration — kError and kShed events consume their slot.
  uint64_t sequence = 0;

  /// The emitted window. Owned by the delivering thread and discarded
  /// right after the handler returns, so handlers may steal its contents
  /// (which is how the sharded engine forwards sub-windows to its merge
  /// stage without copying). Never null during delivery.
  TripleWindow* window = nullptr;

  /// kResult only: the (possibly cross-shard merged) reasoning result.
  const ParallelReasonerResult* result = nullptr;

  /// kError only: why the window produced no answers.
  Status status = OkStatus();

  /// Items reasoned over items admitted for this emission: kResult
  /// carries the delivered window's completeness (< 1.0 when shed shard
  /// contributions degraded it), kError and kShed carry 0.
  double completeness = 1.0;
};

/// Single ordered emission callback. Same contract as the callback trio it
/// replaces: runs on the caller thread (sync) or the engine's single
/// emitter/merge thread (async/sharded), never concurrently with itself,
/// and must not call back into Push/Flush on the emitting engine.
using EmissionHandler = std::function<void(EmissionEvent&)>;

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_EMISSION_H_
