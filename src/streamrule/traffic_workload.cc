#include "streamrule/traffic_workload.h"

#include "asp/parser.h"

namespace streamasp {

namespace {

// Listing 1 of the paper, verbatim modulo whitespace.
constexpr char kListing1[] = R"(
% r1..r6: Listing 1 — traffic event detection.
very_slow_speed(X)   :- average_speed(X, Y), Y < 20.
many_cars(X)         :- car_number(X, Y), Y > 40.
traffic_jam(X)       :- very_slow_speed(X), many_cars(X),
                        not traffic_light(X).
car_fire(X)          :- car_in_smoke(C, high), car_speed(C, 0),
                        car_location(C, X).
give_notification(X) :- traffic_jam(X).
give_notification(X) :- car_fire(X).

#input average_speed/2, car_number/2, traffic_light/1,
       car_in_smoke/2, car_speed/2, car_location/2.
)";

// r7 of §II-B, which connects the input dependency graph.
constexpr char kRuleR7[] = R"(
traffic_jam(X) :- car_fire(X), many_cars(X).
)";

constexpr char kShowDirective[] = R"(
#show traffic_jam/1, car_fire/1, give_notification/1.
)";

}  // namespace

std::string TrafficProgramText(TrafficProgramVariant variant,
                               bool with_show) {
  std::string text = kListing1;
  if (variant == TrafficProgramVariant::kPPrime) text += kRuleR7;
  if (with_show) text += kShowDirective;
  return text;
}

StatusOr<Program> MakeTrafficProgram(SymbolTablePtr symbols,
                                     TrafficProgramVariant variant,
                                     bool with_show) {
  Parser parser(std::move(symbols));
  return parser.ParseProgram(TrafficProgramText(variant, with_show));
}

BurstyStreamGenerator MakeTrafficBurstGenerator(SymbolTable& symbols,
                                                uint64_t seed,
                                                BurstOptions burst) {
  GeneratorOptions options;
  options.seed = seed;
  return BurstyStreamGenerator(MakeTrafficSchema(symbols), options, burst);
}

std::vector<Triple> MakeTrafficBurstStream(SymbolTable& symbols, size_t items,
                                           uint64_t seed, BurstOptions burst) {
  return MakeTrafficBurstGenerator(symbols, seed, burst).Generate(items);
}

std::vector<StreamPredicate> MakeTrafficSchema(SymbolTable& symbols) {
  const Term high = Term::Symbol(symbols.Intern("high"));
  const Term low = Term::Symbol(symbols.Intern("low"));
  return {
      StreamPredicate{symbols.Intern("average_speed"), true, {}},
      StreamPredicate{symbols.Intern("car_number"), true, {}},
      StreamPredicate{symbols.Intern("traffic_light"), false, {}},
      StreamPredicate{symbols.Intern("car_in_smoke"), true, {high, low}},
      StreamPredicate{symbols.Intern("car_speed"), true, {}},
      StreamPredicate{symbols.Intern("car_location"), true, {}},
  };
}

}  // namespace streamasp
