#include "streamrule/parallel_reasoner.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace streamasp {

namespace {

size_t ResolveThreadCount(size_t requested) {
  return requested != 0 ? requested : DefaultThreadCount();
}

/// Resolves the reuse knobs once, before any engine is built: solving
/// reuse implies grounding reuse (the solver patch is the incremental
/// grounder's delta) and lets the grounder skip per-window output
/// assembly (the solver consumes the cached store directly). Disjunctive
/// programs keep the cold solve path — their shifted rules would break
/// the solver's 1:1 store-slot mirroring (see solve/incremental_solver.h).
ReasonerOptions ResolveReuseOptions(const Program* program,
                                    ReasonerOptions options) {
  if (!options.solving.reuse_solving) return options;
  for (const Rule& rule : program->rules()) {
    if (rule.head().size() > 1) {
      STREAMASP_LOG(kWarning)
          << "reuse_solving disabled: program has disjunctive rules";
      options.solving.reuse_solving = false;
      return options;
    }
  }
  options.reuse_grounding = true;
  options.incremental.assemble_output = false;
  return options;
}

}  // namespace

ParallelReasoner::ParallelReasoner(const Program* program,
                                   PartitioningPlan plan,
                                   ParallelReasonerOptions options)
    : program_(program),
      reasoner_options_(ResolveReuseOptions(program, options.reasoner)),
      handler_(std::move(plan)),
      combiner_(options.combining),
      reasoner_(program, reasoner_options_) {
  const size_t threads = ResolveThreadCount(options.num_threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  if (reasoner_options_.reuse_grounding) {
    const int partitions = handler_.plan().num_communities();
    partition_grounders_.reserve(partitions);
    for (int i = 0; i < partitions; ++i) {
      partition_grounders_.push_back(std::make_unique<IncrementalGrounder>(
          program_, reasoner_options_.grounding,
          reasoner_options_.incremental));
    }
    if (reasoner_options_.solving.reuse_solving) {
      partition_solvers_.reserve(partitions);
      for (int i = 0; i < partitions; ++i) {
        partition_solvers_.push_back(
            std::make_unique<IncrementalSolver>(reasoner_options_.solving));
      }
    }
  }
}

StatusOr<ParallelReasonerResult> ParallelReasoner::Process(
    const TripleWindow& window) {
  WallTimer total;
  WallTimer phase;
  std::vector<std::vector<Triple>> partitions =
      handler_.Partition(window.items);

  StatusOr<ParallelReasonerResult> result{InternalError("not run")};
  if (reasoner_options_.reuse_grounding) {
    // Partition the delta with the same routing as the items: the
    // per-item mapping is pure, so partition i's expired/admitted are
    // exactly the delta of partition i's sub-stream.
    std::vector<TripleWindow> sub_windows(partitions.size());
    std::vector<std::vector<Triple>> expired;
    std::vector<std::vector<Triple>> admitted;
    if (window.has_delta) {
      // Auxiliary views of items already counted via window.items: don't
      // re-count strays.
      expired = handler_.Partition(window.expired, /*count_strays=*/false);
      admitted = handler_.Partition(window.admitted, /*count_strays=*/false);
    }
    for (size_t i = 0; i < partitions.size(); ++i) {
      sub_windows[i].sequence = window.sequence;
      sub_windows[i].items = std::move(partitions[i]);
      if (window.has_delta) {
        sub_windows[i].has_delta = true;
        sub_windows[i].delta_base = window.delta_base;
        sub_windows[i].expired = std::move(expired[i]);
        sub_windows[i].admitted = std::move(admitted[i]);
      }
    }
    const double partition_ms = phase.ElapsedMillis();
    std::lock_guard<std::mutex> lock(incremental_mutex_);
    result = RunIncrementalWindows(sub_windows);
    if (!result.ok()) return result.status();
    result->partition_ms = partition_ms;
  } else {
    const double partition_ms = phase.ElapsedMillis();
    result = RunPartitions(partitions);
    if (!result.ok()) return result.status();
    result->partition_ms = partition_ms;
  }
  result->latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ParallelReasonerResult> ParallelReasoner::ProcessFacts(
    const std::vector<Atom>& facts) {
  WallTimer total;
  WallTimer phase;
  const std::vector<std::vector<Atom>> partitions =
      handler_.PartitionFacts(facts);
  const double partition_ms = phase.ElapsedMillis();

  STREAMASP_ASSIGN_OR_RETURN(ParallelReasonerResult result,
                             RunPartitions(partitions));
  result.partition_ms = partition_ms;
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ParallelReasonerResult> ParallelReasoner::ProcessPartitions(
    const std::vector<std::vector<Triple>>& partitions) {
  WallTimer total;
  STREAMASP_ASSIGN_OR_RETURN(ParallelReasonerResult result,
                             RunPartitions(partitions));
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ParallelReasonerResult> ParallelReasoner::ProcessFactPartitions(
    const std::vector<std::vector<Atom>>& partitions) {
  WallTimer total;
  STREAMASP_ASSIGN_OR_RETURN(ParallelReasonerResult result,
                             RunPartitions(partitions));
  result.latency_ms = total.ElapsedMillis();
  return result;
}

template <typename Item>
StatusOr<ParallelReasonerResult> ParallelReasoner::RunPartitions(
    const std::vector<std::vector<Item>>& partitions) {
  ParallelReasonerResult result;
  result.num_partitions = partitions.size();
  for (const auto& partition : partitions) {
    result.total_partition_items += partition.size();
  }

  WallTimer phase;
  std::vector<StatusOr<ReasonerResult>> outcomes(
      partitions.size(), StatusOr<ReasonerResult>(InternalError("not run")));
  // Batch-wait rather than WaitIdle so concurrent Process calls on one
  // reasoner (or other users of a shared pool) cannot extend each other's
  // waits or steal each other's completion signal.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(partitions.size());
  for (size_t i = 0; i < partitions.size(); ++i) {
    tasks.push_back([this, &partitions, &outcomes, i] {
      if constexpr (std::is_same_v<Item, Triple>) {
        TripleWindow window;
        window.items = partitions[i];
        outcomes[i] = reasoner_.Process(window);
      } else {
        outcomes[i] = reasoner_.ProcessFacts(partitions[i]);
      }
    });
  }
  RunTasks(std::move(tasks));
  result.reason_ms = phase.ElapsedMillis();
  return FinishOutcomes(std::move(outcomes), std::move(result));
}

StatusOr<ParallelReasonerResult> ParallelReasoner::RunIncrementalWindows(
    const std::vector<TripleWindow>& sub_windows) {
  // Normally sized by the constructor, but an empty plan (0 communities)
  // still yields one fallback partition from PartitioningHandler, so
  // grow on demand rather than index past the vector.
  while (partition_grounders_.size() < sub_windows.size()) {
    partition_grounders_.push_back(std::make_unique<IncrementalGrounder>(
        program_, reasoner_options_.grounding,
        reasoner_options_.incremental));
  }
  if (reasoner_options_.solving.reuse_solving) {
    while (partition_solvers_.size() < sub_windows.size()) {
      partition_solvers_.push_back(
          std::make_unique<IncrementalSolver>(reasoner_options_.solving));
    }
  }

  ParallelReasonerResult result;
  result.num_partitions = sub_windows.size();
  for (const TripleWindow& sub : sub_windows) {
    result.total_partition_items += sub.items.size();
  }

  WallTimer phase;
  std::vector<StatusOr<ReasonerResult>> outcomes(
      sub_windows.size(), StatusOr<ReasonerResult>(InternalError("not run")));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(sub_windows.size());
  for (size_t i = 0; i < sub_windows.size(); ++i) {
    tasks.push_back([this, &sub_windows, &outcomes, i] {
      IncrementalSolver* solver = reasoner_options_.solving.reuse_solving
                                      ? partition_solvers_[i].get()
                                      : nullptr;
      outcomes[i] = reasoner_.Process(sub_windows[i],
                                      partition_grounders_[i].get(), solver);
    });
  }
  RunTasks(std::move(tasks));
  result.reason_ms = phase.ElapsedMillis();
  return FinishOutcomes(std::move(outcomes), std::move(result));
}

void ParallelReasoner::RunTasks(std::vector<std::function<void()>> tasks) {
  if (pool_ != nullptr) {
    pool_->SubmitAndWaitAll(std::move(tasks));
    return;
  }
  // Inline mode: run the batch sequentially with SubmitAndWaitAll's
  // semantics — every task runs even after a failure (later tasks write
  // outcome slots the caller will read), first exception rethrown last.
  std::exception_ptr first_error;
  for (std::function<void()>& task : tasks) {
    try {
      task();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

StatusOr<ParallelReasonerResult> ParallelReasoner::FinishOutcomes(
    std::vector<StatusOr<ReasonerResult>> outcomes,
    ParallelReasonerResult result) {
  std::vector<std::vector<GroundAnswer>> per_partition;
  per_partition.reserve(outcomes.size());
  result.partition_latency_ms.reserve(outcomes.size());
  for (StatusOr<ReasonerResult>& outcome : outcomes) {
    if (!outcome.ok()) return outcome.status();
    result.partition_latency_ms.push_back(outcome->latency_ms);
    result.grounding.Accumulate(outcome->grounding);
    result.solving.Accumulate(outcome->solving);
    result.ground_ms += outcome->ground_ms;
    result.solve_ms += outcome->solve_ms;
    per_partition.push_back(std::move(outcome->answers));
  }

  WallTimer phase;
  STREAMASP_ASSIGN_OR_RETURN(result.answers,
                             combiner_.Combine(per_partition));
  result.combine_ms = phase.ElapsedMillis();

  double slowest = 0;
  for (double ms : result.partition_latency_ms) {
    slowest = std::max(slowest, ms);
  }
  result.critical_path_ms =
      result.partition_ms + slowest + result.combine_ms;
  return result;
}

}  // namespace streamasp
