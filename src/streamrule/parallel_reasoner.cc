#include "streamrule/parallel_reasoner.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/timer.h"

namespace streamasp {

namespace {

size_t ResolveThreadCount(size_t requested) {
  return requested != 0 ? requested : DefaultThreadCount();
}

}  // namespace

ParallelReasoner::ParallelReasoner(const Program* program,
                                   PartitioningPlan plan,
                                   ParallelReasonerOptions options)
    : program_(program),
      handler_(std::move(plan)),
      combiner_(options.combining),
      reasoner_(program, options.reasoner),
      pool_(ResolveThreadCount(options.num_threads)) {}

StatusOr<ParallelReasonerResult> ParallelReasoner::Process(
    const TripleWindow& window) {
  WallTimer total;
  WallTimer phase;
  const std::vector<std::vector<Triple>> partitions =
      handler_.Partition(window.items);
  const double partition_ms = phase.ElapsedMillis();

  STREAMASP_ASSIGN_OR_RETURN(ParallelReasonerResult result,
                             RunPartitions(partitions));
  result.partition_ms = partition_ms;
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ParallelReasonerResult> ParallelReasoner::ProcessFacts(
    const std::vector<Atom>& facts) {
  WallTimer total;
  WallTimer phase;
  const std::vector<std::vector<Atom>> partitions =
      handler_.PartitionFacts(facts);
  const double partition_ms = phase.ElapsedMillis();

  STREAMASP_ASSIGN_OR_RETURN(ParallelReasonerResult result,
                             RunPartitions(partitions));
  result.partition_ms = partition_ms;
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ParallelReasonerResult> ParallelReasoner::ProcessPartitions(
    const std::vector<std::vector<Triple>>& partitions) {
  WallTimer total;
  STREAMASP_ASSIGN_OR_RETURN(ParallelReasonerResult result,
                             RunPartitions(partitions));
  result.latency_ms = total.ElapsedMillis();
  return result;
}

StatusOr<ParallelReasonerResult> ParallelReasoner::ProcessFactPartitions(
    const std::vector<std::vector<Atom>>& partitions) {
  WallTimer total;
  STREAMASP_ASSIGN_OR_RETURN(ParallelReasonerResult result,
                             RunPartitions(partitions));
  result.latency_ms = total.ElapsedMillis();
  return result;
}

template <typename Item>
StatusOr<ParallelReasonerResult> ParallelReasoner::RunPartitions(
    const std::vector<std::vector<Item>>& partitions) {
  ParallelReasonerResult result;
  result.num_partitions = partitions.size();
  for (const auto& partition : partitions) {
    result.total_partition_items += partition.size();
  }

  WallTimer phase;
  std::vector<StatusOr<ReasonerResult>> outcomes(
      partitions.size(), StatusOr<ReasonerResult>(InternalError("not run")));
  // Batch-wait rather than WaitIdle so concurrent Process calls on one
  // reasoner (or other users of a shared pool) cannot extend each other's
  // waits or steal each other's completion signal.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(partitions.size());
  for (size_t i = 0; i < partitions.size(); ++i) {
    tasks.push_back([this, &partitions, &outcomes, i] {
      if constexpr (std::is_same_v<Item, Triple>) {
        TripleWindow window;
        window.items = partitions[i];
        outcomes[i] = reasoner_.Process(window);
      } else {
        outcomes[i] = reasoner_.ProcessFacts(partitions[i]);
      }
    });
  }
  pool_.SubmitAndWaitAll(std::move(tasks));
  result.reason_ms = phase.ElapsedMillis();

  std::vector<std::vector<GroundAnswer>> per_partition;
  per_partition.reserve(partitions.size());
  result.partition_latency_ms.reserve(partitions.size());
  for (StatusOr<ReasonerResult>& outcome : outcomes) {
    if (!outcome.ok()) return outcome.status();
    result.partition_latency_ms.push_back(outcome->latency_ms);
    per_partition.push_back(std::move(outcome->answers));
  }

  phase.Restart();
  STREAMASP_ASSIGN_OR_RETURN(result.answers,
                             combiner_.Combine(per_partition));
  result.combine_ms = phase.ElapsedMillis();

  double slowest = 0;
  for (double ms : result.partition_latency_ms) {
    slowest = std::max(slowest, ms);
  }
  result.critical_path_ms =
      result.partition_ms + slowest + result.combine_ms;
  return result;
}

}  // namespace streamasp
