#include "streamrule/validate.h"

#include "streamrule/pipeline.h"
#include "streamrule/sharded_pipeline.h"

namespace streamasp {

void NormalizePipelineOptions(PipelineOptions* options) {
  if (options->reuse_grounding) {
    options->reasoner.reasoner.reuse_grounding = true;
  }
  if (options->reuse_solving) {
    options->reasoner.reasoner.solving.reuse_solving = true;
  }
}

Status ValidatePipelineOptions(const PipelineOptions& options, bool sharded) {
  if (options.async && options.max_inflight_windows == 0) {
    return InvalidArgumentError("async mode needs max_inflight_windows >= 1");
  }
  if (options.window_slide > options.window_size) {
    return InvalidArgumentError("window_slide must not exceed window_size");
  }
  const bool pooled =
      options.shared_pool != nullptr || options.shared_queue != nullptr;
  if (pooled && !options.async) {
    return InvalidArgumentError(
        "a shared reasoner pool requires async mode (sync pipelines reason "
        "on the caller thread and submit nothing to the pool)");
  }
  if (pooled && options.pool_weight == 0) {
    return InvalidArgumentError("pool_weight must be >= 1");
  }
  if (options.max_queued_windows > 0 && !options.async) {
    return InvalidArgumentError(
        "max_queued_windows only bounds the async engine's in-flight "
        "windows (sync mode never queues); set async, or use "
        "admission_filter for synchronous shedding");
  }
  if (sharded && options.backpressure != BackpressurePolicy::kBlock &&
      !options.async) {
    return InvalidArgumentError(
        "lossy backpressure policies only engage in async shard pipelines "
        "(sync mode has no work queue to shed from); set pipeline.async, "
        "or use pipeline.admission_filter for synchronous shedding");
  }
  return OkStatus();
}

Status ValidateShardedPipelineOptions(const ShardedPipelineOptions& options) {
  if (options.num_shards == 0) {
    return InvalidArgumentError("sharded engine needs num_shards >= 1");
  }
  return ValidatePipelineOptions(options.pipeline, /*sharded=*/true);
}

}  // namespace streamasp
