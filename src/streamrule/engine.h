#ifndef STREAMASP_STREAMRULE_ENGINE_H_
#define STREAMASP_STREAMRULE_ENGINE_H_

#include <memory>
#include <vector>

#include "streamrule/emission.h"
#include "streamrule/pipeline.h"
#include "streamrule/sharded_pipeline.h"

namespace streamasp {

/// One validated configuration for every engine shape. The facade picks
/// the run-time from it:
///   * num_shards == 0 — a single StreamRulePipeline; pipeline.async
///     selects the synchronous oracle loop or the staged async engine.
///   * num_shards >= 1 — the ShardedPipelineEngine with that many shard
///     pipelines (1 is a legitimate degenerate sharded engine: router +
///     merge around one shard — distinct from num_shards == 0, which has
///     neither).
/// The sharded knobs below num_shards are ignored when it is 0.
struct EngineConfig {
  /// 0 = unsharded single pipeline; >= 1 = sharded engine.
  size_t num_shards = 0;

  /// Partition key (sharded only; see stream/shard_key.h). null uses
  /// SubjectShardKey().
  ShardKeyExtractor shard_key;

  /// Router micro-batch size (sharded only).
  size_t router_batch_size = 256;

  /// Per-shard feeder queue capacity (sharded only).
  size_t feeder_queue_capacity = 8;

  /// Merge queue capacity; 0 picks max(8, 2 * num_shards) (sharded only).
  size_t merge_queue_capacity = 0;

  /// The per-pipeline configuration every shape shares: window geometry,
  /// reuse flags, async staging, backpressure, admission filter,
  /// reasoner options. Under sharding window_size/window_slide are
  /// interpreted globally (see ShardedPipelineOptions::pipeline).
  PipelineOptions pipeline;
};

/// One stats surface across every engine shape. `reasoning` aggregates
/// the pipeline-level counters (the single pipeline's stats unsharded,
/// the field-wise shard aggregate sharded); the flat fields carry the
/// delivery/router/merge view consumers actually gate on. Snapshots are
/// returned by value from StreamEngine::stats(), safe from any thread.
struct EngineStats {
  /// Shape marker: 0 = unsharded, else the shard count.
  size_t num_shards = 0;

  /// Pipeline-level aggregate (see PipelineStats). Sharded: `windows`/
  /// `answers` count per-shard sub-windows before merging; unsharded
  /// they equal delivered_windows/delivered_answers.
  PipelineStats reasoning;
  /// Per-shard breakdown (empty unsharded).
  std::vector<PipelineStats> per_shard;

  /// Items routed to each shard (empty unsharded).
  std::vector<uint64_t> routed_items;
  /// Items dropped upstream because their predicate is not a program
  /// input (sharded router filter; 0 unsharded — the windower filters
  /// silently).
  uint64_t filtered_items = 0;

  /// kResult emissions delivered to the handler: merged global windows
  /// (sharded) or reasoned windows (unsharded).
  uint64_t delivered_windows = 0;
  /// Answers those deliveries carried (post cross-shard combining).
  uint64_t delivered_answers = 0;
  /// Emission slots consumed by failures: merge_errors (sharded) or
  /// reasoning errors (unsharded).
  uint64_t delivery_errors = 0;

  // --- sharded merge/router counters (zero unsharded) ---
  size_t max_merge_queue_depth = 0;
  size_t max_merge_reorder_depth = 0;
  uint64_t delta_punctuations = 0;
  uint64_t skipped_empty_slices = 0;
  uint64_t shed_subwindows = 0;

  // --- graceful-degradation view over delivered windows ---
  /// Delivered windows with completeness < 1 (sharded; unsharded windows
  /// are all-or-nothing, so always 0 — whole shed windows count under
  /// shed_windows()).
  uint64_t degraded_windows = 0;
  double mean_completeness = 1.0;
  double min_completeness = 1.0;

  /// Whole windows lost to load shedding: pipeline tombstones unsharded,
  /// 0 sharded (sub-window sheds degrade completeness instead — see
  /// shed_subwindows).
  uint64_t shed_windows() const {
    return num_shards == 0 ? reasoning.shed_windows() : 0;
  }

  /// Stream-level completeness (items reasoned / items admitted), the
  /// quantity the burst-overload bench gates: identical formula for both
  /// shapes because `reasoning` sums items/shed_items across shards.
  double completeness() const { return reasoning.completeness(); }

  /// Emitted windows that were accounted for — delivered, errored, or
  /// tombstoned. An emitted window outside this count means an ordered
  /// consumer stalled (the bench gates pin it to the expected total).
  uint64_t accounted_windows() const {
    return num_shards == 0
               ? delivered_windows + delivery_errors + shed_windows()
               : delivered_windows + delivery_errors;
  }

  /// Largest per-shard routed-item count (reasoning.items unsharded) —
  /// the bench's router-skew indicator.
  uint64_t max_shard_items() const {
    if (routed_items.empty()) return reasoning.items;
    uint64_t max_items = 0;
    for (uint64_t routed : routed_items) {
      if (routed > max_items) max_items = routed;
    }
    return max_items;
  }

  /// Retained data-plane bytes per triple of the largest window (see
  /// PipelineStats::bytes_per_triple; sharded aggregates include the
  /// router's retained global window).
  double bytes_per_triple() const { return reasoning.bytes_per_triple(); }
};

/// The one engine surface: a facade over StreamRulePipeline (sync or
/// async) and ShardedPipelineEngine that picks the run-time shape from a
/// single validated EngineConfig and delivers one ordered EmissionEvent
/// stream either way. The server, the examples and both benches drive
/// this; the underlying engines stay public for tests and for consumers
/// that need punctuation-level control (the facade adds no behavior, so
/// output through it is byte-identical to driving the engines directly).
///
/// Thread-safety mirrors the engines: Push/PushBatch/Flush from one
/// thread at a time, stats() from anywhere, the handler must not
/// re-enter the engine.
class StreamEngine {
 public:
  /// Builds the engine `config` describes over `program` (which must
  /// outlive the engine). Fails on null program/handler or options the
  /// shared validator rejects (streamrule/validate.h).
  static StatusOr<std::unique_ptr<StreamEngine>> Create(
      const Program* program, EngineConfig config, EmissionHandler handler);

  /// Feeds one raw stream item. May block (lossless backpressure) or
  /// shed (lossy policies / admission filter) exactly as the underlying
  /// engine would.
  void Push(const Triple& triple);

  /// Feeds a batch.
  void PushBatch(const std::vector<Triple>& triples);

  /// Emits the trailing partial window (if any) and blocks until every
  /// admitted window has been reasoned, merged, and delivered. The
  /// engine remains usable afterwards.
  void Flush();

  /// Thread-safe unified snapshot.
  EngineStats stats() const;

  /// 0 when unsharded.
  size_t num_shards() const;

  /// Reasoning worker threads across the engine (0 for the synchronous
  /// oracle shape).
  size_t num_reason_workers() const;

  /// The underlying engine, for introspection (plan, decomposition info,
  /// punctuation-level control). Exactly one is non-null.
  StreamRulePipeline* pipeline() { return pipeline_.get(); }
  const StreamRulePipeline* pipeline() const { return pipeline_.get(); }
  ShardedPipelineEngine* sharded() { return sharded_.get(); }
  const ShardedPipelineEngine* sharded() const { return sharded_.get(); }

 private:
  StreamEngine() = default;

  std::unique_ptr<StreamRulePipeline> pipeline_;
  std::unique_ptr<ShardedPipelineEngine> sharded_;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_ENGINE_H_
