#ifndef STREAMASP_STREAMRULE_COMBINING_HANDLER_H_
#define STREAMASP_STREAMRULE_COMBINING_HANDLER_H_

#include <cstddef>
#include <vector>

#include "streamrule/answer.h"
#include "util/status.h"

namespace streamasp {

/// Options for answer combination.
struct CombiningOptions {
  /// Cap on the number of combined answers: the cross product over
  /// partitions can explode when several partitions are non-deterministic
  /// (paper's formula enumerates it in full; real deployments need a
  /// bound). Combination stops once this many distinct unions exist.
  /// 0 = unbounded.
  size_t max_combined_answers = 256;
};

/// The combining handler of the extended StreamRule architecture
/// (Figure 6): merges the per-partition answer sets into answers for the
/// whole window following the paper's definition
///
///   Ans_P(W) = { ⋃_i ans_i : ans_i ∈ Ans_P(W_i) },
///
/// i.e. every way of picking one answer per partition, unioned. Duplicate
/// unions are collapsed. A partition with zero answers (inconsistent
/// partition program) contributes nothing to any union and makes the
/// whole window's answer empty — exactly what the formula prescribes,
/// since there is no ans_i to pick.
class CombiningHandler {
 public:
  explicit CombiningHandler(CombiningOptions options = {})
      : options_(options) {}

  /// `per_partition[i]` is the list of answers from partition i. Returns
  /// the (deduplicated) combined answers, capped per options.
  StatusOr<std::vector<GroundAnswer>> Combine(
      const std::vector<std::vector<GroundAnswer>>& per_partition) const;

 private:
  CombiningOptions options_;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_COMBINING_HANDLER_H_
