#include "streamrule/pipeline.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "streamrule/validate.h"
#include "util/logging.h"

namespace streamasp {

StatusOr<std::unique_ptr<StreamRulePipeline>> StreamRulePipeline::Create(
    const Program* program, PipelineOptions options,
    EmissionHandler handler) {
  if (handler == nullptr) {
    return InvalidArgumentError("emission handler must not be null");
  }
  return CreateInternal(program, std::move(options), std::move(handler),
                        /*has_error_channel=*/true);
}

StatusOr<std::unique_ptr<StreamRulePipeline>> StreamRulePipeline::Create(
    const Program* program, PipelineOptions options,
    ResultCallback callback, ErrorCallback error_callback,
    ShedCallback shed_callback) {
  if (callback == nullptr) {
    return InvalidArgumentError("result callback must not be null");
  }
  const bool has_error_channel = error_callback != nullptr;
  EmissionHandler handler =
      [callback = std::move(callback),
       error_callback = std::move(error_callback),
       shed_callback = std::move(shed_callback)](EmissionEvent& event) {
        switch (event.kind) {
          case EmissionEvent::Kind::kResult:
            callback(*event.window, *event.result);
            break;
          case EmissionEvent::Kind::kError:
            if (error_callback != nullptr) {
              error_callback(*event.window, event.status);
            }
            break;
          case EmissionEvent::Kind::kShed:
            if (shed_callback != nullptr) shed_callback(*event.window);
            break;
        }
      };
  return CreateInternal(program, std::move(options), std::move(handler),
                        has_error_channel);
}

StatusOr<std::unique_ptr<StreamRulePipeline>>
StreamRulePipeline::CreateInternal(const Program* program,
                                   PipelineOptions options,
                                   EmissionHandler handler,
                                   bool has_error_channel) {
  if (program == nullptr) {
    return InvalidArgumentError("program must not be null");
  }
  NormalizePipelineOptions(&options);
  STREAMASP_RETURN_IF_ERROR(ValidatePipelineOptions(options));
  STREAMASP_RETURN_IF_ERROR(program->Validate());

  PartitioningPlan plan(1);
  DecompositionInfo info;
  if (options.disable_partitioning) {
    // A single community holding every input predicate: PR degenerates
    // to whole-window reasoning on one worker.
    for (const PredicateSignature& sig : program->input_predicates()) {
      plan.Assign(sig, 0);
    }
    info.num_communities = 1;
  } else {
    STREAMASP_ASSIGN_OR_RETURN(
        InputDependencyGraph graph,
        InputDependencyGraph::Build(*program, options.dependency));
    STREAMASP_ASSIGN_OR_RETURN(
        plan,
        DecomposeInputDependencyGraph(graph, options.decomposition, &info));
  }
  return std::unique_ptr<StreamRulePipeline>(new StreamRulePipeline(
      program, std::move(options), std::move(plan), info,
      std::move(handler), has_error_channel));
}

StreamRulePipeline::StreamRulePipeline(const Program* program,
                                       PipelineOptions options,
                                       PartitioningPlan plan,
                                       DecompositionInfo info,
                                       EmissionHandler handler,
                                       bool has_error_channel)
    : program_(program),
      options_(options),
      plan_(std::move(plan)),
      info_(info),
      handler_(std::move(handler)),
      has_error_channel_(has_error_channel) {
  query_ = std::make_unique<StreamQueryProcessor>(
      options_.window_size, options_.window_slide,
      [this](TripleWindow window) {
        {
          // Caller-thread sample: the windower just closed this window, so
          // its retained buffer is at the per-window peak. Sampling here
          // (not in stats()) keeps WindowStore reads off foreign threads.
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.window_store_bytes =
              std::max(stats_.window_store_bytes, query_->retained_bytes());
        }
        if (options_.admission_filter != nullptr &&
            !options_.admission_filter(window)) {
          // Caller-controlled shedding, upstream of the work queue: works
          // in sync mode too, and its sheds are deterministic — which is
          // what the overload property tests drive.
          ShedWindow(std::move(window), /*evicted=*/false);
          return;
        }
        if (options_.async && options_.max_queued_windows > 0) {
          // Per-tenant window quota, enforced at the same ingest boundary
          // as the admission filter: bound admitted-but-undelivered
          // windows (queued + reasoning + parked + mid-callback), so a
          // tenant that outruns its service rate sheds deterministically
          // here instead of buffering without limit.
          size_t undelivered = 0;
          {
            std::lock_guard<std::mutex> lock(emit_mutex_);
            undelivered =
                inflight_.size() + completed_.size() + delivering_;
          }
          if (undelivered >= options_.max_queued_windows) {
            ShedWindow(std::move(window), /*evicted=*/false);
            return;
          }
        }
        if (options_.async) {
          EnqueueWindow(std::move(window));
        } else {
          ProcessWindowSync(window);
        }
      },
      options_.external_delta_punctuation
          ? StreamQueryProcessor::Punctuation::kExternal
          : StreamQueryProcessor::Punctuation::kInternal);
  for (const PredicateSignature& sig : program->input_predicates()) {
    query_->RegisterPredicate(sig.name);
  }
  if (options_.async) {
    StartAsyncEngine();
  } else {
    sync_reasoner_ = std::make_unique<ParallelReasoner>(program_, plan_,
                                                        options_.reasoner);
  }
}

StreamRulePipeline::~StreamRulePipeline() {
  if (!options_.async) return;
  if (pool_queue_ != nullptr) {
    // Shared-pool drain: stop admission, then wait until every task of
    // this pipeline's lane has run. One task was submitted per admitted
    // window, so an empty lane means the work queue is empty and every
    // admitted sequence was reasoned or shed — and the last finisher's
    // DrainCompleted delivered the reorder buffer. The trailing call is
    // for the degenerate no-task case (only tombstones were ever parked,
    // by a caller that has since returned).
    work_queue_->Close();
    pool_queue_->Drain();
    DrainCompleted();
    return;
  }
  // Drain: stop admission, let the workers finish every admitted window,
  // then let the emitter deliver whatever is parked in the reorder buffer.
  work_queue_->Close();
  for (std::thread& worker : workers_) worker.join();
  {
    std::lock_guard<std::mutex> lock(emit_mutex_);
    shutdown_ = true;
  }
  emit_cv_.notify_all();
  emitter_.join();
}

void StreamRulePipeline::StartSharedPoolEngine() {
  work_queue_ = std::make_unique<BoundedQueue<TripleWindow>>(
      options_.max_inflight_windows, options_.backpressure);
  if (options_.shared_queue != nullptr) {
    pool_queue_ = options_.shared_queue;
  } else {
    size_t cap = options_.pool_max_inflight;
    if (cap == 0) {
      cap = std::min<size_t>(options_.max_inflight_windows,
                             options_.shared_pool->num_threads());
    }
    pool_queue_ = options_.shared_pool->CreateQueue(options_.pool_weight,
                                                    std::max<size_t>(cap, 1));
  }
  // Reasoner slots instead of worker threads: pool tasks check one out
  // per window. Default the inner thread count to 1 (inline mode) — a
  // pool worker reasoning inline never waits on any pool, which is what
  // keeps pool-hosted reasoning deadlock-free and the thread budget
  // O(pool) instead of O(sessions x inner threads). An explicit
  // reasoner.num_threads still wins (waiting on a *different* pool is
  // safe, just oversubscribed).
  ParallelReasonerOptions reasoner_options = options_.reasoner;
  if (reasoner_options.num_threads == 0) reasoner_options.num_threads = 1;
  const size_t slots = pool_queue_->max_inflight();
  free_slots_.reserve(slots);
  for (size_t i = 0; i < slots; ++i) {
    free_slots_.push_back(std::make_unique<ParallelReasoner>(
        program_, plan_, reasoner_options));
  }
}

void StreamRulePipeline::StartAsyncEngine() {
  if (options_.shared_pool != nullptr || options_.shared_queue != nullptr) {
    StartSharedPoolEngine();
    return;
  }
  size_t num_workers = options_.num_reason_workers;
  if (num_workers == 0) {
    num_workers = std::min<size_t>(options_.max_inflight_windows,
                                   DefaultThreadCount());
  }
  num_workers = std::max<size_t>(num_workers, 1);

  work_queue_ = std::make_unique<BoundedQueue<TripleWindow>>(
      options_.max_inflight_windows, options_.backpressure);
  // Per-worker reasoner state: each worker waits only on its own
  // reasoner's inner pool, one level down — see the ThreadPool nesting
  // constraint. Split the default thread budget across the workers so N
  // workers don't each spawn hardware_concurrency inner threads.
  ParallelReasonerOptions reasoner_options = options_.reasoner;
  if (reasoner_options.num_threads == 0) {
    reasoner_options.num_threads =
        std::max<size_t>(1, DefaultThreadCount() / num_workers);
  }
  worker_reasoners_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    worker_reasoners_.push_back(std::make_unique<ParallelReasoner>(
        program_, plan_, reasoner_options));
  }
  workers_.reserve(num_workers);
  try {
    for (size_t i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this, i] { ReasonWorkerLoop(i); });
    }
    emitter_ = std::thread([this] { EmitterLoop(); });
  } catch (...) {
    // Thread spawn failed (e.g. resource exhaustion) mid-startup: unwind
    // the already-running workers so destroying joinable std::threads
    // doesn't terminate the process.
    work_queue_->Close();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    throw;
  }
}

void StreamRulePipeline::Push(const Triple& triple) { query_->Push(triple); }

void StreamRulePipeline::PushBatch(const std::vector<Triple>& triples) {
  query_->PushBatch(triples);
}

void StreamRulePipeline::CloseWindow() { query_->Flush(); }

void StreamRulePipeline::CloseWindow(WindowDelta delta) {
  query_->CloseWindowWithDelta(std::move(delta));
}

void StreamRulePipeline::Flush() {
  query_->Flush();
  if (!options_.async) return;
  std::unique_lock<std::mutex> lock(emit_mutex_);
  drained_cv_.wait(lock, [this] {
    return inflight_.empty() && completed_.empty() && delivering_ == 0;
  });
}

PipelineStats StreamRulePipeline::stats() const {
  PipelineStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  if (work_queue_ != nullptr) {
    snapshot.max_queue_depth = work_queue_->stats().max_depth;
  }
  return snapshot;
}

void StreamRulePipeline::EnqueueWindow(TripleWindow window) {
  const uint64_t sequence = window.sequence;
  {
    std::lock_guard<std::mutex> lock(emit_mutex_);
    inflight_.insert(sequence);
  }
  {
    // Count admission BEFORE the push: under kBlock a worker can reason
    // and deliver this window before Push even returns, and stats() must
    // never observe windows > enqueued_windows. The refused outcomes
    // below undo the count.
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.enqueued_windows;
  }
  TripleWindow displaced;
  const QueuePushResult pushed =
      work_queue_->Push(std::move(window), &displaced);
  if (pool_queue_ != nullptr && (pushed == QueuePushResult::kOk ||
                                 pushed == QueuePushResult::kDroppedOldest)) {
    // One unit-cost task per admitted window. Counting both outcomes
    // keeps the conservation invariant simple — outstanding tasks >=
    // queued windows at all times — at the cost of an occasional surplus
    // task whose TryPop comes up empty and no-ops (the eviction path
    // leaves the queue depth unchanged, so its task is the surplus one).
    pool_queue_->Submit([this] { PoolTask(); });
  }
  switch (pushed) {
    case QueuePushResult::kOk:
      break;
    case QueuePushResult::kDroppedOldest:
      // The evicted window was admitted earlier: its tombstone releases
      // the sequence slot it would otherwise leave gaping (ShedWindow
      // parks it in the reorder buffer and wakes the emitter, which may
      // have been waiting on exactly this sequence).
      ShedWindow(std::move(displaced), /*evicted=*/true);
      break;
    case QueuePushResult::kRejected: {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        --stats_.enqueued_windows;
      }
      ShedWindow(std::move(window), /*evicted=*/false);
      break;
    }
    case QueuePushResult::kClosed: {
      {
        std::lock_guard<std::mutex> lock(emit_mutex_);
        inflight_.erase(sequence);
      }
      emit_cv_.notify_all();
      std::lock_guard<std::mutex> lock(stats_mutex_);
      --stats_.enqueued_windows;
      break;
    }
  }
}

void StreamRulePipeline::ShedWindow(TripleWindow window, bool evicted) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (evicted) {
      ++stats_.dropped_windows;
    } else {
      ++stats_.rejected_windows;
    }
    stats_.shed_items += window.size();
  }
  if (!evicted) {
    // A synchronous refusal happens inside this very window's emission
    // callback, so folding its delta back composes exactly: the next
    // emission nets the change across the gap and the delivered delta
    // chain (delta_base) stays unbroken. Evictions are mid-stream — the
    // admitted windows between the victim and "now" are still queued —
    // so their delta dies with them and incremental consumers detect the
    // delta_base gap and snapshot-diff.
    query_->FoldShedDelta(&window);
  }
  if (!options_.async) {
    DeliverShed(window);
    return;
  }
  const uint64_t sequence = window.sequence;
  {
    std::lock_guard<std::mutex> lock(emit_mutex_);
    inflight_.erase(sequence);
    CompletedWindow tombstone;
    tombstone.shed = true;
    tombstone.window = std::move(window);
    completed_.emplace(sequence, std::move(tombstone));
  }
  emit_cv_.notify_all();
  if (pool_queue_ != nullptr) {
    // No emitter thread in shared-pool mode: the shedding caller itself
    // drives delivery, which also covers the tombstone-only tail (a shed
    // with no pool task left to drain after it).
    DrainCompleted();
  }
}

void StreamRulePipeline::DeliverShed(TripleWindow& window) {
  EmissionEvent event;
  event.kind = EmissionEvent::Kind::kShed;
  event.sequence = window.sequence;
  event.window = &window;
  event.completeness = 0.0;
  handler_(event);
}

void StreamRulePipeline::ProcessWindowSync(TripleWindow& window) {
  if (!has_error_channel_) {
    // No error channel: let exceptions propagate to the Push caller.
    DeliverResult(window, sync_reasoner_->Process(window));
    return;
  }
  // With an error channel installed the caller wants exactly one delivery
  // per window (the sharded engine's merge stalls on a missing slot), so
  // convert exceptions to the same error path async workers use.
  StatusOr<ParallelReasonerResult> result{InternalError("not run")};
  try {
    result = sync_reasoner_->Process(window);
  } catch (const std::exception& e) {
    result = InternalError(std::string("reasoning exception: ") + e.what());
  } catch (...) {
    result = InternalError("reasoning exception");
  }
  DeliverResult(window, result);
}

void StreamRulePipeline::ReasonWorkerLoop(size_t worker_index) {
  ParallelReasoner& reasoner = *worker_reasoners_[worker_index];
  TripleWindow window;
  while (work_queue_->Pop(&window)) {
    CompletedWindow done;
    // An exception escaping a worker thread would std::terminate the
    // process; convert to the same error path a failed Status takes (sync
    // mode lets it propagate to the Push caller instead).
    try {
      done.result = reasoner.Process(window);
    } catch (const std::exception& e) {
      done.result = InternalError(
          std::string("reasoning worker exception: ") + e.what());
    } catch (...) {
      done.result = InternalError("reasoning worker exception");
    }
    const uint64_t sequence = window.sequence;
    done.window = std::move(window);
    size_t reorder_depth = 0;
    {
      std::lock_guard<std::mutex> lock(emit_mutex_);
      completed_.emplace(sequence, std::move(done));
      inflight_.erase(sequence);
      reorder_depth = completed_.size();
    }
    emit_cv_.notify_all();
    {
      // Outside emit_mutex_: keep the emit→stats lock order flat.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.max_reorder_depth =
          std::max(stats_.max_reorder_depth, reorder_depth);
    }
  }
}

void StreamRulePipeline::PoolTask() {
  std::optional<TripleWindow> popped = work_queue_->TryPop();
  if (!popped.has_value()) {
    // Surplus task: the window this task was submitted for was consumed
    // by an eviction (its tombstone is already parked). Nothing to do.
    return;
  }
  TripleWindow window = std::move(*popped);
  // Check a reasoner slot out. The lane's inflight cap bounds this
  // pipeline's concurrent tasks by the slot count, so the free list is
  // never empty here.
  std::unique_ptr<ParallelReasoner> reasoner;
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    reasoner = std::move(free_slots_.back());
    free_slots_.pop_back();
  }
  CompletedWindow done;
  // Same conversion as ReasonWorkerLoop: an exception escaping a pool
  // task would terminate the process.
  try {
    done.result = reasoner->Process(window);
  } catch (const std::exception& e) {
    done.result =
        InternalError(std::string("reasoning task exception: ") + e.what());
  } catch (...) {
    done.result = InternalError("reasoning task exception");
  }
  {
    std::lock_guard<std::mutex> lock(slots_mutex_);
    free_slots_.push_back(std::move(reasoner));
  }
  const uint64_t sequence = window.sequence;
  done.window = std::move(window);
  size_t reorder_depth = 0;
  {
    std::lock_guard<std::mutex> lock(emit_mutex_);
    completed_.emplace(sequence, std::move(done));
    inflight_.erase(sequence);
    reorder_depth = completed_.size();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.max_reorder_depth =
        std::max(stats_.max_reorder_depth, reorder_depth);
  }
  DrainCompleted();
}

void StreamRulePipeline::DrainCompleted() {
  std::unique_lock<std::mutex> lock(emit_mutex_);
  if (draining_) {
    // Another thread holds the drain baton. It re-checks CanEmitLocked
    // under this same mutex after each delivery and before releasing the
    // baton, so anything we parked before locking here is either already
    // observed by its re-check or will be — returning loses nothing.
    return;
  }
  draining_ = true;
  while (CanEmitLocked()) {
    auto first = completed_.begin();
    CompletedWindow done = std::move(first->second);
    completed_.erase(first);
    ++delivering_;
    lock.unlock();
    try {
      if (done.shed) {
        DeliverShed(done.window);
      } else {
        DeliverResult(done.window, done.result);
      }
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.errors;
      }
      STREAMASP_LOG(kError) << "window " << done.window.sequence
                            << ": delivery callback threw: " << e.what();
    } catch (...) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.errors;
      }
      STREAMASP_LOG(kError) << "window " << done.window.sequence
                            << ": delivery callback threw";
    }
    lock.lock();
    --delivering_;
  }
  draining_ = false;
  if (inflight_.empty() && completed_.empty() && delivering_ == 0) {
    drained_cv_.notify_all();
  }
}

bool StreamRulePipeline::CanEmitLocked() const {
  if (completed_.empty()) return false;
  // Deliverable once no admitted-but-unreasoned window has a smaller
  // sequence. The windower assigns sequences in admission order, so
  // nothing below min(inflight_) can still appear.
  return inflight_.empty() ||
         completed_.begin()->first < *inflight_.begin();
}

void StreamRulePipeline::EmitterLoop() {
  std::unique_lock<std::mutex> lock(emit_mutex_);
  for (;;) {
    emit_cv_.wait(lock, [this] { return shutdown_ || CanEmitLocked(); });
    // After shutdown the workers have joined: nothing with a smaller
    // sequence can arrive any more, so drain the buffer unconditionally
    // (still in sequence order — completed_ is an ordered map).
    while (!completed_.empty() && (CanEmitLocked() || shutdown_)) {
      auto first = completed_.begin();
      CompletedWindow done = std::move(first->second);
      completed_.erase(first);
      // Keep the window counted as undelivered while the callback runs, or
      // Flush could observe empty inflight_/completed_ and return before
      // the delivery it is waiting for has happened.
      ++delivering_;
      lock.unlock();
      try {
        if (done.shed) {
          DeliverShed(done.window);
        } else {
          DeliverResult(done.window, done.result);
        }
      } catch (const std::exception& e) {
        // A throwing ResultCallback would terminate the emitter thread;
        // count it like a reasoning error and keep the stream moving.
        {
          std::lock_guard<std::mutex> stats_lock(stats_mutex_);
          ++stats_.errors;
        }
        STREAMASP_LOG(kError) << "window " << done.window.sequence
                              << ": delivery callback threw: " << e.what();
      } catch (...) {
        {
          std::lock_guard<std::mutex> stats_lock(stats_mutex_);
          ++stats_.errors;
        }
        STREAMASP_LOG(kError) << "window " << done.window.sequence
                              << ": delivery callback threw";
      }
      lock.lock();
      --delivering_;
    }
    if (inflight_.empty() && completed_.empty() && delivering_ == 0) {
      drained_cv_.notify_all();
      if (shutdown_) return;
    }
  }
}

void StreamRulePipeline::DeliverResult(
    TripleWindow& window, const StatusOr<ParallelReasonerResult>& result) {
  if (!result.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.errors;
    }
    STREAMASP_LOG(kError) << "window " << window.sequence << ": "
                          << result.status();
    EmissionEvent event;
    event.kind = EmissionEvent::Kind::kError;
    event.sequence = window.sequence;
    event.window = &window;
    event.status = result.status();
    event.completeness = 0.0;
    handler_(event);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.windows;
    stats_.items += window.size();
    stats_.answers += result->answers.size();
    stats_.total_latency_ms += result->latency_ms;
    stats_.max_latency_ms =
        std::max(stats_.max_latency_ms, result->latency_ms);
    stats_.total_critical_path_ms += result->critical_path_ms;
    stats_.incremental_windows += result->grounding.incremental_windows;
    stats_.grounding_fallbacks += result->grounding.incremental_fallbacks;
    stats_.grounding_rules_retained += result->grounding.rules_retained;
    stats_.grounding_rules_retracted += result->grounding.rules_retracted;
    stats_.grounding_rules_new += result->grounding.rules_new;
    stats_.incremental_solve_windows +=
        result->solving.incremental_solve_windows;
    stats_.solve_rebuilds += result->solving.solve_rebuilds;
    stats_.solver_rules_retained += result->solving.rules_retained;
    stats_.solver_rules_retracted += result->solving.rules_retracted;
    stats_.solver_rules_new += result->solving.rules_new;
    stats_.warm_start_hits += result->solving.warm_start_hits;
    stats_.atoms_touched += result->solving.atoms_touched;
    stats_.assignments_reused += result->solving.assignments_reused;
    stats_.fixpoint_maintained_windows +=
        result->solving.fixpoint_maintained_windows;
    stats_.total_ground_ms += result->ground_ms;
    stats_.total_solve_ms += result->solve_ms;
    stats_.atom_table_bytes =
        std::max(stats_.atom_table_bytes, result->grounding.atom_table_bytes);
    stats_.max_window_items =
        std::max<uint64_t>(stats_.max_window_items, window.size());
  }
  EmissionEvent event;
  event.sequence = window.sequence;
  event.window = &window;
  event.result = &*result;
  event.completeness = result->completeness;
  handler_(event);
}

}  // namespace streamasp
