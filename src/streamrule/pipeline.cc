#include "streamrule/pipeline.h"

#include <utility>

#include "util/logging.h"

namespace streamasp {

StatusOr<std::unique_ptr<StreamRulePipeline>> StreamRulePipeline::Create(
    const Program* program, PipelineOptions options,
    ResultCallback callback) {
  if (program == nullptr) {
    return InvalidArgumentError("program must not be null");
  }
  if (callback == nullptr) {
    return InvalidArgumentError("result callback must not be null");
  }
  STREAMASP_RETURN_IF_ERROR(program->Validate());

  PartitioningPlan plan(1);
  DecompositionInfo info;
  if (options.disable_partitioning) {
    // A single community holding every input predicate: PR degenerates
    // to whole-window reasoning on one worker.
    for (const PredicateSignature& sig : program->input_predicates()) {
      plan.Assign(sig, 0);
    }
    info.num_communities = 1;
  } else {
    STREAMASP_ASSIGN_OR_RETURN(
        InputDependencyGraph graph,
        InputDependencyGraph::Build(*program, options.dependency));
    STREAMASP_ASSIGN_OR_RETURN(
        plan,
        DecomposeInputDependencyGraph(graph, options.decomposition, &info));
  }
  return std::unique_ptr<StreamRulePipeline>(new StreamRulePipeline(
      program, std::move(options), std::move(plan), info,
      std::move(callback)));
}

StreamRulePipeline::StreamRulePipeline(const Program* program,
                                       PipelineOptions options,
                                       PartitioningPlan plan,
                                       DecompositionInfo info,
                                       ResultCallback callback)
    : options_(options),
      plan_(std::move(plan)),
      info_(info),
      callback_(std::move(callback)),
      reasoner_(program, plan_, options_.reasoner) {
  query_ = std::make_unique<StreamQueryProcessor>(
      options_.window_size,
      [this](const TripleWindow& window) { ProcessWindow(window); });
  for (const PredicateSignature& sig : program->input_predicates()) {
    query_->RegisterPredicate(sig.name);
  }
}

void StreamRulePipeline::Push(const Triple& triple) { query_->Push(triple); }

void StreamRulePipeline::PushBatch(const std::vector<Triple>& triples) {
  query_->PushBatch(triples);
}

void StreamRulePipeline::Flush() { query_->Flush(); }

void StreamRulePipeline::ProcessWindow(const TripleWindow& window) {
  StatusOr<ParallelReasonerResult> result = reasoner_.Process(window);
  if (!result.ok()) {
    ++stats_.errors;
    STREAMASP_LOG(kError) << "window " << window.sequence << ": "
                          << result.status();
    return;
  }
  ++stats_.windows;
  stats_.items += window.size();
  stats_.answers += result->answers.size();
  stats_.total_latency_ms += result->latency_ms;
  stats_.max_latency_ms = std::max(stats_.max_latency_ms, result->latency_ms);
  stats_.total_critical_path_ms += result->critical_path_ms;
  callback_(window, *result);
}

}  // namespace streamasp
