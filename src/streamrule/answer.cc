#include "streamrule/answer.h"

#include <algorithm>

namespace streamasp {

void NormalizeAnswer(GroundAnswer* answer) {
  std::sort(answer->begin(), answer->end());
  answer->erase(std::unique(answer->begin(), answer->end()), answer->end());
}

size_t IntersectionSize(const GroundAnswer& a, const GroundAnswer& b) {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

GroundAnswer UnionAnswers(const GroundAnswer& a, const GroundAnswer& b) {
  GroundAnswer out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool AnswersEqual(const GroundAnswer& a, const GroundAnswer& b) {
  return a == b;
}

GroundAnswer ProjectAnswer(
    const GroundAnswer& answer,
    const std::vector<PredicateSignature>& signatures) {
  GroundAnswer out;
  for (const Atom& atom : answer) {
    for (const PredicateSignature& sig : signatures) {
      if (atom.signature() == sig) {
        out.push_back(atom);
        break;
      }
    }
  }
  return out;  // Subsequence of a sorted sequence stays sorted.
}

std::string AnswerToString(const GroundAnswer& answer,
                           const SymbolTable& symbols) {
  std::string out = "{";
  for (size_t i = 0; i < answer.size(); ++i) {
    if (i > 0) out += ", ";
    out += answer[i].ToString(symbols);
  }
  out += "}";
  return out;
}

}  // namespace streamasp
