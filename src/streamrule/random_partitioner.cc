#include "streamrule/random_partitioner.h"

#include <algorithm>

namespace streamasp {

RandomPartitioner::RandomPartitioner(size_t k, uint64_t seed)
    : k_(std::max<size_t>(k, 1)), rng_(seed) {}

std::vector<std::vector<Triple>> RandomPartitioner::Partition(
    const std::vector<Triple>& window) {
  std::vector<std::vector<Triple>> partitions(k_);
  for (const Triple& item : window) {
    partitions[rng_.NextBounded(k_)].push_back(item);
  }
  return partitions;
}

std::vector<std::vector<Atom>> RandomPartitioner::PartitionFacts(
    const std::vector<Atom>& window) {
  std::vector<std::vector<Atom>> partitions(k_);
  for (const Atom& item : window) {
    partitions[rng_.NextBounded(k_)].push_back(item);
  }
  return partitions;
}

}  // namespace streamasp
