#ifndef STREAMASP_STREAMRULE_TRAFFIC_WORKLOAD_H_
#define STREAMASP_STREAMRULE_TRAFFIC_WORKLOAD_H_

#include <vector>

#include "asp/program.h"
#include "stream/generator.h"
#include "util/status.h"

namespace streamasp {

/// Which variant of the paper's rule set to build.
enum class TrafficProgramVariant {
  /// Listing 1: six rules (r1–r6). Its input dependency graph is
  /// disconnected — two natural components (Figure 3).
  kP,
  /// Listing 1 plus r7 (`traffic_jam(X) :- car_fire(X), many_cars(X).`),
  /// whose input dependency graph is connected (Figure 4) and forces the
  /// Louvain + duplication path (Figure 5, duplicated car_number).
  kPPrime,
};

/// The motivating workload of paper §II-A: city traffic event detection.
/// Programs, input predicate declarations and the matching stream schema,
/// shared by tests, benchmarks and examples.

/// ASP source text of the selected variant (with #input declarations; adds
/// `#show traffic_jam/1, car_fire/1, give_notification/1.` when
/// `with_show` is set, which the accuracy figures use to focus on derived
/// events).
std::string TrafficProgramText(TrafficProgramVariant variant, bool with_show);

/// Parses the selected variant into `symbols`.
StatusOr<Program> MakeTrafficProgram(SymbolTablePtr symbols,
                                     TrafficProgramVariant variant,
                                     bool with_show = false);

/// The stream schema matching inpre(P): six predicates, car_in_smoke
/// carrying categorical {high, low} objects, the rest numeric.
std::vector<StreamPredicate> MakeTrafficSchema(SymbolTable& symbols);

/// Bursty/adversarial traffic stream over the same schema, for the
/// overload tests and the burst-overload bench legs: the BurstShape
/// drives arrival-rate spikes (pacing hints) and hot-key storms (see
/// stream/generator.h). Deterministic in (seed, call sequence).
BurstyStreamGenerator MakeTrafficBurstGenerator(SymbolTable& symbols,
                                                uint64_t seed,
                                                BurstOptions burst = {});

/// Convenience: the first `items` triples of the bursty traffic stream.
std::vector<Triple> MakeTrafficBurstStream(SymbolTable& symbols, size_t items,
                                           uint64_t seed,
                                           BurstOptions burst = {});

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_TRAFFIC_WORKLOAD_H_
