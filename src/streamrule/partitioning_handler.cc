#include "streamrule/partitioning_handler.h"

#include <unordered_map>
#include <utility>

namespace streamasp {

namespace {

/// group(W) of Algorithm 1: indexes of window items, grouped by predicate
/// signature in first-occurrence order.
template <typename Item, typename SignatureOf>
std::vector<std::pair<PredicateSignature, std::vector<size_t>>> GroupWindow(
    const std::vector<Item>& window, SignatureOf signature_of) {
  std::vector<std::pair<PredicateSignature, std::vector<size_t>>> groups;
  std::unordered_map<PredicateSignature, size_t, PredicateSignatureHash>
      group_of;
  for (size_t i = 0; i < window.size(); ++i) {
    const PredicateSignature sig = signature_of(window[i]);
    auto [it, inserted] = group_of.emplace(sig, groups.size());
    if (inserted) {
      groups.emplace_back(sig, std::vector<size_t>{});
    }
    groups[it->second].second.push_back(i);
  }
  return groups;
}

}  // namespace

PartitioningHandler::PartitioningHandler(PartitioningPlan plan)
    : plan_(std::move(plan)) {}

std::vector<std::vector<Triple>> PartitioningHandler::Partition(
    const std::vector<Triple>& window, bool count_strays) const {
  std::vector<std::vector<Triple>> partitions(
      std::max(plan_.num_communities(), 1));
  const auto groups = GroupWindow(window, [](const Triple& t) {
    return PredicateSignature{t.predicate,
                              t.object.has_value() ? 2u : 1u};
  });
  for (const auto& [signature, indexes] : groups) {
    const std::vector<int>& communities = plan_.CommunitiesOf(signature);
    if (communities.empty()) {
      if (count_strays) {
        stray_items_.fetch_add(indexes.size(), std::memory_order_relaxed);
      }
      for (size_t i : indexes) partitions[0].push_back(window[i]);
      continue;
    }
    for (int c : communities) {
      for (size_t i : indexes) partitions[c].push_back(window[i]);
    }
  }
  return partitions;
}

std::vector<std::vector<Atom>> PartitioningHandler::PartitionFacts(
    const std::vector<Atom>& window) const {
  std::vector<std::vector<Atom>> partitions(
      std::max(plan_.num_communities(), 1));
  const auto groups =
      GroupWindow(window, [](const Atom& a) { return a.signature(); });
  for (const auto& [signature, indexes] : groups) {
    const std::vector<int>& communities = plan_.CommunitiesOf(signature);
    if (communities.empty()) {
      stray_items_.fetch_add(indexes.size(), std::memory_order_relaxed);
      for (size_t i : indexes) partitions[0].push_back(window[i]);
      continue;
    }
    for (int c : communities) {
      for (size_t i : indexes) partitions[c].push_back(window[i]);
    }
  }
  return partitions;
}

}  // namespace streamasp
