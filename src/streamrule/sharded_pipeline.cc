#include "streamrule/sharded_pipeline.h"

#include <algorithm>
#include <exception>
#include <iterator>
#include <map>
#include <string>
#include <utility>

#include "streamrule/accuracy.h"
#include "streamrule/validate.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace streamasp {

StatusOr<std::unique_ptr<ShardedPipelineEngine>> ShardedPipelineEngine::Create(
    const Program* program, ShardedPipelineOptions options,
    EmissionHandler handler) {
  if (program == nullptr) {
    return InvalidArgumentError("program must not be null");
  }
  if (handler == nullptr) {
    return InvalidArgumentError("emission handler must not be null");
  }
  // Lossy backpressure policies (kDropOldest/kReject) and the admission
  // filter are fully supported, sliding global windows included: a shed
  // sub-window surfaces as a tombstone in the shard's emission stream,
  // which releases its merge slot and lowers the merged window's
  // completeness instead of stalling the ordered merge (see
  // DeliverMerged). The cross-cutting option rules live in the shared
  // validator.
  STREAMASP_RETURN_IF_ERROR(ValidateShardedPipelineOptions(options));
  if (options.shard_key == nullptr) options.shard_key = SubjectShardKey();
  std::unique_ptr<ShardedPipelineEngine> engine(new ShardedPipelineEngine(
      program, std::move(options), std::move(handler)));
  STREAMASP_RETURN_IF_ERROR(engine->StartShards());
  return engine;
}

StatusOr<std::unique_ptr<ShardedPipelineEngine>> ShardedPipelineEngine::Create(
    const Program* program, ShardedPipelineOptions options,
    ResultCallback callback) {
  if (callback == nullptr) {
    return InvalidArgumentError("result callback must not be null");
  }
  EmissionHandler handler =
      [callback = std::move(callback)](EmissionEvent& event) {
        if (event.kind == EmissionEvent::Kind::kResult) {
          callback(*event.window, *event.result);
        }
      };
  return Create(program, std::move(options), std::move(handler));
}

ShardedPipelineEngine::ShardedPipelineEngine(const Program* program,
                                             ShardedPipelineOptions options,
                                             EmissionHandler handler)
    : program_(program),
      options_(std::move(options)),
      handler_(std::move(handler)),
      merge_combiner_(options_.pipeline.reasoner.combining),
      routed_items_(options_.num_shards) {
  const size_t n = options_.num_shards;
  batches_.resize(n);
  pending_in_window_.assign(n, 0);
  pending_expired_.resize(n);
  pending_admitted_.resize(n);
  slice_count_.assign(n, 0);
  global_sequence_of_.resize(n);
}

Status ShardedPipelineEngine::StartShards() {
  const size_t n = options_.num_shards;
  for (const PredicateSignature& sig : program_->input_predicates()) {
    selected_.insert(sig.name);
  }

  // The router owns the global window boundaries: each shard's windower
  // gets a size it can never reach between punctuations (at most
  // window_size_ items cross all shards per global window), so every
  // sub-window close comes from CloseWindow(). Sliding global windows
  // instead put the shard windowers in external-delta mode: they retain
  // routed survivors and every boundary arrives as a delta-carrying
  // CloseWindow(WindowDelta) from the router.
  PipelineOptions inner = options_.pipeline;
  window_size_ = std::max<size_t>(1, inner.window_size);
  slide_ = inner.window_slide == 0
               ? window_size_
               : std::min(inner.window_slide, window_size_);
  if (window_size_ < SIZE_MAX) inner.window_size = window_size_ + 1;
  inner.window_slide = 0;
  inner.external_delta_punctuation = sliding();

  // Budget thread counts left at "pick for me" across the shards, so N
  // shards do not each claim the whole machine.
  if (inner.async && inner.shared_pool != nullptr &&
      inner.shared_queue == nullptr) {
    // Shared-pool mode: build ONE engine-wide DRR lane here and hand it
    // to every shard pipeline, so the tenant's weight and inflight cap
    // govern the whole engine rather than multiplying by num_shards.
    // Each shard still sizes its own reasoner slots to the lane's cap
    // (its concurrent tasks are a subset of the lane's). No per-shard
    // thread budgeting: pooled pipelines spawn no reasoning threads, and
    // reasoner.num_threads left at 0 resolves to inline mode inside the
    // pipeline.
    size_t cap = inner.pool_max_inflight;
    if (cap == 0) {
      cap = std::min<size_t>(inner.max_inflight_windows,
                             inner.shared_pool->num_threads());
    }
    inner.shared_queue = inner.shared_pool->CreateQueue(
        inner.pool_weight, std::max<size_t>(cap, 1));
  } else if (inner.async) {
    if (inner.num_reason_workers == 0) {
      inner.num_reason_workers = std::max<size_t>(
          1, std::min(inner.max_inflight_windows, DefaultThreadCount() / n));
    }
    if (inner.reasoner.num_threads == 0) {
      inner.reasoner.num_threads = std::max<size_t>(
          1, DefaultThreadCount() / (n * inner.num_reason_workers));
    }
  } else if (inner.reasoner.num_threads == 0) {
    inner.reasoner.num_threads =
        std::max<size_t>(1, DefaultThreadCount() / n);
  }

  // Queues before threads: the destructor's cleanup path assumes every
  // started thread has its queue.
  merge_queue_ = std::make_unique<BoundedQueue<MergeItem>>(
      options_.merge_queue_capacity == 0
          ? std::max<size_t>(8, 2 * n)
          : options_.merge_queue_capacity,
      BackpressurePolicy::kBlock);
  feeder_queues_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    feeder_queues_.push_back(std::make_unique<BoundedQueue<ShardCommand>>(
        std::max<size_t>(1, options_.feeder_queue_capacity),
        BackpressurePolicy::kBlock));
  }

  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    StatusOr<std::unique_ptr<StreamRulePipeline>> shard =
        StreamRulePipeline::Create(
            program_, inner,
            EmissionHandler([this, s](EmissionEvent& event) {
              switch (event.kind) {
                case EmissionEvent::Kind::kResult:
                  OnShardDelivery(s, *event.window, *event.result);
                  break;
                case EmissionEvent::Kind::kError:
                  OnShardDelivery(s, *event.window, event.status);
                  break;
                case EmissionEvent::Kind::kShed:
                  OnShardShed(s, *event.window);
                  break;
              }
            }));
    STREAMASP_RETURN_IF_ERROR(shard.status());
    shards_.push_back(std::move(*shard));
  }

  // The paper's duplication device, lifted to the router: a predicate
  // whose ground atoms several dependency communities need cannot be
  // co-located with all of its consumers by any single-shard hash, so
  // its items are broadcast to every shard (Route) and deduplicated at
  // the merge (IsReplica). Every shard analyzes the same program, so
  // shard 0's plan speaks for all. With one shard there is nobody to
  // broadcast to; keep the hot path untouched.
  if (n > 1) {
    for (const PredicateSignature& sig :
         shards_[0]->plan().DuplicatedPredicates()) {
      duplicated_.insert(sig.name);
    }
  }

  merger_ = std::thread([this] { MergeLoop(); });
  feeders_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    feeders_.emplace_back([this, s] { FeederLoop(s); });
  }
  return OkStatus();
}

ShardedPipelineEngine::~ShardedPipelineEngine() {
  // Drain back to front: stop feeding, let each shard reason what it was
  // handed, then let the merge thread deliver every assembled window.
  // A partial global window was never assigned a sequence, so the merge
  // expects nothing from it.
  for (std::unique_ptr<BoundedQueue<ShardCommand>>& queue : feeder_queues_) {
    if (queue != nullptr) queue->Close();
  }
  for (std::thread& feeder : feeders_) {
    if (feeder.joinable()) feeder.join();
  }
  shards_.clear();  // Shard destructors drain their admitted sub-windows.
  if (merge_queue_ != nullptr) merge_queue_->Close();
  if (merger_.joinable()) merger_.join();
}

void ShardedPipelineEngine::Push(const Triple& triple) {
  if (selected_.count(triple.predicate) == 0) {
    filtered_items_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Route(triple);
}

void ShardedPipelineEngine::PushBatch(const std::vector<Triple>& triples) {
  for (const Triple& triple : triples) Push(triple);
}

bool ShardedPipelineEngine::IsReplica(const Triple& triple,
                                      size_t shard) const {
  return duplicated_.count(triple.predicate) > 0 &&
         static_cast<size_t>(options_.shard_key(triple) % shards_.size()) !=
             shard;
}

// Sentinel shard assignment in the retained global WindowStore for
// broadcast (duplicated-predicate) items: eviction must reach every
// shard's expired delta, not a single owner's.
constexpr uint32_t kBroadcastShard = UINT32_MAX;

void ShardedPipelineEngine::Route(const Triple& triple) {
  const size_t shard =
      static_cast<size_t>(options_.shard_key(triple) % shards_.size());
  // Duplicated predicates are broadcast: every shard gets a copy in its
  // batch stream, but only the owning shard's copy advances the global
  // window fill — replicas are reasoning context, not window content.
  const bool broadcast =
      !duplicated_.empty() && duplicated_.count(triple.predicate) > 0;
  batches_[shard].push_back(triple);
  routed_items_[shard].fetch_add(1, std::memory_order_relaxed);
  if (broadcast) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (s == shard) continue;
      batches_[s].push_back(triple);
      routed_items_[s].fetch_add(1, std::memory_order_relaxed);
      broadcast_copies_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!sliding()) {
    ++pending_in_window_[shard];
    if (broadcast) {
      // Replica-holding shards must be punctuated at the boundary too,
      // or their windowers would leak the replicas into the next
      // sub-window.
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (s != shard) ++pending_in_window_[s];
      }
    }
    if (++window_fill_ >= window_size_) {
      CloseGlobalWindow();
    } else if (batches_[shard].size() >= options_.router_batch_size) {
      DispatchBatch(shard, /*close_window=*/false);
    }
    return;
  }

  // Sliding global windows: retain the item, record it in its shard's
  // admitted delta, and evict the globally oldest item once the window
  // overflows — the eviction lands in the *owning* shard's expired
  // delta, which is what keeps every per-shard delta exactly the routed
  // split of the global one. A broadcast item is retained once (global
  // window content is ownership-based) but its admission, slice
  // presence and eventual eviction touch every shard, mirroring the
  // replica copies in their batch streams.
  global_window_.Append(triple, /*timestamp_ms=*/0,
                        broadcast ? kBroadcastShard
                                  : static_cast<uint32_t>(shard));
  pending_admitted_[shard].push_back(triple);
  ++slice_count_[shard];
  if (broadcast) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (s == shard) continue;
      pending_admitted_[s].push_back(triple);
      ++slice_count_[s];
    }
  }
  if (global_window_.size() > window_size_) {
    const uint32_t oldest_shard = global_window_.ShardAt(0);
    if (oldest_shard == kBroadcastShard) {
      for (size_t s = 0; s < shards_.size(); ++s) {
        pending_expired_[s].push_back(global_window_.Front());
        --slice_count_[s];
      }
    } else {
      pending_expired_[oldest_shard].push_back(global_window_.Front());
      --slice_count_[oldest_shard];
    }
    global_window_.PopFront();
  }
  ++arrivals_since_emit_;
  if (global_window_.bytes() >
      router_window_bytes_.load(std::memory_order_relaxed)) {
    router_window_bytes_.store(global_window_.bytes(),
                               std::memory_order_relaxed);
  }
  // Same cadence as the unsharded sliding windower: first boundary when
  // the global window first fills, then every slide_ survivors.
  if ((!emitted_once_ && global_window_.size() == window_size_) ||
      (emitted_once_ && arrivals_since_emit_ >= slide_)) {
    CloseGlobalSlidingWindow();
  } else if (batches_[shard].size() >= options_.router_batch_size) {
    DispatchBatch(shard, /*close_window=*/false);
  }
}

void ShardedPipelineEngine::CloseGlobalWindow() {
  const uint64_t sequence = next_global_sequence_++;
  uint32_t expected = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (pending_in_window_[s] > 0) ++expected;
  }
  // Record the merge's expectations and the local→global sequence mapping
  // BEFORE any punctuation is enqueued: a shard could reason and deliver
  // its sub-window before this loop even finishes.
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    expected_.emplace(sequence, expected);
    ++assigned_windows_;
  }
  {
    std::lock_guard<std::mutex> lock(mapping_mutex_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (pending_in_window_[s] > 0) global_sequence_of_[s].push_back(sequence);
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (pending_in_window_[s] == 0) continue;
    DispatchBatch(s, /*close_window=*/true);
    pending_in_window_[s] = 0;
  }
  window_fill_ = 0;
}

void ShardedPipelineEngine::CloseGlobalSlidingWindow() {
  const uint64_t sequence = next_global_sequence_++;
  uint32_t expected = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (slice_count_[s] > 0) ++expected;
  }
  // A boundary only fires with a non-empty global window (first fill or
  // flush of a non-empty buffer), so at least one shard contributes and
  // the merge can never be handed an unfulfillable slot.
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    expected_.emplace(sequence, expected);
    ++assigned_windows_;
  }
  {
    std::lock_guard<std::mutex> lock(mapping_mutex_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (slice_count_[s] > 0) global_sequence_of_[s].push_back(sequence);
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (slice_count_[s] == 0) {
      // Nothing of this shard survives in the global window: skip the
      // punctuation (an empty sub-window would distort the merge) and
      // let its pending deltas fold into its next contributing boundary
      // — deltas compose, so the folded delta is still exact.
      if (!pending_expired_[s].empty() || !pending_admitted_[s].empty()) {
        skipped_empty_slices_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    WindowDelta delta;
    delta.expired = std::move(pending_expired_[s]);
    delta.admitted = std::move(pending_admitted_[s]);
    pending_expired_[s].clear();
    pending_admitted_[s].clear();
    DispatchBatch(s, /*close_window=*/true, std::move(delta));
    delta_punctuations_.fetch_add(1, std::memory_order_relaxed);
  }
  arrivals_since_emit_ = 0;
  emitted_once_ = true;
}

void ShardedPipelineEngine::DispatchBatch(size_t shard, bool close_window,
                                          std::optional<WindowDelta> delta) {
  ShardCommand command;
  command.batch = std::move(batches_[shard]);
  batches_[shard].clear();
  command.close_window = close_window;
  command.delta = std::move(delta);
  if (command.batch.empty() && !close_window) return;
  feeder_queues_[shard]->Push(std::move(command));
}

void ShardedPipelineEngine::FeederLoop(size_t shard) {
  StreamRulePipeline& pipeline = *shards_[shard];
  ShardCommand command;
  while (feeder_queues_[shard]->Pop(&command)) {
    if (!command.batch.empty()) pipeline.PushBatch(command.batch);
    if (command.close_window) {
      if (command.delta.has_value()) {
        pipeline.CloseWindow(std::move(*command.delta));
      } else {
        pipeline.CloseWindow();
      }
    }
    if (command.flush) {
      pipeline.Flush();
      {
        std::lock_guard<std::mutex> lock(flush_mutex_);
        ++flush_acks_;
      }
      flush_cv_.notify_all();
    }
  }
}

void ShardedPipelineEngine::Flush() {
  if (sliding()) {
    // Mirror the unsharded sliding windower's Flush: emit the retained
    // buffer as a final window when anything arrived since the last
    // boundary (or nothing was ever emitted).
    if (!global_window_.empty() &&
        (!emitted_once_ || arrivals_since_emit_ > 0)) {
      CloseGlobalSlidingWindow();
    }
  } else if (window_fill_ > 0) {
    CloseGlobalWindow();
  }
  {
    std::lock_guard<std::mutex> lock(flush_mutex_);
    flush_acks_ = 0;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardCommand command;
    command.flush = true;
    feeder_queues_[s]->Push(std::move(command));
  }
  {
    std::unique_lock<std::mutex> lock(flush_mutex_);
    flush_cv_.wait(lock, [this] { return flush_acks_ == shards_.size(); });
  }
  std::unique_lock<std::mutex> lock(merge_mutex_);
  merge_drained_cv_.wait(
      lock, [this] { return delivered_windows_ == assigned_windows_; });
}

void ShardedPipelineEngine::OnShardDelivery(
    size_t shard, TripleWindow& window,
    StatusOr<ParallelReasonerResult> result) {
  MergeItem item;
  {
    // Shard emitters deliver in local window order, so the front of the
    // FIFO is this sub-window's global sequence.
    std::lock_guard<std::mutex> lock(mapping_mutex_);
    item.global_sequence = global_sequence_of_[shard].front();
    global_sequence_of_[shard].pop_front();
  }
  item.shard = shard;
  item.window = std::move(window);  // The shard discards it after us.
  item.result = std::move(result);
  merge_queue_->Push(std::move(item));
}

void ShardedPipelineEngine::OnShardShed(size_t shard, TripleWindow& window) {
  // The tombstone releases the merge slot a shed sub-window would
  // otherwise leave gaping. Shard pipelines interleave tombstones with
  // result/error deliveries in strict local sequence order (one delivery
  // per punctuated sub-window across all three callbacks), so the
  // FIFO-front mapping below stays exact under shedding.
  MergeItem item;
  {
    std::lock_guard<std::mutex> lock(mapping_mutex_);
    item.global_sequence = global_sequence_of_[shard].front();
    global_sequence_of_[shard].pop_front();
  }
  item.shard = shard;
  item.shed = true;
  item.window = std::move(window);  // Items intact: the merge counts them.
  merge_queue_->Push(std::move(item));
}

void ShardedPipelineEngine::MergeLoop() {
  // Reorder state lives on this thread; only the high-water mark and the
  // delivery counters are shared (under merge_mutex_).
  std::map<uint64_t, PendingMerge> pending;
  uint64_t next_sequence = 0;
  MergeItem item;
  while (merge_queue_->Pop(&item)) {
    PendingMerge& slot = pending[item.global_sequence];
    if (slot.expected == 0) {
      std::lock_guard<std::mutex> lock(merge_mutex_);
      slot.expected = expected_.at(item.global_sequence);
    }
    slot.contributions.push_back(std::move(item));
    {
      std::lock_guard<std::mutex> lock(merge_mutex_);
      max_merge_reorder_depth_ =
          std::max(max_merge_reorder_depth_, pending.size());
    }
    while (!pending.empty()) {
      std::map<uint64_t, PendingMerge>::iterator first = pending.begin();
      if (first->first != next_sequence ||
          first->second.contributions.size() < first->second.expected) {
        break;
      }
      std::vector<MergeItem> contributions =
          std::move(first->second.contributions);
      pending.erase(first);
      DeliverMerged(next_sequence, std::move(contributions));
      ++next_sequence;
    }
  }
}

void ShardedPipelineEngine::DeliverMerged(
    uint64_t global_sequence, std::vector<MergeItem> contributions) {
  std::sort(contributions.begin(), contributions.end(),
            [](const MergeItem& a, const MergeItem& b) {
              return a.shard < b.shard;
            });

  TripleWindow merged;
  merged.sequence = global_sequence;
  size_t upper_bound = 0;
  for (const MergeItem& contribution : contributions) {
    upper_bound += contribution.window.size();
  }
  merged.items.reserve(upper_bound);
  // Shed (tombstoned) sub-windows contribute their items — the merged
  // window is the full global window the oracle would have reasoned, so
  // sizes stay comparable — but no answers: the degradation shows up as
  // completeness < 1, not as a silently smaller window. Broadcast
  // replicas of duplicated predicates are skipped everywhere (merged
  // items, completeness numerator and denominator): each global item is
  // accounted once, at its owning shard, exactly as the unsharded
  // pipeline would hold it.
  const bool has_replicas = !duplicated_.empty();
  size_t total_items = 0;
  size_t reasoned_items = 0;
  size_t shed_contributions = 0;
  Status failure = OkStatus();
  for (MergeItem& contribution : contributions) {
    size_t owned = 0;
    for (Triple& item : contribution.window.items) {
      if (has_replicas && IsReplica(item, contribution.shard)) continue;
      merged.items.push_back(std::move(item));
      ++owned;
    }
    total_items += owned;
    if (contribution.shed) {
      ++shed_contributions;
      continue;
    }
    reasoned_items += owned;
    if (failure.ok() && !contribution.result.ok()) {
      failure = contribution.result.status();
    }
  }
  const double completeness =
      CompletenessRatio(reasoned_items, total_items);

  bool delivered = false;
  bool degraded = false;
  uint64_t answers = 0;
  if (failure.ok()) {
    WallTimer combine_timer;
    std::vector<std::vector<GroundAnswer>> per_shard;
    per_shard.reserve(contributions.size());
    for (MergeItem& contribution : contributions) {
      if (contribution.shed) continue;
      per_shard.push_back(std::move(contribution.result->answers));
    }
    // A fully shed global window combines nothing: deliver zero answer
    // sets (completeness says why) rather than Combine's vacuous empty
    // union.
    StatusOr<std::vector<GroundAnswer>> combined =
        per_shard.empty() ? std::vector<GroundAnswer>{}
                          : merge_combiner_.Combine(per_shard);
    if (!combined.ok()) {
      failure = combined.status();
    } else {
      // Cross-shard view of the per-shard measurements: the shards ran
      // concurrently, so wall-clock-like quantities take the max while
      // work-like quantities sum.
      ParallelReasonerResult result;
      result.answers = std::move(*combined);
      result.completeness = completeness;
      for (const MergeItem& contribution : contributions) {
        if (contribution.shed) continue;
        const ParallelReasonerResult& r = *contribution.result;
        result.latency_ms = std::max(result.latency_ms, r.latency_ms);
        result.partition_ms += r.partition_ms;
        result.reason_ms = std::max(result.reason_ms, r.reason_ms);
        result.combine_ms += r.combine_ms;
        result.critical_path_ms =
            std::max(result.critical_path_ms, r.critical_path_ms);
        result.num_partitions += r.num_partitions;
        result.partition_latency_ms.insert(result.partition_latency_ms.end(),
                                           r.partition_latency_ms.begin(),
                                           r.partition_latency_ms.end());
        result.total_partition_items += r.total_partition_items;
      }
      result.combine_ms += combine_timer.ElapsedMillis();
      answers = result.answers.size();
      degraded = completeness < 1.0;
      EmissionEvent event;
      event.sequence = global_sequence;
      event.window = &merged;
      event.result = &result;
      event.completeness = completeness;
      try {
        handler_(event);
        delivered = true;
      } catch (const std::exception& e) {
        STREAMASP_LOG(kError) << "global window " << global_sequence
                              << ": emission handler threw: " << e.what();
      } catch (...) {
        STREAMASP_LOG(kError) << "global window " << global_sequence
                              << ": emission handler threw";
      }
    }
  }
  if (!failure.ok()) {
    STREAMASP_LOG(kError) << "global window " << global_sequence << ": "
                          << failure;
    // Errors consume their slot in the emission stream too: handler-based
    // consumers (the session server) see why the window is missing; the
    // legacy result-callback adapter drops the event, matching the old
    // log-and-count behavior. Counted as merge_errors either way.
    EmissionEvent event;
    event.kind = EmissionEvent::Kind::kError;
    event.sequence = global_sequence;
    event.window = &merged;
    event.status = failure;
    event.completeness = 0.0;
    try {
      handler_(event);
    } catch (const std::exception& e) {
      STREAMASP_LOG(kError) << "global window " << global_sequence
                            << ": emission handler threw: " << e.what();
    } catch (...) {
      STREAMASP_LOG(kError) << "global window " << global_sequence
                            << ": emission handler threw";
    }
  }

  std::lock_guard<std::mutex> lock(merge_mutex_);
  expected_.erase(global_sequence);
  ++delivered_windows_;
  shed_subwindows_ += shed_contributions;
  if (delivered) {
    ++merged_windows_;
    merged_answers_ += answers;
    completeness_sum_ += completeness;
    min_completeness_ = std::min(min_completeness_, completeness);
    if (degraded) ++degraded_windows_;
  } else {
    ++merge_errors_;
  }
  if (delivered_windows_ == assigned_windows_) {
    merge_drained_cv_.notify_all();
  }
}

ShardedPipelineStats ShardedPipelineEngine::stats() const {
  ShardedPipelineStats out;
  out.per_shard.reserve(shards_.size());
  for (const std::unique_ptr<StreamRulePipeline>& shard : shards_) {
    const PipelineStats stats = shard->stats();
    out.aggregate.windows += stats.windows;
    out.aggregate.items += stats.items;
    out.aggregate.answers += stats.answers;
    out.aggregate.total_latency_ms += stats.total_latency_ms;
    out.aggregate.max_latency_ms =
        std::max(out.aggregate.max_latency_ms, stats.max_latency_ms);
    out.aggregate.total_critical_path_ms += stats.total_critical_path_ms;
    out.aggregate.errors += stats.errors;
    out.aggregate.enqueued_windows += stats.enqueued_windows;
    out.aggregate.dropped_windows += stats.dropped_windows;
    out.aggregate.rejected_windows += stats.rejected_windows;
    out.aggregate.shed_items += stats.shed_items;
    out.aggregate.max_queue_depth =
        std::max(out.aggregate.max_queue_depth, stats.max_queue_depth);
    out.aggregate.max_reorder_depth =
        std::max(out.aggregate.max_reorder_depth, stats.max_reorder_depth);
    out.aggregate.incremental_windows += stats.incremental_windows;
    out.aggregate.grounding_fallbacks += stats.grounding_fallbacks;
    out.aggregate.grounding_rules_retained += stats.grounding_rules_retained;
    out.aggregate.grounding_rules_retracted +=
        stats.grounding_rules_retracted;
    out.aggregate.grounding_rules_new += stats.grounding_rules_new;
    out.aggregate.incremental_solve_windows +=
        stats.incremental_solve_windows;
    out.aggregate.solve_rebuilds += stats.solve_rebuilds;
    out.aggregate.solver_rules_retained += stats.solver_rules_retained;
    out.aggregate.solver_rules_retracted += stats.solver_rules_retracted;
    out.aggregate.solver_rules_new += stats.solver_rules_new;
    out.aggregate.warm_start_hits += stats.warm_start_hits;
    out.aggregate.atoms_touched += stats.atoms_touched;
    out.aggregate.assignments_reused += stats.assignments_reused;
    out.aggregate.fixpoint_maintained_windows +=
        stats.fixpoint_maintained_windows;
    out.aggregate.total_ground_ms += stats.total_ground_ms;
    out.aggregate.total_solve_ms += stats.total_solve_ms;
    // Data-plane footprint: shard peaks coexist (they retain disjoint
    // splits of the same global window), so bytes sum; the per-shard
    // window-item peaks likewise sum to ~the global window size, which
    // keeps aggregate.bytes_per_triple() a per-global-triple figure.
    out.aggregate.window_store_bytes += stats.window_store_bytes;
    out.aggregate.atom_table_bytes += stats.atom_table_bytes;
    out.aggregate.max_window_items += stats.max_window_items;
    out.per_shard.push_back(stats);
  }
  out.aggregate.window_store_bytes +=
      router_window_bytes_.load(std::memory_order_relaxed);
  out.routed_items.reserve(routed_items_.size());
  for (const std::atomic<uint64_t>& routed : routed_items_) {
    out.routed_items.push_back(routed.load(std::memory_order_relaxed));
  }
  out.filtered_items = filtered_items_.load(std::memory_order_relaxed);
  out.broadcast_copies = broadcast_copies_.load(std::memory_order_relaxed);
  out.delta_punctuations =
      delta_punctuations_.load(std::memory_order_relaxed);
  out.skipped_empty_slices =
      skipped_empty_slices_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    out.merged_windows = merged_windows_;
    out.merged_answers = merged_answers_;
    out.merge_errors = merge_errors_;
    out.shed_subwindows = shed_subwindows_;
    out.degraded_windows = degraded_windows_;
    out.mean_completeness =
        merged_windows_ == 0 ? 1.0 : completeness_sum_ / merged_windows_;
    out.min_completeness = min_completeness_;
    out.max_merge_reorder_depth = max_merge_reorder_depth_;
  }
  if (merge_queue_ != nullptr) {
    out.max_merge_queue_depth = merge_queue_->stats().max_depth;
  }
  return out;
}

ShardKeyExtractor CommunityShardKey(const PartitioningPlan& plan) {
  return [plan](const Triple& triple) -> uint64_t {
    const PredicateSignature signature{
        triple.predicate, triple.object.has_value() ? 2u : 1u};
    const std::vector<int>& communities = plan.CommunitiesOf(signature);
    return communities.empty() ? 0
                               : static_cast<uint64_t>(communities.front());
  };
}

}  // namespace streamasp
