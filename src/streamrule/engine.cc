#include "streamrule/engine.h"

#include <utility>

namespace streamasp {

StatusOr<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    const Program* program, EngineConfig config, EmissionHandler handler) {
  std::unique_ptr<StreamEngine> engine(new StreamEngine());
  if (config.num_shards == 0) {
    STREAMASP_ASSIGN_OR_RETURN(
        engine->pipeline_,
        StreamRulePipeline::Create(program, std::move(config.pipeline),
                                   std::move(handler)));
    return engine;
  }
  ShardedPipelineOptions sharded;
  sharded.num_shards = config.num_shards;
  sharded.shard_key = std::move(config.shard_key);
  sharded.router_batch_size = config.router_batch_size;
  sharded.feeder_queue_capacity = config.feeder_queue_capacity;
  sharded.merge_queue_capacity = config.merge_queue_capacity;
  sharded.pipeline = std::move(config.pipeline);
  STREAMASP_ASSIGN_OR_RETURN(
      engine->sharded_,
      ShardedPipelineEngine::Create(program, std::move(sharded),
                                    std::move(handler)));
  return engine;
}

void StreamEngine::Push(const Triple& triple) {
  if (pipeline_ != nullptr) {
    pipeline_->Push(triple);
  } else {
    sharded_->Push(triple);
  }
}

void StreamEngine::PushBatch(const std::vector<Triple>& triples) {
  if (pipeline_ != nullptr) {
    pipeline_->PushBatch(triples);
  } else {
    sharded_->PushBatch(triples);
  }
}

void StreamEngine::Flush() {
  if (pipeline_ != nullptr) {
    pipeline_->Flush();
  } else {
    sharded_->Flush();
  }
}

size_t StreamEngine::num_shards() const {
  return sharded_ == nullptr ? 0 : sharded_->num_shards();
}

size_t StreamEngine::num_reason_workers() const {
  if (pipeline_ != nullptr) return pipeline_->num_reason_workers();
  size_t workers = 0;
  for (size_t s = 0; s < sharded_->num_shards(); ++s) {
    workers += sharded_->shard(s).num_reason_workers();
  }
  return workers;
}

EngineStats StreamEngine::stats() const {
  EngineStats out;
  if (pipeline_ != nullptr) {
    out.reasoning = pipeline_->stats();
    out.delivered_windows = out.reasoning.windows;
    out.delivered_answers = out.reasoning.answers;
    out.delivery_errors = out.reasoning.errors;
    return out;
  }
  const ShardedPipelineStats sharded = sharded_->stats();
  out.num_shards = sharded_->num_shards();
  out.reasoning = sharded.aggregate;
  out.per_shard = sharded.per_shard;
  out.routed_items = sharded.routed_items;
  out.filtered_items = sharded.filtered_items;
  out.delivered_windows = sharded.merged_windows;
  out.delivered_answers = sharded.merged_answers;
  out.delivery_errors = sharded.merge_errors;
  out.max_merge_queue_depth = sharded.max_merge_queue_depth;
  out.max_merge_reorder_depth = sharded.max_merge_reorder_depth;
  out.delta_punctuations = sharded.delta_punctuations;
  out.skipped_empty_slices = sharded.skipped_empty_slices;
  out.shed_subwindows = sharded.shed_subwindows;
  out.degraded_windows = sharded.degraded_windows;
  out.mean_completeness = sharded.mean_completeness;
  out.min_completeness = sharded.min_completeness;
  return out;
}

}  // namespace streamasp
