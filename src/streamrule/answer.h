#ifndef STREAMASP_STREAMRULE_ANSWER_H_
#define STREAMASP_STREAMRULE_ANSWER_H_

#include <string>
#include <vector>

#include "asp/atom.h"
#include "asp/symbol_table.h"

namespace streamasp {

/// One answer set at the StreamRule level: ground atoms by value, sorted
/// by Atom's total order. Unlike solver-level AnswerSets (dense ids local
/// to one grounding), GroundAnswers from different reasoner instances are
/// directly comparable as long as they share a SymbolTable — which is how
/// the combining handler and accuracy evaluator line up answers from
/// parallel partitions.
using GroundAnswer = std::vector<Atom>;

/// Sorts and deduplicates `answer` in place, establishing the GroundAnswer
/// invariant.
void NormalizeAnswer(GroundAnswer* answer);

/// Size of the intersection of two normalized answers (linear merge).
size_t IntersectionSize(const GroundAnswer& a, const GroundAnswer& b);

/// Merges two normalized answers into a normalized union.
GroundAnswer UnionAnswers(const GroundAnswer& a, const GroundAnswer& b);

/// True iff normalized `a` equals normalized `b`.
bool AnswersEqual(const GroundAnswer& a, const GroundAnswer& b);

/// Keeps only atoms whose signature is in `signatures` (the #show
/// projection). `answer` stays normalized.
GroundAnswer ProjectAnswer(const GroundAnswer& answer,
                           const std::vector<PredicateSignature>& signatures);

/// Renders "{a, b(1), ...}".
std::string AnswerToString(const GroundAnswer& answer,
                           const SymbolTable& symbols);

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_ANSWER_H_
