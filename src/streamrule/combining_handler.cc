#include "streamrule/combining_handler.h"

#include <algorithm>

namespace streamasp {

StatusOr<std::vector<GroundAnswer>> CombiningHandler::Combine(
    const std::vector<std::vector<GroundAnswer>>& per_partition) const {
  std::vector<GroundAnswer> combined;
  combined.emplace_back();  // The empty union, to be extended.

  for (const std::vector<GroundAnswer>& answers : per_partition) {
    if (answers.empty()) {
      // No answer to pick from this partition: the cross product is empty.
      return std::vector<GroundAnswer>{};
    }
    std::vector<GroundAnswer> next;
    next.reserve(std::min(combined.size() * answers.size(),
                          options_.max_combined_answers == 0
                              ? combined.size() * answers.size()
                              : options_.max_combined_answers));
    for (const GroundAnswer& partial : combined) {
      for (const GroundAnswer& answer : answers) {
        next.push_back(UnionAnswers(partial, answer));
        if (options_.max_combined_answers != 0 &&
            next.size() >= options_.max_combined_answers) {
          break;
        }
      }
      if (options_.max_combined_answers != 0 &&
          next.size() >= options_.max_combined_answers) {
        break;
      }
    }
    combined = std::move(next);
  }

  // Collapse duplicate unions (different picks can union to equal sets).
  std::sort(combined.begin(), combined.end());
  combined.erase(std::unique(combined.begin(), combined.end()),
                 combined.end());
  return combined;
}

}  // namespace streamasp
