#ifndef STREAMASP_STREAMRULE_ACCURACY_H_
#define STREAMASP_STREAMRULE_ACCURACY_H_

#include <vector>

#include "streamrule/answer.h"

namespace streamasp {

/// The paper's accuracy measure (§III) for a non-monotonic reasoner whose
/// output may contain several answer sets.
///
/// For a single PR answer ans_i against the reference answers
/// Ans^R_P(W) = {ans_1 ... ans_m}:
///
///   accuracy(ans_i) = max_j |ans_i ∩ ans_j| / |ans_j|
///
/// (the best recall against any reference answer). Conventions for the
/// degenerate cases, chosen so that "identical outputs" always score 1:
///   * an empty reference answer ans_j scores 1 for any ans_i (vacuous);
///   * an empty reference *list* scores 1 iff the PR list is empty too,
///     else 0.
double AnswerAccuracy(const GroundAnswer& pr_answer,
                      const std::vector<GroundAnswer>& reference_answers);

/// Mean of AnswerAccuracy over all PR answers (the figure-8/10 scalar).
/// An empty PR list against a non-empty reference scores 0.
double MeanAccuracy(const std::vector<GroundAnswer>& pr_answers,
                    const std::vector<GroundAnswer>& reference_answers);

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_ACCURACY_H_
