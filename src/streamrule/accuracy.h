#ifndef STREAMASP_STREAMRULE_ACCURACY_H_
#define STREAMASP_STREAMRULE_ACCURACY_H_

#include <cstdint>
#include <vector>

#include "streamrule/answer.h"

namespace streamasp {

/// The paper's accuracy measure (§III) for a non-monotonic reasoner whose
/// output may contain several answer sets.
///
/// For a single PR answer ans_i against the reference answers
/// Ans^R_P(W) = {ans_1 ... ans_m}:
///
///   accuracy(ans_i) = max_j |ans_i ∩ ans_j| / |ans_j|
///
/// (the best recall against any reference answer). Conventions for the
/// degenerate cases, chosen so that "identical outputs" always score 1:
///   * an empty reference answer ans_j scores 1 for any ans_i (vacuous);
///   * an empty reference *list* scores 1 iff the PR list is empty too,
///     else 0.
double AnswerAccuracy(const GroundAnswer& pr_answer,
                      const std::vector<GroundAnswer>& reference_answers);

/// Mean of AnswerAccuracy over all PR answers (the figure-8/10 scalar).
/// An empty PR list against a non-empty reference scores 0.
double MeanAccuracy(const std::vector<GroundAnswer>& pr_answers,
                    const std::vector<GroundAnswer>& reference_answers);

/// Exact per-window completeness under load shedding: the fraction of
/// admitted input items that actually reached the reasoner,
///
///   completeness(W) = |items reasoned| / |items admitted|.
///
/// An empty window (0/0) scores 1 — nothing was asked for, nothing was
/// lost — so a lossless stream reports exactly 1.0 window for window.
/// Values are clamped to [0, 1]; items_reasoned > items_admitted is a
/// caller accounting bug, not extra credit.
double CompletenessRatio(uint64_t items_reasoned, uint64_t items_admitted);

/// Streaming accumulator for the exact completeness of a (sub)stream:
/// feed each window's reasoned/admitted counts, read back the item-
/// weighted aggregate. Used per shard (PipelineStats) and across the
/// merge (ShardedPipelineStats); the item weighting makes shard
/// aggregates compose — summing the shards' tallies and ratioing equals
/// ratioing the merged stream.
struct CompletenessTally {
  uint64_t items_reasoned = 0;
  uint64_t items_admitted = 0;

  void Record(uint64_t reasoned, uint64_t admitted) {
    items_reasoned += reasoned;
    items_admitted += admitted;
  }

  double ratio() const {
    return CompletenessRatio(items_reasoned, items_admitted);
  }
};

/// Estimated completeness of a degraded answer stream against a lossless
/// reference, i.e. MeanAccuracy over the answers the shed-afflicted run
/// still produced. Exact completeness (CompletenessRatio) counts lost
/// *input*; this estimates lost *output* — under non-monotonic programs
/// the two can differ in either direction, which is why both are
/// reported. Degenerate cases follow MeanAccuracy's conventions.
double EstimatedCompleteness(const std::vector<GroundAnswer>& degraded,
                             const std::vector<GroundAnswer>& reference);

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_ACCURACY_H_
