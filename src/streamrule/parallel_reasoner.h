#ifndef STREAMASP_STREAMRULE_PARALLEL_REASONER_H_
#define STREAMASP_STREAMRULE_PARALLEL_REASONER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "depgraph/partitioning_plan.h"
#include "streamrule/combining_handler.h"
#include "streamrule/partitioning_handler.h"
#include "streamrule/reasoner.h"
#include "util/thread_pool.h"

namespace streamasp {

/// Configuration of the parallel reasoner.
struct ParallelReasonerOptions {
  ReasonerOptions reasoner;
  CombiningOptions combining;

  /// Worker threads; 0 uses std::thread::hardware_concurrency(). 1 is
  /// the inline mode: no inner ThreadPool is spawned at all — partitions
  /// run sequentially on the calling thread. That is how reasoners hosted
  /// on a SharedReasonerPool worker stay deadlock-free (they never wait
  /// on a pool from a pool task) and how single-threaded configurations
  /// avoid paying a context switch per partition.
  size_t num_threads = 0;
};

/// The outcome of parallel reasoning over one window.
struct ParallelReasonerResult {
  std::vector<GroundAnswer> answers;

  /// Exact completeness of this window's input: the fraction of admitted
  /// items that were actually reasoned (accuracy.h CompletenessRatio).
  /// Always 1.0 from the reasoner itself; the sharded engine's merge
  /// lowers it when tombstoned (shed) sub-windows contributed to the
  /// merged global window. Exactly 1.0 when nothing was shed.
  double completeness = 1.0;

  /// End-to-end measured wall latency (partitioning + parallel reasoning +
  /// combining). On a machine with at least as many free cores as
  /// partitions this approaches critical_path_ms; on fewer cores the
  /// parallel phase is partially serialized.
  double latency_ms = 0;
  double partition_ms = 0;
  double reason_ms = 0;   ///< Wall time of the parallel phase.
  double combine_ms = 0;

  /// Hardware-independent parallel latency: partition_ms + the slowest
  /// partition's reasoner latency + combine_ms. This is the quantity the
  /// paper's 8-core testbed measures as "reasoning latency of PR"; the
  /// figure harnesses report it alongside the measured wall time (see
  /// EXPERIMENTS.md on the single-core substitution).
  double critical_path_ms = 0;

  size_t num_partitions = 0;
  /// Per-partition reasoner latencies (same order as partitions).
  std::vector<double> partition_latency_ms;
  /// Sum of partition sizes; exceeds the window size exactly by the
  /// duplicated items (paper §IV: "the average percentage of instances of
  /// the duplicated predicate in a window is 25%").
  size_t total_partition_items = 0;

  /// Grounding counters summed over the window's partitions, including
  /// the incremental reuse counters when reuse_grounding is enabled.
  GroundingStats grounding;

  /// Solver reuse counters summed over the window's partitions (all zero
  /// unless reuse_solving is enabled).
  SolverStats solving;

  /// Grounding / solving phase time summed over the window's partitions
  /// (CPU-ish totals, not wall time — partitions run concurrently). The
  /// benches report these so the reuse gates can compare phase cost
  /// independently of pipeline overhead.
  double ground_ms = 0;
  double solve_ms = 0;
};

/// The reasoner PR of the extended StreamRule architecture (the grey box
/// of Figure 6): partitioning handler → n parallel copies of reasoner R
/// (each over the full program but only its sub-window) → combining
/// handler.
///
/// Thread-safety: Process and its variants keep no per-call mutable state
/// (the handlers are immutable, Reasoner is thread-compatible), so
/// concurrent calls on one instance are safe — they share the inner
/// ThreadPool, and SubmitAndWaitAll gives each call batch semantics, so
/// concurrent windows interleave at task granularity rather than corrupt
/// each other. With reuse_grounding set, Process additionally serializes
/// whole windows on an internal mutex: the per-partition incremental
/// grounders are stateful, and interleaving two windows through one cache
/// would corrupt its window-to-window diff. (The async and sharded
/// engines give every worker its own ParallelReasoner, so the mutex is
/// uncontended there.)
///
/// Nesting constraint (see util/thread_pool.h): Process blocks on futures
/// of tasks submitted to the instance's OWN pool. Never call Process from
/// a task running on that same pool — with every pool worker blocked in
/// such a call, the partition tasks that would unblock them can never be
/// scheduled. Callers that fan out windows across threads (the async
/// engine's reasoning workers, the sharded engine's shards) therefore give
/// each worker its own ParallelReasoner, so every wait targets the pool
/// one level below the waiter. With num_threads == 1 there is no inner
/// pool at all (partitions run inline on the caller), which is how
/// reasoners hosted on SharedReasonerPool workers satisfy the constraint
/// trivially.
class ParallelReasoner {
 public:
  /// Dependency-guided mode: partitions follow `plan` (built by
  /// DecomposeInputDependencyGraph at design time). `program` must outlive
  /// the reasoner.
  ParallelReasoner(const Program* program, PartitioningPlan plan,
                   ParallelReasonerOptions options = {});

  /// Full PR pipeline over a triple window. With reuse_grounding set the
  /// per-partition grounding reuses the previous window's instantiation:
  /// the window's expired/admitted delta (when the windower emitted one)
  /// is partitioned alongside the items, so each partition's incremental
  /// grounder receives its own sub-stream delta. Delta splitting nests:
  /// under the sharded engine's sliding global windows the window
  /// arriving here is already one shard's routed slice (router delta
  /// punctuation), and the per-partition split applied on top keeps each
  /// grounder's delta exactly its sub-sub-stream's — both splits are
  /// per-item and pure, so they compose. The reuse counters
  /// (ReasonerResult → ParallelReasonerResult) flow identically on the
  /// single-pipeline and sharded sliding paths.
  StatusOr<ParallelReasonerResult> Process(const TripleWindow& window);

  /// PR pipeline over a window already converted to facts. Always batch
  /// grounding (no sequence/delta information at this level).
  StatusOr<ParallelReasonerResult> ProcessFacts(
      const std::vector<Atom>& facts);

  /// Reasons over externally produced partitions — how the PR_Ran_k
  /// baselines of Figures 7–10 are run (RandomPartitioner output goes
  /// here). Partitioning time is reported as 0.
  StatusOr<ParallelReasonerResult> ProcessPartitions(
      const std::vector<std::vector<Triple>>& partitions);

  /// Fact-level variant of ProcessPartitions.
  StatusOr<ParallelReasonerResult> ProcessFactPartitions(
      const std::vector<std::vector<Atom>>& partitions);

  const PartitioningHandler& partitioning_handler() const { return handler_; }

 private:
  template <typename Item>
  StatusOr<ParallelReasonerResult> RunPartitions(
      const std::vector<std::vector<Item>>& partitions);

  /// Reuse path: one sub-window (with delta) per partition, each grounded
  /// through its own IncrementalGrounder. Caller holds incremental_mutex_.
  StatusOr<ParallelReasonerResult> RunIncrementalWindows(
      const std::vector<TripleWindow>& sub_windows);

  /// Shared tail: collect per-partition outcomes, combine answers,
  /// aggregate grounding stats, compute the critical path.
  StatusOr<ParallelReasonerResult> FinishOutcomes(
      std::vector<StatusOr<ReasonerResult>> outcomes,
      ParallelReasonerResult result);

  /// Runs a partition-task batch: on the inner pool when one exists,
  /// sequentially inline otherwise — same batch semantics either way
  /// (every task runs; the first exception is rethrown after all do).
  void RunTasks(std::vector<std::function<void()>> tasks);

  const Program* program_;
  ReasonerOptions reasoner_options_;
  PartitioningHandler handler_;
  CombiningHandler combiner_;
  Reasoner reasoner_;
  /// Null in inline mode (num_threads resolves to 1).
  std::unique_ptr<ThreadPool> pool_;

  /// Per-partition incremental grounders (reuse_grounding only) and their
  /// paired persistent solvers (reuse_solving only — same routing, one
  /// engine per partition), plus the mutex that serializes whole windows
  /// through them.
  std::mutex incremental_mutex_;
  std::vector<std::unique_ptr<IncrementalGrounder>> partition_grounders_;
  std::vector<std::unique_ptr<IncrementalSolver>> partition_solvers_;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_PARALLEL_REASONER_H_
