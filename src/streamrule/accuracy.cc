#include "streamrule/accuracy.h"

#include <algorithm>

namespace streamasp {

double AnswerAccuracy(const GroundAnswer& pr_answer,
                      const std::vector<GroundAnswer>& reference_answers) {
  if (reference_answers.empty()) {
    return pr_answer.empty() ? 1.0 : 0.0;
  }
  double best = 0.0;
  for (const GroundAnswer& reference : reference_answers) {
    if (reference.empty()) {
      best = 1.0;
      break;
    }
    const double ratio =
        static_cast<double>(IntersectionSize(pr_answer, reference)) /
        static_cast<double>(reference.size());
    best = std::max(best, ratio);
    if (best == 1.0) break;
  }
  return best;
}

double MeanAccuracy(const std::vector<GroundAnswer>& pr_answers,
                    const std::vector<GroundAnswer>& reference_answers) {
  if (pr_answers.empty()) {
    return reference_answers.empty() ? 1.0 : 0.0;
  }
  double sum = 0.0;
  for (const GroundAnswer& answer : pr_answers) {
    sum += AnswerAccuracy(answer, reference_answers);
  }
  return sum / static_cast<double>(pr_answers.size());
}

double CompletenessRatio(uint64_t items_reasoned, uint64_t items_admitted) {
  if (items_admitted == 0) return 1.0;
  if (items_reasoned >= items_admitted) return 1.0;
  return static_cast<double>(items_reasoned) /
         static_cast<double>(items_admitted);
}

double EstimatedCompleteness(const std::vector<GroundAnswer>& degraded,
                             const std::vector<GroundAnswer>& reference) {
  return MeanAccuracy(degraded, reference);
}

}  // namespace streamasp
