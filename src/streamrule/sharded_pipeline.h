#ifndef STREAMASP_STREAMRULE_SHARDED_PIPELINE_H_
#define STREAMASP_STREAMRULE_SHARDED_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "stream/shard_key.h"
#include "stream/window_store.h"
#include "streamrule/pipeline.h"
#include "util/bounded_queue.h"

namespace streamasp {

/// Configuration of the sharded multi-pipeline engine.
struct ShardedPipelineOptions {
  /// Number of independent shard pipelines. Each shard owns a full
  /// StreamRulePipeline (windower + reasoner machinery) plus one feeder
  /// thread, so the stream is windowed on num_shards threads instead of
  /// one.
  size_t num_shards = 2;

  /// Partition key (see stream/shard_key.h). null uses SubjectShardKey().
  /// Answers are shard-count-invariant only when the key respects the
  /// program's input dependencies — subject keys for subject-local
  /// programs, CommunityShardKey(plan) for community-partitioned ones.
  /// The router helps the key out with the paper's duplication device:
  /// items of a *duplicated* predicate (one whose ground atoms several
  /// dependency communities need, PartitioningPlan::DuplicatedPredicates)
  /// are broadcast to every shard, so rules that join a duplicated
  /// predicate against facts living on another shard do not silently
  /// lose the join. The key still decides the item's *owning* shard,
  /// which is the copy global window accounting and the merged window
  /// count — replicas are pure reasoning context.
  ShardKeyExtractor shard_key;

  /// Items buffered per shard before the router hands them to the shard's
  /// feeder as one batch (amortizes queue crossings). Global window
  /// boundaries always cut a batch regardless of fill.
  size_t router_batch_size = 256;

  /// Capacity of each shard's feeder command queue (batches + punctuation
  /// in flight between the router and that shard). Always lossless
  /// (kBlock): a full feeder queue backpressures the router.
  size_t feeder_queue_capacity = 8;

  /// Capacity of the merge queue between shard emitters and the merge
  /// thread. 0 picks max(8, 2 * num_shards).
  size_t merge_queue_capacity = 0;

  /// Per-shard pipeline configuration. window_size and window_slide are
  /// interpreted globally: a window boundary falls after every
  /// window_size-th (then every window_slide-th) routed item *across all
  /// shards*, and each shard reasons its slice of that global window.
  ///
  /// Load shedding is supported: lossy backpressure (kDropOldest /
  /// kReject — async shards only, sync pipelines have no work queue to
  /// shed from) and pipeline.admission_filter both work under sharding,
  /// including with sliding global windows. A shed sub-window surfaces
  /// as a tombstone in the shard's ordered emission stream
  /// (StreamRulePipeline::ShedCallback), so the merge releases its slot
  /// instead of stalling; the merged window is delivered with
  /// completeness < 1 (see ShardedPipelineStats and
  /// ParallelReasonerResult::completeness). Synchronously shed sliding
  /// sub-windows fold their delta into the shard's next emission
  /// (StreamQueryProcessor::FoldShedDelta), mirroring the router's
  /// skipped-empty-slice folding, so incremental reuse stays exact
  /// across the gap.
  ///
  /// window_slide in (0, window_size) selects *sliding global windows*:
  /// the router retains the global window's contents and, at each
  /// boundary, punctuates every shard holding a non-empty slice with its
  /// routed split of the global expired/admitted delta
  /// (StreamRulePipeline::CloseWindow(WindowDelta)). Routing is per-item
  /// and pure, so the per-shard deltas compose back to exactly the
  /// global delta (duplicated-predicate items appear in every shard's
  /// delta — admitted and expired alike — matching their broadcast) and
  /// the merged answers stay byte-identical to the unsharded sliding
  /// oracle. reuse_grounding / reuse_solving therefore
  /// keep their full delta-sized per-window cost under sharding: each
  /// shard's incremental grounders retract/replay only its slice of the
  /// slide, and the paired persistent solvers patch instead of
  /// re-ingesting. With tumbling global windows (slide 0 or ==
  /// window_size) the sub-windows share no content, so the caches fall
  /// back every window — correct but not faster. Thread-count fields
  /// left at 0 are budgeted across shards (hardware threads / num_shards
  /// each) rather than per pipeline.
  PipelineOptions pipeline;
};

/// Statistics of the sharded engine: the per-shard PipelineStats, their
/// aggregate, and the router/merge counters. Snapshots are returned by
/// value from ShardedPipelineEngine::stats(), safe from any thread.
struct ShardedPipelineStats {
  /// Field-wise sum (max for the high-water marks) over per_shard. Note
  /// `answers` counts per-shard sub-window answers before merging;
  /// `merged_answers` counts what consumers actually saw.
  PipelineStats aggregate;
  std::vector<PipelineStats> per_shard;

  /// Items routed to each shard (post-filter). Includes broadcast
  /// replicas, so with duplicated predicates the sum across shards
  /// exceeds the number of pushed items by exactly broadcast_copies.
  std::vector<uint64_t> routed_items;
  /// Items the router dropped because their predicate is not declared as
  /// an input of the program.
  uint64_t filtered_items = 0;
  /// Extra per-shard copies fanned out for duplicated predicates (the
  /// owner's copy is not counted). Zero when the plan has no duplicated
  /// predicates or the engine runs a single shard.
  uint64_t broadcast_copies = 0;

  /// Global windows delivered to the callback.
  uint64_t merged_windows = 0;
  /// Answers delivered to the callback (after cross-shard combining).
  uint64_t merged_answers = 0;
  /// Global windows suppressed because a shard sub-window failed (the
  /// per-shard error is also counted in aggregate.errors) or because the
  /// result callback threw.
  uint64_t merge_errors = 0;
  /// High-water mark of the merge queue.
  size_t max_merge_queue_depth = 0;
  /// High-water mark of global windows buffered in the merge reorder
  /// stage (complete or partially assembled).
  size_t max_merge_reorder_depth = 0;

  // --- sliding-router counters (zero for tumbling global windows) ---
  /// Delta punctuations delivered to shards (boundary × contributing
  /// shard pairs).
  uint64_t delta_punctuations = 0;
  /// Boundary × shard pairs where a shard with *pending deltas* was
  /// skipped because its slice of the global window was empty; the
  /// folded deltas are delivered with its next punctuation. (A shard the
  /// key never routes to is skipped silently — it has nothing to fold.)
  uint64_t skipped_empty_slices = 0;

  // --- graceful-degradation counters (all zero / 1.0 unless a lossy
  // backpressure policy or admission filter actually shed work) ---
  /// Shard sub-windows that were shed (tombstoned) instead of reasoned.
  /// Also reflected item-wise in aggregate.shed_items.
  uint64_t shed_subwindows = 0;
  /// Merged windows delivered with completeness < 1.0 (at least one shed
  /// contribution).
  uint64_t degraded_windows = 0;
  /// Mean per-window completeness (items reasoned / items admitted,
  /// accuracy.h CompletenessRatio) over delivered merged windows; exactly
  /// 1.0 when nothing was shed.
  double mean_completeness = 1.0;
  /// Worst per-window completeness observed; exactly 1.0 when nothing
  /// was shed.
  double min_completeness = 1.0;
};

/// Horizontal scale-out of the staged engine: hash-partitions the input
/// stream across `num_shards` independent StreamRulePipeline instances and
/// globally merges their emissions back into strict window-sequence order.
///
///   caller thread:  filter ─► shard key ─► router (global window count)
///        │ per-shard BoundedQueue<ShardCommand> (batches + punctuation)
///        ▼
///   feeder threads: shard pipeline Push / CloseWindow   × num_shards
///        │ each shard: windower ─► workers ─► ordered emitter
///        ▼
///   merge thread:   BoundedQueue<MergeItem> ─► reorder by global window
///                   ─► combine shard answers ─► ResultCallback
///
/// Window semantics: the router counts surviving items and punctuates
/// every shard after each window_size-th item, so global window g is the
/// same set of items the unsharded pipeline would put in its window g —
/// merely split by shard key into per-shard sub-windows that are windowed
/// and reasoned concurrently. Under sliding global windows
/// (window_slide < window_size) the router additionally retains the
/// global window's contents and each punctuation carries the shard's
/// split of the global expired/admitted delta, so the shard windowers
/// emit delta-carrying sliding sub-windows and the incremental
/// grounding/solving caches stay warm across overlapping global windows
/// (shards whose slice is empty are skipped; their deltas fold into the
/// next punctuation). The merge stage combines the sub-window answers
/// with the paper's combining-handler semantics (one pick per shard,
/// unioned; CombiningHandler), which makes the delivered answers
/// *shard-count-invariant and byte-identical to the synchronous oracle*
/// whenever the shard key respects the program's input dependencies.
/// This is the paper's input-dependency partitioning lifted from intra-
/// window parallelism to pipeline-level scale-out — including its
/// duplication device: items of predicates the plan marks as duplicated
/// (needed by rules in more than one dependency community, e.g.
/// car_number in the connected P' variant) are broadcast to every shard
/// as reasoning context, because a hash key alone cannot co-locate them
/// with every rule that joins against them. Each such item still has one
/// *owning* shard (its hash); replicas never count toward global window
/// boundaries, the merged window's items, or completeness.
///
/// Ordering guarantee: the callback runs on the single merge thread, once
/// per global window, in strictly increasing global sequence order, no
/// matter how shards race. Reasoning failures consume their slot (the
/// window is skipped and counted, never reordered or stalled on), and so
/// do shed sub-windows: a shard that sheds a sub-window emits a tombstone
/// in its ordered stream, the merge counts it as that shard's
/// contribution, and the global window is delivered with the surviving
/// shards' answers and completeness < 1 — overload degrades answers, it
/// never stalls or reorders the merge.
///
/// Thread-safety: Push/PushBatch/Flush single caller thread at a time;
/// stats()/accessors any thread. The callback must not re-enter the
/// engine. Internally every wait is on the stage one level downstream
/// (router → feeder queues → shard pipelines → merge queue), so no stage
/// ever waits on its own stage — the same no-nested-wait discipline as
/// ThreadPool (see util/thread_pool.h).
///
/// The merged TripleWindow holds the global window's items grouped by
/// shard (shard 0's slice first), not in original stream arrival order;
/// sizes and sequences match the unsharded pipeline exactly (broadcast
/// replicas are skipped at the merge — only the owning shard's copy of a
/// duplicated-predicate item lands in the merged window).
class ShardedPipelineEngine {
 public:
  using ResultCallback = StreamRulePipeline::ResultCallback;

  /// Builds num_shards pipelines over `program` (one design-time analysis
  /// each; `program` must outlive the engine) and starts the feeder and
  /// merge threads, delivering every merged global window as one ordered
  /// EmissionEvent on the merge thread: kResult for a combined window
  /// (completeness < 1 when shed shard contributions degraded it — a
  /// fully shed window still delivers kResult with zero answers), kError
  /// when a shard sub-window failed or cross-shard combining did (the
  /// slot is consumed, never stalled on). The engine itself emits no
  /// kShed events: shard-level tombstones are absorbed into the merged
  /// window's completeness. Fails on a null program/handler or options
  /// the shared validator rejects (zero shards, lossy backpressure on
  /// synchronous shard pipelines — see streamrule/validate.h).
  static StatusOr<std::unique_ptr<ShardedPipelineEngine>> Create(
      const Program* program, ShardedPipelineOptions options,
      EmissionHandler handler);

  /// Result-callback adapter over the handler surface: kError events are
  /// logged + counted only (merge_errors), exactly the pre-handler
  /// behavior.
  static StatusOr<std::unique_ptr<ShardedPipelineEngine>> Create(
      const Program* program, ShardedPipelineOptions options,
      ResultCallback callback);

  /// Drains every admitted global window (without flushing a partial
  /// one), then stops feeders, shard pipelines and the merge thread.
  ~ShardedPipelineEngine();

  ShardedPipelineEngine(const ShardedPipelineEngine&) = delete;
  ShardedPipelineEngine& operator=(const ShardedPipelineEngine&) = delete;

  /// Routes one raw stream item. May block when a downstream stage is
  /// saturated (lossless backpressure all the way to the caller).
  void Push(const Triple& triple);

  /// Routes a batch.
  void PushBatch(const std::vector<Triple>& triples);

  /// Closes the trailing partial global window (if any), then blocks
  /// until every admitted global window has been reasoned on all shards,
  /// merged, and delivered. The engine remains usable afterwards.
  void Flush();

  /// Thread-safe snapshot across all shards plus router/merge counters.
  ShardedPipelineStats stats() const;

  size_t num_shards() const { return shards_.size(); }

  /// Introspection into one shard's pipeline (plan, decomposition info…).
  const StreamRulePipeline& shard(size_t index) const {
    return *shards_[index];
  }

 private:
  /// One unit of work for a shard's feeder thread: items to push, then
  /// optionally a window-close (global boundary punctuation — carrying
  /// the shard's delta under sliding global windows), then optionally a
  /// flush-and-acknowledge barrier.
  struct ShardCommand {
    std::vector<Triple> batch;
    bool close_window = false;
    std::optional<WindowDelta> delta;  ///< Sliding punctuation payload.
    bool flush = false;
  };

  /// One shard's reasoned sub-window travelling to the merge thread — or
  /// its tombstone: a shed sub-window travels with shed == true, its
  /// items intact (the merge accounts them as admitted-but-unreasoned)
  /// and `result` untouched.
  struct MergeItem {
    uint64_t global_sequence = 0;
    size_t shard = 0;
    bool shed = false;
    TripleWindow window;
    StatusOr<ParallelReasonerResult> result{InternalError("not run")};
  };

  /// A global window being reassembled from its shard contributions.
  struct PendingMerge {
    std::vector<MergeItem> contributions;
    uint32_t expected = 0;
  };

  ShardedPipelineEngine(const Program* program,
                        ShardedPipelineOptions options,
                        EmissionHandler handler);

  Status StartShards();
  bool sliding() const { return slide_ < window_size_; }
  /// True when `triple` sits in shard `shard`'s sub-window only as a
  /// broadcast replica of a duplicated predicate (its owning shard is a
  /// different one). Pure in (triple, shard), so the merge can recompute
  /// ownership instead of tagging items in flight.
  bool IsReplica(const Triple& triple, size_t shard) const;
  /// Routes one pre-filtered item (caller thread).
  void Route(const Triple& triple);
  /// Cuts the current tumbling global window: assigns the next global
  /// sequence, records the expected contributors, punctuates their
  /// feeders.
  void CloseGlobalWindow();
  /// Sliding counterpart: punctuates every shard with a non-empty slice
  /// of the retained global window, each close carrying the shard's
  /// accumulated expired/admitted delta.
  void CloseGlobalSlidingWindow();
  /// Hands a shard's pending batch to its feeder (with optional close;
  /// a non-null delta makes the close a sliding delta punctuation).
  void DispatchBatch(size_t shard, bool close_window,
                     std::optional<WindowDelta> delta = std::nullopt);
  void FeederLoop(size_t shard);
  /// Shard emitter callbacks funnel here (success and error alike); the
  /// sub-window's items are stolen, not copied (see ResultCallback).
  void OnShardDelivery(size_t shard, TripleWindow& window,
                       StatusOr<ParallelReasonerResult> result);
  /// Shard shed (tombstone) callbacks funnel here: releases the shed
  /// sub-window's merge slot so the global window assembles without it.
  void OnShardShed(size_t shard, TripleWindow& window);
  void MergeLoop();
  /// Assembles and delivers one complete global window (merge thread).
  void DeliverMerged(uint64_t global_sequence,
                     std::vector<MergeItem> contributions);

  const Program* program_;
  ShardedPipelineOptions options_;
  EmissionHandler handler_;
  CombiningHandler merge_combiner_;

  std::unordered_set<SymbolId> selected_;  ///< Router's input filter.
  /// Predicates the shards' partitioning plan duplicates across
  /// communities; the router broadcasts their items to every shard.
  std::unordered_set<SymbolId> duplicated_;
  size_t window_size_ = 1;                 ///< Global window length.
  size_t slide_ = 1;  ///< Global slide; == window_size_ for tumbling.

  // --- router state (caller thread only) ---
  std::vector<std::vector<Triple>> batches_;    ///< Per-shard micro-batch.
  std::vector<size_t> pending_in_window_;  ///< Per-shard items this window.
  size_t window_fill_ = 0;       ///< Items routed since the last boundary.
  uint64_t next_global_sequence_ = 0;

  // --- sliding router state (caller thread only; untouched when
  // tumbling). The retained global window is a columnar WindowStore with
  // a shard-assignment column; eviction in global arrival order keeps
  // every per-shard expired list a prefix of that shard's retained
  // sub-stream. ---
  WindowStore global_window_{
      WindowStore::Options{/*with_timestamps=*/false, /*with_shards=*/true}};
  std::vector<std::vector<Triple>> pending_expired_;   ///< Per shard.
  std::vector<std::vector<Triple>> pending_admitted_;  ///< Per shard.
  std::vector<size_t> slice_count_;  ///< Retained items per shard.
  size_t arrivals_since_emit_ = 0;
  bool emitted_once_ = false;

  // --- router counters (written by the caller thread only; relaxed
  // atomics so stats() can read them from anywhere without putting a
  // lock on the per-item routing hot path) ---
  std::vector<std::atomic<uint64_t>> routed_items_;
  std::atomic<uint64_t> filtered_items_{0};
  std::atomic<uint64_t> broadcast_copies_{0};
  std::atomic<uint64_t> delta_punctuations_{0};
  std::atomic<uint64_t> skipped_empty_slices_{0};
  /// Peak bytes of the router's retained global WindowStore, published on
  /// the caller-thread sliding push path (stats() must not touch
  /// global_window_ itself — it races the router).
  std::atomic<size_t> router_window_bytes_{0};

  // --- shards ---
  std::vector<std::unique_ptr<StreamRulePipeline>> shards_;
  std::vector<std::unique_ptr<BoundedQueue<ShardCommand>>> feeder_queues_;
  std::vector<std::thread> feeders_;

  /// Per-shard FIFO of global sequences, one entry per punctuated
  /// sub-window: the router appends before punctuating, the shard's
  /// emitter pops on delivery (deliveries are in local window order).
  std::mutex mapping_mutex_;
  std::vector<std::deque<uint64_t>> global_sequence_of_;

  /// Feeder flush barrier.
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  size_t flush_acks_ = 0;

  // --- merge stage ---
  std::unique_ptr<BoundedQueue<MergeItem>> merge_queue_;
  std::thread merger_;
  mutable std::mutex merge_mutex_;
  std::condition_variable merge_drained_cv_;  ///< Wakes Flush waiters.
  /// Expected contribution count per assigned global window.
  std::unordered_map<uint64_t, uint32_t> expected_;
  uint64_t assigned_windows_ = 0;   ///< Global sequences handed out.
  uint64_t delivered_windows_ = 0;  ///< Callback slots consumed (ok + err).
  uint64_t merged_windows_ = 0;
  uint64_t merged_answers_ = 0;
  uint64_t merge_errors_ = 0;
  uint64_t shed_subwindows_ = 0;
  uint64_t degraded_windows_ = 0;
  double completeness_sum_ = 0;  ///< Over delivered merged windows.
  double min_completeness_ = 1.0;
  size_t max_merge_reorder_depth_ = 0;
};

/// A dependency-graph-derived shard key: routes every item to the
/// community its predicate belongs to under `plan` (see
/// DecomposeInputDependencyGraph), so whole dependency communities shard
/// together. A duplicated predicate's items hash to their first
/// community (their owner); the router's broadcast places the replica
/// copies on every other shard, so cross-community rules keep their
/// joins. Predicates unknown to the plan map to community 0, mirroring
/// PartitioningHandler.
ShardKeyExtractor CommunityShardKey(const PartitioningPlan& plan);

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_SHARDED_PIPELINE_H_
