#ifndef STREAMASP_STREAMRULE_RANDOM_PARTITIONER_H_
#define STREAMASP_STREAMRULE_RANDOM_PARTITIONER_H_

#include <vector>

#include "asp/atom.h"
#include "stream/triple.h"
#include "util/rng.h"

namespace streamasp {

/// The baseline the paper compares against (Germano et al. 2015, and the
/// PR_Ran_k series of Figures 7–10): split the window into k chunks
/// uniformly at random, ignoring dependencies.
///
/// Deterministic under a fixed seed. Items are dealt round-robin over a
/// random permutation-free draw (uniform community per item), matching
/// "partitioning data randomly ... decreases the accuracy of the answers"
/// (§I).
class RandomPartitioner {
 public:
  /// Splits into `k` partitions (k >= 1).
  RandomPartitioner(size_t k, uint64_t seed = 7);

  std::vector<std::vector<Triple>> Partition(
      const std::vector<Triple>& window);

  std::vector<std::vector<Atom>> PartitionFacts(
      const std::vector<Atom>& window);

  size_t k() const { return k_; }

 private:
  size_t k_;
  Rng rng_;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_RANDOM_PARTITIONER_H_
