#ifndef STREAMASP_STREAMRULE_VALIDATE_H_
#define STREAMASP_STREAMRULE_VALIDATE_H_

#include "util/status.h"

namespace streamasp {

struct PipelineOptions;
struct ShardedPipelineOptions;

/// Expands option shorthands in place so every engine surface agrees on
/// what a config means before validating or running it: reuse_grounding
/// ORs into reasoner.reasoner.reuse_grounding and reuse_solving into
/// reasoner.reasoner.solving.reuse_solving. (reuse_solving implies
/// reuse_grounding, but that implication is resolved per reasoner —
/// ResolveReuseOptions in parallel_reasoner.cc — because it is gated on
/// the program being non-disjunctive.) Idempotent; called by every
/// Create before ValidatePipelineOptions.
void NormalizePipelineOptions(PipelineOptions* options);

/// Create-time option validation shared by StreamRulePipeline,
/// ShardedPipelineEngine and the StreamEngine facade — the cross-cutting
/// rules live here exactly once, with uniform messages:
///   * async mode needs max_inflight_windows >= 1;
///   * window_slide must not exceed window_size;
///   * sharded only: lossy backpressure (kDropOldest/kReject) requires
///     async shard pipelines — sync mode has no work queue to shed from
///     (use pipeline.admission_filter for synchronous shedding).
/// `sharded` selects that last rule; an unsharded sync pipeline with a
/// lossy policy is allowed (the policy simply never engages).
Status ValidatePipelineOptions(const PipelineOptions& options,
                               bool sharded = false);

/// Sharded-engine validation: num_shards >= 1, then the pipeline rules
/// above with the sharded cross-cutting rules enabled.
Status ValidateShardedPipelineOptions(const ShardedPipelineOptions& options);

}  // namespace streamasp

#endif  // STREAMASP_STREAMRULE_VALIDATE_H_
