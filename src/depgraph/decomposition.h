#ifndef STREAMASP_DEPGRAPH_DECOMPOSITION_H_
#define STREAMASP_DEPGRAPH_DECOMPOSITION_H_

#include "depgraph/input_dependency_graph.h"
#include "depgraph/partitioning_plan.h"
#include "graph/louvain.h"
#include "util/status.h"

namespace streamasp {

/// Options for the decomposing process.
struct DecompositionOptions {
  /// Louvain settings used when the input dependency graph is connected.
  /// The paper fixes resolution = 1.0 (footnote 8).
  LouvainOptions louvain;
};

/// Summary of how a plan was produced, for logging and benchmarks.
struct DecompositionInfo {
  bool graph_was_connected = false;  ///< Louvain + duplication path taken.
  int num_communities = 0;
  int num_duplicated_predicates = 0;
};

/// The decomposing process of paper §II-B:
///
///   * If the input dependency graph is disconnected, its connected
///     components become the communities directly (the program-P case,
///     Figure 3).
///   * Otherwise (the program-P' case, Figure 4), (1) Louvain modularity
///     splits the graph into communities; (2) for every pair of
///     communities C1, C2 with cross edges, exnodes(C1) and exnodes(C2)
///     are the endpoints of those edges on each side; (3) the smaller of
///     the two exnode sets is duplicated into both communities
///     (Figure 5). Ties pick the side of the lower community id, keeping
///     runs deterministic.
///
/// The result maps every input predicate to one or more communities.
/// A graph that Louvain cannot split (single community) yields a
/// one-community plan — parallel reasoning then degenerates to whole-
/// window reasoning, which is the correct conservative fallback.
StatusOr<PartitioningPlan> DecomposeInputDependencyGraph(
    const InputDependencyGraph& graph,
    const DecompositionOptions& options = {}, DecompositionInfo* info = nullptr);

}  // namespace streamasp

#endif  // STREAMASP_DEPGRAPH_DECOMPOSITION_H_
