#include "depgraph/input_dependency_graph.h"

#include <set>

namespace streamasp {

StatusOr<InputDependencyGraph> InputDependencyGraph::Build(
    const Program& program, const InputDependencyOptions& options) {
  const ExtendedDependencyGraph edg = ExtendedDependencyGraph::Build(program);
  return Build(edg, program.input_predicates(), program.symbol_table(),
               options);
}

StatusOr<InputDependencyGraph> InputDependencyGraph::Build(
    const ExtendedDependencyGraph& edg,
    const std::vector<PredicateSignature>& input_predicates,
    const SymbolTable& symbols, const InputDependencyOptions& options) {
  InputDependencyGraph result;
  if (input_predicates.empty()) {
    return InvalidArgumentError(
        "input dependency graph requires at least one input predicate "
        "(declare them with #input p/n)");
  }

  // Map input predicates onto extended-graph nodes.
  std::vector<NodeId> edg_node_of;  // Indexed by our node id.
  for (const PredicateSignature& sig : input_predicates) {
    const NodeId edg_node = edg.NodeOf(sig);
    if (edg_node == ExtendedDependencyGraph::kInvalidNode) {
      return InvalidArgumentError("input predicate " + sig.ToString(symbols) +
                                  " does not occur in the program");
    }
    const NodeId id = static_cast<NodeId>(result.nodes_.size());
    result.nodes_.push_back(sig);
    result.node_index_.emplace(sig, id);
    edg_node_of.push_back(edg_node);
  }
  const NodeId n = static_cast<NodeId>(result.nodes_.size());
  result.graph_ = UndirectedGraph(n);

  // Forward EP2 reachability from every input predicate (a directed path
  // may be empty, so Reach(p) contains p).
  std::vector<std::vector<bool>> reach(n);
  for (NodeId i = 0; i < n; ++i) {
    reach[i] = edg.ep2().ReachableSetFrom(edg_node_of[i]);
  }

  // Conditions (i) + (ii): p — q iff some EP1 edge (u, v) bridges
  // Reach(p) and Reach(q).
  const UndirectedGraph& ep1 = edg.ep1();
  std::set<std::pair<NodeId, NodeId>> added;
  for (NodeId u = 0; u < ep1.num_nodes(); ++u) {
    for (const UndirectedGraph::Edge& e : ep1.Neighbors(u)) {
      if (e.to < u) continue;  // Each undirected EP1 edge once.
      for (NodeId p = 0; p < n; ++p) {
        for (NodeId q = p + 1; q < n; ++q) {
          const bool bridges =
              (reach[p][u] && reach[q][e.to]) ||
              (reach[p][e.to] && reach[q][u]);
          if (bridges && added.insert({p, q}).second) {
            result.graph_.AddEdge(p, q);
          }
        }
      }
    }
  }

  // Condition (i) for self-loops: an input predicate occurring negatively
  // has an EP1 self-loop that carries over directly.
  for (NodeId p = 0; p < n; ++p) {
    if (ep1.HasSelfLoop(edg_node_of[p]) &&
        added.insert({p, p}).second) {
      result.graph_.AddEdge(p, p);
    }
  }

  // Condition (iii): propagate self-loops from negatively occurring
  // predicates back to the input predicates feeding them.
  for (NodeId u = 0; u < ep1.num_nodes(); ++u) {
    if (!ep1.HasSelfLoop(u)) continue;
    for (NodeId p = 0; p < n; ++p) {
      const bool feeds = options.transitive_self_loop_propagation
                             ? reach[p][u]
                             : edg.ep2().HasEdge(edg_node_of[p], u);
      if (feeds && edg_node_of[p] != u && added.insert({p, p}).second) {
        result.graph_.AddEdge(p, p);
      }
    }
  }

  return result;
}

NodeId InputDependencyGraph::NodeOf(
    const PredicateSignature& signature) const {
  auto it = node_index_.find(signature);
  return it == node_index_.end() ? ExtendedDependencyGraph::kInvalidNode
                                 : it->second;
}

bool InputDependencyGraph::Depends(const PredicateSignature& p,
                                   const PredicateSignature& q) const {
  const NodeId u = NodeOf(p);
  const NodeId v = NodeOf(q);
  if (u == ExtendedDependencyGraph::kInvalidNode ||
      v == ExtendedDependencyGraph::kInvalidNode) {
    return false;
  }
  return graph_.HasEdge(u, v);
}

std::string InputDependencyGraph::ToDot(const SymbolTable& symbols) const {
  std::string out = "graph input_dependency_graph {\n";
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    out += "  n" + std::to_string(u) + " [label=\"" +
           symbols.NameOf(nodes_[u].name) + "\"];\n";
  }
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    if (graph_.HasSelfLoop(u)) {
      out += "  n" + std::to_string(u) + " -- n" + std::to_string(u) + ";\n";
    }
    for (const UndirectedGraph::Edge& e : graph_.Neighbors(u)) {
      if (e.to < u) continue;
      out += "  n" + std::to_string(u) + " -- n" + std::to_string(e.to) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace streamasp
