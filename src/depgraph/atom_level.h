#ifndef STREAMASP_DEPGRAPH_ATOM_LEVEL_H_
#define STREAMASP_DEPGRAPH_ATOM_LEVEL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "asp/program.h"
#include "depgraph/partitioning_plan.h"
#include "util/status.h"

namespace streamasp {

/// Options for atom-level partitioning.
struct AtomLevelOptions {
  /// Sub-partitions per community. 1 disables splitting (the plan then
  /// degenerates to the predicate-level plan).
  int fanout = 2;
};

/// Atom-level dependency analysis — the paper's §VI future work:
/// "we have observed input dependency at the atom level ... dependencies
/// among ground atoms have an important effect on computation."
///
/// Predicate-level partitioning (Definition 2) keeps all atoms of
/// dependent predicates together. But within one community, ground atoms
/// only interact when they share join values: average_speed(5, 10) and
/// car_number(7, 50) can never fire a rule together. This module finds,
/// per predicate, a *key argument position* such that every rule's body
/// atoms agree on the variable at their key positions (the rule's
/// *anchor*). Hashing input atoms by their key argument then splits a
/// community into `fanout` buckets without separating any two atoms that
/// can jointly fire a rule.
///
/// Key-flow analysis, in brief:
///   1. For each rule, the candidate anchors are the variables occurring
///      in every body atom literal (positive and negative).
///   2. A greedy pass proposes key positions: the anchor's position in
///      each body atom and in the head.
///   3. A verification pass checks every rule: some anchor variable must
///      sit at the key position of every *keyed* body atom, and at the
///      head's key position if the head predicate is keyed. Offending
///      predicates are demoted to *unkeyed* (their atoms are replicated
///      into every bucket — always sound, like the duplicated predicates
///      of the decomposing process) and verification repeats to fixpoint.
///
/// A community is *split-enabled* when all of its input predicates end up
/// keyed; otherwise it falls back to a single bucket. Soundness argument
/// and the replication semantics are spelled out in DESIGN.md.
class AtomLevelPlan {
 public:
  /// Sentinel key position for unkeyed (replicated) predicates.
  static constexpr int kUnkeyed = -1;

  /// Runs the analysis on top of a predicate-level plan.
  static StatusOr<AtomLevelPlan> Build(const Program& program,
                                       PartitioningPlan community_plan,
                                       AtomLevelOptions options = {});

  /// Total number of sub-partitions across all communities.
  int num_partitions() const { return num_partitions_; }

  /// The underlying predicate-level plan.
  const PartitioningPlan& community_plan() const { return community_plan_; }

  /// True iff community `c` was split into `fanout` buckets.
  bool CommunityEnabled(int community) const;

  /// The key argument position of a predicate, or kUnkeyed.
  int KeyPositionOf(const PredicateSignature& signature) const;

  /// Sub-partition ids (into [0, num_partitions())) that must receive
  /// `atom`. Combines the community routing of the predicate-level plan
  /// with per-community hash bucketing; unkeyed predicates fan out to all
  /// buckets of their communities.
  std::vector<int> PartitionsOf(const Atom& atom) const;

  /// Human-readable description (key positions, enabled communities).
  std::string ToString(const SymbolTable& symbols) const;

 private:
  PartitioningPlan community_plan_;
  AtomLevelOptions options_;
  std::unordered_map<PredicateSignature, int, PredicateSignatureHash>
      key_position_;
  std::vector<bool> community_enabled_;   // Indexed by community.
  std::vector<int> community_base_;       // First partition id per community.
  std::vector<int> community_buckets_;    // Bucket count per community.
  int num_partitions_ = 0;
};

/// Routes a window of ground facts following an atom-level plan (the
/// atom-level analogue of Algorithm 1).
class AtomLevelPartitioningHandler {
 public:
  explicit AtomLevelPartitioningHandler(AtomLevelPlan plan)
      : plan_(std::move(plan)) {}

  std::vector<std::vector<Atom>> PartitionFacts(
      const std::vector<Atom>& window) const;

  const AtomLevelPlan& plan() const { return plan_; }

 private:
  AtomLevelPlan plan_;
};

}  // namespace streamasp

#endif  // STREAMASP_DEPGRAPH_ATOM_LEVEL_H_
