#include "depgraph/atom_level.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace streamasp {

namespace {

/// Variables occurring at top level of an atom's arguments, by position.
/// Non-variable arguments yield kInvalidSymbol at their position.
std::vector<SymbolId> TopLevelVariables(const Atom& atom) {
  std::vector<SymbolId> vars(atom.args().size(), kInvalidSymbol);
  for (size_t i = 0; i < atom.args().size(); ++i) {
    if (atom.args()[i].is_variable()) {
      vars[i] = atom.args()[i].symbol();
    }
  }
  return vars;
}

/// First position of `var` among top-level arguments, or -1.
int PositionOf(const Atom& atom, SymbolId var) {
  for (size_t i = 0; i < atom.args().size(); ++i) {
    if (atom.args()[i].is_variable() && atom.args()[i].symbol() == var) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Body atoms (positive and negative) of a rule.
std::vector<const Atom*> BodyAtoms(const Rule& rule) {
  std::vector<const Atom*> atoms;
  for (const Literal& l : rule.body()) {
    if (l.is_atom()) atoms.push_back(&l.atom());
  }
  return atoms;
}

/// Variables occurring (top-level) in every body atom of the rule — the
/// anchor candidates.
std::vector<SymbolId> SharedBodyVariables(const Rule& rule) {
  const std::vector<const Atom*> atoms = BodyAtoms(rule);
  if (atoms.empty()) return {};
  std::set<SymbolId> shared;
  for (SymbolId v : TopLevelVariables(*atoms[0])) {
    if (v != kInvalidSymbol) shared.insert(v);
  }
  for (size_t i = 1; i < atoms.size() && !shared.empty(); ++i) {
    std::set<SymbolId> next;
    for (SymbolId v : TopLevelVariables(*atoms[i])) {
      if (v != kInvalidSymbol && shared.count(v)) next.insert(v);
    }
    shared = std::move(next);
  }
  return std::vector<SymbolId>(shared.begin(), shared.end());
}

}  // namespace

StatusOr<AtomLevelPlan> AtomLevelPlan::Build(const Program& program,
                                             PartitioningPlan community_plan,
                                             AtomLevelOptions options) {
  if (options.fanout < 1) {
    return InvalidArgumentError("atom-level fanout must be >= 1");
  }
  AtomLevelPlan plan;
  plan.community_plan_ = std::move(community_plan);
  plan.options_ = options;

  // ---- Greedy proposal pass. -------------------------------------------
  // key_position_ holds the committed keys; a missing entry means
  // "undecided" during the passes and "unkeyed" afterwards.
  for (const Rule& rule : program.rules()) {
    const std::vector<SymbolId> anchors = SharedBodyVariables(rule);
    if (anchors.empty()) continue;
    const SymbolId anchor = anchors.front();
    for (const Atom* atom : BodyAtoms(rule)) {
      const int position = PositionOf(*atom, anchor);
      if (position < 0) continue;
      plan.key_position_.emplace(atom->signature(), position);
    }
    for (const Atom& head : rule.head()) {
      const int position = PositionOf(head, anchor);
      if (position >= 0) {
        plan.key_position_.emplace(head.signature(), position);
      }
    }
  }

  // ---- Verification / demotion fixpoint. -------------------------------
  // Demoting a predicate to unkeyed only weakens constraints, so the loop
  // terminates after at most |keyed predicates| demotions.
  auto key_of = [&plan](const PredicateSignature& sig) {
    auto it = plan.key_position_.find(sig);
    return it == plan.key_position_.end() ? kUnkeyed : it->second;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules()) {
      // Collect keyed body atoms and their key variables.
      std::vector<const Atom*> keyed;
      std::vector<SymbolId> key_vars;
      bool demoted_something = false;
      for (const Atom* atom : BodyAtoms(rule)) {
        const int position = key_of(atom->signature());
        if (position == kUnkeyed) continue;
        const Term& arg = atom->args()[position];
        if (!arg.is_variable()) {
          // A constant at the key position (e.g. car_speed(C, 0) keyed at
          // 1) cannot carry an anchor: demote.
          plan.key_position_.erase(atom->signature());
          demoted_something = true;
          continue;
        }
        keyed.push_back(atom);
        key_vars.push_back(arg.symbol());
      }
      if (demoted_something) changed = true;
      if (keyed.empty()) continue;  // Trivially local.
      // All keyed body atoms must share one anchor variable.
      const SymbolId anchor = key_vars.front();
      bool consistent = true;
      for (size_t i = 1; i < key_vars.size(); ++i) {
        if (key_vars[i] != anchor) {
          plan.key_position_.erase(keyed[i]->signature());
          consistent = false;
        }
      }
      if (!consistent) {
        changed = true;
        continue;
      }
      // Keyed heads must carry the anchor at their key position.
      for (const Atom& head : rule.head()) {
        const int position = key_of(head.signature());
        if (position == kUnkeyed) continue;
        const Term& arg = head.args()[position];
        if (!arg.is_variable() || arg.symbol() != anchor) {
          plan.key_position_.erase(head.signature());
          changed = true;
        }
      }
    }
  }

  // Demote keyed head predicates derived by anchor-free rules when they
  // feed later joins: such atoms materialize wherever the rule fires,
  // which need not match their key bucket.
  {
    std::set<PredicateSignature> body_predicates;
    for (const Rule& rule : program.rules()) {
      for (const Atom* atom : BodyAtoms(rule)) {
        body_predicates.insert(atom->signature());
      }
    }
    bool demote_pass = true;
    while (demote_pass) {
      demote_pass = false;
      for (const Rule& rule : program.rules()) {
        bool has_keyed_body = false;
        for (const Atom* atom : BodyAtoms(rule)) {
          if (key_of(atom->signature()) != kUnkeyed) {
            has_keyed_body = true;
            break;
          }
        }
        if (has_keyed_body || rule.body().empty()) continue;
        for (const Atom& head : rule.head()) {
          if (key_of(head.signature()) != kUnkeyed &&
              body_predicates.count(head.signature())) {
            plan.key_position_.erase(head.signature());
            demote_pass = true;
          }
        }
      }
    }
  }

  // ---- Availability analysis. ------------------------------------------
  // everywhere(q): every bucket of every community holds q's full
  // extension. True for unkeyed *input* predicates (the router replicates
  // them), for predicates given only by program facts, and inductively
  // for predicates whose every deriving rule has an all-everywhere body.
  std::set<PredicateSignature> input_set(
      program.input_predicates().begin(), program.input_predicates().end());
  std::unordered_map<PredicateSignature, bool, PredicateSignatureHash>
      everywhere;
  for (const PredicateSignature& sig : input_set) {
    everywhere[sig] = key_of(sig) == kUnkeyed;
  }
  // Start optimistic for derived predicates, then strike out violations
  // to a greatest fixpoint.
  for (const Rule& rule : program.rules()) {
    for (const Atom& head : rule.head()) {
      if (!input_set.count(head.signature())) {
        auto [it, inserted] = everywhere.emplace(head.signature(), true);
        (void)it;
        (void)inserted;
      }
    }
  }
  auto is_everywhere = [&everywhere](const PredicateSignature& sig) {
    auto it = everywhere.find(sig);
    return it != everywhere.end() && it->second;
  };
  bool availability_changed = true;
  while (availability_changed) {
    availability_changed = false;
    for (const Rule& rule : program.rules()) {
      bool body_everywhere = true;
      for (const Atom* atom : BodyAtoms(rule)) {
        if (!is_everywhere(atom->signature())) {
          body_everywhere = false;
          break;
        }
      }
      if (body_everywhere) continue;
      for (const Atom& head : rule.head()) {
        if (input_set.count(head.signature())) continue;
        auto it = everywhere.find(head.signature());
        if (it != everywhere.end() && it->second) {
          it->second = false;
          availability_changed = true;
        }
      }
    }
  }

  // ---- Locality check per rule; disable covering communities. ----------
  // feeders(q) = input predicates EP2-reaching q (inputs feed themselves).
  std::unordered_map<PredicateSignature, std::set<PredicateSignature>,
                     PredicateSignatureHash>
      feeders;
  for (const PredicateSignature& sig : input_set) feeders[sig].insert(sig);
  bool feeders_changed = true;
  while (feeders_changed) {
    feeders_changed = false;
    for (const Rule& rule : program.rules()) {
      std::set<PredicateSignature> body_feeders;
      for (const Atom* atom : BodyAtoms(rule)) {
        const auto it = feeders.find(atom->signature());
        if (it != feeders.end()) {
          body_feeders.insert(it->second.begin(), it->second.end());
        }
      }
      if (body_feeders.empty()) continue;
      for (const Atom& head : rule.head()) {
        std::set<PredicateSignature>& sink = feeders[head.signature()];
        const size_t before = sink.size();
        sink.insert(body_feeders.begin(), body_feeders.end());
        if (sink.size() != before) feeders_changed = true;
      }
    }
  }

  const int num_communities = plan.community_plan_.num_communities();
  plan.community_enabled_.assign(num_communities, true);

  // An unkeyed input predicate replicates into every bucket; splitting its
  // communities only adds copies, so disable them.
  for (const PredicateSignature& sig : plan.community_plan_.predicates()) {
    if (key_of(sig) != kUnkeyed) continue;
    for (int c : plan.community_plan_.CommunitiesOf(sig)) {
      plan.community_enabled_[c] = false;
    }
  }

  // Rules that join keyed atoms with non-everywhere unkeyed atoms (or two
  // floating atoms) cannot be localized; the communities responsible for
  // covering such a rule must not be split.
  std::vector<std::set<PredicateSignature>> community_members(
      num_communities);
  for (const PredicateSignature& sig : plan.community_plan_.predicates()) {
    for (int c : plan.community_plan_.CommunitiesOf(sig)) {
      community_members[c].insert(sig);
    }
  }
  for (const Rule& rule : program.rules()) {
    size_t keyed_count = 0;
    size_t floating = 0;  // Neither keyed nor available everywhere.
    for (const Atom* atom : BodyAtoms(rule)) {
      if (key_of(atom->signature()) != kUnkeyed) {
        ++keyed_count;
      } else if (!is_everywhere(atom->signature())) {
        ++floating;
      }
    }
    const bool locality_safe =
        keyed_count > 0 ? floating == 0 : floating <= 1;
    if (locality_safe) continue;
    for (int c = 0; c < num_communities; ++c) {
      bool covers = true;
      for (const Atom* atom : BodyAtoms(rule)) {
        const auto it = feeders.find(atom->signature());
        if (it == feeders.end()) continue;  // Fact-fed: everywhere.
        for (const PredicateSignature& feeder : it->second) {
          if (!community_members[c].count(feeder)) {
            covers = false;
            break;
          }
        }
        if (!covers) break;
      }
      if (covers) plan.community_enabled_[c] = false;
    }
  }
  plan.community_base_.assign(num_communities, 0);
  plan.community_buckets_.assign(num_communities, 1);
  int next = 0;
  for (int c = 0; c < num_communities; ++c) {
    plan.community_base_[c] = next;
    plan.community_buckets_[c] =
        plan.community_enabled_[c] ? options.fanout : 1;
    next += plan.community_buckets_[c];
  }
  plan.num_partitions_ = std::max(next, 1);
  return plan;
}

bool AtomLevelPlan::CommunityEnabled(int community) const {
  assert(community >= 0 &&
         community < static_cast<int>(community_enabled_.size()));
  return community_enabled_[community];
}

int AtomLevelPlan::KeyPositionOf(const PredicateSignature& signature) const {
  auto it = key_position_.find(signature);
  return it == key_position_.end() ? kUnkeyed : it->second;
}

std::vector<int> AtomLevelPlan::PartitionsOf(const Atom& atom) const {
  std::vector<int> out;
  const std::vector<int>& communities =
      community_plan_.CommunitiesOf(atom.signature());
  // Unknown predicates fall back to community 0, mirroring
  // PartitioningHandler's stray handling.
  static const std::vector<int> kFallback = {0};
  const std::vector<int>& routed =
      communities.empty() ? kFallback : communities;
  const int key = KeyPositionOf(atom.signature());
  for (int c : routed) {
    const int buckets = community_buckets_[c];
    if (buckets == 1) {
      out.push_back(community_base_[c]);
      continue;
    }
    if (key == kUnkeyed || key >= static_cast<int>(atom.args().size())) {
      for (int b = 0; b < buckets; ++b) {
        out.push_back(community_base_[c] + b);  // Replicate.
      }
      continue;
    }
    const size_t hash = atom.args()[key].Hash();
    out.push_back(community_base_[c] +
                  static_cast<int>(hash % static_cast<size_t>(buckets)));
  }
  return out;
}

std::string AtomLevelPlan::ToString(const SymbolTable& symbols) const {
  std::string out = "atom-level plan (" + std::to_string(num_partitions_) +
                    " partitions, fanout " +
                    std::to_string(options_.fanout) + ")\n";
  for (int c = 0; c < community_plan_.num_communities(); ++c) {
    out += "  community " + std::to_string(c) +
           (community_enabled_[c] ? " [split]" : " [single]") + ":";
    for (const PredicateSignature& sig : community_plan_.MembersOf(c)) {
      const int key = KeyPositionOf(sig);
      out += " " + sig.ToString(symbols) +
             (key == kUnkeyed ? "@unkeyed" : "@" + std::to_string(key));
    }
    out += "\n";
  }
  return out;
}

std::vector<std::vector<Atom>> AtomLevelPartitioningHandler::PartitionFacts(
    const std::vector<Atom>& window) const {
  std::vector<std::vector<Atom>> partitions(plan_.num_partitions());
  for (const Atom& atom : window) {
    for (int p : plan_.PartitionsOf(atom)) {
      partitions[p].push_back(atom);
    }
  }
  return partitions;
}

}  // namespace streamasp
