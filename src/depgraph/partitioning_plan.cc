#include "depgraph/partitioning_plan.h"

#include <algorithm>
#include <cassert>

namespace streamasp {

const std::vector<int> PartitioningPlan::kEmpty = {};

void PartitioningPlan::Assign(const PredicateSignature& predicate,
                              int community) {
  assert(community >= 0 && community < num_communities_);
  auto it = communities_of_.find(predicate);
  if (it == communities_of_.end()) {
    predicates_.push_back(predicate);
    communities_of_.emplace(predicate, std::vector<int>{community});
    return;
  }
  std::vector<int>& communities = it->second;
  auto pos = std::lower_bound(communities.begin(), communities.end(),
                              community);
  if (pos == communities.end() || *pos != community) {
    communities.insert(pos, community);
  }
}

const std::vector<int>& PartitioningPlan::CommunitiesOf(
    const PredicateSignature& predicate) const {
  auto it = communities_of_.find(predicate);
  return it == communities_of_.end() ? kEmpty : it->second;
}

std::vector<PredicateSignature> PartitioningPlan::DuplicatedPredicates()
    const {
  std::vector<PredicateSignature> duplicated;
  for (const PredicateSignature& sig : predicates_) {
    if (CommunitiesOf(sig).size() > 1) duplicated.push_back(sig);
  }
  return duplicated;
}

std::vector<PredicateSignature> PartitioningPlan::MembersOf(
    int community) const {
  std::vector<PredicateSignature> members;
  for (const PredicateSignature& sig : predicates_) {
    const std::vector<int>& communities = CommunitiesOf(sig);
    if (std::binary_search(communities.begin(), communities.end(),
                           community)) {
      members.push_back(sig);
    }
  }
  return members;
}

std::string PartitioningPlan::ToString(const SymbolTable& symbols) const {
  std::string out =
      "partitioning plan (" + std::to_string(num_communities_) +
      " communities)\n";
  for (int c = 0; c < num_communities_; ++c) {
    out += "  community " + std::to_string(c) + ": {";
    bool first = true;
    for (const PredicateSignature& sig : MembersOf(c)) {
      if (!first) out += ", ";
      first = false;
      out += sig.ToString(symbols);
    }
    out += "}\n";
  }
  const std::vector<PredicateSignature> duplicated = DuplicatedPredicates();
  if (!duplicated.empty()) {
    out += "  duplicated: {";
    for (size_t i = 0; i < duplicated.size(); ++i) {
      if (i > 0) out += ", ";
      out += duplicated[i].ToString(symbols);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace streamasp
