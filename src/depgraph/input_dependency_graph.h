#ifndef STREAMASP_DEPGRAPH_INPUT_DEPENDENCY_GRAPH_H_
#define STREAMASP_DEPGRAPH_INPUT_DEPENDENCY_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "depgraph/extended_dependency_graph.h"
#include "util/status.h"

namespace streamasp {

/// Options controlling input-dependency-graph construction.
struct InputDependencyOptions {
  /// Condition (iii) of Definition 2 propagates a self-loop from a
  /// negatively occurring predicate u to an input predicate p only along a
  /// *direct* EP2 edge <p, u>. When this flag is set, propagation follows
  /// any directed EP2 path p =>* u instead — a strictly more conservative
  /// (more self-loops) variant discussed in DESIGN.md. The paper's
  /// examples are unaffected either way.
  bool transitive_self_loop_propagation = false;
};

/// The input dependency graph G_P^{inpre(P)} of Definition 2: an
/// undirected graph over the declared input predicates whose edges mean
/// "ground atoms of these predicates may jointly fire rules, so they must
/// be routed to the same partition".
///
/// Edge rules, with Reach(x) = the EP2-forward reachable set of x
/// (including x itself):
///   (i)+(ii)  p — q  (p != q)  iff some EP1 edge (u, v) has
///             u in Reach(p) and v in Reach(q) (or symmetrically);
///             condition (i) is the special case u = p, v = q.
///   (i)       p — p            iff (p, p) is an EP1 self-loop
///             (p occurs negatively in some body).
///   (iii)     p — p            iff some u has an EP1 self-loop (u, u) and
///             <p, u> is an EP2 edge (or a directed path, with
///             transitive_self_loop_propagation).
class InputDependencyGraph {
 public:
  /// Builds the input dependency graph for `edg` restricted to
  /// `input_predicates`. Fails if an input predicate has no node in the
  /// extended graph (i.e. does not occur in the program).
  static StatusOr<InputDependencyGraph> Build(
      const ExtendedDependencyGraph& edg,
      const std::vector<PredicateSignature>& input_predicates,
      const SymbolTable& symbols,
      const InputDependencyOptions& options = {});

  /// Convenience overload: builds the extended graph internally and uses
  /// the program's declared input predicates.
  static StatusOr<InputDependencyGraph> Build(
      const Program& program, const InputDependencyOptions& options = {});

  /// Input predicates, indexed by node id of graph().
  const std::vector<PredicateSignature>& nodes() const { return nodes_; }

  /// The undirected dependency structure (self-loops included).
  const UndirectedGraph& graph() const { return graph_; }

  /// Node id of an input predicate, or ExtendedDependencyGraph::kInvalidNode.
  NodeId NodeOf(const PredicateSignature& signature) const;

  /// Definition 3: true iff there is an edge (p, q) — i.e. the two input
  /// predicates must be co-located. p == q asks for a self-loop.
  bool Depends(const PredicateSignature& p, const PredicateSignature& q) const;

  /// Renders the graph in Graphviz DOT.
  std::string ToDot(const SymbolTable& symbols) const;

 private:
  std::vector<PredicateSignature> nodes_;
  std::unordered_map<PredicateSignature, NodeId, PredicateSignatureHash>
      node_index_;
  UndirectedGraph graph_;
};

}  // namespace streamasp

#endif  // STREAMASP_DEPGRAPH_INPUT_DEPENDENCY_GRAPH_H_
