#ifndef STREAMASP_DEPGRAPH_PARTITIONING_PLAN_H_
#define STREAMASP_DEPGRAPH_PARTITIONING_PLAN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "asp/atom.h"
#include "asp/symbol_table.h"

namespace streamasp {

/// The output of the decomposing process (paper §II-B): a mapping from
/// each input predicate to the communities whose partitions must receive
/// its ground atoms. A predicate mapped to more than one community is a
/// *duplicated* predicate — its window instances are copied into several
/// partitions, which is the latency overhead Figure 9 measures.
class PartitioningPlan {
 public:
  PartitioningPlan() = default;

  /// Creates a plan with `num_communities` empty communities.
  explicit PartitioningPlan(int num_communities)
      : num_communities_(num_communities) {}

  /// Assigns `predicate` to `community` (idempotent). Community ids must
  /// be in [0, num_communities).
  void Assign(const PredicateSignature& predicate, int community);

  int num_communities() const { return num_communities_; }

  /// Communities of a predicate, sorted ascending. Empty for predicates
  /// the plan does not know (callers treat those as "route to community
  /// 0", see PartitioningHandler).
  const std::vector<int>& CommunitiesOf(
      const PredicateSignature& predicate) const;

  /// All predicates assigned to more than one community, in insertion
  /// order.
  std::vector<PredicateSignature> DuplicatedPredicates() const;

  /// All predicates known to the plan, in insertion order.
  const std::vector<PredicateSignature>& predicates() const {
    return predicates_;
  }

  /// Members of one community, in insertion order.
  std::vector<PredicateSignature> MembersOf(int community) const;

  /// Human-readable dump, e.g. for the dependency_explorer example.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  int num_communities_ = 0;
  std::vector<PredicateSignature> predicates_;
  std::unordered_map<PredicateSignature, std::vector<int>,
                     PredicateSignatureHash>
      communities_of_;
  static const std::vector<int> kEmpty;
};

}  // namespace streamasp

#endif  // STREAMASP_DEPGRAPH_PARTITIONING_PLAN_H_
