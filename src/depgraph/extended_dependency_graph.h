#ifndef STREAMASP_DEPGRAPH_EXTENDED_DEPENDENCY_GRAPH_H_
#define STREAMASP_DEPGRAPH_EXTENDED_DEPENDENCY_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "asp/program.h"
#include "graph/graph.h"

namespace streamasp {

/// The extended dependency graph G_P of Definition 1 (paper §II-B).
///
/// Nodes are the predicate signatures of pre(P). Two edge families are
/// kept side by side over the same node numbering:
///
///   * EP1 — undirected edges (p, q) whenever p and q both occur in the
///     body of some rule, plus a self-loop (p, p) whenever p occurs in a
///     body under default negation;
///   * EP2 — directed edges <p, q> whenever p occurs in the body and q in
///     the head of the same rule.
///
/// Comparison literals (builtins) are not predicates and contribute no
/// nodes or edges, matching the paper's usage where `Y < 20` never appears
/// in Figure 2.
class ExtendedDependencyGraph {
 public:
  /// Builds the graph from a program's rules.
  static ExtendedDependencyGraph Build(const Program& program);

  /// Node signatures, indexed by NodeId.
  const std::vector<PredicateSignature>& nodes() const { return nodes_; }

  /// Node id of a predicate, or kInvalidNode when the predicate does not
  /// occur in the program.
  static constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
  NodeId NodeOf(const PredicateSignature& signature) const;

  /// The undirected EP1 edges (self-loops included).
  const UndirectedGraph& ep1() const { return ep1_; }

  /// The directed EP2 edges.
  const Digraph& ep2() const { return ep2_; }

  /// Renders the combined graph in Graphviz DOT: solid arrows for EP2,
  /// dashed undirected edges for EP1.
  std::string ToDot(const SymbolTable& symbols) const;

 private:
  std::vector<PredicateSignature> nodes_;
  std::unordered_map<PredicateSignature, NodeId, PredicateSignatureHash>
      node_index_;
  UndirectedGraph ep1_;
  Digraph ep2_;
};

}  // namespace streamasp

#endif  // STREAMASP_DEPGRAPH_EXTENDED_DEPENDENCY_GRAPH_H_
