#include "depgraph/decomposition.h"

#include <algorithm>
#include <set>
#include <vector>

namespace streamasp {

StatusOr<PartitioningPlan> DecomposeInputDependencyGraph(
    const InputDependencyGraph& graph, const DecompositionOptions& options,
    DecompositionInfo* info) {
  const UndirectedGraph& g = graph.graph();
  const std::vector<PredicateSignature>& predicates = graph.nodes();
  if (predicates.empty()) {
    return InvalidArgumentError("cannot decompose an empty graph");
  }

  const ComponentAssignment components = ConnectedComponents(g);
  if (components.num_components > 1) {
    // Natural subdivision: each connected component is a community.
    PartitioningPlan plan(components.num_components);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      plan.Assign(predicates[u], components.component_of[u]);
    }
    if (info != nullptr) {
      info->graph_was_connected = false;
      info->num_communities = components.num_components;
      info->num_duplicated_predicates = 0;
    }
    return plan;
  }

  // Connected graph: Louvain communities, then duplicate boundary nodes.
  const ComponentAssignment communities =
      LouvainCommunities(g, options.louvain);
  PartitioningPlan plan(std::max(communities.num_components, 1));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    plan.Assign(predicates[u], communities.component_of[u]);
  }

  // exnodes(Ci)(Cj) = nodes of Ci with an edge into Cj.
  // Collect them per ordered community pair in one sweep.
  std::set<std::pair<int, int>> pairs_with_cross_edges;
  std::vector<std::set<NodeId>> exnodes;  // Indexed lazily via map below.
  auto pair_index = [&](int c1, int c2) -> size_t {
    // Dense key for (c1, c2), c1 != c2.
    return static_cast<size_t>(c1) *
               static_cast<size_t>(communities.num_components) +
           static_cast<size_t>(c2);
  };
  std::vector<std::set<NodeId>> boundary(
      static_cast<size_t>(communities.num_components) *
      static_cast<size_t>(communities.num_components));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const int cu = communities.component_of[u];
    for (const UndirectedGraph::Edge& e : g.Neighbors(u)) {
      const int cv = communities.component_of[e.to];
      if (cu == cv) continue;
      boundary[pair_index(cu, cv)].insert(u);
      pairs_with_cross_edges.insert(
          {std::min(cu, cv), std::max(cu, cv)});
    }
  }

  int duplicated = 0;
  std::set<NodeId> duplicated_nodes;
  for (const auto& [c1, c2] : pairs_with_cross_edges) {
    const std::set<NodeId>& ex1 = boundary[pair_index(c1, c2)];
    const std::set<NodeId>& ex2 = boundary[pair_index(c2, c1)];
    // Duplicate the smaller exnode set into the opposite community; ties
    // pick the lower community's side.
    const bool pick_first = ex1.size() <= ex2.size();
    const std::set<NodeId>& chosen = pick_first ? ex1 : ex2;
    const int target_community = pick_first ? c2 : c1;
    for (NodeId u : chosen) {
      plan.Assign(predicates[u], target_community);
      if (duplicated_nodes.insert(u).second) ++duplicated;
    }
  }

  if (info != nullptr) {
    info->graph_was_connected = true;
    info->num_communities = plan.num_communities();
    info->num_duplicated_predicates = duplicated;
  }
  return plan;
}

}  // namespace streamasp
