#include "depgraph/extended_dependency_graph.h"

#include <algorithm>
#include <set>
#include <utility>

namespace streamasp {

namespace {

/// Collects the predicate signatures of all atom literals in a rule body.
std::vector<PredicateSignature> BodyPredicates(const Rule& rule) {
  std::vector<PredicateSignature> preds;
  for (const Literal& l : rule.body()) {
    if (l.is_atom()) preds.push_back(l.atom().signature());
  }
  return preds;
}

}  // namespace

ExtendedDependencyGraph ExtendedDependencyGraph::Build(
    const Program& program) {
  ExtendedDependencyGraph graph;

  auto intern = [&graph](const PredicateSignature& sig) -> NodeId {
    auto it = graph.node_index_.find(sig);
    if (it != graph.node_index_.end()) return it->second;
    const NodeId id = static_cast<NodeId>(graph.nodes_.size());
    graph.nodes_.push_back(sig);
    graph.node_index_.emplace(sig, id);
    return id;
  };

  // Register every predicate occurring in a rule (heads first, then
  // bodies, in rule order) so both edge families share one node space.
  // Note: declared-but-unused input predicates are *not* nodes — pre(P)
  // in Definition 1 is derived from the rule structure alone, and
  // InputDependencyGraph::Build reports such predicates as errors.
  for (const Rule& rule : program.rules()) {
    for (const Atom& head : rule.head()) intern(head.signature());
    for (const Literal& l : rule.body()) {
      if (l.is_atom()) intern(l.atom().signature());
    }
  }

  graph.ep1_ = UndirectedGraph(static_cast<NodeId>(graph.nodes_.size()));
  graph.ep2_ = Digraph(static_cast<NodeId>(graph.nodes_.size()));

  // Dedup sets: the same predicate pair may co-occur in many rules but the
  // definition's edge sets contain each edge once.
  std::set<std::pair<NodeId, NodeId>> ep1_seen;
  std::set<std::pair<NodeId, NodeId>> ep2_seen;

  for (const Rule& rule : program.rules()) {
    const std::vector<PredicateSignature> body_preds = BodyPredicates(rule);

    // EP1(a): undirected edges between distinct body predicates.
    for (size_t i = 0; i < body_preds.size(); ++i) {
      for (size_t j = i + 1; j < body_preds.size(); ++j) {
        const NodeId u = intern(body_preds[i]);
        const NodeId v = intern(body_preds[j]);
        if (u == v) continue;  // Same predicate twice: no EP1(a) edge.
        const auto key = std::minmax(u, v);
        if (ep1_seen.insert({key.first, key.second}).second) {
          graph.ep1_.AddEdge(u, v);
        }
      }
    }
    // EP1(b): self-loop for negatively occurring body predicates.
    for (const Literal& l : rule.body()) {
      if (!l.is_negative_atom()) continue;
      const NodeId u = intern(l.atom().signature());
      if (ep1_seen.insert({u, u}).second) {
        graph.ep1_.AddEdge(u, u);
      }
    }
    // EP2: body predicate -> head predicate.
    for (const Atom& head : rule.head()) {
      const NodeId h = intern(head.signature());
      for (const PredicateSignature& body_sig : body_preds) {
        const NodeId b = intern(body_sig);
        if (ep2_seen.insert({b, h}).second) {
          graph.ep2_.AddEdge(b, h);
        }
      }
    }
  }
  return graph;
}

NodeId ExtendedDependencyGraph::NodeOf(
    const PredicateSignature& signature) const {
  auto it = node_index_.find(signature);
  return it == node_index_.end() ? kInvalidNode : it->second;
}

std::string ExtendedDependencyGraph::ToDot(const SymbolTable& symbols) const {
  std::string out = "digraph extended_dependency_graph {\n";
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    out += "  n" + std::to_string(u) + " [label=\"" +
           symbols.NameOf(nodes_[u].name) + "\"];\n";
  }
  for (NodeId u = 0; u < ep2_.num_nodes(); ++u) {
    for (NodeId v : ep2_.Successors(u)) {
      out += "  n" + std::to_string(u) + " -> n" + std::to_string(v) + ";\n";
    }
  }
  for (NodeId u = 0; u < ep1_.num_nodes(); ++u) {
    if (ep1_.HasSelfLoop(u)) {
      out += "  n" + std::to_string(u) + " -> n" + std::to_string(u) +
             " [dir=none, style=dashed];\n";
    }
    for (const UndirectedGraph::Edge& e : ep1_.Neighbors(u)) {
      if (e.to < u) continue;  // Emit each undirected edge once.
      out += "  n" + std::to_string(u) + " -> n" + std::to_string(e.to) +
             " [dir=none, style=dashed];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace streamasp
