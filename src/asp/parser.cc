#include "asp/parser.h"

#include <cassert>
#include <cctype>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/strings.h"

namespace streamasp {

namespace {

enum class TokenKind {
  kIdentifier,  // lowercase-led: predicate/constant/functor names.
  kVariable,    // uppercase- or underscore-led.
  kAnonymous,   // bare "_".
  kInteger,
  kString,      // double-quoted.
  kDot,
  kComma,
  kColonDash,   // ":-"
  kPipe,        // "|" or ";"
  kLParen,
  kRParen,
  kSlash,      // "/": arity separator in signatures, division in terms.
  kPlus,
  kMinus,
  kStar,
  kBackslash,  // "\\": modulo.
  kCmpLess,
  kCmpLessEq,
  kCmpGreater,
  kCmpGreaterEq,
  kCmpEqual,    // "==" or "="
  kCmpNotEqual, // "!="
  kNot,         // keyword "not"
  kDirective,   // "#ident"
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;  // Identifier/variable/integer/string/directive payload.
  int line = 1;
  int column = 1;
};

/// Converts `source` into a token stream. Returns an error for unknown
/// characters or unterminated strings.
class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      const int line = line_;
      const int column = column_;
      const char c = Peek();
      Token token;
      token.line = line;
      token.column = column;
      if (std::isdigit(static_cast<unsigned char>(c))) {
        token.kind = TokenKind::kInteger;
        token.text = ConsumeWhile(
            [](char ch) { return std::isdigit(static_cast<unsigned char>(ch)); });
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const std::string word = ConsumeWhile([](char ch) {
          return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
        });
        if (word == "not") {
          token.kind = TokenKind::kNot;
        } else if (word == "_") {
          token.kind = TokenKind::kAnonymous;
        } else if (std::isupper(static_cast<unsigned char>(word[0])) ||
                   word[0] == '_') {
          token.kind = TokenKind::kVariable;
          token.text = word;
        } else {
          token.kind = TokenKind::kIdentifier;
          token.text = word;
        }
      } else if (c == '"') {
        Advance();
        std::string content;
        while (!AtEnd() && Peek() != '"') {
          if (Peek() == '\\' && PeekAt(1) != '\0') {
            Advance();  // Keep the escaped character verbatim.
          }
          content += Peek();
          Advance();
        }
        if (AtEnd()) {
          return InvalidArgumentError(Location(line, column) +
                                      "unterminated string literal");
        }
        Advance();  // Closing quote.
        token.kind = TokenKind::kString;
        token.text = std::move(content);
      } else if (c == '#') {
        Advance();
        const std::string word = ConsumeWhile([](char ch) {
          return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
        });
        if (word.empty()) {
          return InvalidArgumentError(Location(line, column) +
                                      "expected directive name after '#'");
        }
        token.kind = TokenKind::kDirective;
        token.text = word;
      } else {
        switch (c) {
          case '.':
            Advance();
            token.kind = TokenKind::kDot;
            break;
          case ',':
            Advance();
            token.kind = TokenKind::kComma;
            break;
          case '(':
            Advance();
            token.kind = TokenKind::kLParen;
            break;
          case ')':
            Advance();
            token.kind = TokenKind::kRParen;
            break;
          case '|':
          case ';':
            Advance();
            token.kind = TokenKind::kPipe;
            break;
          case '/':
            Advance();
            token.kind = TokenKind::kSlash;
            break;
          case '+':
            Advance();
            token.kind = TokenKind::kPlus;
            break;
          case '-':
            Advance();
            token.kind = TokenKind::kMinus;
            break;
          case '*':
            Advance();
            token.kind = TokenKind::kStar;
            break;
          case '\\':
            Advance();
            token.kind = TokenKind::kBackslash;
            break;
          case ':':
            Advance();
            if (Peek() != '-') {
              return InvalidArgumentError(Location(line, column) +
                                          "expected ':-'");
            }
            Advance();
            token.kind = TokenKind::kColonDash;
            break;
          case '<':
            Advance();
            if (Peek() == '=') {
              Advance();
              token.kind = TokenKind::kCmpLessEq;
            } else {
              token.kind = TokenKind::kCmpLess;
            }
            break;
          case '>':
            Advance();
            if (Peek() == '=') {
              Advance();
              token.kind = TokenKind::kCmpGreaterEq;
            } else {
              token.kind = TokenKind::kCmpGreater;
            }
            break;
          case '=':
            Advance();
            if (Peek() == '=') Advance();
            token.kind = TokenKind::kCmpEqual;
            break;
          case '!':
            Advance();
            if (Peek() != '=') {
              return InvalidArgumentError(Location(line, column) +
                                          "expected '!='");
            }
            Advance();
            token.kind = TokenKind::kCmpNotEqual;
            break;
          default:
            return InvalidArgumentError(Location(line, column) +
                                        "unexpected character '" +
                                        std::string(1, c) + "'");
        }
      }
      tokens.push_back(std::move(token));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.line = line_;
    end.column = column_;
    tokens.push_back(std::move(end));
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek() const { return AtEnd() ? '\0' : source_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset >= source_.size() ? '\0' : source_[pos_ + offset];
  }

  void Advance() {
    if (AtEnd()) return;
    if (source_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  template <typename Pred>
  std::string ConsumeWhile(Pred pred) {
    std::string out;
    while (!AtEnd() && pred(Peek())) {
      out += Peek();
      Advance();
    }
    return out;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEnd() &&
             std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (!AtEnd() && Peek() == '%') {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      return;
    }
  }

  static std::string Location(int line, int column) {
    return "parse error at " + std::to_string(line) + ":" +
           std::to_string(column) + ": ";
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

/// Recursive-descent parser over the token stream.
class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, SymbolTablePtr symbols)
      : tokens_(std::move(tokens)), symbols_(std::move(symbols)) {}

  StatusOr<Program> ParseProgram() {
    Program program(symbols_);
    while (!Check(TokenKind::kEnd)) {
      if (Check(TokenKind::kDirective)) {
        STREAMASP_RETURN_IF_ERROR(ParseDirective(&program));
      } else {
        STREAMASP_ASSIGN_OR_RETURN(Rule rule, ParseRule());
        program.AddRule(std::move(rule));
      }
    }
    return program;
  }

  StatusOr<Atom> ParseSingleGroundAtom() {
    STREAMASP_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    if (!Check(TokenKind::kEnd) && !Check(TokenKind::kDot)) {
      return Error("trailing input after atom");
    }
    if (!atom.IsGround()) {
      return Error("expected a ground atom");
    }
    return atom;
  }

  StatusOr<Term> ParseSingleTerm() {
    STREAMASP_ASSIGN_OR_RETURN(Term term, ParseTerm());
    if (!Check(TokenKind::kEnd)) {
      return Error("trailing input after term");
    }
    return term;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  bool Check(TokenKind kind) const { return Current().kind == kind; }

  const Token& Consume() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& message) const {
    const Token& t = Current();
    return InvalidArgumentError("parse error at " + std::to_string(t.line) +
                                ":" + std::to_string(t.column) + ": " +
                                message);
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Match(kind)) return OkStatus();
    return Error(std::string("expected ") + what);
  }

  Status ParseDirective(Program* program) {
    const Token directive = Consume();
    if (directive.text == "input" || directive.text == "show") {
      do {
        STREAMASP_ASSIGN_OR_RETURN(PredicateSignature sig, ParseSignature());
        if (directive.text == "input") {
          program->DeclareInputPredicate(sig);
        } else {
          program->DeclareShownPredicate(sig);
        }
      } while (Match(TokenKind::kComma));
      return Expect(TokenKind::kDot, "'.' after directive");
    }
    return Error("unknown directive '#" + directive.text + "'");
  }

  StatusOr<PredicateSignature> ParseSignature() {
    if (!Check(TokenKind::kIdentifier)) {
      return Error("expected predicate name in signature");
    }
    const std::string name = Consume().text;
    STREAMASP_RETURN_IF_ERROR(Expect(TokenKind::kSlash, "'/' in signature"));
    if (!Check(TokenKind::kInteger)) {
      return Error("expected arity in signature");
    }
    int64_t arity = 0;
    if (!ParseInt64(Consume().text, &arity) || arity < 0) {
      return Error("invalid arity");
    }
    return PredicateSignature{symbols_->Intern(name),
                              static_cast<uint32_t>(arity)};
  }

  StatusOr<Rule> ParseRule() {
    std::vector<Atom> head;
    std::vector<Literal> body;
    if (!Check(TokenKind::kColonDash)) {
      // Non-empty head: one or more '|'-separated atoms.
      do {
        STREAMASP_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
        head.push_back(std::move(atom));
      } while (Match(TokenKind::kPipe));
    }
    if (Match(TokenKind::kColonDash)) {
      if (!Check(TokenKind::kDot)) {  // Allow the degenerate "a :- ." form.
        do {
          STREAMASP_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
          body.push_back(std::move(lit));
        } while (Match(TokenKind::kComma));
      }
    }
    STREAMASP_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.' at end of rule"));
    if (head.empty() && body.empty()) {
      return Error("empty rule");
    }
    return Rule(std::move(head), std::move(body));
  }

  StatusOr<Literal> ParseLiteral() {
    if (Match(TokenKind::kNot)) {
      STREAMASP_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      return Literal::Negative(std::move(atom));
    }
    // Could be an atom or a comparison; comparisons may also start with a
    // term that is not an atom (integer, variable, expression). Parse an
    // atom-shaped prefix first and decide based on what follows.
    if (Check(TokenKind::kIdentifier)) {
      STREAMASP_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      if (!IsComparisonToken(Current().kind) &&
          !IsArithmeticToken(Current().kind)) {
        return Literal::Positive(std::move(atom));
      }
      // The "atom" was really the leftmost primary of an expression, e.g.
      // `f(X) + 1 < 3` or `speed = fast`.
      STREAMASP_ASSIGN_OR_RETURN(Term lhs,
                                 ParseAdditive(AtomToTerm(atom)));
      if (!IsComparisonToken(Current().kind)) {
        return Error("expected comparison operator");
      }
      const ComparisonOp op = ConsumeComparison();
      STREAMASP_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
      return Literal::Comparison(std::move(lhs), op, std::move(rhs));
    }
    STREAMASP_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (!IsComparisonToken(Current().kind)) {
      return Error("expected comparison operator");
    }
    const ComparisonOp op = ConsumeComparison();
    STREAMASP_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Literal::Comparison(std::move(lhs), op, std::move(rhs));
  }

  static bool IsArithmeticToken(TokenKind kind) {
    switch (kind) {
      case TokenKind::kPlus:
      case TokenKind::kMinus:
      case TokenKind::kStar:
      case TokenKind::kSlash:
      case TokenKind::kBackslash:
        return true;
      default:
        return false;
    }
  }

  static bool IsComparisonToken(TokenKind kind) {
    switch (kind) {
      case TokenKind::kCmpLess:
      case TokenKind::kCmpLessEq:
      case TokenKind::kCmpGreater:
      case TokenKind::kCmpGreaterEq:
      case TokenKind::kCmpEqual:
      case TokenKind::kCmpNotEqual:
        return true;
      default:
        return false;
    }
  }

  ComparisonOp ConsumeComparison() {
    const Token& t = Consume();
    switch (t.kind) {
      case TokenKind::kCmpLess:
        return ComparisonOp::kLess;
      case TokenKind::kCmpLessEq:
        return ComparisonOp::kLessEqual;
      case TokenKind::kCmpGreater:
        return ComparisonOp::kGreater;
      case TokenKind::kCmpGreaterEq:
        return ComparisonOp::kGreaterEqual;
      case TokenKind::kCmpNotEqual:
        return ComparisonOp::kNotEqual;
      case TokenKind::kCmpEqual:
      default:
        return ComparisonOp::kEqual;
    }
  }

  /// Reinterprets an atom as a term: p(a,b) becomes the function term
  /// p(a,b); a zero-arity atom becomes a symbolic constant.
  Term AtomToTerm(const Atom& atom) {
    if (atom.args().empty()) return Term::Symbol(atom.predicate());
    return Term::Function(atom.predicate(), atom.args());
  }

  StatusOr<Atom> ParseAtom() {
    if (!Check(TokenKind::kIdentifier)) {
      return Error("expected predicate name");
    }
    const SymbolId predicate = symbols_->Intern(Consume().text);
    std::vector<Term> args;
    if (Match(TokenKind::kLParen)) {
      do {
        STREAMASP_ASSIGN_OR_RETURN(Term term, ParseTerm());
        args.push_back(std::move(term));
      } while (Match(TokenKind::kComma));
      STREAMASP_RETURN_IF_ERROR(
          Expect(TokenKind::kRParen, "')' after atom arguments"));
    }
    return Atom(predicate, std::move(args));
  }

  /// term := additive (full expression grammar; arithmetic on ground
  /// integers is constant-folded by Term::Arithmetic).
  StatusOr<Term> ParseTerm() { return ParseAdditive(std::nullopt); }

  /// additive := multiplicative (('+' | '-') multiplicative)*
  /// `first`, when given, is a pre-parsed leftmost primary (used when a
  /// literal's atom prefix turns out to start an expression).
  StatusOr<Term> ParseAdditive(std::optional<Term> first) {
    STREAMASP_ASSIGN_OR_RETURN(Term lhs,
                               ParseMultiplicative(std::move(first)));
    for (;;) {
      ArithOp op;
      if (Match(TokenKind::kPlus)) {
        op = ArithOp::kAdd;
      } else if (Match(TokenKind::kMinus)) {
        op = ArithOp::kSub;
      } else {
        return lhs;
      }
      STREAMASP_ASSIGN_OR_RETURN(Term rhs,
                                 ParseMultiplicative(std::nullopt));
      lhs = Term::Arithmetic(op, std::move(lhs), std::move(rhs));
    }
  }

  /// multiplicative := unary (('*' | '/' | '\\') unary)*
  StatusOr<Term> ParseMultiplicative(std::optional<Term> first) {
    Term lhs;
    if (first.has_value()) {
      lhs = *std::move(first);
    } else {
      STREAMASP_ASSIGN_OR_RETURN(lhs, ParseUnary());
    }
    for (;;) {
      ArithOp op;
      if (Match(TokenKind::kStar)) {
        op = ArithOp::kMul;
      } else if (Match(TokenKind::kSlash)) {
        op = ArithOp::kDiv;
      } else if (Match(TokenKind::kBackslash)) {
        op = ArithOp::kMod;
      } else {
        return lhs;
      }
      STREAMASP_ASSIGN_OR_RETURN(Term rhs, ParseUnary());
      lhs = Term::Arithmetic(op, std::move(lhs), std::move(rhs));
    }
  }

  /// unary := '-' unary | primary
  StatusOr<Term> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      STREAMASP_ASSIGN_OR_RETURN(Term operand, ParseUnary());
      // Encoded as 0 - x; folds to a plain integer for literals.
      return Term::Arithmetic(ArithOp::kSub, Term::Integer(0),
                              std::move(operand));
    }
    return ParsePrimary();
  }

  /// primary := integer | VARIABLE | '_' | string
  ///          | identifier ('(' term (',' term)* ')')?
  ///          | '(' additive ')'
  StatusOr<Term> ParsePrimary() {
    if (Check(TokenKind::kInteger)) {
      int64_t value = 0;
      if (!ParseInt64(Consume().text, &value)) {
        return Error("integer literal out of range");
      }
      return Term::Integer(value);
    }
    if (Check(TokenKind::kVariable)) {
      return Term::Variable(symbols_->Intern(Consume().text));
    }
    if (Check(TokenKind::kAnonymous)) {
      Consume();
      // Each anonymous variable is unique; synthesize a fresh name. The
      // "#" prefix cannot clash with user variables (lexer rejects it in
      // identifier position).
      const std::string fresh = "_Anon#" + std::to_string(anon_counter_++);
      return Term::Variable(symbols_->Intern(fresh));
    }
    if (Check(TokenKind::kString)) {
      // Strings are interned with quotes so they cannot collide with plain
      // constants of the same spelling.
      return Term::Symbol(symbols_->Intern("\"" + Consume().text + "\""));
    }
    if (Match(TokenKind::kLParen)) {
      STREAMASP_ASSIGN_OR_RETURN(Term inner, ParseAdditive(std::nullopt));
      STREAMASP_RETURN_IF_ERROR(
          Expect(TokenKind::kRParen, "')' after parenthesized term"));
      return inner;
    }
    if (Check(TokenKind::kIdentifier)) {
      const SymbolId name = symbols_->Intern(Consume().text);
      if (Match(TokenKind::kLParen)) {
        std::vector<Term> args;
        do {
          STREAMASP_ASSIGN_OR_RETURN(Term term, ParseTerm());
          args.push_back(std::move(term));
        } while (Match(TokenKind::kComma));
        STREAMASP_RETURN_IF_ERROR(
            Expect(TokenKind::kRParen, "')' after function arguments"));
        return Term::Function(name, std::move(args));
      }
      return Term::Symbol(name);
    }
    return Error("expected term");
  }

  std::vector<Token> tokens_;
  SymbolTablePtr symbols_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
};

}  // namespace

Parser::Parser(SymbolTablePtr symbols) : symbols_(std::move(symbols)) {
  assert(symbols_ != nullptr);
}

StatusOr<Program> Parser::ParseProgram(std::string_view source) {
  Lexer lexer(source);
  STREAMASP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl impl(std::move(tokens), symbols_);
  return impl.ParseProgram();
}

StatusOr<Atom> Parser::ParseGroundAtom(std::string_view source) {
  Lexer lexer(source);
  STREAMASP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl impl(std::move(tokens), symbols_);
  return impl.ParseSingleGroundAtom();
}

StatusOr<Term> Parser::ParseTerm(std::string_view source) {
  Lexer lexer(source);
  STREAMASP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl impl(std::move(tokens), symbols_);
  return impl.ParseSingleTerm();
}

}  // namespace streamasp
