#include "asp/program.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "asp/atom.h"

namespace streamasp {

Program::Program(SymbolTablePtr symbols) : symbols_(std::move(symbols)) {
  assert(symbols_ != nullptr);
}

void Program::AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

void Program::AddFact(Atom atom) { rules_.push_back(Rule::Fact(std::move(atom))); }

void Program::DeclareInputPredicate(PredicateSignature signature) {
  for (const PredicateSignature& existing : input_predicates_) {
    if (existing == signature) return;
  }
  input_predicates_.push_back(signature);
}

void Program::DeclareShownPredicate(PredicateSignature signature) {
  for (const PredicateSignature& existing : shown_predicates_) {
    if (existing == signature) return;
  }
  shown_predicates_.push_back(signature);
}

namespace {

void InsertAtomSignature(const Atom& atom,
                         std::set<PredicateSignature>* sink) {
  sink->insert(atom.signature());
}

}  // namespace

namespace {

std::set<PredicateSignature> RulePredicateSet(const std::vector<Rule>& rules) {
  std::set<PredicateSignature> set;
  for (const Rule& rule : rules) {
    for (const Atom& a : rule.head()) InsertAtomSignature(a, &set);
    for (const Literal& l : rule.body()) {
      if (l.is_atom()) InsertAtomSignature(l.atom(), &set);
    }
  }
  return set;
}

}  // namespace

std::vector<PredicateSignature> Program::AllPredicates() const {
  std::set<PredicateSignature> set = RulePredicateSet(rules_);
  // Input predicates are part of pre(P) by definition even if the current
  // rule set never mentions them (e.g. a program that just passes input
  // through constraints added later).
  for (const PredicateSignature& s : input_predicates_) set.insert(s);
  return std::vector<PredicateSignature>(set.begin(), set.end());
}

std::vector<PredicateSignature> Program::IdbPredicates() const {
  std::set<PredicateSignature> idb;
  for (const Rule& rule : rules_) {
    if (rule.body().empty()) continue;  // Facts are extensional.
    for (const Atom& a : rule.head()) idb.insert(a.signature());
  }
  return std::vector<PredicateSignature>(idb.begin(), idb.end());
}

std::vector<PredicateSignature> Program::EdbPredicates() const {
  std::set<PredicateSignature> idb;
  for (const Rule& rule : rules_) {
    if (rule.body().empty()) continue;
    for (const Atom& a : rule.head()) idb.insert(a.signature());
  }
  std::vector<PredicateSignature> edb;
  for (const PredicateSignature& s : AllPredicates()) {
    if (!idb.count(s)) edb.push_back(s);
  }
  return edb;
}

Status Program::Validate() const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    const std::vector<SymbolId> unsafe = rules_[i].UnsafeVariables();
    if (!unsafe.empty()) {
      return InvalidArgumentError(
          "unsafe variable '" + symbols_->NameOf(unsafe.front()) +
          "' in rule " + std::to_string(i) + ": " +
          rules_[i].ToString(*symbols_));
    }
  }
  const std::set<PredicateSignature> rule_predicates =
      RulePredicateSet(rules_);
  for (const PredicateSignature& s : input_predicates_) {
    if (!rule_predicates.count(s)) {
      return InvalidArgumentError("declared input predicate " +
                                  s.ToString(*symbols_) +
                                  " does not occur in the program");
    }
  }
  return OkStatus();
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += rule.ToString(*symbols_);
    out += '\n';
  }
  return out;
}

}  // namespace streamasp
