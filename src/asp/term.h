#ifndef STREAMASP_ASP_TERM_H_
#define STREAMASP_ASP_TERM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asp/symbol_table.h"

namespace streamasp {

/// Kinds of ASP terms.
enum class TermKind : uint8_t {
  kInteger,     ///< 64-bit integer constant, e.g. 20.
  kSymbol,      ///< Symbolic constant, e.g. newcastle.
  kVariable,    ///< Variable, e.g. X.
  kFunction,    ///< Compound term, e.g. pos(3, 4).
  kArithmetic,  ///< Arithmetic expression, e.g. X + 1.
};

/// Binary arithmetic operators (unary minus is encoded as 0 - x).
enum class ArithOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,  ///< Integer division; division by zero is undefined.
  kMod,  ///< Remainder; modulo zero is undefined.
};

/// Returns the surface syntax of an operator ("+", "-", ...).
const char* ArithOpToString(ArithOp op);

/// An ASP term: integer, symbolic constant, variable, or compound function
/// term. Value type with deep equality and hashing; compound arguments are
/// stored behind a shared_ptr so copies are cheap.
class Term {
 public:
  /// Creates an integer term.
  static Term Integer(int64_t value);

  /// Creates a symbolic-constant term from an interned symbol.
  static Term Symbol(SymbolId id);

  /// Creates a variable term from an interned variable name.
  static Term Variable(SymbolId id);

  /// Creates a compound term functor(args...). Requires !args.empty();
  /// a zero-arity functor should be a Symbol instead.
  static Term Function(SymbolId functor, std::vector<Term> args);

  /// Creates the arithmetic expression `lhs op rhs`. Ground integer
  /// operands are constant-folded to an integer term immediately (division
  /// and modulo by zero are left unfolded, i.e. undefined).
  static Term Arithmetic(ArithOp op, Term lhs, Term rhs);

  /// Default-constructs the integer 0 (so Term is regular).
  Term() : kind_(TermKind::kInteger), value_(0) {}

  TermKind kind() const { return kind_; }
  bool is_integer() const { return kind_ == TermKind::kInteger; }
  bool is_symbol() const { return kind_ == TermKind::kSymbol; }
  bool is_variable() const { return kind_ == TermKind::kVariable; }
  bool is_function() const { return kind_ == TermKind::kFunction; }
  bool is_arithmetic() const { return kind_ == TermKind::kArithmetic; }

  /// Integer payload. Requires is_integer().
  int64_t integer_value() const { return value_; }

  /// Symbol id of a constant, variable name, or functor. Requires
  /// is_symbol(), is_variable() or is_function().
  SymbolId symbol() const { return static_cast<SymbolId>(value_); }

  /// The operator of an arithmetic term. Requires is_arithmetic().
  ArithOp arith_op() const { return static_cast<ArithOp>(value_); }

  /// Arguments of a compound or arithmetic term (arithmetic terms have
  /// exactly two: lhs, rhs). Requires is_function() || is_arithmetic().
  const std::vector<Term>& args() const { return *args_; }

  /// True iff the term contains no variables (recursively).
  bool IsGround() const;

  /// Appends the interned ids of all variables in this term to *out
  /// (duplicates preserved, left-to-right order).
  void CollectVariables(std::vector<SymbolId>* out) const;

  /// Like CollectVariables, but skips variables nested inside arithmetic
  /// subterms: matching a pattern against a ground atom can bind X in
  /// p(X) but not in p(X + 1), so only the former count for rule safety.
  void CollectBindableVariables(std::vector<SymbolId>* out) const;

  /// Evaluates a ground arithmetic expression to an integer. Returns
  /// false (leaving *out untouched) when the term is non-ground, contains
  /// symbolic operands, divides by zero, or overflows in division edge
  /// cases. Plain integers evaluate to themselves.
  bool EvaluateArithmetic(int64_t* out) const;

  /// Renders the term using `symbols` for names, in ASP syntax.
  std::string ToString(const SymbolTable& symbols) const;

  /// Deep structural equality.
  friend bool operator==(const Term& a, const Term& b);
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

  /// Total order (by kind, then payload) used for canonical sorting of
  /// ground atoms in answer sets.
  friend bool operator<(const Term& a, const Term& b);

  /// Deep hash compatible with operator==.
  size_t Hash() const;

 private:
  Term(TermKind kind, int64_t value) : kind_(kind), value_(value) {}

  TermKind kind_;
  int64_t value_;  // Integer payload, SymbolId, or ArithOp by kind.
  // Children for kFunction (n-ary) and kArithmetic (always binary).
  std::shared_ptr<const std::vector<Term>> args_;
};

/// Hash functor so Term can key unordered containers.
struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

/// Combines a hash into a running seed (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace streamasp

#endif  // STREAMASP_ASP_TERM_H_
