#ifndef STREAMASP_ASP_PROGRAM_H_
#define STREAMASP_ASP_PROGRAM_H_

#include <set>
#include <string>
#include <vector>

#include "asp/rule.h"
#include "asp/symbol_table.h"
#include "util/status.h"

namespace streamasp {

/// A logic program: an ordered set of rules over a shared symbol table.
///
/// Terminology from the paper:
///   * pre(P)   — all predicate signatures occurring in P (head or body);
///   * inpre(P) — the declared *input* predicates: the signatures of the
///                data items streamed into the reasoner. inpre(P) ⊆ pre(P)
///                is not derivable from the rules alone (an input predicate
///                may also be an IDB predicate), so it is declared
///                explicitly, mirroring the paper's setup.
class Program {
 public:
  /// Creates an empty program over `symbols` (must be non-null).
  explicit Program(SymbolTablePtr symbols);

  /// Appends a rule.
  void AddRule(Rule rule);

  /// Appends a ground fact.
  void AddFact(Atom atom);

  /// Declares `signature` an input predicate. Idempotent.
  void DeclareInputPredicate(PredicateSignature signature);

  /// Declares `signature` as shown (projected into reasoner output, like
  /// Clingo's `#show`). When no predicate is shown, reasoners emit full
  /// answer sets. Idempotent.
  void DeclareShownPredicate(PredicateSignature signature);

  const std::vector<Rule>& rules() const { return rules_; }
  const SymbolTablePtr& symbols() const { return symbols_; }
  SymbolTable& symbol_table() const { return *symbols_; }

  /// The declared input predicates, inpre(P), in declaration order.
  const std::vector<PredicateSignature>& input_predicates() const {
    return input_predicates_;
  }

  /// The declared shown predicates (empty = show everything).
  const std::vector<PredicateSignature>& shown_predicates() const {
    return shown_predicates_;
  }

  /// All predicate signatures occurring anywhere in the program: pre(P).
  std::vector<PredicateSignature> AllPredicates() const;

  /// Predicates occurring in at least one rule head with a non-empty body,
  /// i.e. the IDB (intensional) predicates. Facts alone do not make a
  /// predicate intensional.
  std::vector<PredicateSignature> IdbPredicates() const;

  /// Predicates in pre(P) that are not IDB: the EDB (extensional) ones.
  std::vector<PredicateSignature> EdbPredicates() const;

  /// Validates the program: every rule safe, every declared input
  /// predicate mentioned in pre(P). Returns the first violation found.
  Status Validate() const;

  /// Renders the full program, one rule per line.
  std::string ToString() const;

  /// Deep copy onto a different symbol table is not supported; programs
  /// share their table. Copying the Program itself is cheap enough (rule
  /// vectors) and allowed.
  Program(const Program&) = default;
  Program& operator=(const Program&) = default;
  Program(Program&&) noexcept = default;
  Program& operator=(Program&&) noexcept = default;

 private:
  SymbolTablePtr symbols_;
  std::vector<Rule> rules_;
  std::vector<PredicateSignature> input_predicates_;
  std::vector<PredicateSignature> shown_predicates_;
};

}  // namespace streamasp

#endif  // STREAMASP_ASP_PROGRAM_H_
