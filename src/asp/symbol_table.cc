#include "asp/symbol_table.h"

#include <cassert>
#include <mutex>

namespace streamasp {

SymbolId SymbolTable::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> read_lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> write_lock(mutex_);
  // Re-check: another thread may have interned between the locks.
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  // The key views the deque-owned string, which never moves.
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

SymbolId SymbolTable::Lookup(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::NameOf(SymbolId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  assert(id < names_.size());
  return names_[id];
}

size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return names_.size();
}

}  // namespace streamasp
