#ifndef STREAMASP_ASP_LITERAL_H_
#define STREAMASP_ASP_LITERAL_H_

#include <cstdint>
#include <string>

#include "asp/atom.h"
#include "asp/term.h"

namespace streamasp {

/// Comparison operators available in rule bodies (builtin literals).
enum class ComparisonOp : uint8_t {
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kEqual,
  kNotEqual,
};

/// Returns the ASP surface syntax for an operator ("<", ">=", ...).
const char* ComparisonOpToString(ComparisonOp op);

/// Evaluates `lhs op rhs` on ground terms. Integers compare numerically;
/// any other ground terms compare by the Term total order (so equality is
/// structural). Requires both terms to be ground.
bool EvaluateComparison(ComparisonOp op, const Term& lhs, const Term& rhs);

/// A body literal: either a (possibly default-negated) atom, or a builtin
/// comparison between two terms such as `Y < 20`.
class Literal {
 public:
  /// Kinds of body literals.
  enum class Kind : uint8_t {
    kPositiveAtom,  ///< p(t...)
    kNegativeAtom,  ///< not p(t...)
    kComparison,    ///< t1 op t2
  };

  Literal() : kind_(Kind::kPositiveAtom) {}

  /// Creates a positive atom literal.
  static Literal Positive(Atom atom);

  /// Creates a default-negated atom literal (`not atom`).
  static Literal Negative(Atom atom);

  /// Creates a builtin comparison literal.
  static Literal Comparison(Term lhs, ComparisonOp op, Term rhs);

  Kind kind() const { return kind_; }
  bool is_positive_atom() const { return kind_ == Kind::kPositiveAtom; }
  bool is_negative_atom() const { return kind_ == Kind::kNegativeAtom; }
  bool is_atom() const { return kind_ != Kind::kComparison; }
  bool is_comparison() const { return kind_ == Kind::kComparison; }

  /// The wrapped atom. Requires is_atom().
  const Atom& atom() const { return atom_; }

  /// Comparison parts. Require is_comparison().
  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }
  ComparisonOp op() const { return op_; }

  /// Appends all variable ids occurring in the literal.
  void CollectVariables(std::vector<SymbolId>* out) const;

  /// Renders ASP syntax, e.g. "not traffic_light(X)" or "Y<20".
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Literal& a, const Literal& b);
  friend bool operator!=(const Literal& a, const Literal& b) {
    return !(a == b);
  }

 private:
  Kind kind_;
  Atom atom_;           // For atom literals.
  Term lhs_, rhs_;      // For comparisons.
  ComparisonOp op_ = ComparisonOp::kEqual;
};

}  // namespace streamasp

#endif  // STREAMASP_ASP_LITERAL_H_
