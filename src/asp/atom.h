#ifndef STREAMASP_ASP_ATOM_H_
#define STREAMASP_ASP_ATOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "asp/symbol_table.h"
#include "asp/term.h"

namespace streamasp {

/// A predicate signature: name plus arity. Two predicates with the same
/// name but different arities are distinct, as in standard ASP systems.
struct PredicateSignature {
  SymbolId name = kInvalidSymbol;
  uint32_t arity = 0;

  friend bool operator==(const PredicateSignature& a,
                         const PredicateSignature& b) {
    return a.name == b.name && a.arity == b.arity;
  }
  friend bool operator!=(const PredicateSignature& a,
                         const PredicateSignature& b) {
    return !(a == b);
  }
  friend bool operator<(const PredicateSignature& a,
                        const PredicateSignature& b) {
    return a.name != b.name ? a.name < b.name : a.arity < b.arity;
  }

  /// Renders "name/arity".
  std::string ToString(const SymbolTable& symbols) const;
};

struct PredicateSignatureHash {
  size_t operator()(const PredicateSignature& s) const {
    return HashCombine(std::hash<uint32_t>()(s.name),
                       std::hash<uint32_t>()(s.arity));
  }
};

/// An ASP atom: predicate applied to a (possibly empty) list of terms,
/// e.g. traffic_jam(X) or average_speed(newcastle, 10).
class Atom {
 public:
  Atom() = default;

  /// Constructs predicate(args...).
  Atom(SymbolId predicate, std::vector<Term> args)
      : predicate_(predicate), args_(std::move(args)) {}

  SymbolId predicate() const { return predicate_; }
  const std::vector<Term>& args() const { return args_; }
  uint32_t arity() const { return static_cast<uint32_t>(args_.size()); }

  /// This atom's name/arity signature.
  PredicateSignature signature() const {
    return PredicateSignature{predicate_, arity()};
  }

  /// True iff no argument contains a variable.
  bool IsGround() const;

  /// Appends all variable ids in argument order (with duplicates).
  void CollectVariables(std::vector<SymbolId>* out) const;

  /// Renders the atom in ASP syntax, e.g. "p(a,3)" or "q" for arity 0.
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate_ == b.predicate_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.predicate_ != b.predicate_) return a.predicate_ < b.predicate_;
    return a.args_ < b.args_;
  }

  size_t Hash() const;

 private:
  SymbolId predicate_ = kInvalidSymbol;
  std::vector<Term> args_;
};

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

}  // namespace streamasp

#endif  // STREAMASP_ASP_ATOM_H_
