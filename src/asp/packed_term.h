#ifndef STREAMASP_ASP_PACKED_TERM_H_
#define STREAMASP_ASP_PACKED_TERM_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "asp/symbol_table.h"
#include "asp/term.h"

namespace streamasp {

/// A ground-or-variable ASP term packed into one tagged 64-bit word — the
/// unit of the compact data plane. Integers, symbolic constants, and
/// variables are encoded inline; compound (function/arithmetic) terms and
/// integers outside the 61-bit inline range escape to an id in the global
/// hash-consing PackedTermArena. Because the arena interns canonically,
/// *word equality is deep Term equality* for every pair of PackedTerms in
/// the process, which is what lets window buffers, join indexes, and atom
/// interning compare and hash single words instead of walking Term trees.
///
/// Layout (bits 63..61 = tag, bits 60..0 = payload):
///
///   tag 0 kNone      payload 0        — absent value (optional-style)
///   tag 1 kInt       signed 61-bit    — integers in [-2^60, 2^60)
///   tag 2 kSymbol    SymbolId         — symbolic constant
///   tag 3 kVariable  SymbolId         — variable
///   tag 4 kEscape    arena id         — compound term or out-of-range int
///
/// The all-zero word is "no value", so PackedTerm doubles as an optional:
/// it exposes has_value()/operator*/operator-> and converts implicitly
/// from Term and std::nullopt, keeping `Triple{subj, pred, std::nullopt}`
/// call sites source-compatible.
///
/// Hash() reproduces Term::Hash() bit-for-bit (the arena caches the deep
/// hash per escaped id), so shard routing and any hash-dependent iteration
/// order remain byte-identical to the unpacked representation.
class PackedTerm {
 public:
  enum Tag : uint64_t {
    kNone = 0,
    kInt = 1,
    kSymbol = 2,
    kVariable = 3,
    kEscape = 4,
  };

  static constexpr int kTagShift = 61;
  static constexpr uint64_t kPayloadMask = (uint64_t{1} << kTagShift) - 1;
  /// Inline integer range: signed 61-bit two's complement.
  static constexpr int64_t kMinInlineInt = -(int64_t{1} << 60);
  static constexpr int64_t kMaxInlineInt = (int64_t{1} << 60) - 1;

  constexpr PackedTerm() : bits_(0) {}
  constexpr PackedTerm(std::nullopt_t) : bits_(0) {}  // NOLINT(runtime/explicit)
  /// Packs a Term (interning into the global arena on the escape path).
  PackedTerm(const Term& term);  // NOLINT(runtime/explicit)
  PackedTerm(const std::optional<Term>& term)  // NOLINT(runtime/explicit)
      : PackedTerm() {
    if (term) *this = PackedTerm(*term);
  }

  static PackedTerm Integer(int64_t value);
  static PackedTerm Symbol(SymbolId id) {
    return FromBits((uint64_t{kSymbol} << kTagShift) | id);
  }
  static PackedTerm Variable(SymbolId id) {
    return FromBits((uint64_t{kVariable} << kTagShift) | id);
  }
  static constexpr PackedTerm FromBits(uint64_t bits) {
    PackedTerm t;
    t.bits_ = bits;
    return t;
  }

  Tag tag() const { return static_cast<Tag>(bits_ >> kTagShift); }
  uint64_t bits() const { return bits_; }

  // Optional-style surface (mirrors the std::optional<Term> this replaced
  // in Triple::object).
  bool has_value() const { return bits_ != 0; }
  explicit operator bool() const { return has_value(); }
  const PackedTerm& operator*() const { return *this; }
  const PackedTerm* operator->() const { return this; }

  bool is_none() const { return bits_ == 0; }
  /// True for inline integers and escaped out-of-range integers.
  bool is_integer() const;
  bool is_symbol() const { return tag() == kSymbol; }
  bool is_variable() const { return tag() == kVariable; }
  /// True for escaped compound (function) terms.
  bool is_function() const;
  bool is_escape() const { return tag() == kEscape; }

  /// Integer payload (inline or escaped). Requires is_integer().
  int64_t integer_value() const;

  /// Symbol id of an inline constant or variable. Requires is_symbol() or
  /// is_variable().
  SymbolId symbol() const { return static_cast<SymbolId>(bits_ & kPayloadMask); }

  /// Arena id of an escaped term. Requires is_escape().
  uint32_t escape_id() const { return static_cast<uint32_t>(bits_ & kPayloadMask); }

  /// Unpacks to the equivalent Term. Requires has_value().
  Term ToTerm() const;
  std::optional<Term> ToOptionalTerm() const {
    if (!has_value()) return std::nullopt;
    return ToTerm();
  }

  /// Deep hash, bit-identical to ToTerm().Hash() (cached per arena id on
  /// the escape path, pure bit arithmetic inline).
  size_t Hash() const;

  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const PackedTerm& a, const PackedTerm& b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(const PackedTerm& a, const PackedTerm& b) {
    return a.bits_ != b.bits_;
  }

 private:
  uint64_t bits_;
};

static_assert(sizeof(PackedTerm) == 8, "PackedTerm must stay one word");

/// Process-global hash-consing arena for terms that do not fit inline in a
/// PackedTerm. Interning is canonical (deep-equal terms share one id), so
/// packed-word equality remains deep equality across every component that
/// packs terms — windowers, the sharded router, grounder indexes — without
/// coordinating arena handles. Append-only; ids are dense and stable for
/// the process lifetime. Thread-safe (the escape path is rare: stream
/// workloads are integer/symbol dominated, so the lock is off the hot
/// path).
class PackedTermArena {
 public:
  static PackedTermArena& Global();

  /// Interns `term` (deep copy on first sight) and returns its id. The
  /// deep hash is computed once and cached for PackedTerm::Hash().
  uint32_t Intern(const Term& term);

  /// The canonical Term for an id (reference stable: deque storage).
  Term TermOf(uint32_t id) const;
  size_t HashOf(uint32_t id) const;
  TermKind KindOf(uint32_t id) const;
  int64_t IntegerOf(uint32_t id) const;

  size_t size() const;
  /// Approximate retained bytes (terms + cached hashes + index).
  size_t ApproxBytes() const;

 private:
  PackedTermArena() = default;

  mutable std::shared_mutex mutex_;
  std::deque<Term> terms_;
  std::deque<size_t> hashes_;
  std::unordered_map<Term, uint32_t, TermHash> index_;
};

/// Hash functor mixing a packed word for unordered containers keyed by
/// raw packed bits. splitmix64 finalizer: packed words differ in few bits
/// (consecutive ints/symbols), so identity hashing would cluster buckets.
struct PackedBitsHash {
  size_t operator()(uint64_t bits) const {
    uint64_t x = bits + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace streamasp

#endif  // STREAMASP_ASP_PACKED_TERM_H_
