#ifndef STREAMASP_ASP_RULE_H_
#define STREAMASP_ASP_RULE_H_

#include <string>
#include <vector>

#include "asp/atom.h"
#include "asp/literal.h"

namespace streamasp {

/// A (possibly disjunctive) ASP rule:
///
///   q1 | ... | qn :- p1, ..., pk, not pk+1, ..., not pm.
///
/// n = 0 encodes an integrity constraint (`:- body.`); an empty body with a
/// single head atom encodes a fact.
class Rule {
 public:
  Rule() = default;

  /// Constructs a rule from head atoms and body literals.
  Rule(std::vector<Atom> head, std::vector<Literal> body)
      : head_(std::move(head)), body_(std::move(body)) {}

  /// Convenience: a ground or non-ground fact `atom.`.
  static Rule Fact(Atom atom);

  /// Convenience: an integrity constraint `:- body.`.
  static Rule Constraint(std::vector<Literal> body);

  const std::vector<Atom>& head() const { return head_; }
  const std::vector<Literal>& body() const { return body_; }

  bool is_constraint() const { return head_.empty(); }
  bool is_fact() const { return head_.size() == 1 && body_.empty(); }
  bool is_disjunctive() const { return head_.size() > 1; }

  /// True iff head and body contain no variables.
  bool IsGround() const;

  /// Positive body atoms (skipping negations and comparisons).
  std::vector<Atom> PositiveBodyAtoms() const;

  /// Atoms under default negation in the body.
  std::vector<Atom> NegativeBodyAtoms() const;

  /// All distinct variables, in first-occurrence order.
  std::vector<SymbolId> Variables() const;

  /// Checks rule safety: every variable occurring anywhere in the rule must
  /// occur in at least one positive body atom. Returns the ids of unsafe
  /// variables (empty means the rule is safe).
  std::vector<SymbolId> UnsafeVariables() const;

  /// Renders ASP syntax, e.g. "a | b :- c, not d, X<3."
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const Rule& a, const Rule& b) {
    return a.head_ == b.head_ && a.body_ == b.body_;
  }
  friend bool operator!=(const Rule& a, const Rule& b) { return !(a == b); }

 private:
  std::vector<Atom> head_;
  std::vector<Literal> body_;
};

}  // namespace streamasp

#endif  // STREAMASP_ASP_RULE_H_
