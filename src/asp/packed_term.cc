#include "asp/packed_term.h"

#include <cassert>
#include <mutex>

namespace streamasp {

PackedTerm::PackedTerm(const Term& term) : bits_(0) {
  switch (term.kind()) {
    case TermKind::kInteger: {
      int64_t v = term.integer_value();
      if (v >= kMinInlineInt && v <= kMaxInlineInt) {
        bits_ = (uint64_t{kInt} << kTagShift) |
                (static_cast<uint64_t>(v) & kPayloadMask);
        return;
      }
      break;  // Out-of-range integer: escape.
    }
    case TermKind::kSymbol:
      bits_ = (uint64_t{kSymbol} << kTagShift) | term.symbol();
      return;
    case TermKind::kVariable:
      bits_ = (uint64_t{kVariable} << kTagShift) | term.symbol();
      return;
    case TermKind::kFunction:
    case TermKind::kArithmetic:
      break;  // Compound: escape.
  }
  bits_ = (uint64_t{kEscape} << kTagShift) |
          PackedTermArena::Global().Intern(term);
}

PackedTerm PackedTerm::Integer(int64_t value) {
  if (value >= kMinInlineInt && value <= kMaxInlineInt) {
    return FromBits((uint64_t{kInt} << kTagShift) |
                    (static_cast<uint64_t>(value) & kPayloadMask));
  }
  return PackedTerm(Term::Integer(value));
}

bool PackedTerm::is_integer() const {
  if (tag() == kInt) return true;
  if (tag() != kEscape) return false;
  return PackedTermArena::Global().KindOf(escape_id()) == TermKind::kInteger;
}

bool PackedTerm::is_function() const {
  if (tag() != kEscape) return false;
  return PackedTermArena::Global().KindOf(escape_id()) == TermKind::kFunction;
}

int64_t PackedTerm::integer_value() const {
  if (tag() == kInt) {
    // Sign-extend the 61-bit payload.
    return static_cast<int64_t>(bits_ << 3) >> 3;
  }
  assert(tag() == kEscape);
  return PackedTermArena::Global().IntegerOf(escape_id());
}

Term PackedTerm::ToTerm() const {
  switch (tag()) {
    case kInt:
      return Term::Integer(integer_value());
    case kSymbol:
      return Term::Symbol(symbol());
    case kVariable:
      return Term::Variable(symbol());
    case kEscape:
      return PackedTermArena::Global().TermOf(escape_id());
    case kNone:
      break;
  }
  assert(false && "ToTerm on an absent PackedTerm");
  return Term();
}

size_t PackedTerm::Hash() const {
  // Inline kinds replay Term::Hash without building the Term:
  //   HashCombine(kind, std::hash<int64_t>(payload)).
  switch (tag()) {
    case kInt:
      return HashCombine(static_cast<size_t>(TermKind::kInteger),
                         std::hash<int64_t>()(integer_value()));
    case kSymbol:
      return HashCombine(static_cast<size_t>(TermKind::kSymbol),
                         std::hash<int64_t>()(static_cast<int64_t>(symbol())));
    case kVariable:
      return HashCombine(static_cast<size_t>(TermKind::kVariable),
                         std::hash<int64_t>()(static_cast<int64_t>(symbol())));
    case kEscape:
      return PackedTermArena::Global().HashOf(escape_id());
    case kNone:
      break;
  }
  return 0;
}

std::string PackedTerm::ToString(const SymbolTable& symbols) const {
  if (!has_value()) return "<none>";
  return ToTerm().ToString(symbols);
}

PackedTermArena& PackedTermArena::Global() {
  static PackedTermArena* arena = new PackedTermArena();
  return *arena;
}

uint32_t PackedTermArena::Intern(const Term& term) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = index_.find(term);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto [it, inserted] =
      index_.try_emplace(term, static_cast<uint32_t>(terms_.size()));
  if (inserted) {
    assert(terms_.size() <= PackedTerm::kPayloadMask &&
           "packed-term arena id overflow");
    terms_.push_back(term);
    hashes_.push_back(term.Hash());
  }
  return it->second;
}

Term PackedTermArena::TermOf(uint32_t id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return terms_[id];
}

size_t PackedTermArena::HashOf(uint32_t id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return hashes_[id];
}

TermKind PackedTermArena::KindOf(uint32_t id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return terms_[id].kind();
}

int64_t PackedTermArena::IntegerOf(uint32_t id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const Term& t = terms_[id];
  assert(t.is_integer());
  return t.integer_value();
}

size_t PackedTermArena::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return terms_.size();
}

size_t PackedTermArena::ApproxBytes() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  // Term payloads (shared arg vectors are approximated by one Term per
  // argument slot) + cached hashes + one index entry per term.
  size_t bytes = terms_.size() * (sizeof(Term) + sizeof(size_t) +
                                  sizeof(void*) + sizeof(uint32_t));
  for (const Term& t : terms_) {
    if (t.is_function() || t.is_arithmetic()) {
      bytes += t.args().size() * sizeof(Term);
    }
  }
  return bytes;
}

}  // namespace streamasp
