#include "asp/rule.h"

#include <algorithm>
#include <unordered_set>

namespace streamasp {

Rule Rule::Fact(Atom atom) {
  Rule rule;
  rule.head_.push_back(std::move(atom));
  return rule;
}

Rule Rule::Constraint(std::vector<Literal> body) {
  Rule rule;
  rule.body_ = std::move(body);
  return rule;
}

bool Rule::IsGround() const {
  for (const Atom& a : head_) {
    if (!a.IsGround()) return false;
  }
  for (const Literal& l : body_) {
    std::vector<SymbolId> vars;
    l.CollectVariables(&vars);
    if (!vars.empty()) return false;
  }
  return true;
}

std::vector<Atom> Rule::PositiveBodyAtoms() const {
  std::vector<Atom> atoms;
  for (const Literal& l : body_) {
    if (l.is_positive_atom()) atoms.push_back(l.atom());
  }
  return atoms;
}

std::vector<Atom> Rule::NegativeBodyAtoms() const {
  std::vector<Atom> atoms;
  for (const Literal& l : body_) {
    if (l.is_negative_atom()) atoms.push_back(l.atom());
  }
  return atoms;
}

std::vector<SymbolId> Rule::Variables() const {
  std::vector<SymbolId> all;
  for (const Atom& a : head_) a.CollectVariables(&all);
  for (const Literal& l : body_) l.CollectVariables(&all);
  std::vector<SymbolId> unique;
  std::unordered_set<SymbolId> seen;
  for (SymbolId v : all) {
    if (seen.insert(v).second) unique.push_back(v);
  }
  return unique;
}

std::vector<SymbolId> Rule::UnsafeVariables() const {
  // Base case: variables matchable against a positive body atom. Variables
  // nested inside arithmetic subterms do not count — p(X + 1) cannot bind
  // X during instantiation.
  std::unordered_set<SymbolId> safe;
  for (const Literal& l : body_) {
    if (l.is_positive_atom()) {
      std::vector<SymbolId> vars;
      for (const Term& arg : l.atom().args()) {
        arg.CollectBindableVariables(&vars);
      }
      safe.insert(vars.begin(), vars.end());
    }
  }
  // Closure over assignments: `X = expr` (or `expr = X`) makes X safe once
  // every variable of expr is safe.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : body_) {
      if (!l.is_comparison() || l.op() != ComparisonOp::kEqual) continue;
      for (const bool variable_on_left : {true, false}) {
        const Term& target = variable_on_left ? l.lhs() : l.rhs();
        const Term& source = variable_on_left ? l.rhs() : l.lhs();
        if (!target.is_variable() || safe.count(target.symbol())) continue;
        std::vector<SymbolId> source_vars;
        source.CollectVariables(&source_vars);
        bool all_safe = true;
        for (SymbolId v : source_vars) {
          if (!safe.count(v)) {
            all_safe = false;
            break;
          }
        }
        if (all_safe) {
          safe.insert(target.symbol());
          changed = true;
        }
      }
    }
  }
  std::vector<SymbolId> unsafe;
  std::unordered_set<SymbolId> reported;
  for (SymbolId v : Variables()) {
    if (!safe.count(v) && reported.insert(v).second) {
      unsafe.push_back(v);
    }
  }
  return unsafe;
}

std::string Rule::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += " | ";
    out += head_[i].ToString(symbols);
  }
  if (!body_.empty()) {
    if (!head_.empty()) out += " ";
    out += ":- ";
    for (size_t i = 0; i < body_.size(); ++i) {
      if (i > 0) out += ", ";
      out += body_[i].ToString(symbols);
    }
  } else if (head_.empty()) {
    out += ":- ";  // Degenerate empty constraint.
  }
  out += ".";
  return out;
}

}  // namespace streamasp
