#ifndef STREAMASP_ASP_PARSER_H_
#define STREAMASP_ASP_PARSER_H_

#include <string_view>

#include "asp/program.h"
#include "util/status.h"

namespace streamasp {

/// Parses the Clingo-compatible subset of ASP used throughout the library.
///
/// Grammar (informal):
///
///   program    := (rule | directive)*
///   rule       := head? (":-" body)? "."
///   head       := atom (("|" | ";") atom)*
///   body       := literal ("," literal)*
///   literal    := "not" atom | atom | term cmp term
///   cmp        := "<" | "<=" | ">" | ">=" | "==" | "=" | "!="
///   atom       := identifier ("(" term ("," term)* ")")?
///   term       := integer | identifier | VARIABLE | "_"
///              |  identifier "(" term ("," term)* ")" | string
///   directive  := "#input" signature ("," signature)* "."
///              |  "#show" signature ("," signature)* "."
///   signature  := identifier "/" integer
///
/// `%` starts a line comment. Identifiers start with a lowercase letter;
/// variables with an uppercase letter or underscore. A bare `_` is an
/// anonymous variable (each occurrence is unique). `#input` declares
/// inpre(P); `#show` declares output projection (both are recorded on the
/// returned Program).
///
/// Errors carry 1-based line/column positions.
class Parser {
 public:
  /// Creates a parser interning into `symbols` (must be non-null).
  explicit Parser(SymbolTablePtr symbols);

  /// Parses a complete program.
  StatusOr<Program> ParseProgram(std::string_view source);

  /// Parses a single ground atom such as "average_speed(newcastle,10)".
  /// Rejects non-ground atoms.
  StatusOr<Atom> ParseGroundAtom(std::string_view source);

  /// Parses a single term.
  StatusOr<Term> ParseTerm(std::string_view source);

 private:
  SymbolTablePtr symbols_;
};

}  // namespace streamasp

#endif  // STREAMASP_ASP_PARSER_H_
