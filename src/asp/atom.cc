#include "asp/atom.h"

namespace streamasp {

std::string PredicateSignature::ToString(const SymbolTable& symbols) const {
  return symbols.NameOf(name) + "/" + std::to_string(arity);
}

bool Atom::IsGround() const {
  for (const Term& t : args_) {
    if (!t.IsGround()) return false;
  }
  return true;
}

void Atom::CollectVariables(std::vector<SymbolId>* out) const {
  for (const Term& t : args_) {
    t.CollectVariables(out);
  }
}

std::string Atom::ToString(const SymbolTable& symbols) const {
  std::string out = symbols.NameOf(predicate_);
  if (!args_.empty()) {
    out += '(';
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ',';
      out += args_[i].ToString(symbols);
    }
    out += ')';
  }
  return out;
}

size_t Atom::Hash() const {
  size_t h = std::hash<uint32_t>()(predicate_);
  for (const Term& t : args_) {
    h = HashCombine(h, t.Hash());
  }
  return h;
}

}  // namespace streamasp
