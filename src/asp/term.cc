#include "asp/term.h"

#include <cassert>
#include <cstdint>

namespace streamasp {

Term Term::Integer(int64_t value) { return Term(TermKind::kInteger, value); }

Term Term::Symbol(SymbolId id) {
  return Term(TermKind::kSymbol, static_cast<int64_t>(id));
}

Term Term::Variable(SymbolId id) {
  return Term(TermKind::kVariable, static_cast<int64_t>(id));
}

Term Term::Function(SymbolId functor, std::vector<Term> args) {
  assert(!args.empty() && "zero-arity function should be a Symbol");
  Term t(TermKind::kFunction, static_cast<int64_t>(functor));
  t.args_ = std::make_shared<const std::vector<Term>>(std::move(args));
  return t;
}

Term Term::Arithmetic(ArithOp op, Term lhs, Term rhs) {
  Term t(TermKind::kArithmetic, static_cast<int64_t>(op));
  t.args_ = std::make_shared<const std::vector<Term>>(
      std::vector<Term>{std::move(lhs), std::move(rhs)});
  int64_t folded = 0;
  if (t.EvaluateArithmetic(&folded)) return Integer(folded);
  return t;
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "\\";
  }
  return "?";
}

bool Term::IsGround() const {
  switch (kind_) {
    case TermKind::kInteger:
    case TermKind::kSymbol:
      return true;
    case TermKind::kVariable:
      return false;
    case TermKind::kFunction:
    case TermKind::kArithmetic:
      for (const Term& arg : *args_) {
        if (!arg.IsGround()) return false;
      }
      return true;
  }
  return false;
}

void Term::CollectVariables(std::vector<SymbolId>* out) const {
  switch (kind_) {
    case TermKind::kInteger:
    case TermKind::kSymbol:
      return;
    case TermKind::kVariable:
      out->push_back(symbol());
      return;
    case TermKind::kFunction:
    case TermKind::kArithmetic:
      for (const Term& arg : *args_) {
        arg.CollectVariables(out);
      }
      return;
  }
}

void Term::CollectBindableVariables(std::vector<SymbolId>* out) const {
  switch (kind_) {
    case TermKind::kInteger:
    case TermKind::kSymbol:
    case TermKind::kArithmetic:  // Matching cannot invert arithmetic.
      return;
    case TermKind::kVariable:
      out->push_back(symbol());
      return;
    case TermKind::kFunction:
      for (const Term& arg : *args_) {
        arg.CollectBindableVariables(out);
      }
      return;
  }
}

bool Term::EvaluateArithmetic(int64_t* out) const {
  switch (kind_) {
    case TermKind::kInteger:
      *out = value_;
      return true;
    case TermKind::kSymbol:
    case TermKind::kVariable:
    case TermKind::kFunction:
      return false;
    case TermKind::kArithmetic: {
      int64_t lhs = 0;
      int64_t rhs = 0;
      if (!(*args_)[0].EvaluateArithmetic(&lhs) ||
          !(*args_)[1].EvaluateArithmetic(&rhs)) {
        return false;
      }
      switch (arith_op()) {
        case ArithOp::kAdd:
          *out = lhs + rhs;
          return true;
        case ArithOp::kSub:
          *out = lhs - rhs;
          return true;
        case ArithOp::kMul:
          *out = lhs * rhs;
          return true;
        case ArithOp::kDiv:
          if (rhs == 0 || (lhs == INT64_MIN && rhs == -1)) return false;
          *out = lhs / rhs;
          return true;
        case ArithOp::kMod:
          if (rhs == 0 || (lhs == INT64_MIN && rhs == -1)) return false;
          *out = lhs % rhs;
          return true;
      }
      return false;
    }
  }
  return false;
}

std::string Term::ToString(const SymbolTable& symbols) const {
  switch (kind_) {
    case TermKind::kInteger:
      return std::to_string(value_);
    case TermKind::kSymbol:
    case TermKind::kVariable:
      return symbols.NameOf(symbol());
    case TermKind::kFunction: {
      std::string out = symbols.NameOf(symbol());
      out += '(';
      for (size_t i = 0; i < args_->size(); ++i) {
        if (i > 0) out += ',';
        out += (*args_)[i].ToString(symbols);
      }
      out += ')';
      return out;
    }
    case TermKind::kArithmetic:
      // Fully parenthesized: precedence was resolved at parse time.
      return "(" + (*args_)[0].ToString(symbols) + ArithOpToString(arith_op()) +
             (*args_)[1].ToString(symbols) + ")";
  }
  return "?";
}

bool operator==(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_ || a.value_ != b.value_) return false;
  if (a.kind_ != TermKind::kFunction &&
      a.kind_ != TermKind::kArithmetic) {
    return true;
  }
  if (a.args_ == b.args_) return true;  // Shared storage fast path.
  return *a.args_ == *b.args_;
}

bool operator<(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
  if (a.value_ != b.value_) return a.value_ < b.value_;
  if (a.kind_ != TermKind::kFunction &&
      a.kind_ != TermKind::kArithmetic) {
    return false;
  }
  if (a.args_ == b.args_) return false;
  return *a.args_ < *b.args_;  // Lexicographic via vector's operator<.
}

size_t Term::Hash() const {
  size_t h = HashCombine(static_cast<size_t>(kind_),
                         std::hash<int64_t>()(value_));
  if (kind_ == TermKind::kFunction || kind_ == TermKind::kArithmetic) {
    for (const Term& arg : *args_) {
      h = HashCombine(h, arg.Hash());
    }
  }
  return h;
}

}  // namespace streamasp
