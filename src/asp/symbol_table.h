#ifndef STREAMASP_ASP_SYMBOL_TABLE_H_
#define STREAMASP_ASP_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace streamasp {

/// Dense identifier of an interned string (predicate name, constant, or
/// variable name). Ids are stable for the lifetime of the SymbolTable.
using SymbolId = uint32_t;

/// Sentinel for "no symbol".
inline constexpr SymbolId kInvalidSymbol = static_cast<SymbolId>(-1);

/// Interns strings to dense ids so the grounder and solver can compare and
/// hash terms as integers.
///
/// Thread safety: Intern/Lookup/NameOf may be called concurrently; the
/// parallel reasoner shares one table across worker threads so that answer
/// sets from different partitions are directly comparable by id. A
/// shared_mutex keeps reads (the common case once the workload's symbols
/// exist) cheap.
class SymbolTable {
 public:
  SymbolTable() = default;

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidSymbol if never interned.
  SymbolId Lookup(std::string_view name) const;

  /// Returns the string for an id. The reference is stable (storage is a
  /// deque; entries are never removed). Requires a valid id.
  const std::string& NameOf(SymbolId id) const;

  /// Number of interned symbols.
  size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, SymbolId> index_;
};

/// Shared-ownership handle used throughout the library: programs, windows,
/// and reasoners all reference one table.
using SymbolTablePtr = std::shared_ptr<SymbolTable>;

/// Convenience factory.
inline SymbolTablePtr MakeSymbolTable() {
  return std::make_shared<SymbolTable>();
}

}  // namespace streamasp

#endif  // STREAMASP_ASP_SYMBOL_TABLE_H_
