#include "asp/literal.h"

#include <cassert>

namespace streamasp {

const char* ComparisonOpToString(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kLess:
      return "<";
    case ComparisonOp::kLessEqual:
      return "<=";
    case ComparisonOp::kGreater:
      return ">";
    case ComparisonOp::kGreaterEqual:
      return ">=";
    case ComparisonOp::kEqual:
      return "==";
    case ComparisonOp::kNotEqual:
      return "!=";
  }
  return "?";
}

bool EvaluateComparison(ComparisonOp op, const Term& lhs, const Term& rhs) {
  assert(lhs.IsGround() && rhs.IsGround());
  // Numeric comparison when both sides are integers; otherwise fall back to
  // the structural total order, matching Clingo's ordering of mixed terms.
  int cmp;
  if (lhs.is_integer() && rhs.is_integer()) {
    const int64_t a = lhs.integer_value();
    const int64_t b = rhs.integer_value();
    cmp = (a < b) ? -1 : (a > b) ? 1 : 0;
  } else {
    cmp = (lhs < rhs) ? -1 : (rhs < lhs) ? 1 : 0;
  }
  switch (op) {
    case ComparisonOp::kLess:
      return cmp < 0;
    case ComparisonOp::kLessEqual:
      return cmp <= 0;
    case ComparisonOp::kGreater:
      return cmp > 0;
    case ComparisonOp::kGreaterEqual:
      return cmp >= 0;
    case ComparisonOp::kEqual:
      return cmp == 0;
    case ComparisonOp::kNotEqual:
      return cmp != 0;
  }
  return false;
}

Literal Literal::Positive(Atom atom) {
  Literal lit;
  lit.kind_ = Kind::kPositiveAtom;
  lit.atom_ = std::move(atom);
  return lit;
}

Literal Literal::Negative(Atom atom) {
  Literal lit;
  lit.kind_ = Kind::kNegativeAtom;
  lit.atom_ = std::move(atom);
  return lit;
}

Literal Literal::Comparison(Term lhs, ComparisonOp op, Term rhs) {
  Literal lit;
  lit.kind_ = Kind::kComparison;
  lit.lhs_ = std::move(lhs);
  lit.rhs_ = std::move(rhs);
  lit.op_ = op;
  return lit;
}

void Literal::CollectVariables(std::vector<SymbolId>* out) const {
  if (is_atom()) {
    atom_.CollectVariables(out);
  } else {
    lhs_.CollectVariables(out);
    rhs_.CollectVariables(out);
  }
}

std::string Literal::ToString(const SymbolTable& symbols) const {
  switch (kind_) {
    case Kind::kPositiveAtom:
      return atom_.ToString(symbols);
    case Kind::kNegativeAtom:
      return "not " + atom_.ToString(symbols);
    case Kind::kComparison:
      return lhs_.ToString(symbols) + ComparisonOpToString(op_) +
             rhs_.ToString(symbols);
  }
  return "?";
}

bool operator==(const Literal& a, const Literal& b) {
  if (a.kind_ != b.kind_) return false;
  if (a.is_atom()) return a.atom_ == b.atom_;
  return a.op_ == b.op_ && a.lhs_ == b.lhs_ && a.rhs_ == b.rhs_;
}

}  // namespace streamasp
