#include "solve/solver.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <vector>

namespace streamasp {

namespace {

enum class Val : int8_t { kUnknown = 0, kTrue = 1, kFalse = 2 };

/// A normalized (non-disjunctive) rule: `head :- pos, not neg.` with
/// head == kNoHead encoding an integrity constraint.
struct NormalRule {
  static constexpr int32_t kNoHead = -1;
  int32_t head = kNoHead;
  std::vector<GroundAtomId> pos;
  std::vector<GroundAtomId> neg;
};

/// smodels-style search engine over a normalized program.
///
/// NOTE: solve/incremental_solver.cc mirrors this propagation/search core
/// over a persistent, delta-patched rule arena — fixes to the invariants
/// or derivation rules here must be applied there too (the differential
/// tests in tests/incremental_solver_test.cc compare the two).
///
/// Invariants maintained per rule:
///   body_unassigned_[r]  — body literals whose atom is still unknown,
///   body_false_[r]       — body literals currently false
///                          (positive literal with false atom, or negative
///                          literal with true atom),
/// and per atom:
///   active_count_[a]     — rules with head a whose body is not yet false.
///
/// Counters are updated eagerly in Assign/Unassign; consequences are
/// derived when an atom is popped from the propagation queue.
class SearchEngine {
 public:
  SearchEngine(const GroundProgram& program, const SolverOptions& options)
      : program_(program), options_(options) {
    Build();
  }

  Status Enumerate(std::vector<AnswerSet>* models) {
    models_ = models;
    // Root-level implications: facts and unsupported atoms.
    if (!InitialPropagationSeeds()) return OkStatus();
    return Search();
  }

 private:
  struct Occurrence {
    uint32_t rule;
    bool in_positive_body;
  };

  void Build() {
    num_atoms_ = program_.num_atoms();
    rules_.reserve(program_.rules().size());
    for (const GroundRule& rule : program_.rules()) {
      if (rule.head.size() <= 1) {
        NormalRule nr;
        nr.head = rule.head.empty() ? NormalRule::kNoHead
                                    : static_cast<int32_t>(rule.head[0]);
        nr.pos = rule.positive_body;
        nr.neg = rule.negative_body;
        rules_.push_back(std::move(nr));
      } else {
        // Shift the disjunction: a|b :- B  =>  a :- B, not b.  b :- B, not a.
        // Complete for head-cycle-free programs; every candidate is later
        // checked for minimality against the original program.
        has_disjunction_ = true;
        for (size_t i = 0; i < rule.head.size(); ++i) {
          NormalRule nr;
          nr.head = static_cast<int32_t>(rule.head[i]);
          nr.pos = rule.positive_body;
          nr.neg = rule.negative_body;
          for (size_t j = 0; j < rule.head.size(); ++j) {
            if (j != i) nr.neg.push_back(rule.head[j]);
          }
          rules_.push_back(std::move(nr));
        }
      }
    }

    value_.assign(num_atoms_, Val::kUnknown);
    occurrences_.assign(num_atoms_, {});
    head_rules_.assign(num_atoms_, {});
    active_count_.assign(num_atoms_, 0);
    body_unassigned_.assign(rules_.size(), 0);
    body_false_.assign(rules_.size(), 0);
    pos_occurrences_.assign(num_atoms_, {});

    // Pre-count the per-atom degrees so each occurrence list is allocated
    // exactly once instead of growing by repeated push_back reallocation
    // (the dominant Build cost on large ground programs).
    std::vector<uint32_t> occ_degree(num_atoms_, 0);
    std::vector<uint32_t> pos_degree(num_atoms_, 0);
    std::vector<uint32_t> head_degree(num_atoms_, 0);
    for (const NormalRule& rule : rules_) {
      for (GroundAtomId a : rule.pos) {
        ++occ_degree[a];
        ++pos_degree[a];
      }
      for (GroundAtomId a : rule.neg) ++occ_degree[a];
      if (rule.head != NormalRule::kNoHead) ++head_degree[rule.head];
    }
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      occurrences_[a].reserve(occ_degree[a]);
      pos_occurrences_[a].reserve(pos_degree[a]);
      head_rules_[a].reserve(head_degree[a]);
    }

    for (uint32_t r = 0; r < rules_.size(); ++r) {
      const NormalRule& rule = rules_[r];
      body_unassigned_[r] =
          static_cast<uint32_t>(rule.pos.size() + rule.neg.size());
      for (GroundAtomId a : rule.pos) {
        occurrences_[a].push_back(Occurrence{r, true});
        pos_occurrences_[a].push_back(r);
      }
      for (GroundAtomId a : rule.neg) {
        occurrences_[a].push_back(Occurrence{r, false});
      }
      if (rule.head != NormalRule::kNoHead) {
        head_rules_[rule.head].push_back(r);
        ++active_count_[rule.head];
      }
    }

    // Every atom enters the trail (and therefore the propagation queue)
    // at most once per assignment stack, so one num_atoms_-sized block
    // each removes all growth reallocations during search.
    trail_.reserve(num_atoms_);
    queue_.reserve(num_atoms_);
  }

  // ---------------------------------------------------------------------
  // Assignment and trail.

  bool Assign(GroundAtomId atom, Val v) {
    assert(v != Val::kUnknown);
    if (value_[atom] != Val::kUnknown) return value_[atom] == v;
    value_[atom] = v;
    trail_.push_back(atom);
    for (const Occurrence& occ : occurrences_[atom]) {
      --body_unassigned_[occ.rule];
      const bool literal_false =
          occ.in_positive_body ? (v == Val::kFalse) : (v == Val::kTrue);
      if (literal_false) {
        if (++body_false_[occ.rule] == 1) {
          const int32_t h = rules_[occ.rule].head;
          if (h != NormalRule::kNoHead) --active_count_[h];
        }
      }
    }
    queue_.push_back(atom);
    return true;
  }

  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      const GroundAtomId atom = trail_.back();
      trail_.pop_back();
      const Val v = value_[atom];
      for (const Occurrence& occ : occurrences_[atom]) {
        ++body_unassigned_[occ.rule];
        const bool literal_false =
            occ.in_positive_body ? (v == Val::kFalse) : (v == Val::kTrue);
        if (literal_false) {
          if (body_false_[occ.rule]-- == 1) {
            const int32_t h = rules_[occ.rule].head;
            if (h != NormalRule::kNoHead) ++active_count_[h];
          }
        }
      }
      value_[atom] = Val::kUnknown;
    }
    queue_.clear();
    queue_head_ = 0;
  }

  // ---------------------------------------------------------------------
  // Propagation ("atleast").

  /// Forces every body literal of `r` true. Returns false on conflict.
  bool ForceBodyTrue(uint32_t r) {
    for (GroundAtomId a : rules_[r].pos) {
      if (!Assign(a, Val::kTrue)) return false;
    }
    for (GroundAtomId a : rules_[r].neg) {
      if (!Assign(a, Val::kFalse)) return false;
    }
    return true;
  }

  /// Falsifies the single unassigned body literal of `r`. Returns false on
  /// conflict.
  bool FalsifyLastLiteral(uint32_t r) {
    for (GroundAtomId a : rules_[r].pos) {
      if (value_[a] == Val::kUnknown) return Assign(a, Val::kFalse);
    }
    for (GroundAtomId a : rules_[r].neg) {
      if (value_[a] == Val::kUnknown) return Assign(a, Val::kTrue);
    }
    assert(false && "no unassigned literal to falsify");
    return true;
  }

  /// The unique rule with head `h` whose body is not false. Requires
  /// active_count_[h] == 1.
  uint32_t SingleActiveRule(GroundAtomId h) const {
    for (uint32_t r : head_rules_[h]) {
      if (body_false_[r] == 0) return r;
    }
    assert(false && "active_count out of sync");
    return 0;
  }

  /// Derives consequences of a rule's current state. Returns false on
  /// conflict.
  bool ExamineRule(uint32_t r) {
    const NormalRule& rule = rules_[r];
    if (body_false_[r] == 0) {
      if (body_unassigned_[r] == 0) {
        // Body fully true: fire.
        if (rule.head == NormalRule::kNoHead) return false;
        if (!Assign(static_cast<GroundAtomId>(rule.head), Val::kTrue)) {
          return false;
        }
      } else if (body_unassigned_[r] == 1) {
        const bool head_false =
            rule.head == NormalRule::kNoHead ||
            value_[rule.head] == Val::kFalse;
        if (head_false && !FalsifyLastLiteral(r)) return false;
      }
      // Head true with this as the single active rule: body must hold.
      if (rule.head != NormalRule::kNoHead &&
          value_[rule.head] == Val::kTrue &&
          active_count_[rule.head] == 1 && !ForceBodyTrue(r)) {
        return false;
      }
    } else {
      // Rule deactivated: its head may have lost support.
      const int32_t h = rule.head;
      if (h != NormalRule::kNoHead) {
        if (active_count_[h] == 0) {
          if (!Assign(static_cast<GroundAtomId>(h), Val::kFalse)) {
            return false;
          }
        } else if (active_count_[h] == 1 && value_[h] == Val::kTrue) {
          if (!ForceBodyTrue(SingleActiveRule(h))) return false;
        }
      }
    }
    return true;
  }

  bool Propagate() {
    while (queue_head_ < queue_.size()) {
      const GroundAtomId atom = queue_[queue_head_++];
      const Val v = value_[atom];
      for (const Occurrence& occ : occurrences_[atom]) {
        if (!ExamineRule(occ.rule)) return false;
      }
      if (v == Val::kFalse) {
        for (uint32_t r : head_rules_[atom]) {
          if (body_false_[r] != 0) continue;
          if (body_unassigned_[r] == 0) return false;  // Body true, head false.
          if (body_unassigned_[r] == 1 && !FalsifyLastLiteral(r)) {
            return false;
          }
        }
      } else {  // kTrue
        if (active_count_[atom] == 0) return false;  // True without support.
        if (active_count_[atom] == 1 &&
            !ForceBodyTrue(SingleActiveRule(atom))) {
          return false;
        }
      }
    }
    return true;
  }

  // ---------------------------------------------------------------------
  // Unfounded-set falsification ("atmost").

  /// Computes the atoms with well-founded external support given the
  /// current assignment, and falsifies the rest. Returns false on conflict
  /// (a true atom turned out unfounded). Sets *progress when it assigned
  /// anything.
  bool FalsifyUnfounded(bool* progress) {
    supported_.assign(num_atoms_, false);
    unsupported_pos_.assign(rules_.size(), 0);
    std::deque<GroundAtomId> ready;

    auto mark_supported = [&](GroundAtomId a) {
      if (!supported_[a]) {
        supported_[a] = true;
        ready.push_back(a);
      }
    };

    for (uint32_t r = 0; r < rules_.size(); ++r) {
      if (body_false_[r] != 0 || rules_[r].head == NormalRule::kNoHead) {
        continue;
      }
      unsupported_pos_[r] = static_cast<uint32_t>(rules_[r].pos.size());
      if (unsupported_pos_[r] == 0) {
        mark_supported(static_cast<GroundAtomId>(rules_[r].head));
      }
    }
    while (!ready.empty()) {
      const GroundAtomId a = ready.front();
      ready.pop_front();
      for (uint32_t r : pos_occurrences_[a]) {
        if (body_false_[r] != 0 || rules_[r].head == NormalRule::kNoHead) {
          continue;
        }
        if (--unsupported_pos_[r] == 0) {
          mark_supported(static_cast<GroundAtomId>(rules_[r].head));
        }
      }
    }

    *progress = false;
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      if (supported_[a] || value_[a] == Val::kFalse) continue;
      // `a` is unfounded: no rule chain can ever support it.
      if (!Assign(a, Val::kFalse)) return false;
      *progress = true;
    }
    return true;
  }

  /// Propagation and unfounded-set falsification to mutual fixpoint.
  bool Expand() {
    for (;;) {
      if (!Propagate()) return false;
      bool progress = false;
      if (!FalsifyUnfounded(&progress)) return false;
      if (!progress) return true;
    }
  }

  // ---------------------------------------------------------------------
  // Search.

  bool InitialPropagationSeeds() {
    // Empty-body rules fire unconditionally; atoms with no potentially
    // supporting rule are false (Clark-completion direction, valid under
    // stable semantics).
    for (uint32_t r = 0; r < rules_.size(); ++r) {
      if (body_unassigned_[r] == 0 && body_false_[r] == 0) {
        if (rules_[r].head == NormalRule::kNoHead) return false;
        if (!Assign(static_cast<GroundAtomId>(rules_[r].head), Val::kTrue)) {
          return false;
        }
      }
    }
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      if (value_[a] == Val::kUnknown && active_count_[a] == 0) {
        if (!Assign(a, Val::kFalse)) return false;
      }
    }
    return true;
  }

  GroundAtomId PickUnassigned() const {
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      if (value_[a] == Val::kUnknown) return a;
    }
    return kInvalidGroundAtom;
  }

  bool ReachedModelCap() const {
    return options_.max_models != 0 && models_->size() >= options_.max_models;
  }

  void RecordModel() {
    AnswerSet model;
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      if (value_[a] == Val::kTrue) model.atoms.push_back(a);
    }
    // Shifted disjunctive candidates must pass the exact minimality check;
    // for normal programs the check is optional verification.
    if (has_disjunction_ || options_.verify_models) {
      if (!IsStableModel(program_, model.atoms)) return;
    }
    models_->push_back(std::move(model));
  }

  Status Search() {
    const size_t entry_mark = trail_.size();
    Status status = OkStatus();
    if (Expand()) {
      const GroundAtomId atom = PickUnassigned();
      if (atom == kInvalidGroundAtom) {
        RecordModel();
      } else {
        ++decisions_;
        if (options_.max_decisions != 0 &&
            decisions_ > options_.max_decisions) {
          status = ResourceExhaustedError(
              "decision limit exceeded (" +
              std::to_string(options_.max_decisions) + ")");
        } else {
          for (const Val v : {Val::kTrue, Val::kFalse}) {
            const size_t mark = trail_.size();
            Assign(atom, v);  // Atom is unassigned; cannot conflict here.
            status = Search();
            UndoTo(mark);
            if (!status.ok() || ReachedModelCap()) break;
          }
        }
      }
    }
    UndoTo(entry_mark);
    return status;
  }

  const GroundProgram& program_;
  const SolverOptions& options_;

  size_t num_atoms_ = 0;
  std::vector<NormalRule> rules_;
  bool has_disjunction_ = false;

  std::vector<Val> value_;
  std::vector<std::vector<Occurrence>> occurrences_;
  std::vector<std::vector<uint32_t>> pos_occurrences_;
  std::vector<std::vector<uint32_t>> head_rules_;
  std::vector<uint32_t> active_count_;
  std::vector<uint32_t> body_unassigned_;
  std::vector<uint32_t> body_false_;

  std::vector<GroundAtomId> trail_;
  /// Flat FIFO: [queue_head_, queue_.size()) is the pending segment.
  /// Reserved once in Build, so propagation never reallocates.
  std::vector<GroundAtomId> queue_;
  size_t queue_head_ = 0;

  // Scratch space for FalsifyUnfounded.
  std::vector<bool> supported_;
  std::vector<uint32_t> unsupported_pos_;

  std::vector<AnswerSet>* models_ = nullptr;
  size_t decisions_ = 0;
};

/// Least model of the definite program given by `rules` (head + positive
/// body only; negative bodies must have been resolved by the caller).
/// Rules with head kNoHead are ignored. Only rules whose index satisfies
/// `enabled` participate.
std::vector<bool> LeastModel(const GroundProgram& program,
                             const std::vector<bool>& rule_enabled) {
  const size_t num_atoms = program.num_atoms();
  const auto& rules = program.rules();
  std::vector<bool> truth(num_atoms, false);
  std::vector<uint32_t> missing(rules.size(), 0);
  std::vector<std::vector<uint32_t>> pos_occ(num_atoms);
  std::deque<GroundAtomId> queue;

  for (uint32_t r = 0; r < rules.size(); ++r) {
    if (!rule_enabled[r] || rules[r].head.size() != 1) continue;
    missing[r] = static_cast<uint32_t>(rules[r].positive_body.size());
    for (GroundAtomId a : rules[r].positive_body) {
      pos_occ[a].push_back(r);
    }
    if (missing[r] == 0 && !truth[rules[r].head[0]]) {
      truth[rules[r].head[0]] = true;
      queue.push_back(rules[r].head[0]);
    }
  }
  while (!queue.empty()) {
    const GroundAtomId a = queue.front();
    queue.pop_front();
    for (uint32_t r : pos_occ[a]) {
      if (--missing[r] == 0) {
        const GroundAtomId h = rules[r].head[0];
        if (!truth[h]) {
          truth[h] = true;
          queue.push_back(h);
        }
      }
    }
  }
  return truth;
}

/// Searches for a model M' of the (disjunctive, definite) reduct that is a
/// proper subset of `model`. Atoms outside `model` are fixed false.
/// Exponential in |model| in the worst case; only reached for disjunctive
/// programs.
class ProperSubmodelSearch {
 public:
  ProperSubmodelSearch(const GroundProgram& program,
                       const std::vector<bool>& rule_enabled,
                       const std::vector<GroundAtomId>& model)
      : program_(program), rule_enabled_(rule_enabled), model_(model) {}

  bool Exists() {
    // Assignment over the atoms of `model` only (indexes into model_).
    assignment_.assign(model_.size(), Val::kUnknown);
    index_of_.assign(program_.num_atoms(), -1);
    for (size_t i = 0; i < model_.size(); ++i) {
      index_of_[model_[i]] = static_cast<int32_t>(i);
    }
    return Rec(0);
  }

 private:
  bool SatisfiesAllRulesIfComplete() {
    // All atoms decided; check every enabled reduct rule: positive body
    // within M' implies some head atom in M'.
    for (uint32_t r = 0; r < program_.rules().size(); ++r) {
      if (!rule_enabled_[r]) continue;
      const GroundRule& rule = program_.rules()[r];
      bool body_holds = true;
      for (GroundAtomId a : rule.positive_body) {
        const int32_t i = index_of_[a];
        if (i < 0 || assignment_[i] != Val::kTrue) {
          body_holds = false;
          break;
        }
      }
      if (!body_holds) continue;
      bool head_holds = false;
      for (GroundAtomId h : rule.head) {
        const int32_t i = index_of_[h];
        if (i >= 0 && assignment_[i] == Val::kTrue) {
          head_holds = true;
          break;
        }
      }
      if (!head_holds) return false;  // Constraint or unsatisfied head.
    }
    return true;
  }

  bool Rec(size_t next) {
    if (next == model_.size()) {
      bool proper = false;
      for (Val v : assignment_) {
        if (v == Val::kFalse) {
          proper = true;
          break;
        }
      }
      return proper && SatisfiesAllRulesIfComplete();
    }
    // Prefer false — we are hunting for a smaller model.
    assignment_[next] = Val::kFalse;
    if (Rec(next + 1)) return true;
    assignment_[next] = Val::kTrue;
    if (Rec(next + 1)) return true;
    assignment_[next] = Val::kUnknown;
    return false;
  }

  const GroundProgram& program_;
  const std::vector<bool>& rule_enabled_;
  const std::vector<GroundAtomId>& model_;
  std::vector<Val> assignment_;
  std::vector<int32_t> index_of_;
};

}  // namespace

bool AnswerSet::Contains(GroundAtomId id) const {
  return std::binary_search(atoms.begin(), atoms.end(), id);
}

bool IsStableModel(const GroundProgram& program,
                   const std::vector<GroundAtomId>& model) {
  assert(std::is_sorted(model.begin(), model.end()));
  const size_t num_atoms = program.num_atoms();
  std::vector<bool> in_model(num_atoms, false);
  for (GroundAtomId a : model) {
    if (a >= num_atoms) return false;
    in_model[a] = true;
  }

  // 1. M must satisfy every rule of the original program.
  const auto& rules = program.rules();
  std::vector<bool> rule_in_reduct(rules.size(), false);
  bool disjunctive_reduct = false;
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const GroundRule& rule = rules[r];
    bool neg_blocked = false;
    for (GroundAtomId a : rule.negative_body) {
      if (in_model[a]) {
        neg_blocked = true;
        break;
      }
    }
    bool pos_holds = true;
    for (GroundAtomId a : rule.positive_body) {
      if (!in_model[a]) {
        pos_holds = false;
        break;
      }
    }
    if (!neg_blocked) {
      rule_in_reduct[r] = true;
      if (rule.head.size() > 1) disjunctive_reduct = true;
    }
    const bool body_true = pos_holds && !neg_blocked;
    if (body_true) {
      bool head_true = false;
      for (GroundAtomId h : rule.head) {
        if (in_model[h]) {
          head_true = true;
          break;
        }
      }
      if (!head_true) return false;  // Unsatisfied rule or constraint.
    }
  }

  // 2. M must be a minimal model of the reduct.
  if (!disjunctive_reduct) {
    const std::vector<bool> least = LeastModel(program, rule_in_reduct);
    for (GroundAtomId a = 0; a < num_atoms; ++a) {
      if (least[a] != in_model[a]) return false;
    }
    return true;
  }
  ProperSubmodelSearch search(program, rule_in_reduct, model);
  return !search.Exists();
}

StatusOr<std::vector<AnswerSet>> Solver::Solve(
    const GroundProgram& program) const {
  std::vector<AnswerSet> models;
  SearchEngine engine(program, options_);
  STREAMASP_RETURN_IF_ERROR(engine.Enumerate(&models));
  return models;
}

}  // namespace streamasp
