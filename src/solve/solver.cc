#include "solve/solver.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <utility>
#include <vector>

#include "solve/propagation_core.h"

namespace streamasp {

namespace {

enum class Val : int8_t { kUnknown = 0, kTrue = 1, kFalse = 2 };

/// Normalizes `program` for the shared propagation core: disjunctive
/// heads are shifted (a|b :- B  =>  a :- B, not b.  b :- B, not a.),
/// which is complete for head-cycle-free programs; every candidate of a
/// shifted program is later checked for minimality against the original
/// program. Sets *has_disjunction when any rule was shifted.
std::vector<PropagationCore::CoreRule> NormalizeRules(
    const GroundProgram& program, bool* has_disjunction) {
  std::vector<PropagationCore::CoreRule> rules;
  rules.reserve(program.rules().size());
  *has_disjunction = false;
  for (const GroundRule& rule : program.rules()) {
    if (rule.head.size() <= 1) {
      PropagationCore::CoreRule nr;
      nr.head = rule.head.empty()
                    ? PropagationCore::CoreRule::kNoHead
                    : static_cast<int32_t>(rule.head[0]);
      nr.pos = rule.positive_body;
      nr.neg = rule.negative_body;
      rules.push_back(std::move(nr));
    } else {
      *has_disjunction = true;
      for (size_t i = 0; i < rule.head.size(); ++i) {
        PropagationCore::CoreRule nr;
        nr.head = static_cast<int32_t>(rule.head[i]);
        nr.pos = rule.positive_body;
        nr.neg = rule.negative_body;
        for (size_t j = 0; j < rule.head.size(); ++j) {
          if (j != i) nr.neg.push_back(rule.head[j]);
        }
        rules.push_back(std::move(nr));
      }
    }
  }
  return rules;
}

/// The cold solve's enumeration policy: no sign guidance, and candidate
/// models verify against the *original* program (shifted disjunctive
/// candidates must pass the exact minimality check; for normal programs
/// the check is optional verification per SolverOptions::verify_models).
struct ColdSolveClient {
  const GroundProgram& program;
  bool check_models;

  bool AcceptModel(const std::vector<GroundAtomId>& atoms) const {
    return !check_models || IsStableModel(program, atoms);
  }
  PropagationCore::Val FirstSign(GroundAtomId) const {
    return PropagationCore::Val::kTrue;
  }
};

/// Least model of the definite program given by `rules` (head + positive
/// body only; negative bodies must have been resolved by the caller).
/// Rules with head kNoHead are ignored. Only rules whose index satisfies
/// `enabled` participate.
std::vector<bool> LeastModel(const GroundProgram& program,
                             const std::vector<bool>& rule_enabled) {
  const size_t num_atoms = program.num_atoms();
  const auto& rules = program.rules();
  std::vector<bool> truth(num_atoms, false);
  std::vector<uint32_t> missing(rules.size(), 0);
  std::vector<std::vector<uint32_t>> pos_occ(num_atoms);
  std::deque<GroundAtomId> queue;

  for (uint32_t r = 0; r < rules.size(); ++r) {
    if (!rule_enabled[r] || rules[r].head.size() != 1) continue;
    missing[r] = static_cast<uint32_t>(rules[r].positive_body.size());
    for (GroundAtomId a : rules[r].positive_body) {
      pos_occ[a].push_back(r);
    }
    if (missing[r] == 0 && !truth[rules[r].head[0]]) {
      truth[rules[r].head[0]] = true;
      queue.push_back(rules[r].head[0]);
    }
  }
  while (!queue.empty()) {
    const GroundAtomId a = queue.front();
    queue.pop_front();
    for (uint32_t r : pos_occ[a]) {
      if (--missing[r] == 0) {
        const GroundAtomId h = rules[r].head[0];
        if (!truth[h]) {
          truth[h] = true;
          queue.push_back(h);
        }
      }
    }
  }
  return truth;
}

/// Searches for a model M' of the (disjunctive, definite) reduct that is a
/// proper subset of `model`. Atoms outside `model` are fixed false.
/// Exponential in |model| in the worst case; only reached for disjunctive
/// programs.
class ProperSubmodelSearch {
 public:
  ProperSubmodelSearch(const GroundProgram& program,
                       const std::vector<bool>& rule_enabled,
                       const std::vector<GroundAtomId>& model)
      : program_(program), rule_enabled_(rule_enabled), model_(model) {}

  bool Exists() {
    // Assignment over the atoms of `model` only (indexes into model_).
    assignment_.assign(model_.size(), Val::kUnknown);
    index_of_.assign(program_.num_atoms(), -1);
    for (size_t i = 0; i < model_.size(); ++i) {
      index_of_[model_[i]] = static_cast<int32_t>(i);
    }
    return Rec(0);
  }

 private:
  bool SatisfiesAllRulesIfComplete() {
    // All atoms decided; check every enabled reduct rule: positive body
    // within M' implies some head atom in M'.
    for (uint32_t r = 0; r < program_.rules().size(); ++r) {
      if (!rule_enabled_[r]) continue;
      const GroundRule& rule = program_.rules()[r];
      bool body_holds = true;
      for (GroundAtomId a : rule.positive_body) {
        const int32_t i = index_of_[a];
        if (i < 0 || assignment_[i] != Val::kTrue) {
          body_holds = false;
          break;
        }
      }
      if (!body_holds) continue;
      bool head_holds = false;
      for (GroundAtomId h : rule.head) {
        const int32_t i = index_of_[h];
        if (i >= 0 && assignment_[i] == Val::kTrue) {
          head_holds = true;
          break;
        }
      }
      if (!head_holds) return false;  // Constraint or unsatisfied head.
    }
    return true;
  }

  bool Rec(size_t next) {
    if (next == model_.size()) {
      bool proper = false;
      for (Val v : assignment_) {
        if (v == Val::kFalse) {
          proper = true;
          break;
        }
      }
      return proper && SatisfiesAllRulesIfComplete();
    }
    // Prefer false — we are hunting for a smaller model.
    assignment_[next] = Val::kFalse;
    if (Rec(next + 1)) return true;
    assignment_[next] = Val::kTrue;
    if (Rec(next + 1)) return true;
    assignment_[next] = Val::kUnknown;
    return false;
  }

  const GroundProgram& program_;
  const std::vector<bool>& rule_enabled_;
  const std::vector<GroundAtomId>& model_;
  std::vector<Val> assignment_;
  std::vector<int32_t> index_of_;
};

}  // namespace

bool AnswerSet::Contains(GroundAtomId id) const {
  return std::binary_search(atoms.begin(), atoms.end(), id);
}

bool IsStableModel(const GroundProgram& program,
                   const std::vector<GroundAtomId>& model) {
  assert(std::is_sorted(model.begin(), model.end()));
  const size_t num_atoms = program.num_atoms();
  std::vector<bool> in_model(num_atoms, false);
  for (GroundAtomId a : model) {
    if (a >= num_atoms) return false;
    in_model[a] = true;
  }

  // 1. M must satisfy every rule of the original program.
  const auto& rules = program.rules();
  std::vector<bool> rule_in_reduct(rules.size(), false);
  bool disjunctive_reduct = false;
  for (uint32_t r = 0; r < rules.size(); ++r) {
    const GroundRule& rule = rules[r];
    bool neg_blocked = false;
    for (GroundAtomId a : rule.negative_body) {
      if (in_model[a]) {
        neg_blocked = true;
        break;
      }
    }
    bool pos_holds = true;
    for (GroundAtomId a : rule.positive_body) {
      if (!in_model[a]) {
        pos_holds = false;
        break;
      }
    }
    if (!neg_blocked) {
      rule_in_reduct[r] = true;
      if (rule.head.size() > 1) disjunctive_reduct = true;
    }
    const bool body_true = pos_holds && !neg_blocked;
    if (body_true) {
      bool head_true = false;
      for (GroundAtomId h : rule.head) {
        if (in_model[h]) {
          head_true = true;
          break;
        }
      }
      if (!head_true) return false;  // Unsatisfied rule or constraint.
    }
  }

  // 2. M must be a minimal model of the reduct.
  if (!disjunctive_reduct) {
    const std::vector<bool> least = LeastModel(program, rule_in_reduct);
    for (GroundAtomId a = 0; a < num_atoms; ++a) {
      if (least[a] != in_model[a]) return false;
    }
    return true;
  }
  ProperSubmodelSearch search(program, rule_in_reduct, model);
  return !search.Exists();
}

StatusOr<std::vector<AnswerSet>> Solver::Solve(
    const GroundProgram& program) const {
  bool has_disjunction = false;
  std::vector<PropagationCore::CoreRule> rules =
      NormalizeRules(program, &has_disjunction);

  PropagationCore core;
  core.BuildFromRules(std::move(rules), program.num_atoms());

  ColdSolveClient client{program,
                         has_disjunction || options_.verify_models};
  std::vector<AnswerSet> models;
  STREAMASP_RETURN_IF_ERROR(core.Enumerate(options_, client, &models));
  return models;
}

}  // namespace streamasp
