#include "solve/incremental_solver.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "solve/propagation_core.h"

namespace streamasp {

namespace {

constexpr uint32_t kNoRule = static_cast<uint32_t>(-1);
/// rule_origin_ tag for window-fact rules (not mirrored from the store).
constexpr uint32_t kWindowFact = static_cast<uint32_t>(-1);

}  // namespace

/// The persistent engine: the shared PropagationCore in its patched-arena
/// shape (rules and occurrence lists live across SolveWindow calls and
/// are patched by GroundingDelta replay; removal swap-compacts the rule
/// arrays the same way the grounder compacts its store), plus the
/// store-slot/window-fact mirroring and warm-start bookkeeping that only
/// make sense for a persistent engine:
///   * rule_origin_/store_to_rule_ keep rule indices aligned with store
///     slots through the grounder's exact swap-compaction order;
///   * window facts are first-class rules (one per distinct fact atom,
///     tracked in fact_rule_of_/fact_count_), so propagation and the
///     unfounded-set pass need no special fact handling;
///   * the previous window's model orders decision signs (guidance) and,
///     for the definite fragment, the model itself is *maintained* across
///     windows by the core's justification tracking — see SolveMaintained
///     and ARCHITECTURE.md "Delta-sized model maintenance".
class IncrementalSolver::Engine {
 public:
  explicit Engine(SolverOptions options) : options_(options) {}

  Status SolveWindow(const GroundingDelta& delta,
                     const std::vector<GroundRule>& store, size_t num_atoms,
                     std::vector<AnswerSet>* models);

  void Invalidate() {
    valid_ = false;
    core_.InvalidateMaintained();
  }
  bool valid() const { return valid_; }
  const SolverStats& call_stats() const { return call_stats_; }

 private:
  using CoreRule = PropagationCore::CoreRule;
  using Val = PropagationCore::Val;

  /// Enumeration policy for the persistent engine: guided sign ordering
  /// (explore the branch that agrees with the previous window's model
  /// first, so a barely changed window walks straight to its model) and
  /// model verification through the core's persistent scratch buffers.
  struct GuidedClient {
    Engine* engine;

    bool AcceptModel(const std::vector<GroundAtomId>& atoms) const {
      return !engine->options_.verify_models ||
             engine->core_.VerifyStable(atoms);
    }
    Val FirstSign(GroundAtomId atom) const {
      if (engine->guide_ && !engine->prev_model_[atom]) return Val::kFalse;
      return Val::kTrue;
    }
  };

  // --- mirror maintenance ----------------------------------------------

  void Reset();
  void EnsureAtomCapacity(size_t num_atoms);
  Status AddRule(const GroundRule& rule, uint32_t origin);
  void AddFactRule(GroundAtomId atom);
  void RemoveRule(uint32_t index);
  Status ApplyFactDelta(
      const std::vector<std::pair<GroundAtomId, int64_t>>& fact_delta,
      bool rebuild);

  // --- solving ----------------------------------------------------------

  Status Enumerate(std::vector<AnswerSet>* models);

  /// Delta-sized maintained fixpoint for the definite fragment: commit
  /// the window's patch into the core's justification-tracked model (or
  /// rebuild it after an invalidation) instead of recomputing the
  /// assignment from scratch. Returns false when verification rejects a
  /// rebuilt closure (never expected), in which case the caller falls
  /// back to the full search.
  bool SolveMaintained(std::vector<AnswerSet>* models);

  /// Definite fast path without model maintenance (maintain_fixpoint
  /// off): one support-closure pass computes the unique stable model —
  /// the least model — and VerifyStable still checks it from first
  /// principles. Returns false when verification rejects the closure
  /// (never expected), in which case the caller falls back to the full
  /// search.
  bool SolveDefinite(std::vector<AnswerSet>* models);

  SolverOptions options_;
  SolverStats call_stats_;

  PropagationCore core_;

  bool valid_ = false;
  /// Sequence of the last applied delta; incremental deltas must chain
  /// from it (catches double-application even when the rule delta is
  /// empty and the size checks hold trivially).
  uint64_t last_sequence_ = 0;

  /// Per rule: owning store slot, or kWindowFact for fact rules.
  std::vector<uint32_t> rule_origin_;
  /// Store slot -> rule index; size tracks the mirrored store exactly.
  std::vector<uint32_t> store_to_rule_;
  /// Per atom: its window-fact rule (kNoRule when the atom is not a
  /// current window fact) and the fact's multiplicity.
  std::vector<uint32_t> fact_rule_of_;
  std::vector<uint32_t> fact_count_;

  /// Membership vector of the previous window's first model, used to
  /// order decision signs; meaningless unless has_prev_model_.
  std::vector<uint8_t> prev_model_;
  bool has_prev_model_ = false;
  bool guide_ = false;
};

// ---------------------------------------------------------------------------
// Mirror maintenance.

void IncrementalSolver::Engine::Reset() {
  core_.Reset();
  rule_origin_.clear();
  store_to_rule_.clear();
  fact_rule_of_.clear();
  fact_count_.clear();
  prev_model_.clear();
  has_prev_model_ = false;
}

void IncrementalSolver::Engine::EnsureAtomCapacity(size_t num_atoms) {
  if (num_atoms <= core_.num_atoms()) return;
  fact_rule_of_.resize(num_atoms, kNoRule);
  fact_count_.resize(num_atoms, 0);
  prev_model_.resize(num_atoms, 0);
  core_.EnsureAtomCapacity(num_atoms);
}

Status IncrementalSolver::Engine::AddRule(const GroundRule& rule,
                                          uint32_t origin) {
  if (rule.head.size() > 1) {
    return InvalidArgumentError(
        "incremental solving supports normal (non-disjunctive) programs "
        "only; route disjunctive programs through the cold solver");
  }
  CoreRule nr;
  nr.head = rule.head.empty() ? CoreRule::kNoHead
                              : static_cast<int32_t>(rule.head[0]);
  nr.pos = rule.positive_body;
  nr.neg = rule.negative_body;
  core_.AddRule(std::move(nr));
  rule_origin_.push_back(origin);
  ++call_stats_.rules_new;
  return OkStatus();
}

void IncrementalSolver::Engine::AddFactRule(GroundAtomId atom) {
  assert(fact_rule_of_[atom] == kNoRule);
  CoreRule nr;
  nr.head = static_cast<int32_t>(atom);
  const uint32_t r = core_.AddRule(std::move(nr));
  rule_origin_.push_back(kWindowFact);
  fact_rule_of_[atom] = r;
  ++call_stats_.rules_new;
}

void IncrementalSolver::Engine::RemoveRule(uint32_t index) {
  core_.RemoveRule(index);
  ++call_stats_.rules_retracted;

  // Mirror the core's swap-compaction on the origin bookkeeping: the old
  // last rule (if any) moved into `index`.
  const uint32_t last = static_cast<uint32_t>(rule_origin_.size() - 1);
  if (index != last) {
    const uint32_t origin = rule_origin_[last];
    rule_origin_[index] = origin;
    if (origin == kWindowFact) {
      fact_rule_of_[core_.rule(index).head] = index;
    } else {
      store_to_rule_[origin] = index;
    }
  }
  rule_origin_.pop_back();
}

Status IncrementalSolver::Engine::ApplyFactDelta(
    const std::vector<std::pair<GroundAtomId, int64_t>>& fact_delta,
    bool rebuild) {
  for (const auto& [atom, change] : fact_delta) {
    if (atom >= core_.num_atoms()) {
      return FailedPreconditionError(
          "fact delta names an atom beyond the mirrored table");
    }
    if (change > 0) {
      if (fact_count_[atom] == 0) AddFactRule(atom);
      fact_count_[atom] += static_cast<uint32_t>(change);
    } else if (change < 0) {
      if (rebuild) {
        return FailedPreconditionError(
            "full_rebuild delta cannot expire facts");
      }
      const uint32_t drop = static_cast<uint32_t>(-change);
      if (fact_count_[atom] < drop) {
        return FailedPreconditionError(
            "fact delta expires more copies than the mirror holds");
      }
      fact_count_[atom] -= drop;
      if (fact_count_[atom] == 0) {
        const uint32_t rule = fact_rule_of_[atom];
        fact_rule_of_[atom] = kNoRule;
        RemoveRule(rule);
      }
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Solving.

Status IncrementalSolver::Engine::Enumerate(std::vector<AnswerSet>* models) {
  if (core_.definite()) {
    if (options_.maintain_fixpoint) {
      if (SolveMaintained(models)) return OkStatus();
    } else if (SolveDefinite(models)) {
      return OkStatus();
    }
  }
  // Full propagation/search machinery: the whole assignment is recomputed.
  core_.InvalidateMaintained();
  if (guide_) ++call_stats_.warm_start_hits;
  call_stats_.atoms_touched += core_.num_atoms();
  GuidedClient client{this};
  return core_.Enumerate(options_, client, models);
}

bool IncrementalSolver::Engine::SolveMaintained(
    std::vector<AnswerSet>* models) {
  AnswerSet model;
  if (core_.maintained_valid()) {
    // The steady state: commit the patch's seed lists — retraction
    // cascades only through the broken justification subtree, insertion
    // propagates forward semi-naive — and read the model back. Every
    // assignment outside the touched cone is reused verbatim, which is
    // exactly why this window skips the O(program) closure and
    // verification passes (the rebuild windows below still verify, and
    // debug builds re-check every maintained window).
    const size_t touched = core_.CommitMaintainedPatch();
    core_.AppendMaintainedModel(&model.atoms);
    ++call_stats_.fixpoint_maintained_windows;
    call_stats_.atoms_touched += touched;
    const size_t live = core_.num_atoms();
    call_stats_.assignments_reused += live - std::min(touched, live);
    assert(core_.VerifyStable(model.atoms) &&
           "maintained fixpoint diverged from the stable model");
  } else {
    core_.RebuildMaintainedModel();
    core_.AppendMaintainedModel(&model.atoms);
    call_stats_.atoms_touched += core_.num_atoms();
    if (options_.verify_models && !core_.VerifyStable(model.atoms)) {
      core_.InvalidateMaintained();
      return false;
    }
  }
  models->push_back(std::move(model));
  return true;
}

bool IncrementalSolver::Engine::SolveDefinite(
    std::vector<AnswerSet>* models) {
  // Well-founded supported closure of the facts. Between windows the
  // mirror is at rest (no assignments, body_false_ all zero), so the
  // closure's body_false_ filter admits every live rule and the result
  // is exactly the least model; over-retained positive cycles cannot
  // self-support and correctly stay out of it.
  core_.ComputeSupportClosure();
  call_stats_.atoms_touched += core_.num_atoms();

  AnswerSet model;
  const std::vector<uint8_t>& supported = core_.supported();
  for (GroundAtomId a = 0; a < core_.num_atoms(); ++a) {
    if (supported[a]) model.atoms.push_back(a);
  }
  if (options_.verify_models && !core_.VerifyStable(model.atoms)) {
    return false;
  }
  models->push_back(std::move(model));
  return true;
}

// ---------------------------------------------------------------------------
// Window entry point.

Status IncrementalSolver::Engine::SolveWindow(
    const GroundingDelta& delta, const std::vector<GroundRule>& store,
    size_t num_atoms, std::vector<AnswerSet>* models) {
  call_stats_ = SolverStats{};
  models->clear();

  if (delta.full_rebuild) {
    Reset();
    EnsureAtomCapacity(num_atoms);
    ++call_stats_.solve_rebuilds;
    store_to_rule_.reserve(store.size());
    for (uint32_t s = 0; s < store.size(); ++s) {
      store_to_rule_.push_back(static_cast<uint32_t>(core_.num_rules()));
      const Status status = AddRule(store[s], s);
      if (!status.ok()) {
        valid_ = false;
        return status;
      }
    }
    const Status status = ApplyFactDelta(delta.fact_delta, /*rebuild=*/true);
    if (!status.ok()) {
      valid_ = false;
      return status;
    }
  } else {
    if (!valid_) {
      return FailedPreconditionError(
          "incremental delta against an invalid solver mirror");
    }
    if (store_to_rule_.size() != delta.store_size_before ||
        num_atoms < core_.num_atoms() ||
        delta.previous_sequence != last_sequence_) {
      Invalidate();
      return FailedPreconditionError(
          "solver mirror out of sync with the grounder store");
    }
    if (delta.resynced) {
      // The grounder recovered this delta by snapshot diff (eviction gap
      // or hint-chain break). The replay itself is exact, but the
      // maintained model's incremental trust chain is deliberately reset
      // here rather than relying on downstream desync detection; the next
      // maintained window pays one O(program) rebuild, counted as a
      // solve rebuild.
      if (core_.maintained_valid()) {
        core_.InvalidateMaintained();
        ++call_stats_.solve_rebuilds;
      }
    }
    EnsureAtomCapacity(num_atoms);
    ++call_stats_.incremental_solve_windows;
    const size_t rules_before = core_.num_rules();

    // Retraction: replay the grounder's swap-compaction on the slot map
    // while unhooking each dead rule from the watch structures.
    for (const uint32_t slot : delta.retracted_slots) {
      if (slot >= store_to_rule_.size()) {
        Invalidate();
        return FailedPreconditionError(
            "retracted slot beyond the mirrored store");
      }
      const uint32_t dead = store_to_rule_[slot];
      const uint32_t last =
          static_cast<uint32_t>(store_to_rule_.size() - 1);
      if (slot != last) {
        store_to_rule_[slot] = store_to_rule_[last];
        rule_origin_[store_to_rule_[slot]] = slot;
      }
      store_to_rule_.pop_back();
      RemoveRule(dead);
    }
    if (store_to_rule_.size() != delta.new_rules_begin ||
        store.size() < delta.new_rules_begin) {
      Invalidate();
      return FailedPreconditionError(
          "solver mirror out of sync after retraction replay");
    }

    for (uint32_t s = static_cast<uint32_t>(delta.new_rules_begin);
         s < store.size(); ++s) {
      store_to_rule_.push_back(static_cast<uint32_t>(core_.num_rules()));
      const Status status = AddRule(store[s], s);
      if (!status.ok()) {
        valid_ = false;
        return status;
      }
    }

    const Status status =
        ApplyFactDelta(delta.fact_delta, /*rebuild=*/false);
    if (!status.ok()) {
      valid_ = false;
      return status;
    }
    call_stats_.rules_retained = rules_before - call_stats_.rules_retracted;
  }
  valid_ = true;
  last_sequence_ = delta.sequence;

  // Guidance is armed here but counted in Enumerate, only when the search
  // machinery actually runs (the definite paths take no decisions).
  guide_ = has_prev_model_;

  const Status status = Enumerate(models);
  if (!status.ok()) {
    // The mirror survives a resource-limit abort, but a partial
    // enumeration must not guide (or be compared against) anything.
    has_prev_model_ = false;
    return status;
  }

  // Canonical order: guidance permutes discovery order, so sort by atom
  // vector to make the output deterministic and history-independent.
  std::sort(models->begin(), models->end(),
            [](const AnswerSet& a, const AnswerSet& b) {
              return a.atoms < b.atoms;
            });

  if (!models->empty()) {
    std::fill(prev_model_.begin(), prev_model_.end(), 0);
    for (GroundAtomId a : models->front().atoms) prev_model_[a] = 1;
    has_prev_model_ = true;
  } else {
    has_prev_model_ = false;
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Public wrapper.

IncrementalSolver::IncrementalSolver(SolverOptions options)
    : engine_(std::make_unique<Engine>(options)) {}

IncrementalSolver::~IncrementalSolver() = default;

Status IncrementalSolver::SolveWindow(const GroundingDelta& delta,
                                      const std::vector<GroundRule>& store,
                                      size_t num_atoms,
                                      std::vector<AnswerSet>* models,
                                      SolverStats* stats) {
  const Status status =
      engine_->SolveWindow(delta, store, num_atoms, models);
  if (status.ok()) {
    cumulative_.Accumulate(engine_->call_stats());
    if (stats != nullptr) *stats = engine_->call_stats();
  }
  return status;
}

void IncrementalSolver::Invalidate() { engine_->Invalidate(); }

bool IncrementalSolver::valid() const { return engine_->valid(); }

}  // namespace streamasp
