#include "solve/incremental_solver.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace streamasp {

namespace {

enum class Val : int8_t { kUnknown = 0, kTrue = 1, kFalse = 2 };

constexpr int32_t kNoHead = -1;
constexpr uint32_t kNoRule = static_cast<uint32_t>(-1);
/// rule_origin_ tag for window-fact rules (not mirrored from the store).
constexpr uint32_t kWindowFact = static_cast<uint32_t>(-1);

}  // namespace

/// The persistent search engine. The propagation/search core mirrors
/// solver.cc's SearchEngine (same invariants: body_unassigned_/body_false_
/// per rule, active_count_ per atom, trail-based undo), with three
/// structural differences:
///   * rules_ and every occurrence list live across SolveWindow calls and
///     are patched by GroundingDelta replay instead of being rebuilt;
///     removal swap-compacts rules_ the same way the grounder compacts its
///     store, so all arrays stay dense for the per-window linear passes;
///   * window facts are first-class rules (one per distinct fact atom,
///     tracked in fact_rule_of_/fact_count_), so propagation and the
///     unfounded-set pass need no special fact handling;
///   * model verification reuses the persistent pos_occurrences_ lists and
///     flat scratch buffers instead of Solver's per-model allocations.
class IncrementalSolver::Engine {
 public:
  explicit Engine(SolverOptions options) : options_(options) {}

  Status SolveWindow(const GroundingDelta& delta,
                     const std::vector<GroundRule>& store, size_t num_atoms,
                     std::vector<AnswerSet>* models);

  void Invalidate() { valid_ = false; }
  bool valid() const { return valid_; }
  const SolverStats& call_stats() const { return call_stats_; }

 private:
  /// A normalized rule: head == kNoHead encodes an integrity constraint.
  /// Disjunctive heads are rejected (see the class comment in the header).
  struct Rule {
    int32_t head = kNoHead;
    std::vector<GroundAtomId> pos;
    std::vector<GroundAtomId> neg;
  };

  struct Occurrence {
    uint32_t rule;
    bool in_positive_body;
  };

  // --- mirror maintenance -----------------------------------------------

  void Reset();
  void EnsureAtomCapacity(size_t num_atoms);
  Status AddRule(const GroundRule& rule, uint32_t origin);
  void AddFactRule(GroundAtomId atom);
  void RemoveRule(uint32_t index);
  Status ApplyFactDelta(
      const std::vector<std::pair<GroundAtomId, int64_t>>& fact_delta,
      bool rebuild);

  /// Removes every occurrence of `rule` from `list` (duplicate body atoms
  /// yield duplicate entries, so this compacts rather than swap-erases
  /// a single match).
  static void EraseOccurrences(std::vector<Occurrence>* list, uint32_t rule,
                               bool in_positive_body);
  static void EraseAll(std::vector<uint32_t>* list, uint32_t rule);
  static void RetargetOccurrences(std::vector<Occurrence>* list,
                                  uint32_t from, uint32_t to,
                                  bool in_positive_body);
  static void RetargetAll(std::vector<uint32_t>* list, uint32_t from,
                          uint32_t to);

  // --- assignment, propagation and search (solver.cc's discipline) ------

  bool Assign(GroundAtomId atom, Val v);
  void UndoTo(size_t mark);
  bool ForceBodyTrue(uint32_t r);
  bool FalsifyLastLiteral(uint32_t r);
  uint32_t SingleActiveRule(GroundAtomId h) const;
  bool ExamineRule(uint32_t r);
  bool Propagate();
  /// Fills supported_ with the well-founded supported closure under the
  /// current assignment (rules with a false body do not support). At rest
  /// this is the least-model closure of the live rules.
  void ComputeSupportClosure();
  bool FalsifyUnfounded(bool* progress);
  bool Expand();
  bool InitialPropagationSeeds();
  GroundAtomId PickUnassigned() const;
  bool ReachedModelCap() const;
  void RecordModel();
  Status Search();
  Status Enumerate(std::vector<AnswerSet>* models);

  /// Definite fast path: when the live rule set has no negative literals
  /// and no constraints, the program has exactly one stable model — the
  /// least model, i.e. the well-founded supported closure of the facts.
  /// One support pass computes it (the same algorithm FalsifyUnfounded
  /// runs, which correctly refuses over-retained positive cycles), and
  /// VerifyStable still checks it from first principles, so this replaces
  /// only the propagation/search machinery, not the verification. Returns
  /// false when verification rejects the closure (never expected), in
  /// which case the caller falls back to the full search.
  bool SolveDefinite();

  /// Exact stable-model test over the live (non-disjunctive) rule set,
  /// equivalent to IsStableModel on the assembled program: the model must
  /// satisfy every rule and equal the least model of the reduct. Uses the
  /// persistent pos_occurrences_ lists and flat scratch, so it allocates
  /// nothing after warm-up.
  bool VerifyStable(const std::vector<GroundAtomId>& model);

  SolverOptions options_;
  SolverStats call_stats_;

  bool valid_ = false;
  /// Sequence of the last applied delta; incremental deltas must chain
  /// from it (catches double-application even when the rule delta is
  /// empty and the size checks hold trivially).
  uint64_t last_sequence_ = 0;
  size_t num_atoms_ = 0;

  std::vector<Rule> rules_;
  /// Per rule: owning store slot, or kWindowFact for fact rules.
  std::vector<uint32_t> rule_origin_;
  /// Store slot -> rule index; size tracks the mirrored store exactly.
  std::vector<uint32_t> store_to_rule_;
  /// Per atom: its window-fact rule (kNoRule when the atom is not a
  /// current window fact) and the fact's multiplicity.
  std::vector<uint32_t> fact_rule_of_;
  std::vector<uint32_t> fact_count_;

  /// Live rules with a non-empty negative body / that are constraints;
  /// both zero ⇔ the mirror is a definite program (see SolveDefinite).
  size_t negative_body_rules_ = 0;
  size_t constraint_rules_ = 0;

  std::vector<Val> value_;
  std::vector<std::vector<Occurrence>> occurrences_;
  std::vector<std::vector<uint32_t>> pos_occurrences_;
  std::vector<std::vector<uint32_t>> head_rules_;
  std::vector<uint32_t> active_count_;
  std::vector<uint32_t> body_unassigned_;
  std::vector<uint32_t> body_false_;

  std::vector<GroundAtomId> trail_;
  /// Flat FIFO: [queue_head_, queue_.size()) is the pending segment.
  std::vector<GroundAtomId> queue_;
  size_t queue_head_ = 0;

  // Scratch for FalsifyUnfounded (reused across windows).
  std::vector<uint8_t> supported_;
  std::vector<uint32_t> unsupported_pos_;
  std::vector<GroundAtomId> ready_;

  // Scratch for VerifyStable (reused across windows).
  std::vector<uint8_t> in_model_;
  std::vector<uint8_t> reduct_enabled_;
  std::vector<uint8_t> least_true_;
  std::vector<uint32_t> least_missing_;
  std::vector<GroundAtomId> least_queue_;

  /// Membership vector of the previous window's first model, used to
  /// order decision signs; meaningless unless has_prev_model_.
  std::vector<uint8_t> prev_model_;
  bool has_prev_model_ = false;
  bool guide_ = false;

  std::vector<AnswerSet>* models_ = nullptr;
  size_t decisions_ = 0;
};

// ---------------------------------------------------------------------------
// Mirror maintenance.

void IncrementalSolver::Engine::Reset() {
  num_atoms_ = 0;
  negative_body_rules_ = 0;
  constraint_rules_ = 0;
  rules_.clear();
  rule_origin_.clear();
  store_to_rule_.clear();
  fact_rule_of_.clear();
  fact_count_.clear();
  value_.clear();
  occurrences_.clear();
  pos_occurrences_.clear();
  head_rules_.clear();
  active_count_.clear();
  body_unassigned_.clear();
  body_false_.clear();
  trail_.clear();
  queue_.clear();
  queue_head_ = 0;
  prev_model_.clear();
  has_prev_model_ = false;
}

void IncrementalSolver::Engine::EnsureAtomCapacity(size_t num_atoms) {
  if (num_atoms <= num_atoms_) return;
  value_.resize(num_atoms, Val::kUnknown);
  occurrences_.resize(num_atoms);
  pos_occurrences_.resize(num_atoms);
  head_rules_.resize(num_atoms);
  active_count_.resize(num_atoms, 0);
  fact_rule_of_.resize(num_atoms, kNoRule);
  fact_count_.resize(num_atoms, 0);
  prev_model_.resize(num_atoms, 0);
  num_atoms_ = num_atoms;
  trail_.reserve(num_atoms);
  queue_.reserve(num_atoms);
}

Status IncrementalSolver::Engine::AddRule(const GroundRule& rule,
                                          uint32_t origin) {
  if (rule.head.size() > 1) {
    return InvalidArgumentError(
        "incremental solving supports normal (non-disjunctive) programs "
        "only; route disjunctive programs through the cold solver");
  }
  const uint32_t r = static_cast<uint32_t>(rules_.size());
  Rule nr;
  nr.head = rule.head.empty() ? kNoHead
                              : static_cast<int32_t>(rule.head[0]);
  nr.pos = rule.positive_body;
  nr.neg = rule.negative_body;
  for (GroundAtomId a : nr.pos) {
    occurrences_[a].push_back(Occurrence{r, true});
    pos_occurrences_[a].push_back(r);
  }
  for (GroundAtomId a : nr.neg) {
    occurrences_[a].push_back(Occurrence{r, false});
  }
  if (nr.head != kNoHead) {
    head_rules_[nr.head].push_back(r);
    ++active_count_[nr.head];
  } else {
    ++constraint_rules_;
  }
  if (!nr.neg.empty()) ++negative_body_rules_;
  body_unassigned_.push_back(
      static_cast<uint32_t>(nr.pos.size() + nr.neg.size()));
  body_false_.push_back(0);
  rule_origin_.push_back(origin);
  rules_.push_back(std::move(nr));
  ++call_stats_.rules_new;
  return OkStatus();
}

void IncrementalSolver::Engine::AddFactRule(GroundAtomId atom) {
  assert(fact_rule_of_[atom] == kNoRule);
  const uint32_t r = static_cast<uint32_t>(rules_.size());
  Rule nr;
  nr.head = static_cast<int32_t>(atom);
  head_rules_[atom].push_back(r);
  ++active_count_[atom];
  body_unassigned_.push_back(0);
  body_false_.push_back(0);
  rule_origin_.push_back(kWindowFact);
  rules_.push_back(std::move(nr));
  fact_rule_of_[atom] = r;
  ++call_stats_.rules_new;
}

void IncrementalSolver::Engine::EraseOccurrences(
    std::vector<Occurrence>* list, uint32_t rule, bool in_positive_body) {
  size_t w = 0;
  for (size_t i = 0; i < list->size(); ++i) {
    const Occurrence& occ = (*list)[i];
    if (occ.rule == rule && occ.in_positive_body == in_positive_body) {
      continue;
    }
    (*list)[w++] = occ;
  }
  list->resize(w);
}

void IncrementalSolver::Engine::EraseAll(std::vector<uint32_t>* list,
                                         uint32_t rule) {
  size_t w = 0;
  for (size_t i = 0; i < list->size(); ++i) {
    if ((*list)[i] == rule) continue;
    (*list)[w++] = (*list)[i];
  }
  list->resize(w);
}

void IncrementalSolver::Engine::RetargetOccurrences(
    std::vector<Occurrence>* list, uint32_t from, uint32_t to,
    bool in_positive_body) {
  for (Occurrence& occ : *list) {
    if (occ.rule == from && occ.in_positive_body == in_positive_body) {
      occ.rule = to;
    }
  }
}

void IncrementalSolver::Engine::RetargetAll(std::vector<uint32_t>* list,
                                            uint32_t from, uint32_t to) {
  for (uint32_t& r : *list) {
    if (r == from) r = to;
  }
}

void IncrementalSolver::Engine::RemoveRule(uint32_t index) {
  assert(index < rules_.size());
  {
    const Rule& rule = rules_[index];
    for (GroundAtomId a : rule.pos) {
      EraseOccurrences(&occurrences_[a], index, true);
      EraseAll(&pos_occurrences_[a], index);
    }
    for (GroundAtomId a : rule.neg) {
      EraseOccurrences(&occurrences_[a], index, false);
    }
    if (rule.head != kNoHead) {
      EraseAll(&head_rules_[rule.head], index);
      --active_count_[rule.head];
    } else {
      --constraint_rules_;
    }
    if (!rule.neg.empty()) --negative_body_rules_;
  }
  ++call_stats_.rules_retracted;

  const uint32_t last = static_cast<uint32_t>(rules_.size() - 1);
  if (index != last) {
    Rule moved = std::move(rules_[last]);
    for (GroundAtomId a : moved.pos) {
      RetargetOccurrences(&occurrences_[a], last, index, true);
      RetargetAll(&pos_occurrences_[a], last, index);
    }
    for (GroundAtomId a : moved.neg) {
      RetargetOccurrences(&occurrences_[a], last, index, false);
    }
    if (moved.head != kNoHead) {
      RetargetAll(&head_rules_[moved.head], last, index);
    }
    rules_[index] = std::move(moved);
    body_unassigned_[index] = body_unassigned_[last];
    body_false_[index] = body_false_[last];
    const uint32_t origin = rule_origin_[last];
    rule_origin_[index] = origin;
    if (origin == kWindowFact) {
      fact_rule_of_[rules_[index].head] = index;
    } else {
      store_to_rule_[origin] = index;
    }
  }
  rules_.pop_back();
  rule_origin_.pop_back();
  body_unassigned_.pop_back();
  body_false_.pop_back();
}

Status IncrementalSolver::Engine::ApplyFactDelta(
    const std::vector<std::pair<GroundAtomId, int64_t>>& fact_delta,
    bool rebuild) {
  for (const auto& [atom, change] : fact_delta) {
    if (atom >= num_atoms_) {
      return FailedPreconditionError(
          "fact delta names an atom beyond the mirrored table");
    }
    if (change > 0) {
      if (fact_count_[atom] == 0) AddFactRule(atom);
      fact_count_[atom] += static_cast<uint32_t>(change);
    } else if (change < 0) {
      if (rebuild) {
        return FailedPreconditionError(
            "full_rebuild delta cannot expire facts");
      }
      const uint32_t drop = static_cast<uint32_t>(-change);
      if (fact_count_[atom] < drop) {
        return FailedPreconditionError(
            "fact delta expires more copies than the mirror holds");
      }
      fact_count_[atom] -= drop;
      if (fact_count_[atom] == 0) {
        const uint32_t rule = fact_rule_of_[atom];
        fact_rule_of_[atom] = kNoRule;
        RemoveRule(rule);
      }
    }
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Assignment, propagation and search. Follows solver.cc's SearchEngine;
// see the invariants documented there.

bool IncrementalSolver::Engine::Assign(GroundAtomId atom, Val v) {
  assert(v != Val::kUnknown);
  if (value_[atom] != Val::kUnknown) return value_[atom] == v;
  value_[atom] = v;
  trail_.push_back(atom);
  for (const Occurrence& occ : occurrences_[atom]) {
    --body_unassigned_[occ.rule];
    const bool literal_false =
        occ.in_positive_body ? (v == Val::kFalse) : (v == Val::kTrue);
    if (literal_false) {
      if (++body_false_[occ.rule] == 1) {
        const int32_t h = rules_[occ.rule].head;
        if (h != kNoHead) --active_count_[h];
      }
    }
  }
  queue_.push_back(atom);
  return true;
}

void IncrementalSolver::Engine::UndoTo(size_t mark) {
  while (trail_.size() > mark) {
    const GroundAtomId atom = trail_.back();
    trail_.pop_back();
    const Val v = value_[atom];
    for (const Occurrence& occ : occurrences_[atom]) {
      ++body_unassigned_[occ.rule];
      const bool literal_false =
          occ.in_positive_body ? (v == Val::kFalse) : (v == Val::kTrue);
      if (literal_false) {
        if (body_false_[occ.rule]-- == 1) {
          const int32_t h = rules_[occ.rule].head;
          if (h != kNoHead) ++active_count_[h];
        }
      }
    }
    value_[atom] = Val::kUnknown;
  }
  queue_.clear();
  queue_head_ = 0;
}

bool IncrementalSolver::Engine::ForceBodyTrue(uint32_t r) {
  for (GroundAtomId a : rules_[r].pos) {
    if (!Assign(a, Val::kTrue)) return false;
  }
  for (GroundAtomId a : rules_[r].neg) {
    if (!Assign(a, Val::kFalse)) return false;
  }
  return true;
}

bool IncrementalSolver::Engine::FalsifyLastLiteral(uint32_t r) {
  for (GroundAtomId a : rules_[r].pos) {
    if (value_[a] == Val::kUnknown) return Assign(a, Val::kFalse);
  }
  for (GroundAtomId a : rules_[r].neg) {
    if (value_[a] == Val::kUnknown) return Assign(a, Val::kTrue);
  }
  assert(false && "no unassigned literal to falsify");
  return true;
}

uint32_t IncrementalSolver::Engine::SingleActiveRule(GroundAtomId h) const {
  for (uint32_t r : head_rules_[h]) {
    if (body_false_[r] == 0) return r;
  }
  assert(false && "active_count out of sync");
  return 0;
}

bool IncrementalSolver::Engine::ExamineRule(uint32_t r) {
  const Rule& rule = rules_[r];
  if (body_false_[r] == 0) {
    if (body_unassigned_[r] == 0) {
      if (rule.head == kNoHead) return false;
      if (!Assign(static_cast<GroundAtomId>(rule.head), Val::kTrue)) {
        return false;
      }
    } else if (body_unassigned_[r] == 1) {
      const bool head_false =
          rule.head == kNoHead || value_[rule.head] == Val::kFalse;
      if (head_false && !FalsifyLastLiteral(r)) return false;
    }
    if (rule.head != kNoHead && value_[rule.head] == Val::kTrue &&
        active_count_[rule.head] == 1 && !ForceBodyTrue(r)) {
      return false;
    }
  } else {
    const int32_t h = rule.head;
    if (h != kNoHead) {
      if (active_count_[h] == 0) {
        if (!Assign(static_cast<GroundAtomId>(h), Val::kFalse)) return false;
      } else if (active_count_[h] == 1 && value_[h] == Val::kTrue) {
        if (!ForceBodyTrue(SingleActiveRule(h))) return false;
      }
    }
  }
  return true;
}

bool IncrementalSolver::Engine::Propagate() {
  while (queue_head_ < queue_.size()) {
    const GroundAtomId atom = queue_[queue_head_++];
    const Val v = value_[atom];
    for (const Occurrence& occ : occurrences_[atom]) {
      if (!ExamineRule(occ.rule)) return false;
    }
    if (v == Val::kFalse) {
      for (uint32_t r : head_rules_[atom]) {
        if (body_false_[r] != 0) continue;
        if (body_unassigned_[r] == 0) return false;  // Body true, head false.
        if (body_unassigned_[r] == 1 && !FalsifyLastLiteral(r)) return false;
      }
    } else {  // kTrue
      if (active_count_[atom] == 0) return false;  // True without support.
      if (active_count_[atom] == 1 &&
          !ForceBodyTrue(SingleActiveRule(atom))) {
        return false;
      }
    }
  }
  return true;
}

void IncrementalSolver::Engine::ComputeSupportClosure() {
  supported_.assign(num_atoms_, 0);
  unsupported_pos_.assign(rules_.size(), 0);
  ready_.clear();
  size_t ready_head = 0;

  auto mark_supported = [&](GroundAtomId a) {
    if (!supported_[a]) {
      supported_[a] = 1;
      ready_.push_back(a);
    }
  };

  for (uint32_t r = 0; r < rules_.size(); ++r) {
    if (body_false_[r] != 0 || rules_[r].head == kNoHead) continue;
    unsupported_pos_[r] = static_cast<uint32_t>(rules_[r].pos.size());
    if (unsupported_pos_[r] == 0) {
      mark_supported(static_cast<GroundAtomId>(rules_[r].head));
    }
  }
  while (ready_head < ready_.size()) {
    const GroundAtomId a = ready_[ready_head++];
    for (uint32_t r : pos_occurrences_[a]) {
      if (body_false_[r] != 0 || rules_[r].head == kNoHead) continue;
      if (--unsupported_pos_[r] == 0) {
        mark_supported(static_cast<GroundAtomId>(rules_[r].head));
      }
    }
  }
}

bool IncrementalSolver::Engine::FalsifyUnfounded(bool* progress) {
  ComputeSupportClosure();
  *progress = false;
  for (GroundAtomId a = 0; a < num_atoms_; ++a) {
    if (supported_[a] || value_[a] == Val::kFalse) continue;
    if (!Assign(a, Val::kFalse)) return false;
    *progress = true;
  }
  return true;
}

bool IncrementalSolver::Engine::Expand() {
  for (;;) {
    if (!Propagate()) return false;
    bool progress = false;
    if (!FalsifyUnfounded(&progress)) return false;
    if (!progress) return true;
  }
}

bool IncrementalSolver::Engine::InitialPropagationSeeds() {
  for (uint32_t r = 0; r < rules_.size(); ++r) {
    if (body_unassigned_[r] == 0 && body_false_[r] == 0) {
      if (rules_[r].head == kNoHead) return false;
      if (!Assign(static_cast<GroundAtomId>(rules_[r].head), Val::kTrue)) {
        return false;
      }
    }
  }
  for (GroundAtomId a = 0; a < num_atoms_; ++a) {
    if (value_[a] == Val::kUnknown && active_count_[a] == 0) {
      if (!Assign(a, Val::kFalse)) return false;
    }
  }
  return true;
}

GroundAtomId IncrementalSolver::Engine::PickUnassigned() const {
  for (GroundAtomId a = 0; a < num_atoms_; ++a) {
    if (value_[a] == Val::kUnknown) return a;
  }
  return kInvalidGroundAtom;
}

bool IncrementalSolver::Engine::ReachedModelCap() const {
  return options_.max_models != 0 && models_->size() >= options_.max_models;
}

void IncrementalSolver::Engine::RecordModel() {
  AnswerSet model;
  for (GroundAtomId a = 0; a < num_atoms_; ++a) {
    if (value_[a] == Val::kTrue) model.atoms.push_back(a);
  }
  if (options_.verify_models && !VerifyStable(model.atoms)) return;
  models_->push_back(std::move(model));
}

Status IncrementalSolver::Engine::Search() {
  const size_t entry_mark = trail_.size();
  Status status = OkStatus();
  if (Expand()) {
    const GroundAtomId atom = PickUnassigned();
    if (atom == kInvalidGroundAtom) {
      RecordModel();
    } else {
      ++decisions_;
      if (options_.max_decisions != 0 &&
          decisions_ > options_.max_decisions) {
        status = ResourceExhaustedError(
            "decision limit exceeded (" +
            std::to_string(options_.max_decisions) + ")");
      } else {
        // Guided sign ordering: explore the branch that agrees with the
        // previous window's model first, so a barely changed window walks
        // straight to its model. Both branches are still explored —
        // guidance permutes the enumeration, never prunes it.
        Val first = Val::kTrue;
        if (guide_ && !prev_model_[atom]) first = Val::kFalse;
        const Val second = first == Val::kTrue ? Val::kFalse : Val::kTrue;
        for (const Val v : {first, second}) {
          const size_t mark = trail_.size();
          Assign(atom, v);  // Atom is unassigned; cannot conflict here.
          status = Search();
          UndoTo(mark);
          if (!status.ok() || ReachedModelCap()) break;
        }
      }
    }
  }
  UndoTo(entry_mark);
  return status;
}

Status IncrementalSolver::Engine::Enumerate(std::vector<AnswerSet>* models) {
  models_ = models;
  decisions_ = 0;
  assert(trail_.empty());
  if (negative_body_rules_ == 0 && constraint_rules_ == 0 &&
      SolveDefinite()) {
    // Definite mirror: the least model is the one stable model; the full
    // propagation/search machinery has nothing further to enumerate.
    return OkStatus();
  }
  if (guide_) ++call_stats_.warm_start_hits;
  Status status = OkStatus();
  if (InitialPropagationSeeds()) {
    status = Search();
  }
  // Unlike the throwaway cold engine, the root seeds must be unwound too:
  // the mirror returns to its rest state (all atoms unknown, counters at
  // their static values) for the next window's delta patch.
  UndoTo(0);
  return status;
}

bool IncrementalSolver::Engine::SolveDefinite() {
  // Well-founded supported closure of the facts. Between windows the
  // mirror is at rest (no assignments, body_false_ all zero), so the
  // closure's body_false_ filter admits every live rule and the result
  // is exactly the least model; over-retained positive cycles cannot
  // self-support and correctly stay out of it.
  ComputeSupportClosure();

  AnswerSet model;
  for (GroundAtomId a = 0; a < num_atoms_; ++a) {
    if (supported_[a]) model.atoms.push_back(a);
  }
  if (options_.verify_models && !VerifyStable(model.atoms)) return false;
  models_->push_back(std::move(model));
  return true;
}

bool IncrementalSolver::Engine::VerifyStable(
    const std::vector<GroundAtomId>& model) {
  in_model_.assign(num_atoms_, 0);
  for (GroundAtomId a : model) in_model_[a] = 1;
  reduct_enabled_.assign(rules_.size(), 0);

  // 1. The model must satisfy every rule; remember the reduct membership.
  for (uint32_t r = 0; r < rules_.size(); ++r) {
    const Rule& rule = rules_[r];
    bool neg_blocked = false;
    for (GroundAtomId a : rule.neg) {
      if (in_model_[a]) {
        neg_blocked = true;
        break;
      }
    }
    if (neg_blocked) continue;
    reduct_enabled_[r] = 1;
    bool pos_holds = true;
    for (GroundAtomId a : rule.pos) {
      if (!in_model_[a]) {
        pos_holds = false;
        break;
      }
    }
    if (pos_holds) {
      if (rule.head == kNoHead || !in_model_[rule.head]) return false;
    }
  }

  // 2. The model must equal the least model of the reduct.
  least_true_.assign(num_atoms_, 0);
  least_missing_.assign(rules_.size(), 0);
  least_queue_.clear();
  size_t queue_head = 0;
  auto derive = [&](GroundAtomId a) {
    if (!least_true_[a]) {
      least_true_[a] = 1;
      least_queue_.push_back(a);
    }
  };
  for (uint32_t r = 0; r < rules_.size(); ++r) {
    if (!reduct_enabled_[r] || rules_[r].head == kNoHead) continue;
    least_missing_[r] = static_cast<uint32_t>(rules_[r].pos.size());
    if (least_missing_[r] == 0) {
      derive(static_cast<GroundAtomId>(rules_[r].head));
    }
  }
  while (queue_head < least_queue_.size()) {
    const GroundAtomId a = least_queue_[queue_head++];
    for (uint32_t r : pos_occurrences_[a]) {
      if (!reduct_enabled_[r] || rules_[r].head == kNoHead) continue;
      if (--least_missing_[r] == 0) {
        derive(static_cast<GroundAtomId>(rules_[r].head));
      }
    }
  }
  for (GroundAtomId a = 0; a < num_atoms_; ++a) {
    if (least_true_[a] != in_model_[a]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Window entry point.

Status IncrementalSolver::Engine::SolveWindow(
    const GroundingDelta& delta, const std::vector<GroundRule>& store,
    size_t num_atoms, std::vector<AnswerSet>* models) {
  call_stats_ = SolverStats{};
  models->clear();

  if (delta.full_rebuild) {
    Reset();
    EnsureAtomCapacity(num_atoms);
    ++call_stats_.solve_rebuilds;
    store_to_rule_.reserve(store.size());
    for (uint32_t s = 0; s < store.size(); ++s) {
      store_to_rule_.push_back(static_cast<uint32_t>(rules_.size()));
      const Status status = AddRule(store[s], s);
      if (!status.ok()) {
        valid_ = false;
        return status;
      }
    }
    const Status status = ApplyFactDelta(delta.fact_delta, /*rebuild=*/true);
    if (!status.ok()) {
      valid_ = false;
      return status;
    }
  } else {
    if (!valid_) {
      return FailedPreconditionError(
          "incremental delta against an invalid solver mirror");
    }
    if (store_to_rule_.size() != delta.store_size_before ||
        num_atoms < num_atoms_ || delta.previous_sequence != last_sequence_) {
      valid_ = false;
      return FailedPreconditionError(
          "solver mirror out of sync with the grounder store");
    }
    EnsureAtomCapacity(num_atoms);
    ++call_stats_.incremental_solve_windows;
    const size_t rules_before = rules_.size();

    // Retraction: replay the grounder's swap-compaction on the slot map
    // while unhooking each dead rule from the watch structures.
    for (const uint32_t slot : delta.retracted_slots) {
      if (slot >= store_to_rule_.size()) {
        valid_ = false;
        return FailedPreconditionError(
            "retracted slot beyond the mirrored store");
      }
      const uint32_t dead = store_to_rule_[slot];
      const uint32_t last =
          static_cast<uint32_t>(store_to_rule_.size() - 1);
      if (slot != last) {
        store_to_rule_[slot] = store_to_rule_[last];
        rule_origin_[store_to_rule_[slot]] = slot;
      }
      store_to_rule_.pop_back();
      RemoveRule(dead);
    }
    if (store_to_rule_.size() != delta.new_rules_begin ||
        store.size() < delta.new_rules_begin) {
      valid_ = false;
      return FailedPreconditionError(
          "solver mirror out of sync after retraction replay");
    }

    for (uint32_t s = static_cast<uint32_t>(delta.new_rules_begin);
         s < store.size(); ++s) {
      store_to_rule_.push_back(static_cast<uint32_t>(rules_.size()));
      const Status status = AddRule(store[s], s);
      if (!status.ok()) {
        valid_ = false;
        return status;
      }
    }

    const Status status =
        ApplyFactDelta(delta.fact_delta, /*rebuild=*/false);
    if (!status.ok()) {
      valid_ = false;
      return status;
    }
    call_stats_.rules_retained = rules_before - call_stats_.rules_retracted;
  }
  valid_ = true;
  last_sequence_ = delta.sequence;

  // Guidance is armed here but counted in Enumerate, only when the search
  // machinery actually runs (the definite fast path takes no decisions).
  guide_ = has_prev_model_;

  const Status status = Enumerate(models);
  if (!status.ok()) {
    // The mirror survives a resource-limit abort, but a partial
    // enumeration must not guide (or be compared against) anything.
    has_prev_model_ = false;
    return status;
  }

  // Canonical order: guidance permutes discovery order, so sort by atom
  // vector to make the output deterministic and history-independent.
  std::sort(models->begin(), models->end(),
            [](const AnswerSet& a, const AnswerSet& b) {
              return a.atoms < b.atoms;
            });

  if (!models->empty()) {
    std::fill(prev_model_.begin(), prev_model_.end(), 0);
    for (GroundAtomId a : models->front().atoms) prev_model_[a] = 1;
    has_prev_model_ = true;
  } else {
    has_prev_model_ = false;
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Public wrapper.

IncrementalSolver::IncrementalSolver(SolverOptions options)
    : engine_(std::make_unique<Engine>(options)) {}

IncrementalSolver::~IncrementalSolver() = default;

Status IncrementalSolver::SolveWindow(const GroundingDelta& delta,
                                      const std::vector<GroundRule>& store,
                                      size_t num_atoms,
                                      std::vector<AnswerSet>* models,
                                      SolverStats* stats) {
  const Status status =
      engine_->SolveWindow(delta, store, num_atoms, models);
  if (status.ok()) {
    cumulative_.Accumulate(engine_->call_stats());
    if (stats != nullptr) *stats = engine_->call_stats();
  }
  return status;
}

void IncrementalSolver::Invalidate() { engine_->Invalidate(); }

bool IncrementalSolver::valid() const { return engine_->valid(); }

}  // namespace streamasp
