#include "solve/well_founded.h"

#include <deque>

namespace streamasp {

namespace {

/// Γ(S): the least model of the reduct of `program` w.r.t. the set S
/// (given as a membership bitmap). Rules whose negative body intersects S
/// drop out; surviving rules contribute their positive part to a definite
/// least-model computation. Constraints are ignored here.
std::vector<bool> GammaOperator(const GroundProgram& program,
                                const std::vector<bool>& s) {
  const auto& rules = program.rules();
  const size_t num_atoms = program.num_atoms();
  std::vector<bool> truth(num_atoms, false);
  std::vector<uint32_t> missing(rules.size(), 0);
  std::vector<std::vector<uint32_t>> pos_occ(num_atoms);
  std::deque<GroundAtomId> queue;

  for (uint32_t r = 0; r < rules.size(); ++r) {
    const GroundRule& rule = rules[r];
    if (rule.head.size() != 1) continue;  // Constraints contribute nothing.
    bool blocked = false;
    for (GroundAtomId a : rule.negative_body) {
      if (s[a]) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    missing[r] = static_cast<uint32_t>(rule.positive_body.size());
    for (GroundAtomId a : rule.positive_body) pos_occ[a].push_back(r);
    if (missing[r] == 0 && !truth[rule.head[0]]) {
      truth[rule.head[0]] = true;
      queue.push_back(rule.head[0]);
    }
  }
  while (!queue.empty()) {
    const GroundAtomId a = queue.front();
    queue.pop_front();
    for (uint32_t r : pos_occ[a]) {
      if (--missing[r] == 0) {
        const GroundAtomId h = rules[r].head[0];
        if (!truth[h]) {
          truth[h] = true;
          queue.push_back(h);
        }
      }
    }
  }
  return truth;
}

}  // namespace

StatusOr<WellFoundedModel> ComputeWellFoundedModel(
    const GroundProgram& program) {
  for (const GroundRule& rule : program.rules()) {
    if (rule.head.size() > 1) {
      return InvalidArgumentError(
          "well-founded semantics is defined for normal programs; "
          "got a disjunctive rule");
    }
  }
  const size_t num_atoms = program.num_atoms();

  // Alternating fixpoint: T grows monotonically, U = Γ(T) shrinks.
  // Invariant: T ⊆ every stable model ⊆ U.
  std::vector<bool> t(num_atoms, false);
  for (;;) {
    const std::vector<bool> u = GammaOperator(program, t);
    std::vector<bool> next_t = GammaOperator(program, u);
    if (next_t == t) break;
    t = std::move(next_t);
  }
  const std::vector<bool> u = GammaOperator(program, t);

  WellFoundedModel model;
  for (GroundAtomId a = 0; a < num_atoms; ++a) {
    if (t[a]) {
      model.true_atoms.push_back(a);
    } else if (!u[a]) {
      model.false_atoms.push_back(a);
    } else {
      model.undefined_atoms.push_back(a);
    }
  }

  // A constraint whose body holds in the two-valued part (positive atoms
  // all true, negative atoms all false) can never be satisfied.
  for (const GroundRule& rule : program.rules()) {
    if (!rule.head.empty()) continue;
    bool body_true = true;
    for (GroundAtomId a : rule.positive_body) {
      if (!t[a]) {
        body_true = false;
        break;
      }
    }
    for (GroundAtomId a : rule.negative_body) {
      if (body_true && u[a]) body_true = false;
    }
    if (body_true) {
      model.constraint_violated = true;
      break;
    }
  }
  return model;
}

}  // namespace streamasp
