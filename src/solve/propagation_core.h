#ifndef STREAMASP_SOLVE_PROPAGATION_CORE_H_
#define STREAMASP_SOLVE_PROPAGATION_CORE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "solve/solver.h"

namespace streamasp {

/// The one smodels-style propagation/search core shared by the throwaway
/// cold solver (solve/solver.cc) and the persistent incremental engine
/// (solve/incremental_solver.cc). Both used to maintain near-identical
/// copies of this machinery by hand; now there is exactly one copy,
/// parameterized over rule storage by its two front-ends:
///
///   * BuildFromRules — the static shape: ingest a normalized rule vector
///     once, with degree pre-counting so every occurrence list is
///     allocated exactly once (the dominant build cost on large ground
///     programs). Used by Solver::Solve, which discards the core after
///     one enumeration.
///   * Reset / EnsureAtomCapacity / AddRule / RemoveRule — the patched
///     arena shape: rules hook and unhook individually, removal
///     swap-compacts the rule arrays (mirroring the incremental
///     grounder's store compaction) so every per-rule array stays dense
///     for the linear passes. Used by IncrementalSolver, which keeps the
///     core alive across windows and patches it with GroundingDeltas.
///
/// Invariants maintained per rule:
///   body_unassigned_[r]  — body literals whose atom is still unknown,
///   body_false_[r]       — body literals currently false
///                          (positive literal with false atom, or negative
///                          literal with true atom),
/// and per atom:
///   active_count_[a]     — rules with head a whose body is not yet false.
///
/// Counters are updated eagerly in Assign/UndoTo; consequences are derived
/// when an atom is popped from the flat propagation FIFO.
///
/// Enumerate() is templated over a small client policy supplying the two
/// decisions the shapes differ on:
///   Val  FirstSign(GroundAtomId atom)          — branch sign ordering
///                                                (warm-start guidance);
///   bool AcceptModel(const std::vector<GroundAtomId>& atoms)
///                                              — model verification.
/// Everything else — seeds, expansion to the propagation/unfounded-set
/// fixpoint, chronological backtracking, the decision valve, the final
/// unwind to the rest state — is shared.
///
/// Delta-sized model maintenance (the definite fragment): in addition to
/// the search machinery the core can maintain the *model itself* across
/// patches via justification tracking — see the "maintained fixpoint"
/// section below and ARCHITECTURE.md "Delta-sized model maintenance".
class PropagationCore {
 public:
  enum class Val : int8_t { kUnknown = 0, kTrue = 1, kFalse = 2 };

  /// A normalized (non-disjunctive) rule: `head :- pos, not neg.` with
  /// head == kNoHead encoding an integrity constraint.
  struct CoreRule {
    static constexpr int32_t kNoHead = -1;
    int32_t head = kNoHead;
    std::vector<GroundAtomId> pos;
    std::vector<GroundAtomId> neg;
  };

  static constexpr uint32_t kNoRuleIndex = static_cast<uint32_t>(-1);

  // -------------------------------------------------------------------
  // Static storage front-end (cold solver).

  /// Ingests a complete normalized program in one pass: pre-counts the
  /// per-atom occurrence degrees so each list is allocated exactly once
  /// instead of growing by repeated push_back reallocation.
  void BuildFromRules(std::vector<CoreRule> rules, size_t num_atoms) {
    Reset();
    EnsureAtomCapacity(num_atoms);
    rules_ = std::move(rules);
    body_unassigned_.resize(rules_.size(), 0);
    body_false_.resize(rules_.size(), 0);
    support_missing_.resize(rules_.size(), 0);

    std::vector<uint32_t> occ_degree(num_atoms, 0);
    std::vector<uint32_t> pos_degree(num_atoms, 0);
    std::vector<uint32_t> head_degree(num_atoms, 0);
    for (const CoreRule& rule : rules_) {
      for (GroundAtomId a : rule.pos) {
        ++occ_degree[a];
        ++pos_degree[a];
      }
      for (GroundAtomId a : rule.neg) ++occ_degree[a];
      if (rule.head != CoreRule::kNoHead) ++head_degree[rule.head];
    }
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      occurrences_[a].reserve(occ_degree[a]);
      pos_occurrences_[a].reserve(pos_degree[a]);
      head_rules_[a].reserve(head_degree[a]);
    }

    for (uint32_t r = 0; r < rules_.size(); ++r) {
      const CoreRule& rule = rules_[r];
      body_unassigned_[r] =
          static_cast<uint32_t>(rule.pos.size() + rule.neg.size());
      for (GroundAtomId a : rule.pos) {
        occurrences_[a].push_back(Occurrence{r, true});
        pos_occurrences_[a].push_back(r);
      }
      for (GroundAtomId a : rule.neg) {
        occurrences_[a].push_back(Occurrence{r, false});
      }
      if (rule.head != CoreRule::kNoHead) {
        head_rules_[rule.head].push_back(r);
        ++active_count_[rule.head];
      } else {
        ++constraint_rules_;
      }
      if (!rule.neg.empty()) ++negative_body_rules_;
    }
  }

  // -------------------------------------------------------------------
  // Patched arena front-end (incremental solver).

  void Reset() {
    num_atoms_ = 0;
    negative_body_rules_ = 0;
    constraint_rules_ = 0;
    rules_.clear();
    value_.clear();
    occurrences_.clear();
    pos_occurrences_.clear();
    head_rules_.clear();
    active_count_.clear();
    body_unassigned_.clear();
    body_false_.clear();
    trail_.clear();
    queue_.clear();
    queue_head_ = 0;
    maintained_valid_ = false;
    derived_.clear();
    justifier_.clear();
    support_missing_.clear();
    support_count_.clear();
    retract_seeds_.clear();
    insert_seeds_.clear();
  }

  void EnsureAtomCapacity(size_t num_atoms) {
    if (num_atoms <= num_atoms_) return;
    value_.resize(num_atoms, Val::kUnknown);
    occurrences_.resize(num_atoms);
    pos_occurrences_.resize(num_atoms);
    head_rules_.resize(num_atoms);
    active_count_.resize(num_atoms, 0);
    derived_.resize(num_atoms, 0);
    justifier_.resize(num_atoms, kNoRuleIndex);
    support_count_.resize(num_atoms, 0);
    num_atoms_ = num_atoms;
    // Every atom enters the trail (and therefore the propagation queue)
    // at most once per assignment stack, so one num_atoms_-sized block
    // each removes all growth reallocations during search.
    trail_.reserve(num_atoms);
    queue_.reserve(num_atoms);
  }

  /// Hooks one rule into the watch structures; returns its index. The
  /// rule's atoms must be < num_atoms() (grow with EnsureAtomCapacity
  /// first).
  uint32_t AddRule(CoreRule rule) {
    const uint32_t r = static_cast<uint32_t>(rules_.size());
    for (GroundAtomId a : rule.pos) {
      occurrences_[a].push_back(Occurrence{r, true});
      pos_occurrences_[a].push_back(r);
    }
    for (GroundAtomId a : rule.neg) {
      occurrences_[a].push_back(Occurrence{r, false});
    }
    if (rule.head != CoreRule::kNoHead) {
      head_rules_[rule.head].push_back(r);
      ++active_count_[rule.head];
    } else {
      ++constraint_rules_;
    }
    if (!rule.neg.empty()) ++negative_body_rules_;
    body_unassigned_.push_back(
        static_cast<uint32_t>(rule.pos.size() + rule.neg.size()));
    body_false_.push_back(0);

    // Maintained-fixpoint bookkeeping. A rule outside the definite
    // fragment invalidates the maintained model; a definite rule updates
    // the support counters and (when already firing) seeds the forward
    // pass. support_missing_ stays index-aligned with rules_ even while
    // invalid so swap-compaction needs no special cases.
    uint32_t missing = 0;
    if (maintained_valid_) {
      if (rule.head == CoreRule::kNoHead || !rule.neg.empty()) {
        InvalidateMaintained();
      } else {
        for (GroundAtomId a : rule.pos) {
          if (!derived_[a]) ++missing;
        }
        if (missing == 0) {
          ++support_count_[rule.head];
          insert_seeds_.push_back(static_cast<GroundAtomId>(rule.head));
        }
      }
    }
    support_missing_.push_back(missing);

    rules_.push_back(std::move(rule));
    return r;
  }

  /// Unhooks rule `index` and swap-compacts the last rule into its slot
  /// (the caller mirrors the same move on any parallel per-rule arrays it
  /// keeps). Duplicate body atoms yield duplicate occurrence entries, so
  /// unhooking compacts rather than swap-erases a single match.
  void RemoveRule(uint32_t index) {
    assert(index < rules_.size());
    if (maintained_valid_) {
      const CoreRule& rule = rules_[index];
      // Definite fragment: while maintained, every live rule has a head.
      assert(rule.head != CoreRule::kNoHead);
      if (support_missing_[index] == 0) --support_count_[rule.head];
      if (derived_[rule.head] &&
          justifier_[rule.head] == index) {
        // The rule justifying this atom is gone: seed the retraction
        // cascade (the atom may be re-justified by an alternative rule
        // during CommitMaintainedPatch).
        justifier_[rule.head] = kNoRuleIndex;
        retract_seeds_.push_back(static_cast<GroundAtomId>(rule.head));
      }
    }
    {
      const CoreRule& rule = rules_[index];
      for (GroundAtomId a : rule.pos) {
        EraseOccurrences(&occurrences_[a], index, true);
        EraseAll(&pos_occurrences_[a], index);
      }
      for (GroundAtomId a : rule.neg) {
        EraseOccurrences(&occurrences_[a], index, false);
      }
      if (rule.head != CoreRule::kNoHead) {
        EraseAll(&head_rules_[rule.head], index);
        --active_count_[rule.head];
      } else {
        --constraint_rules_;
      }
      if (!rule.neg.empty()) --negative_body_rules_;
    }

    const uint32_t last = static_cast<uint32_t>(rules_.size() - 1);
    if (index != last) {
      CoreRule moved = std::move(rules_[last]);
      for (GroundAtomId a : moved.pos) {
        RetargetOccurrences(&occurrences_[a], last, index, true);
        RetargetAll(&pos_occurrences_[a], last, index);
      }
      for (GroundAtomId a : moved.neg) {
        RetargetOccurrences(&occurrences_[a], last, index, false);
      }
      if (moved.head != CoreRule::kNoHead) {
        RetargetAll(&head_rules_[moved.head], last, index);
        if (maintained_valid_ && justifier_[moved.head] == last) {
          justifier_[moved.head] = index;
        }
      }
      rules_[index] = std::move(moved);
      body_unassigned_[index] = body_unassigned_[last];
      body_false_[index] = body_false_[last];
      support_missing_[index] = support_missing_[last];
    }
    rules_.pop_back();
    body_unassigned_.pop_back();
    body_false_.pop_back();
    support_missing_.pop_back();
  }

  // -------------------------------------------------------------------
  // Introspection.

  size_t num_atoms() const { return num_atoms_; }
  size_t num_rules() const { return rules_.size(); }
  const CoreRule& rule(uint32_t r) const { return rules_[r]; }
  size_t negative_body_rules() const { return negative_body_rules_; }
  size_t constraint_rules() const { return constraint_rules_; }
  /// True when the live rule set has no negative literals and no
  /// constraints — the fragment with exactly one stable model (its least
  /// model), which both the definite fast path and the maintained
  /// fixpoint rely on.
  bool definite() const {
    return negative_body_rules_ == 0 && constraint_rules_ == 0;
  }

  // -------------------------------------------------------------------
  // Enumeration (shared seeds / expand / search / unwind).

  /// Enumerates stable-model candidates into `*models` (appended). The
  /// client filters candidates (AcceptModel) and orders branch signs
  /// (FirstSign). Always unwinds to the rest state — all atoms unknown,
  /// counters at their static values — so a persistent core is ready for
  /// the next patch and a throwaway one loses nothing.
  template <typename Client>
  Status Enumerate(const SolverOptions& options, Client& client,
                   std::vector<AnswerSet>* models) {
    options_ = &options;
    models_ = models;
    decisions_ = 0;
    assert(trail_.empty());
    Status status = OkStatus();
    if (InitialPropagationSeeds()) status = Search(client);
    UndoTo(0);
    options_ = nullptr;
    models_ = nullptr;
    return status;
  }

  /// Fills supported() with the well-founded supported closure under the
  /// current assignment (rules with a false body do not support). At rest
  /// this is the least-model closure of the live rules.
  void ComputeSupportClosure() {
    supported_.assign(num_atoms_, 0);
    unsupported_pos_.assign(rules_.size(), 0);
    ready_.clear();
    size_t ready_head = 0;

    auto mark_supported = [&](GroundAtomId a) {
      if (!supported_[a]) {
        supported_[a] = 1;
        ready_.push_back(a);
      }
    };

    for (uint32_t r = 0; r < rules_.size(); ++r) {
      if (body_false_[r] != 0 || rules_[r].head == CoreRule::kNoHead) {
        continue;
      }
      unsupported_pos_[r] = static_cast<uint32_t>(rules_[r].pos.size());
      if (unsupported_pos_[r] == 0) {
        mark_supported(static_cast<GroundAtomId>(rules_[r].head));
      }
    }
    while (ready_head < ready_.size()) {
      const GroundAtomId a = ready_[ready_head++];
      for (uint32_t r : pos_occurrences_[a]) {
        if (body_false_[r] != 0 || rules_[r].head == CoreRule::kNoHead) {
          continue;
        }
        if (--unsupported_pos_[r] == 0) {
          mark_supported(static_cast<GroundAtomId>(rules_[r].head));
        }
      }
    }
  }

  const std::vector<uint8_t>& supported() const { return supported_; }

  /// Exact stable-model test over the live (non-disjunctive) rule set,
  /// equivalent to IsStableModel on the assembled program: the model must
  /// satisfy every rule and equal the least model of the reduct. Uses the
  /// persistent pos_occurrences_ lists and flat scratch, so it allocates
  /// nothing after warm-up. `model` must be sorted.
  bool VerifyStable(const std::vector<GroundAtomId>& model) {
    in_model_.assign(num_atoms_, 0);
    for (GroundAtomId a : model) in_model_[a] = 1;
    reduct_enabled_.assign(rules_.size(), 0);

    // 1. The model must satisfy every rule; remember reduct membership.
    for (uint32_t r = 0; r < rules_.size(); ++r) {
      const CoreRule& rule = rules_[r];
      bool neg_blocked = false;
      for (GroundAtomId a : rule.neg) {
        if (in_model_[a]) {
          neg_blocked = true;
          break;
        }
      }
      if (neg_blocked) continue;
      reduct_enabled_[r] = 1;
      bool pos_holds = true;
      for (GroundAtomId a : rule.pos) {
        if (!in_model_[a]) {
          pos_holds = false;
          break;
        }
      }
      if (pos_holds) {
        if (rule.head == CoreRule::kNoHead || !in_model_[rule.head]) {
          return false;
        }
      }
    }

    // 2. The model must equal the least model of the reduct.
    least_true_.assign(num_atoms_, 0);
    least_missing_.assign(rules_.size(), 0);
    least_queue_.clear();
    size_t queue_head = 0;
    auto derive = [&](GroundAtomId a) {
      if (!least_true_[a]) {
        least_true_[a] = 1;
        least_queue_.push_back(a);
      }
    };
    for (uint32_t r = 0; r < rules_.size(); ++r) {
      if (!reduct_enabled_[r] || rules_[r].head == CoreRule::kNoHead) {
        continue;
      }
      least_missing_[r] = static_cast<uint32_t>(rules_[r].pos.size());
      if (least_missing_[r] == 0) {
        derive(static_cast<GroundAtomId>(rules_[r].head));
      }
    }
    while (queue_head < least_queue_.size()) {
      const GroundAtomId a = least_queue_[queue_head++];
      for (uint32_t r : pos_occurrences_[a]) {
        if (!reduct_enabled_[r] || rules_[r].head == CoreRule::kNoHead) {
          continue;
        }
        if (--least_missing_[r] == 0) {
          derive(static_cast<GroundAtomId>(rules_[r].head));
        }
      }
    }
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      if (least_true_[a] != in_model_[a]) return false;
    }
    return true;
  }

  // -------------------------------------------------------------------
  // Maintained fixpoint (delta-sized model maintenance, definite
  // fragment only).
  //
  // While maintained_valid(), the core tracks the program's unique stable
  // model — its least model — as persistent state alongside the watch
  // structures:
  //   derived_[a]          — a is in the maintained model,
  //   justifier_[a]        — ONE rule currently justifying a. Because a
  //                          justifier is always recorded at the moment
  //                          its body first became fully derived, the
  //                          justifier edges form an acyclic forest over
  //                          the derived atoms,
  //   support_missing_[r]  — positive body occurrences of r not derived
  //                          (duplicates count per occurrence),
  //   support_count_[a]    — rules with head a and support_missing_ == 0.
  //
  // AddRule/RemoveRule fold each patch into seed lists; one
  // CommitMaintainedPatch call then (1) cascades retraction through the
  // justification forest — an atom is un-derived only when its own
  // justifier broke, so alternative supports keep the cascade to the
  // justification subtree rather than the full rule-dependency cone —
  // and (2) re-derives from atoms with surviving alternative support plus
  // the newly firing rules, semi-naive. Atoms outside the touched cone
  // keep their assignment verbatim; the returned touched count is what
  // the delta actually cost.

  bool maintained_valid() const { return maintained_valid_; }

  /// Drops the maintained model (next window must RebuildMaintainedModel
  /// before committing patches). Safe to call in any state.
  void InvalidateMaintained() {
    maintained_valid_ = false;
    retract_seeds_.clear();
    insert_seeds_.clear();
  }

  /// Recomputes the maintained model, justifiers and support counters
  /// from the full live rule set (O(program)). Requires definite().
  void RebuildMaintainedModel() {
    assert(definite());
    derived_.assign(num_atoms_, 0);
    justifier_.assign(num_atoms_, kNoRuleIndex);
    support_count_.assign(num_atoms_, 0);
    retract_seeds_.clear();
    insert_seeds_.clear();
    work_.clear();
    size_t head = 0;
    for (uint32_t r = 0; r < rules_.size(); ++r) {
      assert(rules_[r].head != CoreRule::kNoHead);
      support_missing_[r] = static_cast<uint32_t>(rules_[r].pos.size());
      if (support_missing_[r] == 0) {
        const GroundAtomId h = static_cast<GroundAtomId>(rules_[r].head);
        ++support_count_[h];
        if (!derived_[h]) {
          derived_[h] = 1;
          justifier_[h] = r;
          work_.push_back(h);
        }
      }
    }
    while (head < work_.size()) {
      const GroundAtomId a = work_[head++];
      for (uint32_t r : pos_occurrences_[a]) {
        if (--support_missing_[r] == 0) {
          const GroundAtomId h = static_cast<GroundAtomId>(rules_[r].head);
          ++support_count_[h];
          if (!derived_[h]) {
            derived_[h] = 1;
            justifier_[h] = r;
            work_.push_back(h);
          }
        }
      }
    }
    maintained_valid_ = true;
  }

  /// Consumes the seed lists the patch accumulated and restores the
  /// maintained model to the least model of the patched program. Returns
  /// the number of atom flips processed (retraction-cascade pops plus
  /// re-derivation pops) — the delta-sized work this window actually did.
  /// Requires maintained_valid().
  size_t CommitMaintainedPatch() {
    assert(maintained_valid_);
    size_t touched = 0;

    // Phase 1: retraction cascade. An atom leaves the model exactly when
    // its recorded justifier broke (was removed, or lost a derived
    // positive premise). support_missing_/support_count_ are updated at
    // each occurrence so phase 2 sees exact counts.
    work_.clear();
    size_t head = 0;
    for (GroundAtomId a : retract_seeds_) {
      if (derived_[a] && justifier_[a] == kNoRuleIndex) {
        derived_[a] = 0;
        work_.push_back(a);
      }
    }
    retract_seeds_.clear();
    while (head < work_.size()) {
      const GroundAtomId a = work_[head++];
      ++touched;
      for (uint32_t r : pos_occurrences_[a]) {
        if (support_missing_[r]++ == 0) {
          const GroundAtomId h = static_cast<GroundAtomId>(rules_[r].head);
          --support_count_[h];
          if (derived_[h] && justifier_[h] == r) {
            justifier_[h] = kNoRuleIndex;
            derived_[h] = 0;
            work_.push_back(h);
          }
        }
      }
    }
    const size_t deleted_end = work_.size();

    // Phase 2: re-derivation, semi-naive, from (a) cascade victims whose
    // alternative supports survived and (b) heads of newly firing rules.
    rederive_.clear();
    size_t rhead = 0;
    auto consider = [&](GroundAtomId a) {
      if (derived_[a] || support_count_[a] == 0) return;
      for (uint32_t r : head_rules_[a]) {
        if (support_missing_[r] == 0) {
          justifier_[a] = r;
          break;
        }
      }
      assert(justifier_[a] != kNoRuleIndex);
      derived_[a] = 1;
      rederive_.push_back(a);
    };
    for (size_t i = 0; i < deleted_end; ++i) consider(work_[i]);
    for (GroundAtomId a : insert_seeds_) consider(a);
    insert_seeds_.clear();
    while (rhead < rederive_.size()) {
      const GroundAtomId a = rederive_[rhead++];
      ++touched;
      for (uint32_t r : pos_occurrences_[a]) {
        if (--support_missing_[r] == 0) {
          const GroundAtomId h = static_cast<GroundAtomId>(rules_[r].head);
          ++support_count_[h];
          if (!derived_[h]) {
            derived_[h] = 1;
            justifier_[h] = r;
            rederive_.push_back(h);
          }
        }
      }
    }
    return touched;
  }

  /// Appends the maintained model's atoms to `*atoms` in ascending order.
  void AppendMaintainedModel(std::vector<GroundAtomId>* atoms) const {
    assert(maintained_valid_);
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      if (derived_[a]) atoms->push_back(a);
    }
  }

 private:
  struct Occurrence {
    uint32_t rule;
    bool in_positive_body;
  };

  static void EraseOccurrences(std::vector<Occurrence>* list, uint32_t rule,
                               bool in_positive_body) {
    size_t w = 0;
    for (size_t i = 0; i < list->size(); ++i) {
      const Occurrence& occ = (*list)[i];
      if (occ.rule == rule && occ.in_positive_body == in_positive_body) {
        continue;
      }
      (*list)[w++] = occ;
    }
    list->resize(w);
  }

  static void EraseAll(std::vector<uint32_t>* list, uint32_t rule) {
    size_t w = 0;
    for (size_t i = 0; i < list->size(); ++i) {
      if ((*list)[i] == rule) continue;
      (*list)[w++] = (*list)[i];
    }
    list->resize(w);
  }

  static void RetargetOccurrences(std::vector<Occurrence>* list,
                                  uint32_t from, uint32_t to,
                                  bool in_positive_body) {
    for (Occurrence& occ : *list) {
      if (occ.rule == from && occ.in_positive_body == in_positive_body) {
        occ.rule = to;
      }
    }
  }

  static void RetargetAll(std::vector<uint32_t>* list, uint32_t from,
                          uint32_t to) {
    for (uint32_t& r : *list) {
      if (r == from) r = to;
    }
  }

  // --- assignment and trail ------------------------------------------

  bool Assign(GroundAtomId atom, Val v) {
    assert(v != Val::kUnknown);
    if (value_[atom] != Val::kUnknown) return value_[atom] == v;
    value_[atom] = v;
    trail_.push_back(atom);
    for (const Occurrence& occ : occurrences_[atom]) {
      --body_unassigned_[occ.rule];
      const bool literal_false =
          occ.in_positive_body ? (v == Val::kFalse) : (v == Val::kTrue);
      if (literal_false) {
        if (++body_false_[occ.rule] == 1) {
          const int32_t h = rules_[occ.rule].head;
          if (h != CoreRule::kNoHead) --active_count_[h];
        }
      }
    }
    queue_.push_back(atom);
    return true;
  }

  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      const GroundAtomId atom = trail_.back();
      trail_.pop_back();
      const Val v = value_[atom];
      for (const Occurrence& occ : occurrences_[atom]) {
        ++body_unassigned_[occ.rule];
        const bool literal_false =
            occ.in_positive_body ? (v == Val::kFalse) : (v == Val::kTrue);
        if (literal_false) {
          if (body_false_[occ.rule]-- == 1) {
            const int32_t h = rules_[occ.rule].head;
            if (h != CoreRule::kNoHead) ++active_count_[h];
          }
        }
      }
      value_[atom] = Val::kUnknown;
    }
    queue_.clear();
    queue_head_ = 0;
  }

  // --- propagation ("atleast") ---------------------------------------

  /// Forces every body literal of `r` true. Returns false on conflict.
  bool ForceBodyTrue(uint32_t r) {
    for (GroundAtomId a : rules_[r].pos) {
      if (!Assign(a, Val::kTrue)) return false;
    }
    for (GroundAtomId a : rules_[r].neg) {
      if (!Assign(a, Val::kFalse)) return false;
    }
    return true;
  }

  /// Falsifies the single unassigned body literal of `r`. Returns false
  /// on conflict.
  bool FalsifyLastLiteral(uint32_t r) {
    for (GroundAtomId a : rules_[r].pos) {
      if (value_[a] == Val::kUnknown) return Assign(a, Val::kFalse);
    }
    for (GroundAtomId a : rules_[r].neg) {
      if (value_[a] == Val::kUnknown) return Assign(a, Val::kTrue);
    }
    assert(false && "no unassigned literal to falsify");
    return true;
  }

  /// The unique rule with head `h` whose body is not false. Requires
  /// active_count_[h] == 1.
  uint32_t SingleActiveRule(GroundAtomId h) const {
    for (uint32_t r : head_rules_[h]) {
      if (body_false_[r] == 0) return r;
    }
    assert(false && "active_count out of sync");
    return 0;
  }

  /// Derives consequences of a rule's current state. Returns false on
  /// conflict.
  bool ExamineRule(uint32_t r) {
    const CoreRule& rule = rules_[r];
    if (body_false_[r] == 0) {
      if (body_unassigned_[r] == 0) {
        // Body fully true: fire.
        if (rule.head == CoreRule::kNoHead) return false;
        if (!Assign(static_cast<GroundAtomId>(rule.head), Val::kTrue)) {
          return false;
        }
      } else if (body_unassigned_[r] == 1) {
        const bool head_false =
            rule.head == CoreRule::kNoHead ||
            value_[rule.head] == Val::kFalse;
        if (head_false && !FalsifyLastLiteral(r)) return false;
      }
      // Head true with this as the single active rule: body must hold.
      if (rule.head != CoreRule::kNoHead &&
          value_[rule.head] == Val::kTrue &&
          active_count_[rule.head] == 1 && !ForceBodyTrue(r)) {
        return false;
      }
    } else {
      // Rule deactivated: its head may have lost support.
      const int32_t h = rule.head;
      if (h != CoreRule::kNoHead) {
        if (active_count_[h] == 0) {
          if (!Assign(static_cast<GroundAtomId>(h), Val::kFalse)) {
            return false;
          }
        } else if (active_count_[h] == 1 && value_[h] == Val::kTrue) {
          if (!ForceBodyTrue(SingleActiveRule(h))) return false;
        }
      }
    }
    return true;
  }

  bool Propagate() {
    while (queue_head_ < queue_.size()) {
      const GroundAtomId atom = queue_[queue_head_++];
      const Val v = value_[atom];
      for (const Occurrence& occ : occurrences_[atom]) {
        if (!ExamineRule(occ.rule)) return false;
      }
      if (v == Val::kFalse) {
        for (uint32_t r : head_rules_[atom]) {
          if (body_false_[r] != 0) continue;
          if (body_unassigned_[r] == 0) return false;  // Body true, head false.
          if (body_unassigned_[r] == 1 && !FalsifyLastLiteral(r)) {
            return false;
          }
        }
      } else {  // kTrue
        if (active_count_[atom] == 0) return false;  // True without support.
        if (active_count_[atom] == 1 &&
            !ForceBodyTrue(SingleActiveRule(atom))) {
          return false;
        }
      }
    }
    return true;
  }

  // --- unfounded-set falsification ("atmost") ------------------------

  /// Computes the atoms with well-founded external support given the
  /// current assignment, and falsifies the rest. Returns false on
  /// conflict (a true atom turned out unfounded). Sets *progress when it
  /// assigned anything.
  bool FalsifyUnfounded(bool* progress) {
    ComputeSupportClosure();
    *progress = false;
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      if (supported_[a] || value_[a] == Val::kFalse) continue;
      // `a` is unfounded: no rule chain can ever support it.
      if (!Assign(a, Val::kFalse)) return false;
      *progress = true;
    }
    return true;
  }

  /// Propagation and unfounded-set falsification to mutual fixpoint.
  bool Expand() {
    for (;;) {
      if (!Propagate()) return false;
      bool progress = false;
      if (!FalsifyUnfounded(&progress)) return false;
      if (!progress) return true;
    }
  }

  // --- search ---------------------------------------------------------

  bool InitialPropagationSeeds() {
    // Empty-body rules fire unconditionally; atoms with no potentially
    // supporting rule are false (Clark-completion direction, valid under
    // stable semantics).
    for (uint32_t r = 0; r < rules_.size(); ++r) {
      if (body_unassigned_[r] == 0 && body_false_[r] == 0) {
        if (rules_[r].head == CoreRule::kNoHead) return false;
        if (!Assign(static_cast<GroundAtomId>(rules_[r].head), Val::kTrue)) {
          return false;
        }
      }
    }
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      if (value_[a] == Val::kUnknown && active_count_[a] == 0) {
        if (!Assign(a, Val::kFalse)) return false;
      }
    }
    return true;
  }

  GroundAtomId PickUnassigned() const {
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      if (value_[a] == Val::kUnknown) return a;
    }
    return kInvalidGroundAtom;
  }

  bool ReachedModelCap() const {
    return options_->max_models != 0 &&
           models_->size() >= options_->max_models;
  }

  template <typename Client>
  void RecordModel(Client& client) {
    AnswerSet model;
    for (GroundAtomId a = 0; a < num_atoms_; ++a) {
      if (value_[a] == Val::kTrue) model.atoms.push_back(a);
    }
    if (!client.AcceptModel(model.atoms)) return;
    models_->push_back(std::move(model));
  }

  template <typename Client>
  Status Search(Client& client) {
    const size_t entry_mark = trail_.size();
    Status status = OkStatus();
    if (Expand()) {
      const GroundAtomId atom = PickUnassigned();
      if (atom == kInvalidGroundAtom) {
        RecordModel(client);
      } else {
        ++decisions_;
        if (options_->max_decisions != 0 &&
            decisions_ > options_->max_decisions) {
          status = ResourceExhaustedError(
              "decision limit exceeded (" +
              std::to_string(options_->max_decisions) + ")");
        } else {
          // The client orders each decision's signs (warm-start guidance
          // explores the branch agreeing with the previous window's model
          // first). Both branches are still explored — ordering permutes
          // the enumeration, never prunes it.
          const Val first = client.FirstSign(atom);
          const Val second = first == Val::kTrue ? Val::kFalse : Val::kTrue;
          for (const Val v : {first, second}) {
            const size_t mark = trail_.size();
            Assign(atom, v);  // Atom is unassigned; cannot conflict here.
            status = Search(client);
            UndoTo(mark);
            if (!status.ok() || ReachedModelCap()) break;
          }
        }
      }
    }
    UndoTo(entry_mark);
    return status;
  }

  size_t num_atoms_ = 0;
  std::vector<CoreRule> rules_;

  /// Live rules with a non-empty negative body / that are constraints;
  /// both zero ⇔ the live rule set is a definite program.
  size_t negative_body_rules_ = 0;
  size_t constraint_rules_ = 0;

  std::vector<Val> value_;
  std::vector<std::vector<Occurrence>> occurrences_;
  std::vector<std::vector<uint32_t>> pos_occurrences_;
  std::vector<std::vector<uint32_t>> head_rules_;
  std::vector<uint32_t> active_count_;
  std::vector<uint32_t> body_unassigned_;
  std::vector<uint32_t> body_false_;

  std::vector<GroundAtomId> trail_;
  /// Flat FIFO: [queue_head_, queue_.size()) is the pending segment.
  /// Reserved once per atom-capacity growth, so propagation never
  /// reallocates.
  std::vector<GroundAtomId> queue_;
  size_t queue_head_ = 0;

  // Scratch for ComputeSupportClosure / FalsifyUnfounded.
  std::vector<uint8_t> supported_;
  std::vector<uint32_t> unsupported_pos_;
  std::vector<GroundAtomId> ready_;

  // Scratch for VerifyStable.
  std::vector<uint8_t> in_model_;
  std::vector<uint8_t> reduct_enabled_;
  std::vector<uint8_t> least_true_;
  std::vector<uint32_t> least_missing_;
  std::vector<GroundAtomId> least_queue_;

  // Maintained fixpoint (see the section comment above).
  bool maintained_valid_ = false;
  std::vector<uint8_t> derived_;
  std::vector<uint32_t> justifier_;
  std::vector<uint32_t> support_missing_;
  std::vector<uint32_t> support_count_;
  std::vector<GroundAtomId> retract_seeds_;
  std::vector<GroundAtomId> insert_seeds_;
  std::vector<GroundAtomId> work_;
  std::vector<GroundAtomId> rederive_;

  const SolverOptions* options_ = nullptr;
  std::vector<AnswerSet>* models_ = nullptr;
  size_t decisions_ = 0;
};

}  // namespace streamasp

#endif  // STREAMASP_SOLVE_PROPAGATION_CORE_H_
