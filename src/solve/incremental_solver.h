#ifndef STREAMASP_SOLVE_INCREMENTAL_SOLVER_H_
#define STREAMASP_SOLVE_INCREMENTAL_SOLVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ground/ground_program.h"
#include "solve/solver.h"
#include "util/status.h"

namespace streamasp {

/// Counters describing incremental solving — the solve-layer mirror of
/// GroundingStats' reuse counters. All additive, so per-partition stats
/// aggregate with Accumulate().
struct SolverStats {
  /// Hooked rules carried over from the previous window unchanged (their
  /// watch/occurrence entries were not touched).
  size_t rules_retained = 0;
  /// Rules unhooked by the window's delta (retracted store rules plus
  /// expired window-fact rules).
  size_t rules_retracted = 0;
  /// Rules hooked in by the window's delta (new store rules plus admitted
  /// window-fact rules). A rebuild counts the whole ingested program.
  size_t rules_new = 0;
  /// SolveWindow calls that patched the persistent engine with a delta.
  size_t incremental_solve_windows = 0;
  /// SolveWindow calls that re-ingested the full store (first window,
  /// grounder fallback, prior error).
  size_t solve_rebuilds = 0;
  /// Windows whose branch decisions were guided by the previous window's
  /// answer set.
  size_t warm_start_hits = 0;
  /// Atom assignments recomputed: the touched-cone flips on maintained
  /// windows, the full live atom count on every other solve. The
  /// delta-sized-solve claim is exactly atoms_touched ≪ live atoms.
  size_t atoms_touched = 0;
  /// Atom assignments carried over verbatim from the previous window's
  /// maintained model (live atoms minus the touched cone; 0 on
  /// non-maintained windows).
  size_t assignments_reused = 0;
  /// Windows answered from the maintained fixpoint by committing the
  /// delta patch alone — no root propagation, closure, or search pass
  /// over the full program.
  size_t fixpoint_maintained_windows = 0;

  /// Field-wise accumulation (every counter is additive).
  void Accumulate(const SolverStats& other) {
    rules_retained += other.rules_retained;
    rules_retracted += other.rules_retracted;
    rules_new += other.rules_new;
    incremental_solve_windows += other.incremental_solve_windows;
    solve_rebuilds += other.solve_rebuilds;
    warm_start_hits += other.warm_start_hits;
    atoms_touched += other.atoms_touched;
    assignments_reused += other.assignments_reused;
    fixpoint_maintained_windows += other.fixpoint_maintained_windows;
  }
};

/// Persistent, warm-started stable-model engine for overlapping windows.
///
/// Solver::Solve rebuilds its normalized rule set, occurrence lists and
/// counter arrays from scratch for every window, even when the
/// incremental grounder reports that most rule instances were retained.
/// IncrementalSolver keeps those structures alive across windows and
/// patches them with the grounder's GroundingDelta: retracted store slots
/// are unhooked by replaying the grounder's exact swap-compaction order
/// (so rule indices stay aligned with store slots), new rules hook in at
/// the tail, and window facts are maintained as their own fact rules from
/// the delta's fact view. GroundAtomIds are stable across the windows a
/// grounder cache spans, so all per-atom arrays survive untouched.
///
/// The engine solves the *unsimplified* cached store plus the window's
/// fact rules. That is answer-equivalent to the cold path's simplified
/// per-window output (simplification is equivalence-preserving, and the
/// smodels-style propagation performs the same pruning during its initial
/// fixpoint), which is what lets the owning layer skip the grounder's
/// per-window output assembly and simplification pass entirely — the
/// linear per-window cost ROADMAP called out.
///
/// Search semantics: enumeration stays exact (chronological backtracking
/// over both branches of every decision) and stable-model verification
/// stays on per SolverOptions::verify_models, with persistent scratch
/// buffers instead of Solver's per-model allocations. A definite mirror
/// (no live negative literals, no constraints — tracked incrementally)
/// short-circuits to its unique stable model, the well-founded supported
/// closure of the facts, in one pass; verification still checks that
/// closure from first principles, so the shortcut replaces only the
/// search machinery, never the exactness argument. The previous
/// window's answer set only *orders* each decision's sign — the branch
/// agreeing with the previous model is explored first — so a barely
/// changed window reaches its model with near-zero backtracking while
/// completeness is untouched. Because guidance permutes discovery order,
/// SolveWindow canonicalizes the returned models (sorted by their atom
/// vectors); with max_models == 0 (enumerate all) the model *set* is
/// therefore deterministic and byte-comparable against Solver::Solve
/// after the same canonicalization — for the single-model (stratified)
/// programs of the streaming workloads the output is identical as-is.
/// With a max_models cap on a multi-model program the reuse path may
/// return a different (equally valid) subset than the cold enumeration
/// order would.
///
/// Scope: normal programs only. Disjunctive heads would shift into
/// several normal rules per store slot and break the 1:1 slot mirroring,
/// so the owning layer keeps the cold path for disjunctive programs (a
/// static property of the non-ground program).
///
/// Contract: apply every successful GroundWindow's delta exactly once, in
/// order. A skipped or failed window on either side is recovered by
/// invalidating both engines (the grounder then rebuilds, publishing a
/// full_rebuild delta that resets this mirror); SolveWindow reports a
/// detectable mismatch as kFailedPrecondition.
///
/// Not thread-safe: one instance serves one partition sub-stream from one
/// thread at a time, exactly like IncrementalGrounder.
class IncrementalSolver {
 public:
  explicit IncrementalSolver(SolverOptions options = {});
  ~IncrementalSolver();

  IncrementalSolver(const IncrementalSolver&) = delete;
  IncrementalSolver& operator=(const IncrementalSolver&) = delete;

  /// Patches the persistent engine with `delta` (the producing grounder's
  /// last_delta()), where `store` is that grounder's cached_rules() and
  /// `num_atoms` its atom_table().size(), then enumerates the stable
  /// models into `*models` (cleared first, canonical order). `stats`
  /// receives this call's counters.
  ///
  /// Errors: kFailedPrecondition when the mirror is out of sync with the
  /// delta (caller invalidates grounder + solver and regrounds);
  /// kInvalidArgument on a disjunctive rule; kResourceExhausted from the
  /// max_decisions valve (the mirror stays usable).
  Status SolveWindow(const GroundingDelta& delta,
                     const std::vector<GroundRule>& store, size_t num_atoms,
                     std::vector<AnswerSet>* models,
                     SolverStats* stats = nullptr);

  /// Drops the mirror; the next SolveWindow requires a full_rebuild delta.
  void Invalidate();

  /// True when the mirror can consume an incremental delta.
  bool valid() const;

  /// Running totals over all SolveWindow calls on this instance.
  const SolverStats& cumulative_stats() const { return cumulative_; }

 private:
  class Engine;
  std::unique_ptr<Engine> engine_;
  SolverStats cumulative_;
};

}  // namespace streamasp

#endif  // STREAMASP_SOLVE_INCREMENTAL_SOLVER_H_
