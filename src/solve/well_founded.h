#ifndef STREAMASP_SOLVE_WELL_FOUNDED_H_
#define STREAMASP_SOLVE_WELL_FOUNDED_H_

#include <vector>

#include "ground/ground_program.h"
#include "util/status.h"

namespace streamasp {

/// The well-founded (three-valued) model of a normal ground program.
///
/// Every atom is classified as definitely true, definitely false, or
/// undefined. The well-founded model approximates all stable models:
/// true atoms belong to every answer set and false atoms to none, so it
/// is both a polynomial-time consequence operator in its own right (the
/// semantics used by the related work the paper cites, Tachmazidis et
/// al.) and a sound preprocessing step for stable-model search.
struct WellFoundedModel {
  std::vector<GroundAtomId> true_atoms;       ///< Sorted.
  std::vector<GroundAtomId> false_atoms;      ///< Sorted.
  std::vector<GroundAtomId> undefined_atoms;  ///< Sorted.

  /// True when some integrity constraint's body holds under the
  /// two-valued part (the program then has no stable model at all).
  bool constraint_violated = false;

  /// True iff no atom is undefined — for stratified programs the
  /// well-founded model is total and equals the unique answer set.
  bool IsTotal() const { return undefined_atoms.empty(); }
};

/// Computes the well-founded model via the alternating fixpoint of van
/// Gelder: T_{i+1} = Γ(Γ(T_i)) with Γ(S) the least model of the
/// Gelfond-Lifschitz reduct w.r.t. S. Runs in O(|program|²) worst case
/// (each outer iteration is a linear least-model computation and adds at
/// least one atom).
///
/// Disjunctive rules are rejected (kInvalidArgument): the well-founded
/// semantics is defined for normal programs. Integrity constraints do not
/// contribute derivations; a constraint whose body is definitely true
/// sets constraint_violated.
StatusOr<WellFoundedModel> ComputeWellFoundedModel(
    const GroundProgram& program);

}  // namespace streamasp

#endif  // STREAMASP_SOLVE_WELL_FOUNDED_H_
