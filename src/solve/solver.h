#ifndef STREAMASP_SOLVE_SOLVER_H_
#define STREAMASP_SOLVE_SOLVER_H_

#include <cstdint>
#include <vector>

#include "ground/ground_program.h"
#include "util/status.h"

namespace streamasp {

/// One answer set (stable model): the true atoms, as sorted GroundAtomIds
/// of the solved GroundProgram's atom table.
struct AnswerSet {
  std::vector<GroundAtomId> atoms;

  friend bool operator==(const AnswerSet& a, const AnswerSet& b) {
    return a.atoms == b.atoms;
  }

  /// True iff `id` is in the answer set (binary search).
  bool Contains(GroundAtomId id) const;
};

/// Tuning knobs for the solver.
struct SolverOptions {
  /// Stop after this many models; 0 enumerates all of them.
  size_t max_models = 0;

  /// Re-derive each candidate model from first principles (reduct + least
  /// model / minimality) before reporting it. Linear in program size per
  /// model; cheap insurance against propagation bugs, so on by default.
  bool verify_models = true;

  /// Safety valve on branching decisions, guarding against pathological
  /// search spaces. 0 disables the limit.
  size_t max_decisions = 0;

  /// Reuse the solver's search structures across overlapping windows: the
  /// owning layer (Reasoner / ParallelReasoner / the pipelines) keeps one
  /// persistent IncrementalSolver per partition sub-stream and patches it
  /// with the incremental grounder's GroundingDelta instead of rebuilding
  /// rule/occurrence/counter arrays per window (see
  /// solve/incremental_solver.h). Enumeration stays exact and model
  /// verification stays on; only the per-window rebuild work disappears.
  /// Implies grounding reuse (the delta is computed by the incremental
  /// grounder). The stateless Solver itself ignores this flag, mirroring
  /// how ReasonerOptions::reuse_grounding is honoured by the owning layer
  /// rather than by Grounder.
  bool reuse_solving = false;

  /// Maintain the model itself across reused windows (definite/stratified
  /// fragment): the persistent engine keeps a justification-tracked
  /// fixpoint, so retracting an expired fact only de-justifies and
  /// re-propagates its transitive cone and admitting a new fact only
  /// propagates forward — per-window solve cost becomes delta-sized
  /// instead of linear in the live ground program. Assignments outside
  /// the touched cone are reused verbatim (counted in
  /// SolverStats::assignments_reused). Off reverts to PR 4's behavior of
  /// recomputing the assignment from scratch on the patched rule arena.
  /// No effect without reuse_solving; the stateless Solver ignores it.
  bool maintain_fixpoint = true;
};

/// Stable-model solver for ground programs.
///
/// Normal programs (at most one head atom per rule) are solved exactly
/// with an smodels-style procedure: unit propagation over rule bodies
/// ("atleast"), greatest-unfounded-set falsification ("atmost"), and
/// chronological backtracking search with full enumeration.
///
/// Disjunctive rules are handled by shifting (a|b :- B becomes
/// a :- B, not b and b :- B, not a) followed by an exact minimality check
/// of every candidate against the original program's reduct. This is sound
/// always, and complete for head-cycle-free programs — the class covering
/// the paper's workloads (which are non-disjunctive) and the standard
/// textbook examples. Non-HCF programs may have additional answer sets
/// that shifting cannot produce; see DESIGN.md.
class Solver {
 public:
  explicit Solver(SolverOptions options = {}) : options_(options) {}

  /// Enumerates answer sets of `program`. Deterministic order (by the
  /// branch decisions taken); an inconsistent program yields an empty
  /// vector. Errors indicate resource limits, not inconsistency.
  StatusOr<std::vector<AnswerSet>> Solve(const GroundProgram& program) const;

 private:
  SolverOptions options_;
};

/// Exact stable-model test, independent of the search machinery: M must
/// satisfy every rule, and M must be a minimal model of the
/// Gelfond-Lifschitz reduct of `program` w.r.t. M. Used by Solver when
/// verify_models is set, and directly by property tests.
///
/// `model` must be sorted.
bool IsStableModel(const GroundProgram& program,
                   const std::vector<GroundAtomId>& model);

}  // namespace streamasp

#endif  // STREAMASP_SOLVE_SOLVER_H_
