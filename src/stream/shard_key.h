#ifndef STREAMASP_STREAM_SHARD_KEY_H_
#define STREAMASP_STREAM_SHARD_KEY_H_

#include <cstdint>
#include <functional>

#include "stream/triple.h"

namespace streamasp {

/// Maps a stream item to a stable 64-bit partition key. The sharded
/// engine routes an item to shard `key % num_shards`, so two items with
/// equal keys always land on the same shard regardless of shard count.
///
/// The extractor decides which regroupings of the input are
/// answer-preserving: a key is *dependency-respecting* for a program when
/// any two items that can contribute to the same derivation map to the
/// same key. Subject keys respect subject-local programs (every rule's
/// atoms share the subject variable, as in the paper's traffic workload);
/// dependency-graph-derived keys (see CommunityShardKey in
/// streamrule/sharded_pipeline.h) respect community-partitioned
/// programs. Either way the router backs the key up by broadcasting
/// *duplicated* predicates (ones several dependency communities need)
/// to every shard, so a key only has to respect the dependencies among
/// non-duplicated predicates.
using ShardKeyExtractor = std::function<uint64_t(const Triple&)>;

/// Keys by the subject term (deep hash). The default: all items about the
/// same entity — the join variable of entity-centric rule sets — shard
/// together.
ShardKeyExtractor SubjectShardKey();

/// Keys by the predicate symbol: all instances of one predicate shard
/// together. Rarely dependency-respecting on its own (most rules join
/// several predicates); useful as a building block and for stress-testing
/// skew, since streams usually have few distinct predicates.
ShardKeyExtractor PredicateShardKey();

/// Keys by subject and object together (object-less items fall back to
/// the subject alone). Spreads hot subjects at the cost of breaking
/// subject-locality — only answer-preserving for programs whose rules
/// never join two items of the same subject.
ShardKeyExtractor SubjectObjectShardKey();

/// A constant key: every item maps to shard 0. Degenerate on purpose —
/// the skew worst case used by tests and benchmarks to verify ordering
/// and accounting hold when one shard receives the entire stream.
ShardKeyExtractor ConstantShardKey(uint64_t key = 0);

}  // namespace streamasp

#endif  // STREAMASP_STREAM_SHARD_KEY_H_
