#include "stream/format.h"

namespace streamasp {

Status DataFormatProcessor::DeclarePredicate(SymbolId predicate,
                                             uint32_t arity) {
  if (arity < 1 || arity > 2) {
    return InvalidArgumentError(
        "RDF triples carry at most a subject and an object; predicate "
        "arity must be 1 or 2, got " +
        std::to_string(arity));
  }
  auto [it, inserted] = arity_of_.emplace(predicate, arity);
  if (!inserted && it->second != arity) {
    return InvalidArgumentError(
        "predicate re-declared with different arity (" +
        std::to_string(it->second) + " vs " + std::to_string(arity) + ")");
  }
  return OkStatus();
}

Status DataFormatProcessor::DeclareInputPredicates(
    const std::vector<PredicateSignature>& signatures) {
  for (const PredicateSignature& sig : signatures) {
    STREAMASP_RETURN_IF_ERROR(DeclarePredicate(sig.name, sig.arity));
  }
  return OkStatus();
}

StatusOr<Atom> DataFormatProcessor::ToFact(const Triple& triple) const {
  auto it = arity_of_.find(triple.predicate);
  if (it == arity_of_.end()) {
    return InvalidArgumentError("undeclared stream predicate id " +
                                std::to_string(triple.predicate));
  }
  const uint32_t arity = it->second;
  if (arity == 1) {
    if (triple.object.has_value()) {
      return InvalidArgumentError("unary predicate received an object");
    }
    return Atom(triple.predicate, {triple.subject.ToTerm()});
  }
  if (!triple.object.has_value()) {
    return InvalidArgumentError("binary predicate missing an object");
  }
  return Atom(triple.predicate,
              {triple.subject.ToTerm(), triple.object.ToTerm()});
}

StatusOr<std::vector<Atom>> DataFormatProcessor::ToFacts(
    const std::vector<Triple>& items) const {
  std::vector<Atom> facts;
  facts.reserve(items.size());
  for (const Triple& t : items) {
    STREAMASP_ASSIGN_OR_RETURN(Atom fact, ToFact(t));
    facts.push_back(std::move(fact));
  }
  return facts;
}

StatusOr<Triple> DataFormatProcessor::ToTriple(const Atom& atom) const {
  if (!atom.IsGround()) {
    return InvalidArgumentError("cannot stream a non-ground atom");
  }
  if (atom.arity() == 1) {
    return Triple{atom.args()[0], atom.predicate(), std::nullopt};
  }
  if (atom.arity() == 2) {
    return Triple{atom.args()[0], atom.predicate(), atom.args()[1]};
  }
  return InvalidArgumentError(
      "only arity-1/2 atoms can be rendered as triples, got arity " +
      std::to_string(atom.arity()));
}

}  // namespace streamasp
