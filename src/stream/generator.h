#ifndef STREAMASP_STREAM_GENERATOR_H_
#define STREAMASP_STREAM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "asp/symbol_table.h"
#include "stream/triple.h"
#include "util/rng.h"

namespace streamasp {

/// How subject/object values are drawn.
enum class GeneratorProfile {
  /// The paper's literal setup (§IV "Input window"): subjects and objects
  /// are uniform integers in [0, n) where n is the window size. Faithful,
  /// but with realistic rule thresholds almost no rule ever fires, so
  /// derived atoms are rare.
  kPaperUniform,

  /// Subjects (entities/locations) are drawn from a small pool
  /// (n / location_divisor) and objects from [0, value_range), so that
  /// joins and threshold comparisons fire at a healthy rate. Used by the
  /// accuracy figures; documented as a substitution in EXPERIMENTS.md.
  kEventRich,
};

/// Configuration of the synthetic stream.
struct GeneratorOptions {
  uint64_t seed = 42;
  GeneratorProfile profile = GeneratorProfile::kEventRich;

  /// kEventRich: pool size of subjects is max(1, window_size / this).
  size_t location_divisor = 50;

  /// kEventRich: objects are uniform in [0, value_range).
  int64_t value_range = 100;
};

/// Shape of one stream predicate the generator can emit.
struct StreamPredicate {
  SymbolId predicate = kInvalidSymbol;
  bool has_object = false;  ///< true => arity 2 (subject + object).

  /// When non-empty, objects are drawn uniformly from this pool instead of
  /// the numeric range — e.g. car_in_smoke's {high, low} status values.
  std::vector<Term> object_pool;

  /// Relative frequency of this predicate in the stream (must be > 0).
  /// The paper's P' experiment has duplicated car_number instances at 25%
  /// of the window, which the figure benches reproduce by weighting it.
  double weight = 1.0;
};

/// Deterministic synthetic RDF stream over a fixed predicate schema,
/// following the paper's workload: every item's predicate is drawn from
/// inpre(P), values are integers bounded by the window size (or by the
/// event-rich pools).
class SyntheticStreamGenerator {
 public:
  SyntheticStreamGenerator(std::vector<StreamPredicate> schema,
                           GeneratorOptions options);

  /// Generates `window_size` triples. Deterministic in (seed, call
  /// sequence); successive calls continue the stream.
  std::vector<Triple> GenerateWindow(size_t window_size);

  /// Generates a window wrapped with the next sequence number.
  TripleWindow GenerateTripleWindow(size_t window_size);

 private:
  Term RandomSubject(size_t window_size);
  Term RandomObject(size_t window_size);
  const StreamPredicate& RandomPredicate();

  std::vector<StreamPredicate> schema_;
  std::vector<double> cumulative_weight_;
  GeneratorOptions options_;
  Rng rng_;
  uint64_t next_sequence_ = 0;
};

/// Adversarial load shapes for the overload tests and the burst-overload
/// bench legs: how the stream's arrival rate and key skew vary over time.
enum class BurstShape {
  /// Periodic flash-crowd spikes: inside each spike the intended arrival
  /// rate jumps to burst_intensity× the base rate (content stays the base
  /// distribution). Models breaking-news / incident traffic.
  kFlashCrowd,
  /// Periodic hot-key storms: spikes additionally collapse subjects onto
  /// a tiny hot pool, so hash-sharded consumers see one or two shards
  /// absorb the whole spike. Models a single hot entity going viral.
  kHotKeyStorm,
  /// Sustained overload: every position is "in burst" at burst_intensity,
  /// no recovery valleys. Models steady-state over-admission.
  kSustained,
};

constexpr const char* BurstShapeName(BurstShape shape) {
  switch (shape) {
    case BurstShape::kFlashCrowd:
      return "flash-crowd";
    case BurstShape::kHotKeyStorm:
      return "hot-key-storm";
    case BurstShape::kSustained:
      return "sustained";
  }
  return "unknown";
}

/// Configuration of the adversarial load shape.
struct BurstOptions {
  BurstShape shape = BurstShape::kFlashCrowd;

  /// Items per burst cycle (spike + recovery valley).
  size_t period = 8192;

  /// Fraction of each period spent inside the spike, in (0, 1].
  double burst_fraction = 0.25;

  /// Intended arrival-rate multiplier inside a spike (IntensityAt); the
  /// generator itself is pull-based, so producers apply this as a pacing
  /// hint — push IntensityAt(p)× the sustainable base rate at position p.
  double burst_intensity = 4.0;

  /// kHotKeyStorm: size of the hot subject pool a spike collapses onto.
  size_t hot_subjects = 4;

  /// kHotKeyStorm: probability an in-spike item draws its subject from
  /// the hot pool instead of the base distribution.
  double hot_fraction = 0.9;
};

/// Deterministic bursty/adversarial stream: base items come from a
/// SyntheticStreamGenerator, and a position-driven overlay applies the
/// BurstShape — rate spikes are exposed as pacing hints (IntensityAt) and
/// hot-key storms rewrite in-spike subjects onto the hot pool. Determinism
/// is in (seed, call sequence), like the base generator, and the overlay
/// is a pure function of the item's global position, so two runs with the
/// same seed and chunking see byte-identical streams.
class BurstyStreamGenerator {
 public:
  BurstyStreamGenerator(std::vector<StreamPredicate> schema,
                        GeneratorOptions options, BurstOptions burst);

  /// Generates the next `count` items of the stream (positions continue
  /// across calls).
  std::vector<Triple> Generate(size_t count);

  /// True when global position `position` falls inside a spike.
  bool InBurst(uint64_t position) const;

  /// Intended arrival-rate multiplier at `position` (>= 1.0); producers
  /// multiply their base push rate by this to realize the load shape.
  double IntensityAt(uint64_t position) const;

  /// Global position of the next item Generate will produce.
  uint64_t position() const { return position_; }

  const BurstOptions& burst_options() const { return burst_; }

 private:
  SyntheticStreamGenerator base_;
  BurstOptions burst_;
  Rng overlay_rng_;
  uint64_t position_ = 0;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAM_GENERATOR_H_
