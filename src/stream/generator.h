#ifndef STREAMASP_STREAM_GENERATOR_H_
#define STREAMASP_STREAM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "asp/symbol_table.h"
#include "stream/triple.h"
#include "util/rng.h"

namespace streamasp {

/// How subject/object values are drawn.
enum class GeneratorProfile {
  /// The paper's literal setup (§IV "Input window"): subjects and objects
  /// are uniform integers in [0, n) where n is the window size. Faithful,
  /// but with realistic rule thresholds almost no rule ever fires, so
  /// derived atoms are rare.
  kPaperUniform,

  /// Subjects (entities/locations) are drawn from a small pool
  /// (n / location_divisor) and objects from [0, value_range), so that
  /// joins and threshold comparisons fire at a healthy rate. Used by the
  /// accuracy figures; documented as a substitution in EXPERIMENTS.md.
  kEventRich,
};

/// Configuration of the synthetic stream.
struct GeneratorOptions {
  uint64_t seed = 42;
  GeneratorProfile profile = GeneratorProfile::kEventRich;

  /// kEventRich: pool size of subjects is max(1, window_size / this).
  size_t location_divisor = 50;

  /// kEventRich: objects are uniform in [0, value_range).
  int64_t value_range = 100;
};

/// Shape of one stream predicate the generator can emit.
struct StreamPredicate {
  SymbolId predicate = kInvalidSymbol;
  bool has_object = false;  ///< true => arity 2 (subject + object).

  /// When non-empty, objects are drawn uniformly from this pool instead of
  /// the numeric range — e.g. car_in_smoke's {high, low} status values.
  std::vector<Term> object_pool;

  /// Relative frequency of this predicate in the stream (must be > 0).
  /// The paper's P' experiment has duplicated car_number instances at 25%
  /// of the window, which the figure benches reproduce by weighting it.
  double weight = 1.0;
};

/// Deterministic synthetic RDF stream over a fixed predicate schema,
/// following the paper's workload: every item's predicate is drawn from
/// inpre(P), values are integers bounded by the window size (or by the
/// event-rich pools).
class SyntheticStreamGenerator {
 public:
  SyntheticStreamGenerator(std::vector<StreamPredicate> schema,
                           GeneratorOptions options);

  /// Generates `window_size` triples. Deterministic in (seed, call
  /// sequence); successive calls continue the stream.
  std::vector<Triple> GenerateWindow(size_t window_size);

  /// Generates a window wrapped with the next sequence number.
  TripleWindow GenerateTripleWindow(size_t window_size);

 private:
  Term RandomSubject(size_t window_size);
  Term RandomObject(size_t window_size);
  const StreamPredicate& RandomPredicate();

  std::vector<StreamPredicate> schema_;
  std::vector<double> cumulative_weight_;
  GeneratorOptions options_;
  Rng rng_;
  uint64_t next_sequence_ = 0;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAM_GENERATOR_H_
