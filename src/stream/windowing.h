#ifndef STREAMASP_STREAM_WINDOWING_H_
#define STREAMASP_STREAM_WINDOWING_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "stream/triple.h"
#include "stream/window_store.h"

namespace streamasp {

/// A stream item paired with its (application) timestamp in milliseconds.
struct TimestampedTriple {
  Triple triple;
  int64_t timestamp_ms = 0;
};

/// Sliding tuple-based window: keeps the most recent `size` items and
/// emits a window every `slide` arrivals. slide == size gives the paper's
/// tumbling behaviour (each item processed exactly once); slide < size
/// re-processes overlapping suffixes, the usual CQELS/C-SPARQL semantics.
///
/// Every emitted window carries its delta against the previously emitted
/// window (TripleWindow::expired/admitted): the items evicted from and
/// pushed into the buffer since the last emission. slide == size makes the
/// delta a full replacement (expired == previous window, admitted == the
/// new one), which downstream grounding caches treat as a full
/// invalidation.
class SlidingCountWindower {
 public:
  using WindowCallback = std::function<void(const TripleWindow&)>;

  /// Requires size >= 1 and 1 <= slide <= size.
  SlidingCountWindower(size_t size, size_t slide, WindowCallback callback);

  /// Feeds one item; may emit a window.
  void Push(const Triple& triple);

  /// Emits the current partial content (if any) as a final window.
  void Flush();

  uint64_t emitted_windows() const { return next_sequence_; }

  /// Column-storage bytes of the retained buffer (bytes-per-triple stat).
  size_t retained_bytes() const { return buffer_.bytes(); }

 private:
  void Emit();

  size_t size_;
  size_t slide_;
  WindowCallback callback_;
  WindowStore buffer_;  ///< Columnar retained window (compact data plane).
  std::vector<Triple> pending_expired_;   ///< Evicted since last emission.
  std::vector<Triple> pending_admitted_;  ///< Arrived since last emission.
  size_t arrivals_since_emit_ = 0;
  bool emitted_once_ = false;
  uint64_t next_sequence_ = 0;
};

/// Sliding time-based window: emits, every `slide_ms` of event time, the
/// items whose timestamps fall in the last `size_ms` milliseconds.
/// Timestamps must be non-decreasing (event time); out-of-order items are
/// clamped forward to the latest seen timestamp.
///
/// Emitted windows carry expired/admitted deltas relative to the
/// previously *emitted* window (boundaries skipped for being empty fold
/// their evictions into the next emission). An item that arrives and ages
/// out between two emissions appears in both sets; the multiset invariant
/// previous - expired + admitted == items still holds.
class SlidingTimeWindower {
 public:
  using WindowCallback = std::function<void(const TripleWindow&)>;

  /// Requires size_ms >= 1 and 1 <= slide_ms.
  SlidingTimeWindower(int64_t size_ms, int64_t slide_ms,
                      WindowCallback callback);

  void Push(const Triple& triple, int64_t timestamp_ms);

  /// Emits whatever the current window holds.
  void Flush();

  uint64_t emitted_windows() const { return next_sequence_; }

  /// Column-storage bytes of the retained buffer (bytes-per-triple stat).
  size_t retained_bytes() const { return buffer_.bytes(); }

 private:
  void EvictOlderThan(int64_t cutoff_ms);
  void Emit();

  int64_t size_ms_;
  int64_t slide_ms_;
  WindowCallback callback_;
  WindowStore buffer_{WindowStore::Options{/*with_timestamps=*/true, false}};
  std::vector<Triple> pending_expired_;
  std::vector<Triple> pending_admitted_;
  int64_t latest_ms_ = 0;
  int64_t next_emit_ms_ = 0;
  bool saw_any_ = false;
  uint64_t next_sequence_ = 0;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAM_WINDOWING_H_
