#ifndef STREAMASP_STREAM_WINDOW_STORE_H_
#define STREAMASP_STREAM_WINDOW_STORE_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "stream/triple.h"

namespace streamasp {

/// Columnar ring buffer backing a windower's (or the sharded router's)
/// retained window: subject/predicate/object live in three dense
/// structure-of-arrays columns of fixed-width slots, with optional
/// timestamp and shard-assignment columns for the time windower and the
/// router's global window. Eviction pops the logical front by bumping a
/// head offset; storage is compacted in one memmove whenever dead slots
/// outnumber live ones, so Append/PopFront stay amortized O(1) with no
/// per-item allocation (the columns are trivially copyable slots, never
/// node-based deque chunks).
///
/// This replaces the previous std::deque<Triple> retained buffers; with
/// PackedTerm slots a retained triple costs 20 bytes of column storage
/// (8 + 4 + 8) versus ~80 bytes per deque-of-Triple node payload in the
/// unpacked representation.
class WindowStore {
 public:
  struct Options {
    bool with_timestamps = false;
    bool with_shards = false;
  };

  WindowStore() = default;
  explicit WindowStore(Options options) : options_(options) {}

  size_t size() const { return subjects_.size() - head_; }
  bool empty() const { return size() == 0; }

  void Append(const Triple& t, int64_t timestamp_ms = 0, uint32_t shard = 0) {
    subjects_.push_back(t.subject);
    predicates_.push_back(t.predicate);
    objects_.push_back(t.object);
    if (options_.with_timestamps) timestamps_.push_back(timestamp_ms);
    if (options_.with_shards) shards_.push_back(shard);
  }

  /// The item at logical position i (0 == oldest retained).
  Triple At(size_t i) const {
    size_t slot = head_ + i;
    return Triple{subjects_[slot], predicates_[slot], objects_[slot]};
  }
  Triple Front() const { return At(0); }
  int64_t TimestampAt(size_t i) const { return timestamps_[head_ + i]; }
  uint32_t ShardAt(size_t i) const { return shards_[head_ + i]; }

  void PopFront() {
    ++head_;
    MaybeCompact();
  }

  void Clear() {
    head_ = 0;
    subjects_.clear();
    predicates_.clear();
    objects_.clear();
    timestamps_.clear();
    shards_.clear();
  }

  /// Appends the retained items, oldest first, to *out.
  void CopyTo(std::vector<Triple>* out) const {
    out->reserve(out->size() + size());
    for (size_t i = head_; i < subjects_.size(); ++i) {
      out->push_back(Triple{subjects_[i], predicates_[i], objects_[i]});
    }
  }

  /// Bytes of column storage currently reserved (capacity, not size): the
  /// store's contribution to the bytes-per-triple counter.
  size_t bytes() const {
    return subjects_.capacity() * sizeof(PackedTerm) +
           predicates_.capacity() * sizeof(SymbolId) +
           objects_.capacity() * sizeof(PackedTerm) +
           timestamps_.capacity() * sizeof(int64_t) +
           shards_.capacity() * sizeof(uint32_t);
  }

 private:
  void MaybeCompact() {
    // Compact when dead slots outnumber live ones (amortized O(1): each
    // surviving slot moves at most once per halving of the dead prefix).
    if (head_ < 64 || head_ < size()) return;
    subjects_.erase(subjects_.begin(), subjects_.begin() + head_);
    predicates_.erase(predicates_.begin(), predicates_.begin() + head_);
    objects_.erase(objects_.begin(), objects_.begin() + head_);
    if (options_.with_timestamps) {
      timestamps_.erase(timestamps_.begin(), timestamps_.begin() + head_);
    }
    if (options_.with_shards) {
      shards_.erase(shards_.begin(), shards_.begin() + head_);
    }
    head_ = 0;
  }

  Options options_;
  size_t head_ = 0;
  std::vector<PackedTerm> subjects_;
  std::vector<SymbolId> predicates_;
  std::vector<PackedTerm> objects_;
  std::vector<int64_t> timestamps_;
  std::vector<uint32_t> shards_;
};

static_assert(std::is_trivially_copyable<Triple>::value,
              "the columnar window store assumes POD triples");

}  // namespace streamasp

#endif  // STREAMASP_STREAM_WINDOW_STORE_H_
