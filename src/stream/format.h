#ifndef STREAMASP_STREAM_FORMAT_H_
#define STREAMASP_STREAM_FORMAT_H_

#include <unordered_map>
#include <vector>

#include "asp/atom.h"
#include "stream/triple.h"
#include "util/status.h"

namespace streamasp {

/// Translates between the stream processor's RDF triples and the solver's
/// ASP ground facts (the "Data Format Processor" boxes of the StreamRule
/// architecture, Figure 1).
///
/// The paper stresses that this translation time is part of reasoner
/// latency ("performance of the reasoning subprocess should be measured by
/// not only the processing time of the solver but also the time required
/// for data transformation"); the reasoners therefore run conversion
/// inside their timed sections.
///
/// The processor needs a schema — the arity of each input predicate — to
/// know whether a triple <s, p, o> maps to p(s, o) or p(s) (object-less
/// item). Arities beyond 2 are rejected: an RDF triple cannot carry them.
class DataFormatProcessor {
 public:
  /// Declares `predicate` with the given arity (1 or 2). Re-declaring with
  /// a different arity fails.
  Status DeclarePredicate(SymbolId predicate, uint32_t arity);

  /// Declares all of a program's input predicates.
  Status DeclareInputPredicates(
      const std::vector<PredicateSignature>& signatures);

  /// Translates one triple to a ground fact. Fails on undeclared
  /// predicates or arity mismatches (missing/superfluous object).
  StatusOr<Atom> ToFact(const Triple& triple) const;

  /// Translates a whole window, preserving order.
  StatusOr<std::vector<Atom>> ToFacts(const std::vector<Triple>& items) const;

  /// Reverse direction: renders an arity-1 or arity-2 ground atom as a
  /// triple (used when streaming answers onward). Fails for other arities
  /// or non-ground atoms.
  StatusOr<Triple> ToTriple(const Atom& atom) const;

 private:
  std::unordered_map<SymbolId, uint32_t> arity_of_;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAM_FORMAT_H_
