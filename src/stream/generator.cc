#include "stream/generator.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>

namespace streamasp {

SyntheticStreamGenerator::SyntheticStreamGenerator(
    std::vector<StreamPredicate> schema, GeneratorOptions options)
    : schema_(std::move(schema)), options_(options), rng_(options.seed) {
  assert(!schema_.empty());
  double total = 0.0;
  cumulative_weight_.reserve(schema_.size());
  for (const StreamPredicate& shape : schema_) {
    assert(shape.weight > 0.0);
    total += shape.weight;
    cumulative_weight_.push_back(total);
  }
}

const StreamPredicate& SyntheticStreamGenerator::RandomPredicate() {
  const double draw = rng_.NextDouble() * cumulative_weight_.back();
  const auto it = std::lower_bound(cumulative_weight_.begin(),
                                   cumulative_weight_.end(), draw);
  const size_t index = static_cast<size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_weight_.begin(),
                               static_cast<std::ptrdiff_t>(schema_.size()) - 1));
  return schema_[index];
}

Term SyntheticStreamGenerator::RandomSubject(size_t window_size) {
  if (options_.profile == GeneratorProfile::kPaperUniform) {
    return Term::Integer(
        static_cast<int64_t>(rng_.NextBounded(std::max<size_t>(window_size, 1))));
  }
  const size_t pool =
      std::max<size_t>(1, window_size / options_.location_divisor);
  return Term::Integer(static_cast<int64_t>(rng_.NextBounded(pool)));
}

Term SyntheticStreamGenerator::RandomObject(size_t window_size) {
  if (options_.profile == GeneratorProfile::kPaperUniform) {
    return Term::Integer(
        static_cast<int64_t>(rng_.NextBounded(std::max<size_t>(window_size, 1))));
  }
  return Term::Integer(static_cast<int64_t>(
      rng_.NextBounded(static_cast<uint64_t>(options_.value_range))));
}

std::vector<Triple> SyntheticStreamGenerator::GenerateWindow(
    size_t window_size) {
  std::vector<Triple> items;
  items.reserve(window_size);
  for (size_t i = 0; i < window_size; ++i) {
    const StreamPredicate& shape = RandomPredicate();
    Triple triple;
    triple.predicate = shape.predicate;
    triple.subject = RandomSubject(window_size);
    if (shape.has_object) {
      triple.object =
          shape.object_pool.empty()
              ? RandomObject(window_size)
              : shape.object_pool[rng_.NextBounded(shape.object_pool.size())];
    }
    items.push_back(std::move(triple));
  }
  return items;
}

TripleWindow SyntheticStreamGenerator::GenerateTripleWindow(
    size_t window_size) {
  TripleWindow window;
  window.sequence = next_sequence_++;
  window.items = GenerateWindow(window_size);
  return window;
}

}  // namespace streamasp
