#include "stream/generator.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>

namespace streamasp {

SyntheticStreamGenerator::SyntheticStreamGenerator(
    std::vector<StreamPredicate> schema, GeneratorOptions options)
    : schema_(std::move(schema)), options_(options), rng_(options.seed) {
  assert(!schema_.empty());
  double total = 0.0;
  cumulative_weight_.reserve(schema_.size());
  for (const StreamPredicate& shape : schema_) {
    assert(shape.weight > 0.0);
    total += shape.weight;
    cumulative_weight_.push_back(total);
  }
}

const StreamPredicate& SyntheticStreamGenerator::RandomPredicate() {
  const double draw = rng_.NextDouble() * cumulative_weight_.back();
  const auto it = std::lower_bound(cumulative_weight_.begin(),
                                   cumulative_weight_.end(), draw);
  const size_t index = static_cast<size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_weight_.begin(),
                               static_cast<std::ptrdiff_t>(schema_.size()) - 1));
  return schema_[index];
}

Term SyntheticStreamGenerator::RandomSubject(size_t window_size) {
  if (options_.profile == GeneratorProfile::kPaperUniform) {
    return Term::Integer(
        static_cast<int64_t>(rng_.NextBounded(std::max<size_t>(window_size, 1))));
  }
  const size_t pool =
      std::max<size_t>(1, window_size / options_.location_divisor);
  return Term::Integer(static_cast<int64_t>(rng_.NextBounded(pool)));
}

Term SyntheticStreamGenerator::RandomObject(size_t window_size) {
  if (options_.profile == GeneratorProfile::kPaperUniform) {
    return Term::Integer(
        static_cast<int64_t>(rng_.NextBounded(std::max<size_t>(window_size, 1))));
  }
  return Term::Integer(static_cast<int64_t>(
      rng_.NextBounded(static_cast<uint64_t>(options_.value_range))));
}

std::vector<Triple> SyntheticStreamGenerator::GenerateWindow(
    size_t window_size) {
  std::vector<Triple> items;
  items.reserve(window_size);
  for (size_t i = 0; i < window_size; ++i) {
    const StreamPredicate& shape = RandomPredicate();
    Triple triple;
    triple.predicate = shape.predicate;
    triple.subject = RandomSubject(window_size);
    if (shape.has_object) {
      triple.object =
          shape.object_pool.empty()
              ? RandomObject(window_size)
              : shape.object_pool[rng_.NextBounded(shape.object_pool.size())];
    }
    items.push_back(std::move(triple));
  }
  return items;
}

TripleWindow SyntheticStreamGenerator::GenerateTripleWindow(
    size_t window_size) {
  TripleWindow window;
  window.sequence = next_sequence_++;
  window.items = GenerateWindow(window_size);
  return window;
}

BurstyStreamGenerator::BurstyStreamGenerator(
    std::vector<StreamPredicate> schema, GeneratorOptions options,
    BurstOptions burst)
    : base_(std::move(schema), options),
      burst_(burst),
      // Decorrelate the overlay draws from the base generator so adding
      // the overlay never perturbs the base item sequence.
      overlay_rng_(options.seed ^ 0x9e3779b97f4a7c15ULL) {
  if (burst_.period == 0) burst_.period = 1;
  if (burst_.hot_subjects == 0) burst_.hot_subjects = 1;
  burst_.burst_fraction = std::min(std::max(burst_.burst_fraction, 0.0), 1.0);
  if (burst_.burst_intensity < 1.0) burst_.burst_intensity = 1.0;
}

bool BurstyStreamGenerator::InBurst(uint64_t position) const {
  if (burst_.shape == BurstShape::kSustained) return true;
  const uint64_t phase = position % burst_.period;
  return static_cast<double>(phase) <
         burst_.burst_fraction * static_cast<double>(burst_.period);
}

double BurstyStreamGenerator::IntensityAt(uint64_t position) const {
  return InBurst(position) ? burst_.burst_intensity : 1.0;
}

std::vector<Triple> BurstyStreamGenerator::Generate(size_t count) {
  std::vector<Triple> items = base_.GenerateWindow(count);
  const bool storm = burst_.shape == BurstShape::kHotKeyStorm;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t position = position_ + i;
    if (storm && InBurst(position) &&
        overlay_rng_.NextDouble() < burst_.hot_fraction) {
      // Collapse the subject onto the hot pool. Hot keys live outside the
      // base subject range so the storm is visible as distinct entities
      // (and hashes them onto a fixed small set of shards).
      items[i].subject = Term::Integer(static_cast<int64_t>(
          (1u << 20) + overlay_rng_.NextBounded(burst_.hot_subjects)));
    }
  }
  position_ += count;
  return items;
}

}  // namespace streamasp
