#include "stream/query_processor.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace streamasp {

StreamQueryProcessor::StreamQueryProcessor(size_t window_size,
                                           WindowCallback callback)
    : StreamQueryProcessor(window_size, /*slide=*/0, std::move(callback)) {}

StreamQueryProcessor::StreamQueryProcessor(size_t window_size, size_t slide,
                                           WindowCallback callback)
    : window_size_(window_size == 0 ? 1 : window_size),
      slide_(slide == 0 ? window_size_
                        : std::clamp<size_t>(slide, 1, window_size_)),
      callback_(std::move(callback)) {
  assert(callback_ != nullptr);
  if (!sliding()) pending_.reserve(window_size_);
}

void StreamQueryProcessor::RegisterPredicate(SymbolId predicate) {
  selected_.insert(predicate);
}

void StreamQueryProcessor::Push(const Triple& triple) {
  if (!selected_.count(triple.predicate)) {
    ++dropped_;
    return;
  }
  if (!sliding()) {
    pending_.push_back(triple);
    if (pending_.size() >= window_size_) Flush();
    return;
  }
  buffer_.push_back(triple);
  pending_admitted_.push_back(triple);
  if (buffer_.size() > window_size_) {
    pending_expired_.push_back(buffer_.front());
    buffer_.pop_front();
  }
  ++arrivals_since_emit_;
  // First window fires when the buffer first fills; afterwards every
  // `slide_` arrivals (same cadence as SlidingCountWindower).
  if ((!emitted_once_ && buffer_.size() == window_size_) ||
      (emitted_once_ && arrivals_since_emit_ >= slide_)) {
    EmitSliding();
  }
}

void StreamQueryProcessor::PushBatch(const std::vector<Triple>& triples) {
  for (const Triple& t : triples) Push(t);
}

void StreamQueryProcessor::Flush() {
  if (sliding()) {
    if (buffer_.empty()) return;
    if (emitted_once_ && arrivals_since_emit_ == 0) return;  // Nothing new.
    EmitSliding();
    return;
  }
  if (pending_.empty()) return;
  TripleWindow window;
  window.sequence = next_sequence_++;
  window.items = std::move(pending_);
  pending_.clear();
  pending_.reserve(window_size_);
  callback_(std::move(window));
}

void StreamQueryProcessor::EmitSliding() {
  TripleWindow window;
  window.sequence = next_sequence_++;
  window.items.assign(buffer_.begin(), buffer_.end());
  window.has_delta = true;
  window.expired = std::move(pending_expired_);
  window.admitted = std::move(pending_admitted_);
  pending_expired_.clear();
  pending_admitted_.clear();
  arrivals_since_emit_ = 0;
  emitted_once_ = true;
  callback_(std::move(window));
}

}  // namespace streamasp
