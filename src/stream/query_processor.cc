#include "stream/query_processor.h"

#include <cassert>
#include <utility>

namespace streamasp {

StreamQueryProcessor::StreamQueryProcessor(size_t window_size,
                                           WindowCallback callback)
    : window_size_(window_size == 0 ? 1 : window_size),
      callback_(std::move(callback)) {
  assert(callback_ != nullptr);
  pending_.reserve(window_size_);
}

void StreamQueryProcessor::RegisterPredicate(SymbolId predicate) {
  selected_.insert(predicate);
}

void StreamQueryProcessor::Push(const Triple& triple) {
  if (!selected_.count(triple.predicate)) {
    ++dropped_;
    return;
  }
  pending_.push_back(triple);
  if (pending_.size() >= window_size_) {
    Flush();
  }
}

void StreamQueryProcessor::PushBatch(const std::vector<Triple>& triples) {
  for (const Triple& t : triples) Push(t);
}

void StreamQueryProcessor::Flush() {
  if (pending_.empty()) return;
  TripleWindow window;
  window.sequence = next_sequence_++;
  window.items = std::move(pending_);
  pending_.clear();
  pending_.reserve(window_size_);
  callback_(std::move(window));
}

}  // namespace streamasp
