#include "stream/query_processor.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace streamasp {

StreamQueryProcessor::StreamQueryProcessor(size_t window_size,
                                           WindowCallback callback)
    : StreamQueryProcessor(window_size, /*slide=*/0, std::move(callback)) {}

StreamQueryProcessor::StreamQueryProcessor(size_t window_size, size_t slide,
                                           WindowCallback callback)
    : StreamQueryProcessor(window_size, slide, std::move(callback),
                           Punctuation::kInternal) {}

StreamQueryProcessor::StreamQueryProcessor(size_t window_size, size_t slide,
                                           WindowCallback callback,
                                           Punctuation punctuation)
    : window_size_(window_size == 0 ? 1 : window_size),
      slide_(slide == 0 ? window_size_
                        : std::clamp<size_t>(slide, 1, window_size_)),
      punctuation_(punctuation),
      callback_(std::move(callback)) {
  assert(callback_ != nullptr);
  if (!external() && !sliding()) pending_.reserve(window_size_);
}

void StreamQueryProcessor::RegisterPredicate(SymbolId predicate) {
  selected_.insert(predicate);
}

void StreamQueryProcessor::Push(const Triple& triple) {
  if (!selected_.count(triple.predicate)) {
    ++dropped_;
    return;
  }
  if (external()) {
    // Retain only: the external windower decides what expires and when a
    // window closes (CloseWindowWithDelta).
    buffer_.Append(triple);
    return;
  }
  if (!sliding()) {
    pending_.push_back(triple);
    if (pending_.size() >= window_size_) Flush();
    return;
  }
  buffer_.Append(triple);
  pending_admitted_.push_back(triple);
  if (buffer_.size() > window_size_) {
    pending_expired_.push_back(buffer_.Front());
    buffer_.PopFront();
  }
  ++arrivals_since_emit_;
  // First window fires when the buffer first fills; afterwards every
  // `slide_` arrivals (same cadence as SlidingCountWindower).
  if ((!emitted_once_ && buffer_.size() == window_size_) ||
      (emitted_once_ && arrivals_since_emit_ >= slide_)) {
    EmitSliding();
  }
}

void StreamQueryProcessor::PushBatch(const std::vector<Triple>& triples) {
  for (const Triple& t : triples) Push(t);
}

void StreamQueryProcessor::CloseWindowWithDelta(WindowDelta delta) {
  assert(external());
  assert(delta.expired.size() <= buffer_.size());
  for (size_t i = 0; i < delta.expired.size() && !buffer_.empty(); ++i) {
    // The expired prefix is positional: the external windower evicts in
    // global arrival order, and this buffer is the arrival-ordered
    // sub-stream, so the i-th expired item IS the current front.
    assert(buffer_.Front() == delta.expired[i]);
    buffer_.PopFront();
  }
  TripleWindow window;
  window.sequence = next_sequence_++;
  buffer_.CopyTo(&window.items);
  window.has_delta = true;
  window.delta_base = delta_base_;
  if (pending_expired_.empty() && pending_admitted_.empty()) {
    window.expired = std::move(delta.expired);
    window.admitted = std::move(delta.admitted);
  } else {
    // Folded shed deltas are older than the router's: prepend-by-append.
    window.expired = std::move(pending_expired_);
    window.admitted = std::move(pending_admitted_);
    window.expired.insert(window.expired.end(), delta.expired.begin(),
                          delta.expired.end());
    window.admitted.insert(window.admitted.end(), delta.admitted.begin(),
                           delta.admitted.end());
    pending_expired_.clear();
    pending_admitted_.clear();
  }
  delta_base_ = window.sequence;
  callback_(std::move(window));
}

void StreamQueryProcessor::FoldShedDelta(TripleWindow* shed) {
  if (!shed->has_delta) return;
  // Synchronous sheds only: the window being folded must be this
  // processor's most recent emission, or the accumulators would net
  // changes out of order (see header).
  assert(shed->sequence + 1 == next_sequence_);
  assert(delta_base_ == shed->sequence);
  pending_expired_.insert(pending_expired_.end(),
                          std::make_move_iterator(shed->expired.begin()),
                          std::make_move_iterator(shed->expired.end()));
  pending_admitted_.insert(pending_admitted_.end(),
                           std::make_move_iterator(shed->admitted.begin()),
                           std::make_move_iterator(shed->admitted.end()));
  shed->expired.clear();
  shed->admitted.clear();
  delta_base_ = shed->delta_base;
}

void StreamQueryProcessor::Flush() {
  if (external()) return;  // Boundaries belong to the external windower.
  if (sliding()) {
    if (buffer_.empty()) return;
    if (emitted_once_ && arrivals_since_emit_ == 0) return;  // Nothing new.
    EmitSliding();
    return;
  }
  if (pending_.empty()) return;
  TripleWindow window;
  window.sequence = next_sequence_++;
  window.items = std::move(pending_);
  pending_.clear();
  pending_.reserve(window_size_);
  callback_(std::move(window));
}

void StreamQueryProcessor::EmitSliding() {
  TripleWindow window;
  window.sequence = next_sequence_++;
  buffer_.CopyTo(&window.items);
  window.has_delta = true;
  window.delta_base = delta_base_;
  window.expired = std::move(pending_expired_);
  window.admitted = std::move(pending_admitted_);
  pending_expired_.clear();
  pending_admitted_.clear();
  delta_base_ = window.sequence;
  arrivals_since_emit_ = 0;
  emitted_once_ = true;
  callback_(std::move(window));
}

}  // namespace streamasp
