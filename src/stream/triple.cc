#include "stream/triple.h"

namespace streamasp {

std::string Triple::ToString(const SymbolTable& symbols) const {
  std::string out = "<" + subject.ToString(symbols) + ", " +
                    symbols.NameOf(predicate);
  if (object.has_value()) {
    out += ", " + object->ToString(symbols);
  }
  out += ">";
  return out;
}

}  // namespace streamasp
