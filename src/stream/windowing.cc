#include "stream/windowing.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace streamasp {

SlidingCountWindower::SlidingCountWindower(size_t size, size_t slide,
                                           WindowCallback callback)
    : size_(std::max<size_t>(size, 1)),
      slide_(std::clamp<size_t>(slide, 1, size_)),
      callback_(std::move(callback)) {
  assert(callback_ != nullptr);
}

void SlidingCountWindower::Push(const Triple& triple) {
  buffer_.Append(triple);
  pending_admitted_.push_back(triple);
  if (buffer_.size() > size_) {
    pending_expired_.push_back(buffer_.Front());
    buffer_.PopFront();
  }
  ++arrivals_since_emit_;
  // First window fires when the buffer first fills; afterwards every
  // `slide_` arrivals.
  if ((!emitted_once_ && buffer_.size() == size_) ||
      (emitted_once_ && arrivals_since_emit_ >= slide_)) {
    Emit();
  }
}

void SlidingCountWindower::Flush() {
  if (buffer_.empty()) return;
  if (emitted_once_ && arrivals_since_emit_ == 0) return;  // Nothing new.
  Emit();
}

void SlidingCountWindower::Emit() {
  TripleWindow window;
  window.sequence = next_sequence_++;
  buffer_.CopyTo(&window.items);
  window.has_delta = true;
  window.delta_base =
      window.sequence == 0 ? TripleWindow::kNoDeltaBase : window.sequence - 1;
  window.expired = std::move(pending_expired_);
  window.admitted = std::move(pending_admitted_);
  pending_expired_.clear();
  pending_admitted_.clear();
  arrivals_since_emit_ = 0;
  emitted_once_ = true;
  callback_(window);
}

SlidingTimeWindower::SlidingTimeWindower(int64_t size_ms, int64_t slide_ms,
                                         WindowCallback callback)
    : size_ms_(std::max<int64_t>(size_ms, 1)),
      slide_ms_(std::max<int64_t>(slide_ms, 1)),
      callback_(std::move(callback)) {
  assert(callback_ != nullptr);
}

void SlidingTimeWindower::Push(const Triple& triple, int64_t timestamp_ms) {
  // Clamp stragglers forward: event time never goes backwards.
  timestamp_ms = std::max(timestamp_ms, latest_ms_);
  if (!saw_any_) {
    saw_any_ = true;
    next_emit_ms_ = timestamp_ms + slide_ms_;
  }
  latest_ms_ = timestamp_ms;

  // Fire all window boundaries that the new item's timestamp crossed.
  while (timestamp_ms >= next_emit_ms_) {
    EvictOlderThan(next_emit_ms_ - size_ms_);
    Emit();
    next_emit_ms_ += slide_ms_;
  }

  buffer_.Append(triple, timestamp_ms);
  pending_admitted_.push_back(triple);
}

void SlidingTimeWindower::Flush() {
  if (!saw_any_) return;
  EvictOlderThan(latest_ms_ - size_ms_ + 1);
  if (!buffer_.empty()) Emit();
}

void SlidingTimeWindower::EvictOlderThan(int64_t cutoff_ms) {
  while (!buffer_.empty() && buffer_.TimestampAt(0) < cutoff_ms) {
    pending_expired_.push_back(buffer_.Front());
    buffer_.PopFront();
  }
}

void SlidingTimeWindower::Emit() {
  if (buffer_.empty()) return;  // Boundaries with no live items are skipped.
  TripleWindow window;
  window.sequence = next_sequence_++;
  buffer_.CopyTo(&window.items);
  // Deltas accumulate across skipped (empty) boundaries so the multiset
  // invariant holds against the previously *emitted* window.
  window.has_delta = true;
  window.delta_base =
      window.sequence == 0 ? TripleWindow::kNoDeltaBase : window.sequence - 1;
  window.expired = std::move(pending_expired_);
  window.admitted = std::move(pending_admitted_);
  pending_expired_.clear();
  pending_admitted_.clear();
  callback_(window);
}

}  // namespace streamasp
