#ifndef STREAMASP_STREAM_TRIPLE_H_
#define STREAMASP_STREAM_TRIPLE_H_

#include <optional>
#include <string>
#include <vector>

#include "asp/symbol_table.h"
#include "asp/term.h"

namespace streamasp {

/// One RDF-style data item <s, p, o> as delivered by the stream query
/// processor. The predicate is an interned symbol; subject and object are
/// ground terms (symbols or integers). Items for unary predicates (e.g.
/// traffic_light(newcastle)) carry no object.
struct Triple {
  Term subject;
  SymbolId predicate = kInvalidSymbol;
  std::optional<Term> object;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.predicate == b.predicate && a.subject == b.subject &&
           a.object == b.object;
  }

  /// Renders "<s, p, o>" (or "<s, p>" without an object).
  std::string ToString(const SymbolTable& symbols) const;
};

/// A tuple-based window: the unit of work the reasoner processes per
/// computation (paper §I). Windows carry a sequence number so downstream
/// components can correlate answers with inputs.
struct TripleWindow {
  uint64_t sequence = 0;
  std::vector<Triple> items;

  size_t size() const { return items.size(); }
  bool empty() const { return items.empty(); }
};

}  // namespace streamasp

#endif  // STREAMASP_STREAM_TRIPLE_H_
