#ifndef STREAMASP_STREAM_TRIPLE_H_
#define STREAMASP_STREAM_TRIPLE_H_

#include <optional>
#include <string>
#include <vector>

#include "asp/packed_term.h"
#include "asp/symbol_table.h"
#include "asp/term.h"

namespace streamasp {

/// One RDF-style data item <s, p, o> as delivered by the stream query
/// processor. The predicate is an interned symbol; subject and object are
/// packed ground terms (symbols or integers inline; rare compound values
/// escape to the global arena). Items for unary predicates (e.g.
/// traffic_light(newcastle)) carry no object — an absent object is the
/// all-zero PackedTerm, so the struct is a trivially copyable 24-byte
/// record and window buffers can hold it columnar without per-item heap
/// traffic.
struct Triple {
  PackedTerm subject;
  SymbolId predicate = kInvalidSymbol;
  PackedTerm object;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.predicate == b.predicate && a.subject == b.subject &&
           a.object == b.object;
  }

  /// Renders "<s, p, o>" (or "<s, p>" without an object).
  std::string ToString(const SymbolTable& symbols) const;
};

/// A tuple-based window: the unit of work the reasoner processes per
/// computation (paper §I). Windows carry a sequence number so downstream
/// components can correlate answers with inputs.
///
/// Sliding windowers additionally emit the delta against the previous
/// window of the same stream: as multisets,
///   previous.items - expired + admitted == items.
/// The first window's delta is relative to the empty window (admitted ==
/// items). An item may appear in both sets (pushed and evicted between two
/// emissions of a time windower) — consumers must net the counts. Windows
/// from tumbling windowers leave has_delta false; the incremental
/// grounding layer then falls back to its own snapshot diff.
///
/// Under load shedding the delta is not necessarily relative to
/// `sequence - 1`: when an emitted window is shed synchronously (kReject
/// refusal or admission-control rejection) the query processor folds its
/// delta into the next emission, so the next window's delta nets the
/// change across the gap. `delta_base` names the emitted sequence the
/// delta is relative to (kNoDeltaBase for the first emission, whose delta
/// is relative to the empty window); incremental consumers compare it
/// against their cached sequence and snapshot-diff on mismatch.
struct TripleWindow {
  /// delta_base value of a window whose delta has no predecessor.
  static constexpr uint64_t kNoDeltaBase = ~uint64_t{0};

  uint64_t sequence = 0;
  std::vector<Triple> items;

  bool has_delta = false;
  uint64_t delta_base = kNoDeltaBase;  ///< Window the delta is relative to.
  std::vector<Triple> expired;   ///< Left the window since the previous one.
  std::vector<Triple> admitted;  ///< Entered the window since the previous.

  size_t size() const { return items.size(); }
  bool empty() const { return items.empty(); }
};

/// A window-to-window multiset delta travelling on its own — the currency
/// of externally punctuated sliding windows. The sharded engine's router
/// computes one per shard at each global boundary (split of the global
/// delta by the shard key) and threads it through
/// `StreamRulePipeline::CloseWindow(WindowDelta)` into the shard's query
/// processor, which turns it into a delta-carrying TripleWindow. Expired
/// items must be listed in the retained window's arrival order (they are
/// the front of the receiver's buffer); duplicates are positional, so a
/// triple value retained twice expires once per listed occurrence.
struct WindowDelta {
  std::vector<Triple> expired;
  std::vector<Triple> admitted;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAM_TRIPLE_H_
