#ifndef STREAMASP_STREAM_QUERY_PROCESSOR_H_
#define STREAMASP_STREAM_QUERY_PROCESSOR_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "asp/symbol_table.h"
#include "stream/triple.h"
#include "stream/window_store.h"

namespace streamasp {

/// Minimal stand-in for the CQELS-style stream query processor at the
/// front of the StreamRule pipeline (Figure 1): it filters the raw triple
/// stream down to the predicates the registered query cares about and
/// groups the survivors into tuple-based windows, which it hands to the
/// reasoning layer via a callback.
///
/// The paper treats this tier as a black box whose output is the filtered
/// window; faithful filtering + windowing is all the downstream
/// experiments require (see DESIGN.md, substitution table).
class StreamQueryProcessor {
 public:
  /// Receives each completed window by value: the processor hands off its
  /// buffer, so the callback may move the window onward (e.g. into the
  /// async pipeline's work queue) without copying. Lambdas taking
  /// `const TripleWindow&` still bind.
  using WindowCallback = std::function<void(TripleWindow)>;

  /// `window_size` is the tuple-based window length; `callback` receives
  /// every completed window. Tumbling windows: each surviving item appears
  /// in exactly one window.
  StreamQueryProcessor(size_t window_size, WindowCallback callback);

  /// Sliding variant: emits the most recent `window_size` surviving items
  /// every `slide` arrivals (first emission once the window fills).
  /// Requires 1 <= slide <= window_size; slide == window_size (or the
  /// two-argument constructor) keeps tumbling behaviour. Sliding windows
  /// carry expired/admitted deltas (TripleWindow::has_delta), which the
  /// incremental grounding layer consumes.
  StreamQueryProcessor(size_t window_size, size_t slide,
                       WindowCallback callback);

  /// Who decides when a window closes and what it drops.
  enum class Punctuation {
    /// This processor: tuple counts against window_size/slide (above).
    kInternal,
    /// An external windower (the sharded engine's router): Push only
    /// retains survivors; windows are cut exclusively by
    /// CloseWindowWithDelta, whose delta also drives eviction.
    /// window_size/slide are ignored and Flush is a no-op — the external
    /// windower owns end-of-stream punctuation too.
    kExternal,
  };

  /// Externally punctuated variant (see Punctuation::kExternal).
  StreamQueryProcessor(size_t window_size, size_t slide,
                       WindowCallback callback, Punctuation punctuation);

  /// Registers a predicate the continuous query selects. Items with
  /// unregistered predicates are dropped. No registration = drop all.
  void RegisterPredicate(SymbolId predicate);

  /// Feeds one raw stream item; may trigger the callback when the current
  /// window fills up.
  void Push(const Triple& triple);

  /// Feeds a batch of items.
  void PushBatch(const std::vector<Triple>& triples);

  /// External punctuation only: evicts `delta.expired` (which must be the
  /// front of the retained buffer, in arrival order — the caller's
  /// contract; Debug builds verify it), then emits the remaining buffer
  /// as a delta-carrying sliding window. `delta.admitted` must be exactly
  /// the survivors Pushed since the previous punctuation; it is attached
  /// to the emitted window, not re-applied. An empty delta re-emits the
  /// unchanged buffer (full reuse downstream).
  void CloseWindowWithDelta(WindowDelta delta);

  /// Emits the current partial window (tumbling) or the current buffer
  /// contents if anything arrived since the last emission (sliding),
  /// regardless of size — e.g. at end of stream. No-op under external
  /// punctuation (the external windower owns every boundary).
  void Flush();

  /// Load-shedding support: hands a just-emitted delta-carrying window's
  /// delta back so the NEXT emission nets the change across the gap and
  /// the delivered stream's delta chain stays exact. The shed window's
  /// expired/admitted move into the delta accumulators and its delta_base
  /// becomes the accumulators' base, so under external punctuation the
  /// shard's next punctuation carries (shed delta ∘ next delta) —
  /// mirroring the router's skipped-empty-slice folding.
  ///
  /// Precondition: `shed` must be the most recent emission of this
  /// processor (shed.sequence == the last emitted sequence) — i.e. the
  /// caller sheds synchronously from inside the window callback, as the
  /// pipeline's kReject/admission-control path does. Asynchronous
  /// evictions (kDropOldest) must NOT fold: their gap is mid-stream, so
  /// the delta chain simply breaks and incremental consumers detect the
  /// delta_base mismatch and snapshot-diff. No-op for windows without a
  /// delta.
  void FoldShedDelta(TripleWindow* shed);

  /// Items dropped by the filter so far.
  uint64_t dropped_count() const { return dropped_; }

  /// Windows emitted so far.
  uint64_t emitted_windows() const { return next_sequence_; }

  /// Column-storage bytes of the retained sliding/external buffer (the
  /// query processor's contribution to the bytes-per-triple counter).
  size_t retained_bytes() const {
    return buffer_.bytes() + pending_.capacity() * sizeof(Triple);
  }

 private:
  bool sliding() const { return slide_ < window_size_; }
  bool external() const { return punctuation_ == Punctuation::kExternal; }
  void EmitSliding();

  size_t window_size_;
  size_t slide_ = 0;  ///< == window_size_ for tumbling.
  Punctuation punctuation_ = Punctuation::kInternal;
  WindowCallback callback_;
  std::unordered_set<SymbolId> selected_;
  /// Tumbling state: the window under construction.
  std::vector<Triple> pending_;
  /// Sliding state: last window_size_ survivors + delta accumulators
  /// (columnar; also the retained buffer under external punctuation).
  /// Under external punctuation the accumulators hold only folded shed
  /// deltas (FoldShedDelta), prepended to the router's delta at the next
  /// punctuation.
  WindowStore buffer_;
  std::vector<Triple> pending_expired_;
  std::vector<Triple> pending_admitted_;
  /// Emitted sequence the delta accumulators are relative to (becomes the
  /// next emission's TripleWindow::delta_base).
  uint64_t delta_base_ = TripleWindow::kNoDeltaBase;
  size_t arrivals_since_emit_ = 0;
  bool emitted_once_ = false;
  uint64_t next_sequence_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAM_QUERY_PROCESSOR_H_
