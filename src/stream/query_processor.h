#ifndef STREAMASP_STREAM_QUERY_PROCESSOR_H_
#define STREAMASP_STREAM_QUERY_PROCESSOR_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "asp/symbol_table.h"
#include "stream/triple.h"

namespace streamasp {

/// Minimal stand-in for the CQELS-style stream query processor at the
/// front of the StreamRule pipeline (Figure 1): it filters the raw triple
/// stream down to the predicates the registered query cares about and
/// groups the survivors into tuple-based windows, which it hands to the
/// reasoning layer via a callback.
///
/// The paper treats this tier as a black box whose output is the filtered
/// window; faithful filtering + windowing is all the downstream
/// experiments require (see DESIGN.md, substitution table).
class StreamQueryProcessor {
 public:
  /// Receives each completed window by value: the processor hands off its
  /// buffer, so the callback may move the window onward (e.g. into the
  /// async pipeline's work queue) without copying. Lambdas taking
  /// `const TripleWindow&` still bind.
  using WindowCallback = std::function<void(TripleWindow)>;

  /// `window_size` is the tuple-based window length; `callback` receives
  /// every completed window.
  StreamQueryProcessor(size_t window_size, WindowCallback callback);

  /// Registers a predicate the continuous query selects. Items with
  /// unregistered predicates are dropped. No registration = drop all.
  void RegisterPredicate(SymbolId predicate);

  /// Feeds one raw stream item; may trigger the callback when the current
  /// window fills up.
  void Push(const Triple& triple);

  /// Feeds a batch of items.
  void PushBatch(const std::vector<Triple>& triples);

  /// Emits the current partial window (if non-empty) regardless of size —
  /// e.g. at end of stream.
  void Flush();

  /// Items dropped by the filter so far.
  uint64_t dropped_count() const { return dropped_; }

  /// Windows emitted so far.
  uint64_t emitted_windows() const { return next_sequence_; }

 private:
  size_t window_size_;
  WindowCallback callback_;
  std::unordered_set<SymbolId> selected_;
  std::vector<Triple> pending_;
  uint64_t next_sequence_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAM_QUERY_PROCESSOR_H_
