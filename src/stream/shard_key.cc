#include "stream/shard_key.h"

namespace streamasp {

namespace {

// Finalizer over Term::Hash() so that nearby hashes (small integers,
// consecutive symbol ids) spread across shards instead of striding
// through `% num_shards` in lockstep. splitmix64's mixing function.
uint64_t MixShardKey(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

ShardKeyExtractor SubjectShardKey() {
  return [](const Triple& triple) {
    return MixShardKey(static_cast<uint64_t>(triple.subject.Hash()));
  };
}

ShardKeyExtractor PredicateShardKey() {
  return [](const Triple& triple) {
    return MixShardKey(static_cast<uint64_t>(triple.predicate));
  };
}

ShardKeyExtractor SubjectObjectShardKey() {
  return [](const Triple& triple) {
    uint64_t key = static_cast<uint64_t>(triple.subject.Hash());
    if (triple.object.has_value()) {
      key = HashCombine(key, triple.object->Hash());
    }
    return MixShardKey(key);
  };
}

ShardKeyExtractor ConstantShardKey(uint64_t key) {
  return [key](const Triple&) { return key; };
}

}  // namespace streamasp
