#ifndef STREAMASP_STREAM_TRANSPORT_H_
#define STREAMASP_STREAM_TRANSPORT_H_

#include <functional>
#include <string>

#include "util/status.h"

namespace streamasp {

/// One bidirectional, message-oriented connection between a stream client
/// and a serving endpoint — the ingest seam every front end plugs into.
/// Payloads are opaque byte strings: the session server layers its
/// line-oriented request/event protocol on top (src/server/wire.h), the
/// TCP transport adds length-prefix framing on the wire, and the in-proc
/// implementation (src/server/broker.h InProcConnection) passes payloads
/// through untouched — so benches and tests drive the exact server code
/// path without a socket.
///
/// Contract:
///   * Send() carries one client→server payload; thread-safe, and may
///     block on the server's admission control (in-proc executes the
///     request inline on the calling thread).
///   * Receive() installs the client-side handler for server→client
///     payloads (responses and subscription events). Deliveries come
///     from server threads, one at a time; payloads that arrive before a
///     handler is installed are buffered and replayed in order.
///   * Close() tears the connection down; the server end releases
///     per-connection resources (the session broker closes the sessions
///     this connection opened). Idempotent.
class SessionTransport {
 public:
  using PayloadHandler = std::function<void(std::string payload)>;

  virtual ~SessionTransport() = default;

  /// Sends one client→server payload.
  virtual Status Send(std::string payload) = 0;

  /// Installs (or replaces) the server→client payload handler.
  virtual void Receive(PayloadHandler handler) = 0;

  /// Closes the connection. Idempotent.
  virtual void Close() = 0;
};

}  // namespace streamasp

#endif  // STREAMASP_STREAM_TRANSPORT_H_
