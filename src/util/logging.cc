#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace streamasp {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

// Serializes writes so records from concurrent reasoner threads do not
// interleave mid-line.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories so records stay short: "solver.cc:42".
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal_logging

}  // namespace streamasp
