#include "util/thread_pool.h"

#include <utility>

namespace streamasp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

std::future<void> ThreadPool::SubmitWithFuture(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  Submit([packaged] { (*packaged)(); });
  return future;
}

void ThreadPool::SubmitAndWaitAll(std::vector<std::function<void()>> tasks) {
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (std::function<void()>& task : tasks) {
    futures.push_back(SubmitWithFuture(std::move(task)));
  }
  // Wait for the whole batch before rethrowing: bailing on the first
  // failure would unwind caller state that still-running tasks reference.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && active_tasks_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ with an empty queue: exit after the queue drains so
        // the destructor still runs every submitted task.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace streamasp
