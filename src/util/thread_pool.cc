#include "util/thread_pool.h"

#include <utility>

namespace streamasp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

std::future<void> ThreadPool::SubmitWithFuture(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  Submit([packaged] { (*packaged)(); });
  return future;
}

void ThreadPool::SubmitAndWaitAll(std::vector<std::function<void()>> tasks) {
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (std::function<void()>& task : tasks) {
    futures.push_back(SubmitWithFuture(std::move(task)));
  }
  // Wait for the whole batch before rethrowing: bailing on the first
  // failure would unwind caller state that still-running tasks reference.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && active_tasks_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ with an empty queue: exit after the queue drains so
        // the destructor still runs every submitted task.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

SharedReasonerPool::SharedReasonerPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

SharedReasonerPool::~SharedReasonerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

std::shared_ptr<SharedReasonerPool::Queue> SharedReasonerPool::CreateQueue(
    size_t weight, size_t max_inflight) {
  if (weight == 0) weight = 1;
  if (max_inflight == 0) max_inflight = 1;
  // Queue's constructor is private; go through new + shared_ptr directly.
  return std::shared_ptr<Queue>(new Queue(this, weight, max_inflight));
}

void SharedReasonerPool::ActivateLocked(std::shared_ptr<Queue> queue) {
  if (queue->scheduled_) return;
  queue->scheduled_ = true;
  // A fresh quantum on (re)activation: a lane that emptied or hit its
  // inflight cap starts its next burst with full credit, which bounds how
  // long it can be deferred to one rotation of the ring.
  queue->credit_ = queue->weight_;
  active_.push_back(std::move(queue));
}

void SharedReasonerPool::Queue::Submit(std::function<void()> task) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(pool_->mutex_);
    if (pool_->shutting_down_) {
      // Post-shutdown submissions (a contract violation — lanes are
      // drained before the pool dies) are dropped but accounted, so a
      // late Drain still terminates.
      ++submitted_;
      ++completed_;
      return;
    }
    tasks_.push_back(std::move(task));
    ++submitted_;
    if (tasks_.size() > max_queued_) max_queued_ = tasks_.size();
    if (inflight_ < max_inflight_) {
      // Notify whenever this task is dispatchable right now — not only
      // when the lane (re)activates. A task landing on a lane already in
      // the ring still needs a sleeping worker: the worker that was woken
      // for the lane's previous task may be blocked inside it, and
      // without this wake the rest of the pool would sleep over runnable
      // work until some unrelated submit or completion.
      if (!scheduled_) pool_->ActivateLocked(shared_from_this());
      notify = true;
    }
  }
  if (notify) pool_->work_available_.notify_one();
}

void SharedReasonerPool::Queue::Drain() {
  std::unique_lock<std::mutex> lock(pool_->mutex_);
  pool_->task_done_.wait(
      lock, [this] { return tasks_.empty() && inflight_ == 0; });
}

SharedReasonerPool::Queue::Stats SharedReasonerPool::Queue::stats() const {
  std::lock_guard<std::mutex> lock(pool_->mutex_);
  Stats out;
  out.submitted = submitted_;
  out.completed = completed_;
  out.max_queued = max_queued_;
  return out;
}

void SharedReasonerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(
        lock, [this] { return shutting_down_ || !active_.empty(); });
    if (active_.empty()) {
      // Shutting down with no schedulable lane. A lane brought back by a
      // completion is handled by the completing worker itself (it loops
      // rather than exits while the ring is non-empty), so exiting here
      // strands nothing.
      return;
    }
    // DRR dispatch: examine the front lane. Non-runnable lanes unlink
    // (they rejoin on Submit/completion); an exhausted quantum refills
    // and rotates to the back; otherwise dispatch one task on credit.
    std::shared_ptr<Queue> queue = active_.front();
    if (!RunnableLocked(*queue)) {
      active_.pop_front();
      queue->scheduled_ = false;
      continue;
    }
    if (queue->credit_ == 0) {
      queue->credit_ = queue->weight_;
      active_.pop_front();
      active_.push_back(std::move(queue));
      continue;
    }
    --queue->credit_;
    std::function<void()> task = std::move(queue->tasks_.front());
    queue->tasks_.pop_front();
    ++queue->inflight_;
    if (!RunnableLocked(*queue)) {
      // Emptied or at its inflight cap: leave the ring until something
      // changes (keeping it would make the rotation spin over it).
      active_.pop_front();
      queue->scheduled_ = false;
    }
    lock.unlock();
    task();
    task = nullptr;  // Destroy captured state outside the critical section.
    lock.lock();
    --queue->inflight_;
    ++queue->completed_;
    if (!queue->scheduled_ && RunnableLocked(*queue)) {
      // The completion freed an inflight slot for a backlogged lane.
      ActivateLocked(queue);
      work_available_.notify_one();
    }
    if (queue->tasks_.empty() && queue->inflight_ == 0) {
      task_done_.notify_all();
    }
  }
}

}  // namespace streamasp
