#include "util/thread_pool.h"

#include <utility>

namespace streamasp {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && active_tasks_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ with an empty queue: exit after the queue drains so
        // the destructor still runs every submitted task.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace streamasp
