#ifndef STREAMASP_UTIL_STRINGS_H_
#define STREAMASP_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace streamasp {

/// Splits `input` on `delimiter`, returning all pieces (including empty
/// ones, so Split(",a,", ',') has three elements).
std::vector<std::string> StrSplit(std::string_view input, char delimiter);

/// Joins `pieces` with `separator` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// True iff `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a base-10 signed integer. Returns false (leaving *out untouched)
/// on empty input, non-digit characters, or overflow.
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace streamasp

#endif  // STREAMASP_UTIL_STRINGS_H_
