#ifndef STREAMASP_UTIL_RNG_H_
#define STREAMASP_UTIL_RNG_H_

#include <cassert>
#include <cstdint>

namespace streamasp {

/// Small, fast, deterministic pseudo-random generator (xorshift128+).
///
/// Used by the synthetic stream generator and the random-partitioning
/// baseline. A fixed seed makes every experiment reproducible bit-for-bit,
/// which the figure harnesses rely on; std::mt19937 would also work but its
/// state is large and its distributions are not portable across standard
/// library implementations.
class Rng {
 public:
  /// Seeds the generator. Any seed (including 0) is valid.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding scatters low-entropy seeds across both words.
    state_[0] = SplitMix64(&seed);
    state_[1] = SplitMix64(&seed);
  }

  /// Returns the next 64 random bits.
  uint64_t NextUint64() {
    uint64_t s1 = state_[0];
    const uint64_t s0 = state_[1];
    const uint64_t result = s0 + s1;
    state_[0] = s0;
    s1 ^= s1 << 23;
    state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
    return result;
  }

  /// Returns a uniformly distributed integer in [0, bound). Requires
  /// bound > 0. Uses rejection sampling to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    const uint64_t threshold = -bound % bound;  // 2^64 mod bound.
    for (;;) {
      const uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Returns a uniformly distributed integer in [lo, hi] inclusive.
  /// Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    // 53 top bits give a dyadic rational with full double precision.
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t state_[2];
};

}  // namespace streamasp

#endif  // STREAMASP_UTIL_RNG_H_
