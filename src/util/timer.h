#ifndef STREAMASP_UTIL_TIMER_H_
#define STREAMASP_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace streamasp {

/// Monotonic wall-clock stopwatch used for reasoning-latency measurements.
///
/// The paper reports reasoner latency in milliseconds; WallTimer exposes
/// both microsecond and (fractional) millisecond readings so benches can
/// report sub-millisecond partitioning costs too.
class WallTimer {
 public:
  /// Starts the stopwatch at construction.
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart(), in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in fractional milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streamasp

#endif  // STREAMASP_UTIL_TIMER_H_
