#ifndef STREAMASP_UTIL_LOGGING_H_
#define STREAMASP_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace streamasp {

/// Log severity levels, ordered. Messages below the global threshold are
/// discarded cheaply (the stream expression is still evaluated; keep log
/// statements off hot paths or guard them).
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum severity that will be emitted. Thread-safe.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// One pending log record; emits to stderr on destruction. Not for direct
/// use — go through the STREAMASP_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Streams a log record at the given level, e.g.
/// `STREAMASP_LOG(kInfo) << "grounded " << n << " rules";`
#define STREAMASP_LOG(level)                                              \
  if (::streamasp::LogLevel::level < ::streamasp::GetLogLevel()) {        \
  } else                                                                  \
    ::streamasp::internal_logging::LogMessage(                            \
        ::streamasp::LogLevel::level, __FILE__, __LINE__)                 \
        .stream()

}  // namespace streamasp

#endif  // STREAMASP_UTIL_LOGGING_H_
