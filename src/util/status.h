#ifndef STREAMASP_UTIL_STATUS_H_
#define STREAMASP_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace streamasp {

/// Coarse error category carried by a Status.
///
/// The project is built without exceptions (Google style); all fallible
/// operations return a Status or StatusOr<T> instead, in the style of
/// RocksDB / Abseil.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (parse errors, bad parameters).
  kNotFound,          ///< A looked-up entity does not exist.
  kFailedPrecondition,///< Operation not valid in the current state.
  kOutOfRange,        ///< Index or numeric value outside the valid range.
  kResourceExhausted, ///< A configured limit (models, iterations) was hit.
  kInternal,          ///< Invariant violation; indicates a library bug.
  kUnimplemented,     ///< Feature intentionally not supported.
};

/// Returns a stable human-readable name for a status code ("OK",
/// "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-type error indicator: a code plus a human-readable message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the OK case).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` should not
  /// be kOk; use the default constructor (or OkStatus()) for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error code (kOk for success).
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Factory helpers mirroring the Abseil convention.
inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Union of a Status and a value: holds T on success, an error Status
/// otherwise. Accessing value() on an error status aborts (assert), so
/// callers must check ok() first — the same contract as absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status.ok()` must be false.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  /// Constructs from a value; the resulting StatusOr is OK.
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl::StatusOr.
      : status_(OkStatus()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok() && "value() called on error StatusOr");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() called on error StatusOr");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() called on error StatusOr");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define STREAMASP_RETURN_IF_ERROR(expr)                \
  do {                                                 \
    ::streamasp::Status _status = (expr);              \
    if (!_status.ok()) return _status;                 \
  } while (false)

/// Evaluates a StatusOr expression, propagating errors and otherwise
/// assigning the value to `lhs`.
#define STREAMASP_ASSIGN_OR_RETURN(lhs, expr)          \
  STREAMASP_ASSIGN_OR_RETURN_IMPL_(                    \
      STREAMASP_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define STREAMASP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#define STREAMASP_STATUS_CONCAT_(a, b) STREAMASP_STATUS_CONCAT_IMPL_(a, b)
#define STREAMASP_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace streamasp

#endif  // STREAMASP_UTIL_STATUS_H_
