#ifndef STREAMASP_UTIL_BOUNDED_QUEUE_H_
#define STREAMASP_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace streamasp {

/// What a bounded queue does when a producer pushes into a full queue.
enum class BackpressurePolicy {
  /// Block the producer until a consumer makes room (lossless; the
  /// default, and the only policy that preserves exactly-once window
  /// processing end to end).
  kBlock,
  /// Evict the oldest queued item to admit the new one (bounded lag;
  /// favours fresh windows under overload, classic stream-processing
  /// load shedding).
  kDropOldest,
  /// Refuse the new item and tell the producer (caller-controlled
  /// shedding).
  kReject,
};

constexpr const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropOldest:
      return "drop-oldest";
    case BackpressurePolicy::kReject:
      return "reject";
  }
  return "unknown";
}

/// True for the load-shedding policies: items can be lost at this stage
/// boundary, so the producer must account for every kDroppedOldest /
/// kRejected outcome. The async pipeline turns each loss into a tombstone
/// in its ordered emission stream (StreamRulePipeline::ShedCallback), so
/// downstream consumers — notably the sharded engine's ordered merge —
/// see an explicit release for the lost sequence instead of a permanent
/// gap.
constexpr bool IsLossyPolicy(BackpressurePolicy policy) {
  return policy != BackpressurePolicy::kBlock;
}

/// Outcome of one BoundedQueue::Push under the queue's policy.
enum class QueuePushResult {
  kOk,            ///< Item admitted; nothing displaced.
  kDroppedOldest, ///< Item admitted; the oldest item was evicted.
  kRejected,      ///< Item refused (kReject policy, queue full).
  kClosed,        ///< Item refused; the queue was closed.
};

/// Monotonic counters describing a queue's lifetime so far.
struct BoundedQueueStats {
  uint64_t pushed = 0;    ///< Items admitted.
  uint64_t popped = 0;    ///< Items handed to consumers.
  uint64_t dropped = 0;   ///< Items evicted under kDropOldest.
  uint64_t rejected = 0;  ///< Items refused under kReject.
  size_t max_depth = 0;   ///< High-water mark of the queue depth.
};

/// Bounded multi-producer/multi-consumer FIFO with a configurable
/// backpressure policy — the stage boundary of the asynchronous pipeline
/// (ingest/windower on one side, the reasoning worker pool on the other).
///
/// All operations are thread-safe. Close() wakes every blocked producer
/// (which observe kClosed) and consumer (Pop drains the remaining items,
/// then returns false), after which the queue rejects new pushes forever.
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1 (0 is clamped to 1).
  explicit BoundedQueue(size_t capacity,
                        BackpressurePolicy policy = BackpressurePolicy::kBlock)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Pushes one item, applying the backpressure policy when full. Under
  /// kDropOldest the evicted item (if any) is moved into `*displaced` when
  /// `displaced` is non-null, so the producer can account for the loss.
  QueuePushResult Push(T value, T* displaced = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (policy_ == BackpressurePolicy::kBlock) {
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return QueuePushResult::kClosed;

    QueuePushResult outcome = QueuePushResult::kOk;
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case BackpressurePolicy::kBlock:
          break;  // Unreachable: the wait above guaranteed room.
        case BackpressurePolicy::kDropOldest:
          if (displaced != nullptr) *displaced = std::move(items_.front());
          items_.pop_front();
          ++stats_.dropped;
          outcome = QueuePushResult::kDroppedOldest;
          break;
        case BackpressurePolicy::kReject:
          ++stats_.rejected;
          return QueuePushResult::kRejected;
      }
    }
    items_.push_back(std::move(value));
    ++stats_.pushed;
    stats_.max_depth = std::max(stats_.max_depth, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return outcome;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  /// Returns false only in the latter case (the shutdown signal for
  /// consumer loops).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    ++stats_.popped;
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Irreversibly stops admission. Already-queued items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }
  BackpressurePolicy policy() const { return policy_; }

  BoundedQueueStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  const size_t capacity_;
  const BackpressurePolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  BoundedQueueStats stats_;
  bool closed_ = false;
};

}  // namespace streamasp

#endif  // STREAMASP_UTIL_BOUNDED_QUEUE_H_
