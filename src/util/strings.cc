#include "util/strings.h"

#include <cctype>
#include <cstdint>
#include <limits>

namespace streamasp {

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      pieces.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  bool negative = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    negative = (s[0] == '-');
    i = 1;
    if (s.size() == 1) return false;
  }
  // Accumulate negatively: the magnitude of INT64_MIN exceeds INT64_MAX, so
  // the negative range can hold every valid input without overflow.
  int64_t value = 0;
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return false;
    const int digit = c - '0';
    if (value < (kMin + digit) / 10) return false;  // Would overflow.
    value = value * 10 - digit;
  }
  if (!negative) {
    if (value == kMin) return false;  // |INT64_MIN| is not representable.
    value = -value;
  }
  *out = value;
  return true;
}

}  // namespace streamasp
