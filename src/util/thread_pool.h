#ifndef STREAMASP_UTIL_THREAD_POOL_H_
#define STREAMASP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace streamasp {

/// std::thread::hardware_concurrency() with the conventional fallback of 2
/// when the hardware cannot be queried. The one source of truth for every
/// "0 means pick for me" thread-count option.
inline size_t DefaultThreadCount() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 2 : hardware;
}

/// Fixed-size worker pool executing arbitrary closures.
///
/// The parallel reasoner PR submits one task per window partition and waits
/// for the batch with SubmitAndWaitAll().
///
/// Nesting constraint (important for the async pipeline engine): a task
/// running ON a pool must never block on futures of tasks submitted to the
/// SAME pool. If every worker is blocked waiting, the task that would
/// unblock them can never be scheduled — a guaranteed deadlock, not a
/// slowdown. The staged engine therefore gives each reasoning worker its
/// own ParallelReasoner (and hence its own inner pool): a worker only ever
/// waits on futures from the pool one level below it, never its own.
/// Waiting on a *different* pool's futures is always safe.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution (fire and forget).
  void Submit(std::function<void()> task);

  /// Enqueues a task and returns a future that becomes ready when the task
  /// finishes (or carries its exception). Waiting on the future from
  /// outside the pool is safe; waiting from a task on this same pool is
  /// the nesting deadlock described above.
  std::future<void> SubmitWithFuture(std::function<void()> task);

  /// Submits a batch and blocks until exactly these tasks have completed.
  /// Unlike WaitIdle(), the wait is unaffected by concurrent Submit calls
  /// from other threads, so multiple callers can safely run batches on a
  /// shared pool at the same time.
  void SubmitAndWaitAll(std::vector<std::function<void()>> tasks);

  /// Blocks until the queue is empty and every worker is idle. Concurrent
  /// Submit calls during the wait extend it; prefer SubmitAndWaitAll for
  /// batch semantics on a shared pool.
  void WaitIdle();

  /// Number of worker threads.
  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_tasks_ = 0;  // Tasks currently executing.
  bool shutting_down_ = false;
};

}  // namespace streamasp

#endif  // STREAMASP_UTIL_THREAD_POOL_H_
