#ifndef STREAMASP_UTIL_THREAD_POOL_H_
#define STREAMASP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace streamasp {

/// std::thread::hardware_concurrency() with the conventional fallback of 2
/// when the hardware cannot be queried. The one source of truth for every
/// "0 means pick for me" thread-count option.
inline size_t DefaultThreadCount() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 2 : hardware;
}

/// Fixed-size worker pool executing arbitrary closures.
///
/// The parallel reasoner PR submits one task per window partition and waits
/// for the batch with SubmitAndWaitAll().
///
/// Nesting constraint (important for the async pipeline engine): a task
/// running ON a pool must never block on futures of tasks submitted to the
/// SAME pool. If every worker is blocked waiting, the task that would
/// unblock them can never be scheduled — a guaranteed deadlock, not a
/// slowdown. The staged engine therefore gives each reasoning worker its
/// own ParallelReasoner (and hence its own inner pool): a worker only ever
/// waits on futures from the pool one level below it, never its own.
/// Waiting on a *different* pool's futures is always safe.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution (fire and forget).
  void Submit(std::function<void()> task);

  /// Enqueues a task and returns a future that becomes ready when the task
  /// finishes (or carries its exception). Waiting on the future from
  /// outside the pool is safe; waiting from a task on this same pool is
  /// the nesting deadlock described above.
  std::future<void> SubmitWithFuture(std::function<void()> task);

  /// Submits a batch and blocks until exactly these tasks have completed.
  /// Unlike WaitIdle(), the wait is unaffected by concurrent Submit calls
  /// from other threads, so multiple callers can safely run batches on a
  /// shared pool at the same time.
  void SubmitAndWaitAll(std::vector<std::function<void()>> tasks);

  /// Blocks until the queue is empty and every worker is idle. Concurrent
  /// Submit calls during the wait extend it; prefer SubmitAndWaitAll for
  /// batch semantics on a shared pool.
  void WaitIdle();

  /// Number of worker threads.
  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_tasks_ = 0;  // Tasks currently executing.
  bool shutting_down_ = false;
};

/// A process-wide reasoning executor shared by many tenants: a fixed set
/// of worker threads, one task lane (Queue) per tenant, and weighted
/// deficit-round-robin dispatch across the lanes, so the worker budget is
/// O(pool), not O(tenants), and one hot tenant cannot starve the rest.
///
/// Scheduling model:
///   * Every task has unit cost. Each rotation of the active-lane ring
///     refills a lane's credit to its weight; a lane consumes one credit
///     per task it dispatches, so over any busy interval lane i receives
///     weight_i / sum(weights) of the dispatch slots (classic DRR with
///     quantum == weight).
///   * Each lane additionally carries a max_inflight cap — the most of
///     its tasks that may execute concurrently. A lane at its cap leaves
///     the rotation and rejoins when one of its tasks completes, so a
///     single tenant can never occupy more than its cap of the workers
///     no matter how deep its backlog is.
///
/// Lanes are unbounded FIFOs: admission control (how much work a tenant
/// may buffer) belongs to the submitting pipeline, which already has
/// bounded queues and shedding policies — the pool only decides *whose*
/// task runs next.
///
/// Nesting constraint: identical to ThreadPool — a task running on the
/// pool must never block on the completion of another task of the SAME
/// pool (any lane). The pipelines keep this by reasoning inline on the
/// pool worker (ParallelReasoner's single-thread mode) instead of fanning
/// out to a pool they would then wait on.
///
/// Thread-safety: everything is safe from any thread. Destruction
/// contract: Drain every lane before destroying the pool (the pipelines'
/// destructors do); tasks submitted while the pool is shutting down are
/// dropped and counted as completed so Drain cannot hang.
class SharedReasonerPool {
 public:
  /// One tenant's task lane. Obtained from CreateQueue; safe to share
  /// across the tenant's pipelines (the sharded engine gives all its
  /// shard pipelines one lane so the tenant's weight and inflight cap
  /// apply engine-wide).
  class Queue : public std::enable_shared_from_this<Queue> {
   public:
    /// Point-in-time lane counters (pool mutex held briefly).
    struct Stats {
      uint64_t submitted = 0;
      uint64_t completed = 0;
      size_t max_queued = 0;  ///< Lane backlog high-water mark.
    };

    /// Enqueues one unit-cost task for DRR dispatch.
    void Submit(std::function<void()> task);

    /// Blocks until every task submitted to this lane so far has
    /// finished executing.
    void Drain();

    Stats stats() const;
    size_t weight() const { return weight_; }
    size_t max_inflight() const { return max_inflight_; }

   private:
    friend class SharedReasonerPool;

    Queue(SharedReasonerPool* pool, size_t weight, size_t max_inflight)
        : pool_(pool), weight_(weight), max_inflight_(max_inflight) {}

    SharedReasonerPool* const pool_;
    const size_t weight_;
    const size_t max_inflight_;

    // --- all guarded by pool_->mutex_ ---
    std::deque<std::function<void()>> tasks_;
    size_t inflight_ = 0;   ///< Tasks of this lane currently executing.
    size_t credit_ = 0;     ///< Remaining DRR quantum this rotation.
    bool scheduled_ = false;  ///< Linked into the pool's active ring.
    uint64_t submitted_ = 0;
    uint64_t completed_ = 0;
    size_t max_queued_ = 0;
  };

  /// Spawns `num_threads` workers (at least one).
  explicit SharedReasonerPool(size_t num_threads);

  /// Joins the workers. Every lane must have been drained first (see the
  /// class contract); queued tasks of un-drained lanes are discarded.
  ~SharedReasonerPool();

  SharedReasonerPool(const SharedReasonerPool&) = delete;
  SharedReasonerPool& operator=(const SharedReasonerPool&) = delete;

  /// Creates a lane with the given DRR weight (>= 1; 0 is clamped to 1)
  /// and concurrent-execution cap (>= 1; 0 is clamped to 1).
  std::shared_ptr<Queue> CreateQueue(size_t weight, size_t max_inflight);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();
  /// True when the lane has a task it is allowed to start right now.
  bool RunnableLocked(const Queue& queue) const {
    return !queue.tasks_.empty() && queue.inflight_ < queue.max_inflight_;
  }
  /// Links the lane into the active ring with a fresh quantum (no-op if
  /// already linked). Requires mutex_; caller notifies work_available_.
  void ActivateLocked(std::shared_ptr<Queue> queue);

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable task_done_;  ///< Wakes Queue::Drain waiters.
  /// The DRR rotation: lanes with (possibly) dispatchable work. Lanes
  /// found non-runnable at the front are unlinked lazily and relinked by
  /// Submit or task completion.
  std::deque<std::shared_ptr<Queue>> active_;
  std::vector<std::thread> threads_;
  bool shutting_down_ = false;
};

}  // namespace streamasp

#endif  // STREAMASP_UTIL_THREAD_POOL_H_
