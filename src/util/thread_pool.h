#ifndef STREAMASP_UTIL_THREAD_POOL_H_
#define STREAMASP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace streamasp {

/// Fixed-size worker pool executing arbitrary closures.
///
/// The parallel reasoner PR submits one task per window partition and waits
/// for the batch with WaitIdle(). Tasks must not themselves block on the
/// pool (no nested Submit-and-wait), which is all the reasoner needs.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. Concurrent
  /// Submit calls during the wait extend it.
  void WaitIdle();

  /// Number of worker threads.
  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_tasks_ = 0;  // Tasks currently executing.
  bool shutting_down_ = false;
};

}  // namespace streamasp

#endif  // STREAMASP_UTIL_THREAD_POOL_H_
