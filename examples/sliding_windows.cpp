// Demonstrates the sliding-window extensions on top of the paper's
// tumbling tuple-based windows: a count-based window (size 3000, slide
// 1000) and a time-based window (10 s, sliding 5 s) feeding the
// dependency-partitioned reasoner.
//
// Usage: sliding_windows

#include <cstdio>

#include "depgraph/decomposition.h"
#include "stream/generator.h"
#include "stream/windowing.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/traffic_workload.h"

int main() {
  using namespace streamasp;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kP, /*with_show=*/true);
  StatusOr<InputDependencyGraph> graph = InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  ParallelReasoner reasoner(&*program, *plan);

  auto process = [&](const char* tag, const TripleWindow& window) {
    StatusOr<ParallelReasonerResult> result = reasoner.Process(window);
    if (!result.ok()) {
      std::fprintf(stderr, "%s window %llu: %s\n", tag,
                   static_cast<unsigned long long>(window.sequence),
                   result.status().ToString().c_str());
      return;
    }
    size_t events = 0;
    for (const GroundAnswer& answer : result->answers) {
      events += answer.size();
    }
    std::printf("%s window %llu: %zu items, %.2f ms, %zu event(s)\n", tag,
                static_cast<unsigned long long>(window.sequence),
                window.size(), result->latency_ms, events);
  };

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols), {});

  std::printf("== count-based sliding window (size 3000, slide 1000) ==\n");
  SlidingCountWindower count_window(
      3000, 1000,
      [&](const TripleWindow& w) { process("count", w); });
  for (const Triple& t : generator.GenerateWindow(6000)) {
    count_window.Push(t);
  }
  count_window.Flush();

  std::printf("\n== time-based sliding window (10 s, slide 5 s) ==\n");
  SlidingTimeWindower time_window(
      10000, 5000, [&](const TripleWindow& w) { process("time", w); });
  // Simulate a 25-second burst at ~200 items/second.
  int64_t now_ms = 0;
  for (const Triple& t : generator.GenerateWindow(5000)) {
    time_window.Push(t, now_ms);
    now_ms += 5;
  }
  time_window.Flush();
  return 0;
}
