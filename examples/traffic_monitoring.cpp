// End-to-end StreamRule run on the paper's traffic scenario (§II-A)
// through the unified StreamEngine facade: one validated config (here the
// synchronous single-pipeline shape), one ordered EmissionEvent stream.
// Underneath, the synthetic RDF stream flows through the stream query
// processor into the dependency-partitioned parallel reasoner; detected
// events are printed per window.
//
//   stream -> StreamEngine [query processor -> partitioning -> n x Reasoner
//          -> combining] -> EmissionEvents
//
// Usage: traffic_monitoring [window_size] [num_windows]

#include <cstdio>
#include <cstdlib>

#include "stream/generator.h"
#include "streamrule/engine.h"
#include "streamrule/traffic_workload.h"

int main(int argc, char** argv) {
  using namespace streamasp;

  const size_t window_size = argc > 1 ? std::atoi(argv[1]) : 4000;
  const size_t num_windows = argc > 2 ? std::atoi(argv[2]) : 3;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  // num_shards = 0 and async = false pick the synchronous oracle shape:
  // one window at a time, reasoned on this thread.
  EngineConfig config;
  config.pipeline.window_size = window_size;

  uint64_t total_events = 0;
  StatusOr<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      &*program, config, [&](EmissionEvent& event) {
        if (event.kind == EmissionEvent::Kind::kError) {
          std::fprintf(stderr, "window %llu: %s\n",
                       static_cast<unsigned long long>(event.sequence),
                       event.status.ToString().c_str());
          return;
        }
        if (event.kind != EmissionEvent::Kind::kResult) return;
        std::printf(
            "window %llu (%zu items): latency %.2f ms (critical path "
            "%.2f ms), %zu partitions, %zu answer(s)\n",
            static_cast<unsigned long long>(event.sequence),
            event.window->size(), event.result->latency_ms,
            event.result->critical_path_ms, event.result->num_partitions,
            event.result->answers.size());
        for (const GroundAnswer& answer : event.result->answers) {
          total_events += answer.size();
          std::printf("  events: %s\n",
                      AnswerToString(answer, *symbols).c_str());
        }
      });
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  // Design time already happened inside Create: input dependency analysis
  // -> partitioning plan, exposed for introspection on the underlying
  // pipeline.
  std::printf("design time: %s\n",
              (*engine)->pipeline()->plan().ToString(*symbols).c_str());

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     GeneratorOptions{});
  for (size_t i = 0; i < num_windows; ++i) {
    (*engine)->PushBatch(generator.GenerateWindow(window_size));
  }
  (*engine)->Flush();

  std::printf("total detected events: %llu\n",
              static_cast<unsigned long long>(total_events));
  return 0;
}
