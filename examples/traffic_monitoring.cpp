// End-to-end extended-StreamRule pipeline on the paper's traffic scenario
// (§II-A): a synthetic RDF stream flows through the stream query processor
// into the dependency-partitioned parallel reasoner; detected events are
// printed per window.
//
//   stream -> StreamQueryProcessor -> PartitioningHandler -> n x Reasoner
//          -> CombiningHandler -> events
//
// Usage: traffic_monitoring [window_size] [num_windows]

#include <cstdio>
#include <cstdlib>

#include "depgraph/decomposition.h"
#include "depgraph/input_dependency_graph.h"
#include "stream/generator.h"
#include "stream/query_processor.h"
#include "streamrule/accuracy.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/traffic_workload.h"

int main(int argc, char** argv) {
  using namespace streamasp;

  const size_t window_size = argc > 1 ? std::atoi(argv[1]) : 4000;
  const size_t num_windows = argc > 2 ? std::atoi(argv[2]) : 3;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  // Design time: input dependency analysis -> partitioning plan.
  StatusOr<InputDependencyGraph> graph = InputDependencyGraph::Build(*program);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  DecompositionInfo info;
  StatusOr<PartitioningPlan> plan =
      DecomposeInputDependencyGraph(*graph, {}, &info);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("design time: %s\n", plan->ToString(*symbols).c_str());

  ParallelReasoner reasoner(&*program, *plan);

  // Run time: the query processor filters the raw stream and emits
  // tuple-based windows straight into the reasoner.
  uint64_t total_events = 0;
  StreamQueryProcessor query(window_size, [&](const TripleWindow& window) {
    StatusOr<ParallelReasonerResult> result = reasoner.Process(window);
    if (!result.ok()) {
      std::fprintf(stderr, "window %llu: %s\n",
                   static_cast<unsigned long long>(window.sequence),
                   result.status().ToString().c_str());
      return;
    }
    std::printf(
        "window %llu (%zu items): latency %.2f ms (critical path %.2f ms), "
        "%zu partitions, %zu answer(s)\n",
        static_cast<unsigned long long>(window.sequence), window.size(),
        result->latency_ms, result->critical_path_ms,
        result->num_partitions, result->answers.size());
    for (const GroundAnswer& answer : result->answers) {
      total_events += answer.size();
      std::printf("  events: %s\n",
                  AnswerToString(answer, *symbols).c_str());
    }
  });
  for (const PredicateSignature& sig : program->input_predicates()) {
    query.RegisterPredicate(sig.name);
  }

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     GeneratorOptions{});
  for (size_t i = 0; i < num_windows; ++i) {
    query.PushBatch(generator.GenerateWindow(window_size));
  }
  query.Flush();

  std::printf("total detected events: %llu\n",
              static_cast<unsigned long long>(total_events));
  return 0;
}
