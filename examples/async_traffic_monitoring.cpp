// The traffic scenario on the staged asynchronous execution engine,
// through the unified StreamEngine facade (async = true): ingestion and
// windowing run on this thread while a pool of reasoning workers grounds
// and solves earlier windows, and the ordered emitter still delivers one
// EmissionEvent per window in strict window order.
//
//   ingest -> windower -> BoundedQueue -> ParallelReasoner workers
//          -> ordered emitter -> EmissionEvents (in window order)
//
// Usage: async_traffic_monitoring [window_size] [num_windows] [inflight]

#include <cstdio>
#include <cstdlib>

#include "stream/generator.h"
#include "streamrule/engine.h"
#include "streamrule/traffic_workload.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace streamasp;

  const size_t window_size = argc > 1 ? std::atoi(argv[1]) : 4000;
  const size_t num_windows = argc > 2 ? std::atoi(argv[2]) : 6;
  const size_t inflight = argc > 3 ? std::atoi(argv[3]) : 4;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  EngineConfig config;
  config.pipeline.window_size = window_size;
  config.pipeline.async = true;
  config.pipeline.max_inflight_windows = inflight;
  // config.pipeline.backpressure = BackpressurePolicy::kDropOldest would
  // shed the oldest queued window instead of slowing ingestion under
  // overload (shed windows then arrive as kShed tombstone events).

  uint64_t total_events = 0;
  StatusOr<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      &*program, config, [&](EmissionEvent& event) {
        if (event.kind != EmissionEvent::Kind::kResult) return;
        std::printf(
            "window %llu (%zu items): latency %.2f ms, %zu partitions, "
            "%zu answer(s)\n",
            static_cast<unsigned long long>(event.sequence),
            event.window->size(), event.result->latency_ms,
            event.result->num_partitions, event.result->answers.size());
        for (const GroundAnswer& answer : event.result->answers) {
          total_events += answer.size();
          std::printf("  events: %s\n",
                      AnswerToString(answer, *symbols).c_str());
        }
      });
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("async engine: %zu reasoning workers, %zu windows in flight\n",
              (*engine)->num_reason_workers(), inflight);

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     GeneratorOptions{});
  WallTimer wall;
  for (size_t i = 0; i < num_windows; ++i) {
    // Push never waits for reasoning (until the in-flight bound bites):
    // windows pile into the work queue while the workers chew.
    (*engine)->PushBatch(generator.GenerateWindow(window_size));
  }
  (*engine)->Flush();  // Drain every in-flight window.
  const double wall_ms = wall.ElapsedMillis();

  const EngineStats stats = (*engine)->stats();
  std::printf(
      "processed %llu windows / %llu items in %.2f ms "
      "(%.0f triples/s, mean window latency %.2f ms, queue depth peak %zu)\n",
      static_cast<unsigned long long>(stats.delivered_windows),
      static_cast<unsigned long long>(stats.reasoning.items), wall_ms,
      static_cast<double>(stats.reasoning.items) / (wall_ms / 1000.0),
      stats.reasoning.mean_latency_ms(), stats.reasoning.max_queue_depth);
  std::printf("total detected events: %llu\n",
              static_cast<unsigned long long>(total_events));
  return 0;
}
