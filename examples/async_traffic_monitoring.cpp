// The traffic scenario on the staged asynchronous execution engine: the
// StreamRulePipeline facade with async=true keeps several windows in
// flight — ingestion and windowing run on this thread while a pool of
// reasoning workers grounds and solves earlier windows, and the ordered
// emitter still delivers results strictly in window order.
//
//   ingest -> windower -> BoundedQueue -> ParallelReasoner workers
//          -> ordered emitter -> events (in window order)
//
// Usage: async_traffic_monitoring [window_size] [num_windows] [inflight]

#include <cstdio>
#include <cstdlib>

#include "stream/generator.h"
#include "streamrule/pipeline.h"
#include "streamrule/traffic_workload.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace streamasp;

  const size_t window_size = argc > 1 ? std::atoi(argv[1]) : 4000;
  const size_t num_windows = argc > 2 ? std::atoi(argv[2]) : 6;
  const size_t inflight = argc > 3 ? std::atoi(argv[3]) : 4;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  PipelineOptions options;
  options.window_size = window_size;
  options.async = true;
  options.max_inflight_windows = inflight;
  // options.backpressure = BackpressurePolicy::kDropOldest would shed the
  // oldest queued window instead of slowing ingestion under overload.

  uint64_t total_events = 0;
  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(
          &*program, options,
          [&](const TripleWindow& window,
              const ParallelReasonerResult& result) {
            std::printf(
                "window %llu (%zu items): latency %.2f ms, %zu partitions, "
                "%zu answer(s)\n",
                static_cast<unsigned long long>(window.sequence),
                window.size(), result.latency_ms, result.num_partitions,
                result.answers.size());
            for (const GroundAnswer& answer : result.answers) {
              total_events += answer.size();
              std::printf("  events: %s\n",
                          AnswerToString(answer, *symbols).c_str());
            }
          });
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  std::printf("async engine: %zu reasoning workers, %zu windows in flight\n",
              (*pipeline)->num_reason_workers(), inflight);

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     GeneratorOptions{});
  WallTimer wall;
  for (size_t i = 0; i < num_windows; ++i) {
    // Push never waits for reasoning (until the in-flight bound bites):
    // windows pile into the work queue while the workers chew.
    (*pipeline)->PushBatch(generator.GenerateWindow(window_size));
  }
  (*pipeline)->Flush();  // Drain every in-flight window.
  const double wall_ms = wall.ElapsedMillis();

  const PipelineStats stats = (*pipeline)->stats();
  std::printf(
      "processed %llu windows / %llu items in %.2f ms "
      "(%.0f triples/s, mean window latency %.2f ms, queue depth peak %zu)\n",
      static_cast<unsigned long long>(stats.windows),
      static_cast<unsigned long long>(stats.items), wall_ms,
      static_cast<double>(stats.items) / (wall_ms / 1000.0),
      stats.mean_latency_ms(), stats.max_queue_depth);
  std::printf("total detected events: %llu\n",
              static_cast<unsigned long long>(total_events));
  return 0;
}
