// A second domain scenario: network security monitoring. Demonstrates
// that the input dependency analysis generalizes beyond the paper's
// traffic example, and exercises arithmetic built-ins and the atom-level
// extension (Section VI future work) on a different rule set.
//
// Streams: packet rates, failed logins, open connections, blacklist
// notices, service health probes. Detected events: port scans, brute
// force attempts, degraded services.
//
// Usage: network_monitoring [window_size]

#include <cstdio>
#include <cstdlib>

#include "asp/parser.h"
#include "depgraph/atom_level.h"
#include "depgraph/decomposition.h"
#include "stream/generator.h"
#include "streamrule/accuracy.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/random_partitioner.h"

namespace {

constexpr char kNetworkProgram[] = R"(
% Connection-pressure family: joins on the host H.
high_rate(H)     :- packet_rate(H, R), R > 80.
many_conns(H)    :- open_conns(H, N), N > 50.
port_scan(H)     :- high_rate(H), many_conns(H), not whitelisted(H).

% Authentication family: joins on the account A; arithmetic threshold
% scales with the observation count.
brute_force(A)   :- failed_logins(A, F), attempts(A, T), F * 2 > T,
                    T >= 10.

% Service-health family.
degraded(S)      :- health_probe(S, L), L >= 200.

alert(H) :- port_scan(H).
alert(A) :- brute_force(A).
alert(S) :- degraded(S).

#input packet_rate/2, open_conns/2, whitelisted/1,
       failed_logins/2, attempts/2, health_probe/2.
#show port_scan/1, brute_force/1, degraded/1, alert/1.
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace streamasp;

  const size_t window_size = argc > 1 ? std::atoi(argv[1]) : 12000;

  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(kNetworkProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return 1;
  }

  // Design time: three independent predicate families => three
  // communities, no duplication needed.
  StatusOr<InputDependencyGraph> graph = InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("predicate-level %s\n", plan->ToString(*symbols).c_str());

  // Atom-level refinement: each family joins on its first argument, so
  // every community can additionally split by hash.
  StatusOr<AtomLevelPlan> atom_plan =
      AtomLevelPlan::Build(*program, *plan, AtomLevelOptions{2});
  if (!atom_plan.ok()) {
    std::fprintf(stderr, "atom plan: %s\n",
                 atom_plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", atom_plan->ToString(*symbols).c_str());

  // Run time.
  std::vector<StreamPredicate> schema = {
      {symbols->Intern("packet_rate"), true, {}, 1.0},
      {symbols->Intern("open_conns"), true, {}, 1.0},
      {symbols->Intern("whitelisted"), false, {}, 0.3},
      {symbols->Intern("failed_logins"), true, {}, 1.0},
      {symbols->Intern("attempts"), true, {}, 1.0},
      {symbols->Intern("health_probe"), true, {}, 1.0},
  };
  GeneratorOptions gen_options;
  gen_options.value_range = 250;
  SyntheticStreamGenerator generator(schema, gen_options);
  const TripleWindow window = generator.GenerateTripleWindow(window_size);

  Reasoner r(&*program);
  StatusOr<ReasonerResult> reference = r.Process(window);
  if (!reference.ok()) {
    std::fprintf(stderr, "R: %s\n", reference.status().ToString().c_str());
    return 1;
  }
  std::printf("R         : %7.2f ms, %zu event(s)\n", reference->latency_ms,
              reference->answers.empty() ? 0 : reference->answers[0].size());

  ParallelReasoner pr(&*program, *plan);
  StatusOr<ParallelReasonerResult> dep = pr.Process(window);
  std::printf("PR_Dep    : %7.2f ms (critical %.2f), accuracy %.3f\n",
              dep->latency_ms, dep->critical_path_ms,
              MeanAccuracy(dep->answers, reference->answers));

  // Atom-level: convert + route + reason over finer partitions.
  DataFormatProcessor format;
  (void)format.DeclareInputPredicates(program->input_predicates());
  StatusOr<std::vector<Atom>> facts = format.ToFacts(window.items);
  AtomLevelPartitioningHandler atom_handler(*atom_plan);
  StatusOr<ParallelReasonerResult> atom =
      pr.ProcessFactPartitions(atom_handler.PartitionFacts(*facts));
  std::printf("PR_Atom x%d: %7.2f ms (critical %.2f), accuracy %.3f\n",
              atom_plan->num_partitions(), atom->latency_ms,
              atom->critical_path_ms,
              MeanAccuracy(atom->answers, reference->answers));

  RandomPartitioner random(atom_plan->num_partitions(), 5);
  StatusOr<ParallelReasonerResult> ran =
      pr.ProcessPartitions(random.Partition(window.items));
  std::printf("PR_Ran  x%d: %7.2f ms (critical %.2f), accuracy %.3f\n",
              atom_plan->num_partitions(), ran->latency_ms,
              ran->critical_path_ms,
              MeanAccuracy(ran->answers, reference->answers));
  return 0;
}
