// Reproduces the paper's §II-A motivating comparison at example scale:
// random partitioning produces wrong/missing events while dependency-
// guided partitioning matches whole-window reasoning exactly — including
// on the paper's own 6-item example window (traffic_jam(newcastle)
// wrongly detected, car_fire(dangan) lost).
//
// Usage: random_vs_dependency [window_size]

#include <cstdio>
#include <cstdlib>

#include "asp/parser.h"
#include "depgraph/decomposition.h"
#include "stream/generator.h"
#include "streamrule/accuracy.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/random_partitioner.h"
#include "streamrule/traffic_workload.h"

namespace {

using namespace streamasp;

// The exact window W of §II-A.
std::vector<Atom> PaperExampleWindow(SymbolTablePtr symbols) {
  Parser parser(symbols);
  std::vector<Atom> window;
  for (const char* text : {
           "average_speed(newcastle, 10)", "car_number(newcastle, 55)",
           "traffic_light(newcastle)", "car_in_smoke(car1, high)",
           "car_speed(car1, 0)", "car_location(car1, dangan)"}) {
    window.push_back(*parser.ParseGroundAtom(text));
  }
  return window;
}

// The adversarial random split from the paper: W1 gets the first half of
// the jam evidence but not the traffic light.
std::vector<std::vector<Atom>> PaperBadSplit(const std::vector<Atom>& w) {
  return {{w[0], w[1], w[3]}, {w[2], w[4], w[5]}};
}

}  // namespace

int main(int argc, char** argv) {
  const size_t window_size = argc > 1 ? std::atoi(argv[1]) : 10000;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kP, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  Reasoner whole_window(&*program);
  ParallelReasoner pr(&*program, *plan);

  // --- Part 1: the paper's own 6-item example. -------------------------
  std::printf("== paper's example window (Section II-A) ==\n");
  const std::vector<Atom> example = PaperExampleWindow(symbols);
  StatusOr<ReasonerResult> truth = whole_window.ProcessFacts(example);
  std::printf("whole window   : %s\n",
              AnswerToString(truth->answers[0], *symbols).c_str());

  StatusOr<ParallelReasonerResult> bad =
      pr.ProcessFactPartitions(PaperBadSplit(example));
  std::printf("random split   : %s   (accuracy %.2f)\n",
              AnswerToString(bad->answers[0], *symbols).c_str(),
              MeanAccuracy(bad->answers, truth->answers));

  StatusOr<ParallelReasonerResult> dep = pr.ProcessFacts(example);
  std::printf("dependency split: %s   (accuracy %.2f)\n",
              AnswerToString(dep->answers[0], *symbols).c_str(),
              MeanAccuracy(dep->answers, truth->answers));

  // --- Part 2: a synthetic window at scale. ----------------------------
  std::printf("\n== synthetic window, %zu items ==\n", window_size);
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     GeneratorOptions{});
  const TripleWindow window = generator.GenerateTripleWindow(window_size);
  StatusOr<ReasonerResult> reference = whole_window.Process(window);
  std::printf("%-10s latency %8.2f ms                    events %zu\n", "R",
              reference->latency_ms,
              reference->answers.empty() ? 0 : reference->answers[0].size());

  StatusOr<ParallelReasonerResult> dep_result = pr.Process(window);
  std::printf("%-10s latency %8.2f ms (critical %6.2f)  accuracy %.3f\n",
              "PR_Dep", dep_result->latency_ms,
              dep_result->critical_path_ms,
              MeanAccuracy(dep_result->answers, reference->answers));

  for (size_t k = 2; k <= 5; ++k) {
    RandomPartitioner random(k, /*seed=*/k);
    StatusOr<ParallelReasonerResult> result =
        pr.ProcessPartitions(random.Partition(window.items));
    std::printf("%-10s latency %8.2f ms (critical %6.2f)  accuracy %.3f\n",
                ("PR_Ran_k" + std::to_string(k)).c_str(),
                result->latency_ms, result->critical_path_ms,
                MeanAccuracy(result->answers, reference->answers));
  }
  return 0;
}
