// Multi-tenant streaming server over TCP: clients open named sessions
// (ASP program text + engine spec), push triples, and receive the ordered
// answer/error/shed event stream — all over the length-prefixed wire
// protocol in src/server/wire.h. tools/stream_client.py is the matching
// client; CI drives the pair as a smoke test.
//
// Prints "listening port=<N>" once the socket is bound, then serves until
// stdin reaches EOF (or the process is terminated), which is what lets a
// driving script shut the server down cleanly by closing its stdin.
//
// Usage: stream_server [port]   (port 0 = pick an ephemeral port)

#include <cstdio>
#include <cstdlib>

#include "server/server.h"
#include "server/tcp.h"

int main(int argc, char** argv) {
  using namespace streamasp;

  const uint16_t port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;

  StreamServer server;
  TcpServer::Options options;
  options.port = port;
  TcpServer tcp(&server, options);
  Status status = tcp.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("listening port=%u\n", tcp.port());
  std::fflush(stdout);

  // Serve until the driver closes our stdin.
  int c;
  while ((c = std::getchar()) != EOF) {
  }

  tcp.Stop();
  server.CloseAll();
  std::fprintf(stderr, "stream_server: shut down\n");
  return 0;
}
