// Prints the paper's design-time artifacts for a program: the extended
// dependency graph (Definition 1), the input dependency graph
// (Definition 2) and the partitioning plan produced by the decomposing
// process — all in Graphviz DOT / plain text.
//
// Usage:
//   dependency_explorer                # built-in traffic program P'
//   dependency_explorer program.lp     # your own program with #input decls

#include <cstdio>
#include <fstream>
#include <sstream>

#include "asp/parser.h"
#include "depgraph/decomposition.h"
#include "depgraph/extended_dependency_graph.h"
#include "depgraph/input_dependency_graph.h"
#include "streamrule/traffic_workload.h"

int main(int argc, char** argv) {
  using namespace streamasp;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = InvalidArgumentError("unset");
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    Parser parser(symbols);
    program = parser.ParseProgram(text.str());
  } else {
    program =
        MakeTrafficProgram(symbols, TrafficProgramVariant::kPPrime, false);
  }
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return 1;
  }

  std::printf("%% program:\n%s\n", program->ToString().c_str());

  const ExtendedDependencyGraph edg =
      ExtendedDependencyGraph::Build(*program);
  std::printf("%% extended dependency graph (Definition 1):\n%s\n",
              edg.ToDot(*symbols).c_str());

  StatusOr<InputDependencyGraph> idg = InputDependencyGraph::Build(
      edg, program->input_predicates(), *symbols);
  if (!idg.ok()) {
    std::fprintf(stderr, "input dependency graph: %s\n",
                 idg.status().ToString().c_str());
    return 1;
  }
  std::printf("%% input dependency graph (Definition 2):\n%s\n",
              idg->ToDot(*symbols).c_str());

  DecompositionInfo info;
  StatusOr<PartitioningPlan> plan =
      DecomposeInputDependencyGraph(*idg, {}, &info);
  if (!plan.ok()) {
    std::fprintf(stderr, "decomposition: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%% decomposing process: graph %s; %d communities, "
              "%d duplicated predicate(s)\n",
              info.graph_was_connected ? "connected (Louvain + duplication)"
                                       : "disconnected (components)",
              info.num_communities, info.num_duplicated_predicates);
  std::printf("%s", plan->ToString(*symbols).c_str());
  return 0;
}
