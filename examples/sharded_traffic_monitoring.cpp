// The traffic scenario on the sharded multi-pipeline engine, through the
// unified StreamEngine facade (num_shards >= 1): the stream is
// hash-partitioned by subject across several independent pipelines (each
// with its own windower, work queue and reasoning workers), and the
// ordered merge recombines per-shard answers so EmissionEvents still
// arrive in strict global window order — byte-identical to a single
// pipeline: subject sharding respects the traffic rules' dependencies,
// and the router broadcasts P'-duplicated predicates (car_number) to
// every shard so r7's cross-shard join survives hashing.
//
//   router (subject hash) -> N x [windower -> workers -> emitter]
//                         -> ordered merge -> EmissionEvents
//
// Usage: sharded_traffic_monitoring [window_size] [num_windows] [shards]

#include <cstdio>
#include <cstdlib>

#include "stream/generator.h"
#include "streamrule/engine.h"
#include "streamrule/traffic_workload.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace streamasp;

  const size_t window_size = argc > 1 ? std::atoi(argv[1]) : 4000;
  const size_t num_windows = argc > 2 ? std::atoi(argv[2]) : 6;
  const size_t shards = argc > 3 ? std::atoi(argv[3]) : 4;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  EngineConfig config;
  config.num_shards = shards;
  config.pipeline.window_size = window_size;
  config.pipeline.async = true;
  config.pipeline.max_inflight_windows = 4;
  // config.shard_key defaults to SubjectShardKey(); see
  // stream/shard_key.h and CommunityShardKey for alternatives.

  uint64_t total_events = 0;
  StatusOr<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      &*program, config, [&](EmissionEvent& event) {
        if (event.kind != EmissionEvent::Kind::kResult) return;
        std::printf(
            "window %llu (%zu items): shard-parallel latency %.2f ms, "
            "%zu partitions, %zu answer(s)\n",
            static_cast<unsigned long long>(event.sequence),
            event.window->size(), event.result->latency_ms,
            event.result->num_partitions, event.result->answers.size());
        for (const GroundAnswer& answer : event.result->answers) {
          total_events += answer.size();
          std::printf("  events: %s\n",
                      AnswerToString(answer, *symbols).c_str());
        }
      });
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("sharded engine: %zu shards\n", (*engine)->num_shards());

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     GeneratorOptions{});
  WallTimer wall;
  for (size_t i = 0; i < num_windows; ++i) {
    // The router only hashes and batches here; windowing and reasoning
    // happen on the shard threads while this loop keeps pushing.
    (*engine)->PushBatch(generator.GenerateWindow(window_size));
  }
  (*engine)->Flush();  // Drain every shard and the ordered merge.
  const double wall_ms = wall.ElapsedMillis();

  const EngineStats stats = (*engine)->stats();
  std::printf(
      "processed %llu global windows / %llu items in %.2f ms "
      "(%.0f triples/s, merge reorder peak %zu)\n",
      static_cast<unsigned long long>(stats.delivered_windows),
      static_cast<unsigned long long>(stats.reasoning.items), wall_ms,
      static_cast<double>(stats.reasoning.items) / (wall_ms / 1000.0),
      stats.max_merge_reorder_depth);
  for (size_t s = 0; s < stats.per_shard.size(); ++s) {
    std::printf(
        "  shard %zu: %llu items, %llu sub-windows, mean latency %.2f ms\n",
        s, static_cast<unsigned long long>(stats.routed_items[s]),
        static_cast<unsigned long long>(stats.per_shard[s].windows),
        stats.per_shard[s].mean_latency_ms());
  }
  std::printf("total detected events: %llu\n",
              static_cast<unsigned long long>(total_events));
  return 0;
}
