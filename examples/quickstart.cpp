// Quickstart: parse an ASP program, ground it, enumerate its answer sets.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "asp/parser.h"
#include "ground/grounder.h"
#include "solve/solver.h"

int main() {
  using namespace streamasp;

  // A tiny non-monotonic program: two mutually exclusive weather guesses
  // plus a plan that depends on the guess. It has exactly two answer sets.
  const char* kSource = R"(
    sunny :- not rainy.
    rainy :- not sunny.
    picnic    :- sunny.
    umbrella  :- rainy.
    % Never plan a picnic with an umbrella.
    :- picnic, umbrella.
  )";

  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(kSource);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  Grounder grounder;
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  if (!ground.ok()) {
    std::fprintf(stderr, "grounding error: %s\n",
                 ground.status().ToString().c_str());
    return 1;
  }
  std::printf("ground program:\n%s\n",
              ground->ToString(*symbols).c_str());

  Solver solver;
  StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
  if (!models.ok()) {
    std::fprintf(stderr, "solving error: %s\n",
                 models.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu answer set(s):\n", models->size());
  for (size_t i = 0; i < models->size(); ++i) {
    std::printf("  answer %zu: {", i + 1);
    const AnswerSet& model = (*models)[i];
    for (size_t j = 0; j < model.atoms.size(); ++j) {
      if (j > 0) std::printf(", ");
      std::printf(
          "%s",
          ground->atoms().GetAtom(model.atoms[j]).ToString(*symbols).c_str());
    }
    std::printf("}\n");
  }
  return 0;
}
