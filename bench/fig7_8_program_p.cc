// Reproduces Figure 7 (reasoning latency) and Figure 8 (accuracy) of the
// paper for program P (Listing 1): window sizes 5k..40k, reasoners R,
// PR_Dep and PR_Ran_k for k = 2..5.
//
// Expected shape (paper §IV): PR_Dep cuts R's latency by roughly half
// while keeping accuracy at 1.0; random partitioning is as fast or faster
// but its accuracy drops sharply and worsens with k.

#include <cstdio>

#include "bench/figure_common.h"

int main() {
  using streamasp::bench::FigureConfig;
  using streamasp::bench::FigurePoint;
  using streamasp::bench::RunFigure;

  FigureConfig config;
  config.variant = streamasp::TrafficProgramVariant::kP;

  const std::vector<FigurePoint> points = RunFigure(config);

  std::printf(
      "# Figure 7: Reasoning latency (program P), critical-path ms\n");
  std::printf("# %10s %10s %10s %12s %12s %12s %12s %12s\n", "window", "R",
              "PR_Dep", "PR_Dep_wall", "PR_Ran_k2", "PR_Ran_k3", "PR_Ran_k4",
              "PR_Ran_k5");
  for (const FigurePoint& p : points) {
    std::printf("  %10zu %10.2f %10.2f %12.2f %12.2f %12.2f %12.2f %12.2f\n",
                p.window_size, p.r_latency_ms, p.pr_dep_latency_ms,
                p.pr_dep_wall_ms, p.pr_ran_latency_ms[0],
                p.pr_ran_latency_ms[1], p.pr_ran_latency_ms[2],
                p.pr_ran_latency_ms[3]);
  }

  std::printf("\n# Figure 8: Accuracy (program P)\n");
  std::printf("# %10s %10s %12s %12s %12s %12s\n", "window", "PR_Dep",
              "PR_Ran_k2", "PR_Ran_k3", "PR_Ran_k4", "PR_Ran_k5");
  for (const FigurePoint& p : points) {
    std::printf("  %10zu %10.3f %12.3f %12.3f %12.3f %12.3f\n",
                p.window_size, p.pr_dep_accuracy, p.pr_ran_accuracy[0],
                p.pr_ran_accuracy[1], p.pr_ran_accuracy[2],
                p.pr_ran_accuracy[3]);
  }

  // Headline checks from the paper, reported for eyeballing.
  double speedup = 0;
  for (const FigurePoint& p : points) {
    speedup += p.r_latency_ms / p.pr_dep_latency_ms;
  }
  std::printf("\n# mean R / PR_Dep latency ratio: %.2fx "
              "(paper: ~2x, i.e. ~50%% latency cut)\n",
              speedup / points.size());
  return 0;
}
