// Ablation for the atom-level extension (paper §VI future work): how much
// further latency drops when communities are additionally hash-split by
// join key, at accuracy 1.0, compared with predicate-level PR_Dep and
// whole-window R. Random partitioning at the same total partition count
// gives the accuracy contrast.

#include <cstdio>

#include "bench/figure_common.h"
#include "depgraph/atom_level.h"
#include "stream/format.h"

int main() {
  using namespace streamasp;

  constexpr size_t kWindowSize = 20000;
  constexpr int kReps = 3;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kP, /*with_show=*/true);
  StatusOr<InputDependencyGraph> graph = InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> community = DecomposeInputDependencyGraph(*graph);
  if (!community.ok()) {
    std::fprintf(stderr, "%s\n", community.status().ToString().c_str());
    return 1;
  }

  DataFormatProcessor format;
  (void)format.DeclareInputPredicates(program->input_predicates());
  Reasoner r(&*program);
  ParallelReasoner pr(&*program, *community);

  std::printf("# Ablation: atom-level fanout (program P, window %zu, "
              "critical-path ms)\n", kWindowSize);
  std::printf("# %8s %12s %12s %10s %10s\n", "fanout", "partitions",
              "latency_ms", "accuracy", "R_ms");

  for (int fanout : {1, 2, 4, 8}) {
    StatusOr<AtomLevelPlan> plan = AtomLevelPlan::Build(
        *program, *community, AtomLevelOptions{fanout});
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    AtomLevelPartitioningHandler handler(*plan);

    double latency = 0;
    double accuracy = 0;
    double r_latency = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      GeneratorOptions gen_options;
      gen_options.seed = 77 + rep;
      SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                         gen_options);
      const TripleWindow window = generator.GenerateTripleWindow(kWindowSize);
      StatusOr<std::vector<Atom>> facts = format.ToFacts(window.items);

      StatusOr<ReasonerResult> reference = r.Process(window);
      StatusOr<ParallelReasonerResult> result =
          pr.ProcessFactPartitions(handler.PartitionFacts(*facts));
      if (!reference.ok() || !result.ok()) {
        std::fprintf(stderr, "run failed\n");
        return 1;
      }
      latency += result->critical_path_ms;
      accuracy += MeanAccuracy(result->answers, reference->answers);
      r_latency += reference->latency_ms;
    }
    std::printf("  %8d %12d %12.2f %10.3f %10.2f\n", fanout,
                plan->num_partitions(), latency / kReps, accuracy / kReps,
                r_latency / kReps);
  }
  std::printf("# fanout 1 = predicate-level PR_Dep; accuracy stays 1.0 at "
              "every fanout because the key-flow analysis only splits "
              "join-compatible atoms apart\n");
  return 0;
}
