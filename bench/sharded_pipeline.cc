// Sustained-throughput bench for the sharded multi-pipeline engine:
// the single-pipeline baselines (sync oracle, staged async) vs the
// sharded engine at shard counts {1, 2, 4, 8} on the paper's traffic
// workload, plus the sharded sliding-reuse pair: sliding global windows
// (router delta punctuation) on the recursive reachability workload at
// shards=4, once cold and once with the full reuse stack
// (reuse_grounding + reuse_solving). A final burst-overload leg drives
// a self-clocked flash-crowd stream against an undersized sharded
// engine (async inner pipelines, kDropOldest): shed sub-windows release
// their merge slot through tombstones and the run reports
// completeness/shed accounting. Every leg drives the unified
// StreamEngine facade (num_shards selects the shape); emission flows
// through the single ordered EmissionEvent handler. Emits one
// machine-readable JSON document on stdout (schema shared with
// bench/async_pipeline via bench/bench_json.h); human-readable notes go
// to stderr.
//
// Throughput is items pushed / wall time of PushBatch+Flush; window
// latency is the per-delivered-window latency distribution (p50/p99) as
// seen by the consumer (for sharded runs that is the merged cross-shard
// window). The sliding pair reasons a different program and window count
// than the tumbling runs — compare its two legs only to each other,
// which is how the CI gate consumes them (cold vs reuse reason_ms_total
// ratio). The JSON schema is documented in docs/benchmarks.md.
//
// Usage: sharded_pipeline [items] [window_size]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "asp/parser.h"
#include "bench/bench_json.h"
#include "stream/generator.h"
#include "streamrule/engine.h"
#include "streamrule/traffic_workload.h"
#include "util/timer.h"

namespace {

using namespace streamasp;
using bench::BenchRun;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

/// Builds the engine, pushes the whole stream behind a wall timer, and
/// fills the shared run record. `shards` == 0 is the single-pipeline
/// shape (sync oracle or staged async).
BenchRun RunEngine(std::string mode, const Program& program,
                   const std::vector<Triple>& stream, size_t window_size,
                   size_t shards, bool async, size_t window_slide = 0,
                   bool reuse = false, bool reuse_solving = false) {
  EngineConfig config;
  config.num_shards = shards;
  config.pipeline.window_size = window_size;
  config.pipeline.window_slide = window_slide;
  config.pipeline.reuse_grounding = reuse;
  config.pipeline.reuse_solving = reuse_solving;
  config.pipeline.async = async;
  config.pipeline.max_inflight_windows = 4;

  std::vector<double> latencies;
  StatusOr<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      &program, config, [&](EmissionEvent& event) {
        if (event.kind == EmissionEvent::Kind::kResult) {
          latencies.push_back(event.result->latency_ms);
        }
      });
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }

  WallTimer wall;
  (*engine)->PushBatch(stream);
  (*engine)->Flush();
  const double wall_ms = wall.ElapsedMillis();

  BenchRun run;
  run.mode = std::move(mode);
  run.shards = shards;
  run.inflight = async ? config.pipeline.max_inflight_windows : 0;
  run.workers = (*engine)->num_reason_workers();
  run.window_slide = window_slide;
  run.reuse = reuse || reuse_solving;
  run.reuse_solving = reuse_solving;
  run.wall_ms = wall_ms;
  run.triples_per_sec =
      wall_ms > 0 ? static_cast<double>(stream.size()) / (wall_ms / 1000.0)
                  : 0;
  run.p50_latency_ms = Percentile(latencies, 0.50);
  run.p99_latency_ms = Percentile(latencies, 0.99);
  bench::FillFromEngineStats((*engine)->stats(), &run);
  return run;
}

// Graceful-degradation leg, mirroring bench/async_pipeline's burst run
// through the sharded engine: a flash-crowd stream against two shards
// whose inner async pipelines are deliberately undersized (one worker,
// two in-flight sub-windows) with kDropOldest shedding. A shed
// sub-window emits a tombstone that releases its merge slot, so the
// ordered merge keeps flowing and delivers the surviving shards' answers
// with completeness < 1. Pacing is self-clocked rather than timed:
// valley windows are pushed behind a Flush() drain barrier (ingest never
// outruns service, nothing sheds), spike windows back-to-back (each
// shard's work queue overflows by spike_len - capacity - 1 sub-windows
// regardless of host speed), so the completeness minimum in
// bench/baseline.json is a meaningful machine-independent gate.
BenchRun RunShardedBurstOverload(const Program& program,
                                 const SymbolTablePtr& symbols,
                                 size_t window_size) {
  using Clock = std::chrono::steady_clock;
  const size_t burst_window = std::max<size_t>(100, window_size / 4);
  const size_t num_windows = 120;
  const size_t shards = 2;

  BurstOptions burst;
  burst.shape = BurstShape::kFlashCrowd;
  burst.period = 60 * burst_window;  // 6-window spikes, 54-window valleys.
  burst.burst_fraction = 0.1;

  EngineConfig config;
  config.num_shards = shards;
  config.pipeline.window_size = burst_window;
  config.pipeline.async = true;
  config.pipeline.num_reason_workers = 1;
  config.pipeline.max_inflight_windows = 2;
  config.pipeline.backpressure = BackpressurePolicy::kDropOldest;
  std::vector<Clock::time_point> close_times(num_windows);
  std::vector<double> latencies;
  std::vector<double> emit_latencies;
  StatusOr<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      &program, config, [&](EmissionEvent& event) {
        if (event.kind != EmissionEvent::Kind::kResult) return;
        latencies.push_back(event.result->latency_ms);
        if (event.sequence < close_times.size()) {
          emit_latencies.push_back(std::chrono::duration<double, std::milli>(
                                       Clock::now() -
                                       close_times[event.sequence])
                                       .count());
        }
      });
  if (!engine.ok()) {
    std::fprintf(stderr, "burst engine: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }

  BurstyStreamGenerator generator =
      MakeTrafficBurstGenerator(*symbols, 5, burst);
  WallTimer wall;
  for (size_t k = 0; k < num_windows; ++k) {
    const bool spike = generator.InBurst(generator.position());
    const std::vector<Triple> chunk = generator.Generate(burst_window);
    // Stamp before the push: the global window closes inside PushBatch.
    close_times[k] = Clock::now();
    (*engine)->PushBatch(chunk);
    // Valley: drain before the next window (ingest at service rate).
    // Spike: no barrier — the next window lands immediately.
    if (!spike) (*engine)->Flush();
  }
  (*engine)->Flush();
  const double wall_ms = wall.ElapsedMillis();

  const EngineStats stats = (*engine)->stats();
  BenchRun run;
  run.mode = "burst-overload";
  run.workload = "traffic_pprime_flash_crowd";
  run.shards = shards;
  run.inflight = config.pipeline.max_inflight_windows;
  run.workers = (*engine)->num_reason_workers();
  run.wall_ms = wall_ms;
  run.triples_per_sec =
      wall_ms > 0 ? static_cast<double>(num_windows * burst_window) /
                        (wall_ms / 1000.0)
                  : 0;
  run.p50_latency_ms = Percentile(latencies, 0.50);
  run.p99_latency_ms = Percentile(latencies, 0.99);
  bench::FillFromEngineStats(stats, &run);
  run.p99_emit_latency_ms = Percentile(emit_latencies, 0.99);
  run.unaccounted_windows = static_cast<long long>(num_windows) -
                            static_cast<long long>(stats.accounted_windows());
  return run;
}

// The sharded sliding-reuse showcase, mirroring bench/async_pipeline's
// sliding pair: recursive reachability over a sliding edge stream, where
// transitive-closure instantiation dominates each window and consecutive
// global windows share all but `slide` items. Subject sharding is NOT
// dependency-respecting for the recursive reach program (cross-shard
// joins are lost), but both legs route identically, so the cold-vs-reuse
// reason_ms_total ratio the CI gate consumes is well-defined — it
// isolates what router delta punctuation saves the per-shard caches.
// Inner pipelines run synchronously (reasoning on the feeder threads):
// one ParallelReasoner per shard sees every sub-window consecutively,
// which is the configuration the incremental caches are built for.
constexpr char kReachProgram[] = R"(
  #input link/2.
  #input high/1.
  reach(X, Y) :- link(X, Y).
  reach(X, Z) :- reach(X, Y), link(Y, Z).
  alarm(X, Y) :- high(X), high(Y), reach(X, Y).
  #show alarm/2.
)";

BenchRun RunShardedSlidingReach(const SymbolTablePtr& symbols, size_t items,
                                size_t window_size, size_t shards,
                                bool reuse_solving) {
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(kReachProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "reach program: %s\n",
                 program.status().ToString().c_str());
    std::exit(1);
  }

  GeneratorOptions gen_options;
  gen_options.seed = 2017;
  gen_options.location_divisor = std::max<size_t>(1, items / 48);
  gen_options.value_range = 48;
  std::vector<StreamPredicate> schema(2);
  schema[0].predicate = symbols->Intern("link");
  schema[0].has_object = true;
  schema[0].weight = 4.0;
  schema[1].predicate = symbols->Intern("high");
  schema[1].has_object = false;
  schema[1].weight = 1.0;
  SyntheticStreamGenerator generator(schema, gen_options);
  const std::vector<Triple> stream = generator.GenerateWindow(items);

  const size_t slide = std::max<size_t>(1, window_size / 16);
  BenchRun run = RunEngine(
      reuse_solving ? "sliding-tc-reuse-solve" : "sliding-tc", *program,
      stream, window_size, shards, /*async=*/false, slide,
      /*reuse=*/reuse_solving, reuse_solving);
  run.workload = "reach_tc";
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t items = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const size_t window_size =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  GeneratorOptions gen_options;
  gen_options.seed = 2017;
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     gen_options);
  const std::vector<Triple> stream = generator.GenerateWindow(items);

  std::fprintf(stderr,
               "sharded_pipeline bench: %zu items, window %zu, %u cores\n",
               items, window_size, std::thread::hardware_concurrency());

  std::vector<BenchRun> runs;
  // Warm-up (allocator/page-fault costs), then measure.
  RunEngine("sync", *program, stream, window_size, 0, /*async=*/false);
  runs.push_back(
      RunEngine("sync", *program, stream, window_size, 0, /*async=*/false));
  runs.push_back(
      RunEngine("async", *program, stream, window_size, 0, /*async=*/true));
  for (const size_t shards : {1, 2, 4, 8}) {
    runs.push_back(RunEngine("sharded", *program, stream, window_size,
                             shards, /*async=*/true));
  }
  // The sharded sliding-reuse pair at shards=4: cold vs the full reuse
  // stack on identical sliding global windows. The CI gate enforces the
  // reason_ms_total ratio between these two legs.
  const size_t tc_items = std::max<size_t>(6400, items / 5);
  const size_t tc_window = std::min<size_t>(1600, tc_items / 4);
  runs.push_back(RunShardedSlidingReach(symbols, tc_items, tc_window,
                                        /*shards=*/4,
                                        /*reuse_solving=*/false));
  runs.push_back(RunShardedSlidingReach(symbols, tc_items, tc_window,
                                        /*shards=*/4,
                                        /*reuse_solving=*/true));
  // Graceful-degradation leg: self-clocked flash-crowd overload against
  // an undersized two-shard engine with kDropOldest inner pipelines (see
  // RunShardedBurstOverload). Gated by a completeness minimum and an
  // unaccounted_windows ceiling in bench/baseline.json.
  runs.push_back(RunShardedBurstOverload(*program, symbols, window_size));

  bench::PrintBenchJson("sharded_pipeline", "traffic_pprime", items,
                        window_size, std::thread::hardware_concurrency(),
                        runs);
  return 0;
}
