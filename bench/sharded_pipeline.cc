// Sustained-throughput bench for the sharded multi-pipeline engine:
// the single-pipeline baselines (sync oracle, staged async) vs the
// sharded engine at shard counts {1, 2, 4, 8} on the paper's traffic
// workload, plus the sharded sliding-reuse pair: sliding global windows
// (router delta punctuation) on the recursive reachability workload at
// shards=4, once cold and once with the full reuse stack
// (reuse_grounding + reuse_solving). A final burst-overload leg drives
// a self-clocked flash-crowd stream against an undersized sharded
// engine (async inner pipelines, kDropOldest): shed sub-windows release
// their merge slot through tombstones and the run reports
// completeness/shed accounting. Emits one machine-readable JSON
// document on stdout for the perf trajectory; human-readable notes go
// to stderr.
//
// Throughput is items pushed / wall time of PushBatch+Flush; window
// latency is the per-delivered-window latency distribution (p50/p99) as
// seen by the consumer (for sharded runs that is the merged cross-shard
// window). The sliding pair reasons a different program and window count
// than the tumbling runs — compare its two legs only to each other,
// which is how the CI gate consumes them (cold vs reuse reason_ms_total
// ratio). The JSON schema is documented in docs/benchmarks.md.
//
// Usage: sharded_pipeline [items] [window_size]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "asp/parser.h"
#include "stream/generator.h"
#include "streamrule/pipeline.h"
#include "streamrule/sharded_pipeline.h"
#include "streamrule/traffic_workload.h"
#include "util/timer.h"

namespace {

using namespace streamasp;

struct RunResult {
  std::string mode;     // "sync", "async", "sharded", "sliding-tc[...]"
  std::string workload = "traffic_pprime";  // "reach_tc" for sliding runs
  size_t shards = 0;    // 0 for the single-pipeline baselines
  size_t inflight = 0;
  size_t window_slide = 0;  // 0 for tumbling runs
  bool reuse = false;
  bool reuse_solving = false;
  double wall_ms = 0;
  double triples_per_sec = 0;
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  uint64_t windows = 0;
  uint64_t answers = 0;
  uint64_t max_shard_items = 0;  // Skew: busiest shard's routed items.
  size_t max_merge_reorder_depth = 0;
  uint64_t delta_punctuations = 0;  // Sliding runs: delta closes delivered.
  // Grounding reuse counters (docs/benchmarks.md); always present so the
  // schema is uniform, zero when reuse_grounding is off.
  uint64_t incremental_windows = 0;
  uint64_t grounding_fallbacks = 0;
  uint64_t grounding_rules_retained = 0;
  uint64_t grounding_rules_new = 0;
  // Solver reuse counters; zero when reuse_solving is off.
  uint64_t incremental_solve_windows = 0;
  uint64_t solve_rebuilds = 0;
  uint64_t warm_start_hits = 0;
  // Phase totals summed over every partition of every sub-window. The
  // sharded solve-reuse gate compares reason_ms_total = ground + solve
  // (reuse_solving moves the simplification work across that boundary).
  double ground_ms_total = 0;
  double solve_ms_total = 0;
  double reason_ms_total = 0;
  // Compact-data-plane footprint (peaks; sharded runs sum shard peaks and
  // include the router's retained global window; docs/benchmarks.md).
  size_t window_store_bytes = 0;
  size_t atom_table_bytes = 0;
  double bytes_per_triple = 0;
  // Graceful-degradation accounting (docs/benchmarks.md): always present
  // for a uniform schema; lossless runs report 1.0 / 0 / 0 / 0. Sharded
  // runs report mean per-merged-window completeness and tombstoned shed
  // sub-windows. The burst-overload leg's completeness is gated by a
  // machine-independent minimum in bench/baseline.json and its
  // unaccounted_windows (emitted global windows neither merged nor
  // errored — the no-stall invariant) by a ceiling of 0.
  double completeness = 1.0;
  uint64_t shed_windows = 0;
  double p99_emit_latency_ms = 0;  // Window close -> ordered delivery.
  long long unaccounted_windows = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

RunResult FinishRun(std::string mode, size_t shards, size_t inflight,
                    double wall_ms, size_t items,
                    std::vector<double> latencies) {
  RunResult run;
  run.mode = std::move(mode);
  run.shards = shards;
  run.inflight = inflight;
  run.wall_ms = wall_ms;
  run.triples_per_sec =
      wall_ms > 0 ? static_cast<double>(items) / (wall_ms / 1000.0) : 0;
  run.p50_latency_ms = Percentile(latencies, 0.50);
  run.p99_latency_ms = Percentile(latencies, 0.99);
  return run;
}

RunResult RunSingle(const Program& program, const std::vector<Triple>& stream,
                    size_t window_size, bool async) {
  PipelineOptions options;
  options.window_size = window_size;
  options.async = async;
  options.max_inflight_windows = 4;

  std::vector<double> latencies;
  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(
          &program, options,
          [&](const TripleWindow&, const ParallelReasonerResult& result) {
            latencies.push_back(result.latency_ms);
          });
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }

  WallTimer wall;
  (*pipeline)->PushBatch(stream);
  (*pipeline)->Flush();
  const double wall_ms = wall.ElapsedMillis();

  const PipelineStats stats = (*pipeline)->stats();
  RunResult run = FinishRun(async ? "async" : "sync", 0, async ? 4 : 0,
                            wall_ms, stream.size(), std::move(latencies));
  run.windows = stats.windows;
  run.answers = stats.answers;
  run.max_shard_items = stats.items;
  run.incremental_windows = stats.incremental_windows;
  run.grounding_fallbacks = stats.grounding_fallbacks;
  run.grounding_rules_retained = stats.grounding_rules_retained;
  run.grounding_rules_new = stats.grounding_rules_new;
  run.incremental_solve_windows = stats.incremental_solve_windows;
  run.solve_rebuilds = stats.solve_rebuilds;
  run.warm_start_hits = stats.warm_start_hits;
  run.ground_ms_total = stats.total_ground_ms;
  run.solve_ms_total = stats.total_solve_ms;
  run.reason_ms_total = stats.total_ground_ms + stats.total_solve_ms;
  run.window_store_bytes = stats.window_store_bytes;
  run.atom_table_bytes = stats.atom_table_bytes;
  run.bytes_per_triple = stats.bytes_per_triple();
  run.completeness = stats.completeness();
  run.shed_windows = stats.shed_windows();
  return run;
}

RunResult RunSharded(const Program& program, const std::vector<Triple>& stream,
                     size_t window_size, size_t shards,
                     size_t window_slide = 0, bool reuse = false,
                     bool reuse_solving = false, bool inner_async = true) {
  ShardedPipelineOptions options;
  options.num_shards = shards;
  options.pipeline.window_size = window_size;
  options.pipeline.window_slide = window_slide;
  options.pipeline.reuse_grounding = reuse;
  options.pipeline.reuse_solving = reuse_solving;
  options.pipeline.async = inner_async;
  options.pipeline.max_inflight_windows = 4;

  std::vector<double> latencies;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &program, options,
          [&](const TripleWindow&, const ParallelReasonerResult& result) {
            latencies.push_back(result.latency_ms);
          });
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }

  WallTimer wall;
  (*engine)->PushBatch(stream);
  (*engine)->Flush();
  const double wall_ms = wall.ElapsedMillis();

  const ShardedPipelineStats stats = (*engine)->stats();
  RunResult run = FinishRun("sharded", shards, inner_async ? 4 : 0, wall_ms,
                            stream.size(), std::move(latencies));
  run.window_slide = window_slide;
  run.reuse = reuse || reuse_solving;
  run.reuse_solving = reuse_solving;
  run.windows = stats.merged_windows;
  run.answers = stats.merged_answers;
  for (const uint64_t routed : stats.routed_items) {
    run.max_shard_items = std::max(run.max_shard_items, routed);
  }
  run.max_merge_reorder_depth = stats.max_merge_reorder_depth;
  run.delta_punctuations = stats.delta_punctuations;
  run.incremental_windows = stats.aggregate.incremental_windows;
  run.grounding_fallbacks = stats.aggregate.grounding_fallbacks;
  run.grounding_rules_retained = stats.aggregate.grounding_rules_retained;
  run.grounding_rules_new = stats.aggregate.grounding_rules_new;
  run.incremental_solve_windows = stats.aggregate.incremental_solve_windows;
  run.solve_rebuilds = stats.aggregate.solve_rebuilds;
  run.warm_start_hits = stats.aggregate.warm_start_hits;
  run.ground_ms_total = stats.aggregate.total_ground_ms;
  run.solve_ms_total = stats.aggregate.total_solve_ms;
  run.reason_ms_total =
      stats.aggregate.total_ground_ms + stats.aggregate.total_solve_ms;
  run.window_store_bytes = stats.aggregate.window_store_bytes;
  run.atom_table_bytes = stats.aggregate.atom_table_bytes;
  run.bytes_per_triple = stats.aggregate.bytes_per_triple();
  run.completeness = stats.mean_completeness;
  run.shed_windows = stats.shed_subwindows;
  return run;
}

// Graceful-degradation leg, mirroring bench/async_pipeline's burst run
// through the sharded engine: a flash-crowd stream against two shards
// whose inner async pipelines are deliberately undersized (one worker,
// two in-flight sub-windows) with kDropOldest shedding. A shed
// sub-window emits a tombstone that releases its merge slot, so the
// ordered merge keeps flowing and delivers the surviving shards' answers
// with completeness < 1. Pacing is self-clocked rather than timed:
// valley windows are pushed behind a Flush() drain barrier (ingest never
// outruns service, nothing sheds), spike windows back-to-back (each
// shard's work queue overflows by spike_len - capacity - 1 sub-windows
// regardless of host speed), so the completeness minimum in
// bench/baseline.json is a meaningful machine-independent gate.
RunResult RunShardedBurstOverload(const Program& program,
                                  const SymbolTablePtr& symbols,
                                  size_t window_size) {
  using Clock = std::chrono::steady_clock;
  const size_t burst_window = std::max<size_t>(100, window_size / 4);
  const size_t num_windows = 120;
  const size_t shards = 2;

  BurstOptions burst;
  burst.shape = BurstShape::kFlashCrowd;
  burst.period = 60 * burst_window;  // 6-window spikes, 54-window valleys.
  burst.burst_fraction = 0.1;

  ShardedPipelineOptions options;
  options.num_shards = shards;
  options.pipeline.window_size = burst_window;
  options.pipeline.async = true;
  options.pipeline.num_reason_workers = 1;
  options.pipeline.max_inflight_windows = 2;
  options.pipeline.backpressure = BackpressurePolicy::kDropOldest;
  std::vector<Clock::time_point> close_times(num_windows);
  std::vector<double> latencies;
  std::vector<double> emit_latencies;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &program, options,
          [&](const TripleWindow& window,
              const ParallelReasonerResult& result) {
            latencies.push_back(result.latency_ms);
            if (window.sequence < close_times.size()) {
              emit_latencies.push_back(
                  std::chrono::duration<double, std::milli>(
                      Clock::now() - close_times[window.sequence])
                      .count());
            }
          });
  if (!engine.ok()) {
    std::fprintf(stderr, "burst engine: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }

  BurstyStreamGenerator generator =
      MakeTrafficBurstGenerator(*symbols, 5, burst);
  WallTimer wall;
  for (size_t k = 0; k < num_windows; ++k) {
    const bool spike = generator.InBurst(generator.position());
    const std::vector<Triple> chunk = generator.Generate(burst_window);
    // Stamp before the push: the global window closes inside PushBatch.
    close_times[k] = Clock::now();
    (*engine)->PushBatch(chunk);
    // Valley: drain before the next window (ingest at service rate).
    // Spike: no barrier — the next window lands immediately.
    if (!spike) (*engine)->Flush();
  }
  (*engine)->Flush();
  const double wall_ms = wall.ElapsedMillis();

  const ShardedPipelineStats stats = (*engine)->stats();
  RunResult run =
      FinishRun("burst-overload", shards, options.pipeline.max_inflight_windows,
                wall_ms, num_windows * burst_window, std::move(latencies));
  run.workload = "traffic_pprime_flash_crowd";
  run.windows = stats.merged_windows;
  run.answers = stats.merged_answers;
  for (const uint64_t routed : stats.routed_items) {
    run.max_shard_items = std::max(run.max_shard_items, routed);
  }
  run.max_merge_reorder_depth = stats.max_merge_reorder_depth;
  run.window_store_bytes = stats.aggregate.window_store_bytes;
  run.atom_table_bytes = stats.aggregate.atom_table_bytes;
  run.bytes_per_triple = stats.aggregate.bytes_per_triple();
  run.completeness = stats.mean_completeness;
  run.shed_windows = stats.shed_subwindows;
  run.p99_emit_latency_ms = Percentile(emit_latencies, 0.99);
  run.unaccounted_windows =
      static_cast<long long>(num_windows) -
      static_cast<long long>(stats.merged_windows + stats.merge_errors);
  return run;
}

// The sharded sliding-reuse showcase, mirroring bench/async_pipeline's
// sliding pair: recursive reachability over a sliding edge stream, where
// transitive-closure instantiation dominates each window and consecutive
// global windows share all but `slide` items. Subject sharding is NOT
// dependency-respecting for the recursive reach program (cross-shard
// joins are lost), but both legs route identically, so the cold-vs-reuse
// reason_ms_total ratio the CI gate consumes is well-defined — it
// isolates what router delta punctuation saves the per-shard caches.
// Inner pipelines run synchronously (reasoning on the feeder threads):
// one ParallelReasoner per shard sees every sub-window consecutively,
// which is the configuration the incremental caches are built for.
constexpr char kReachProgram[] = R"(
  #input link/2.
  #input high/1.
  reach(X, Y) :- link(X, Y).
  reach(X, Z) :- reach(X, Y), link(Y, Z).
  alarm(X, Y) :- high(X), high(Y), reach(X, Y).
  #show alarm/2.
)";

RunResult RunShardedSlidingReach(const SymbolTablePtr& symbols, size_t items,
                                 size_t window_size, size_t shards,
                                 bool reuse_solving) {
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(kReachProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "reach program: %s\n",
                 program.status().ToString().c_str());
    std::exit(1);
  }

  GeneratorOptions gen_options;
  gen_options.seed = 2017;
  gen_options.location_divisor = std::max<size_t>(1, items / 48);
  gen_options.value_range = 48;
  std::vector<StreamPredicate> schema(2);
  schema[0].predicate = symbols->Intern("link");
  schema[0].has_object = true;
  schema[0].weight = 4.0;
  schema[1].predicate = symbols->Intern("high");
  schema[1].has_object = false;
  schema[1].weight = 1.0;
  SyntheticStreamGenerator generator(schema, gen_options);
  const std::vector<Triple> stream = generator.GenerateWindow(items);

  const size_t slide = std::max<size_t>(1, window_size / 16);
  RunResult run = RunSharded(*program, stream, window_size, shards, slide,
                             /*reuse=*/reuse_solving, reuse_solving,
                             /*inner_async=*/false);
  run.mode = reuse_solving ? "sliding-tc-reuse-solve" : "sliding-tc";
  run.workload = "reach_tc";
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t items = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const size_t window_size =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  GeneratorOptions gen_options;
  gen_options.seed = 2017;
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     gen_options);
  const std::vector<Triple> stream = generator.GenerateWindow(items);

  std::fprintf(stderr,
               "sharded_pipeline bench: %zu items, window %zu, %u cores\n",
               items, window_size, std::thread::hardware_concurrency());

  std::vector<RunResult> runs;
  // Warm-up (allocator/page-fault costs), then measure.
  RunSingle(*program, stream, window_size, /*async=*/false);
  runs.push_back(RunSingle(*program, stream, window_size, /*async=*/false));
  runs.push_back(RunSingle(*program, stream, window_size, /*async=*/true));
  for (const size_t shards : {1, 2, 4, 8}) {
    runs.push_back(RunSharded(*program, stream, window_size, shards));
  }
  // The sharded sliding-reuse pair at shards=4: cold vs the full reuse
  // stack on identical sliding global windows. The CI gate enforces the
  // reason_ms_total ratio between these two legs.
  const size_t tc_items = std::max<size_t>(6400, items / 5);
  const size_t tc_window = std::min<size_t>(1600, tc_items / 4);
  runs.push_back(RunShardedSlidingReach(symbols, tc_items, tc_window,
                                        /*shards=*/4,
                                        /*reuse_solving=*/false));
  runs.push_back(RunShardedSlidingReach(symbols, tc_items, tc_window,
                                        /*shards=*/4,
                                        /*reuse_solving=*/true));
  // Graceful-degradation leg: self-clocked flash-crowd overload against
  // an undersized two-shard engine with kDropOldest inner pipelines (see
  // RunShardedBurstOverload). Gated by a completeness minimum and an
  // unaccounted_windows ceiling in bench/baseline.json.
  runs.push_back(RunShardedBurstOverload(*program, symbols, window_size));

  std::printf("{\n");
  std::printf("  \"bench\": \"sharded_pipeline\",\n");
  std::printf("  \"workload\": \"traffic_pprime\",\n");
  std::printf("  \"items\": %zu,\n", items);
  std::printf("  \"window_size\": %zu,\n", window_size);
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    std::printf(
        "    {\"mode\": \"%s\", \"workload\": \"%s\", \"shards\": %zu, "
        "\"inflight\": %zu, \"window_slide\": %zu, \"reuse\": %s, "
        "\"reuse_solving\": %s, "
        "\"wall_ms\": %.2f, \"triples_per_sec\": %.1f, "
        "\"p50_latency_ms\": %.3f, \"p99_latency_ms\": %.3f, "
        "\"windows\": %llu, \"answers\": %llu, "
        "\"max_shard_items\": %llu, \"max_merge_reorder_depth\": %zu, "
        "\"delta_punctuations\": %llu, "
        "\"incremental_windows\": %llu, \"grounding_fallbacks\": %llu, "
        "\"grounding_rules_retained\": %llu, "
        "\"grounding_rules_new\": %llu, "
        "\"incremental_solve_windows\": %llu, \"solve_rebuilds\": %llu, "
        "\"warm_start_hits\": %llu, \"ground_ms_total\": %.2f, "
        "\"solve_ms_total\": %.2f, \"reason_ms_total\": %.2f, "
        "\"window_store_bytes\": %zu, \"atom_table_bytes\": %zu, "
        "\"bytes_per_triple\": %.1f, "
        "\"completeness\": %.4f, \"shed_windows\": %llu, "
        "\"p99_emit_latency_ms\": %.3f, \"unaccounted_windows\": %lld}%s\n",
        run.mode.c_str(), run.workload.c_str(), run.shards, run.inflight,
        run.window_slide, run.reuse ? "true" : "false",
        run.reuse_solving ? "true" : "false", run.wall_ms,
        run.triples_per_sec, run.p50_latency_ms, run.p99_latency_ms,
        static_cast<unsigned long long>(run.windows),
        static_cast<unsigned long long>(run.answers),
        static_cast<unsigned long long>(run.max_shard_items),
        run.max_merge_reorder_depth,
        static_cast<unsigned long long>(run.delta_punctuations),
        static_cast<unsigned long long>(run.incremental_windows),
        static_cast<unsigned long long>(run.grounding_fallbacks),
        static_cast<unsigned long long>(run.grounding_rules_retained),
        static_cast<unsigned long long>(run.grounding_rules_new),
        static_cast<unsigned long long>(run.incremental_solve_windows),
        static_cast<unsigned long long>(run.solve_rebuilds),
        static_cast<unsigned long long>(run.warm_start_hits),
        run.ground_ms_total, run.solve_ms_total, run.reason_ms_total,
        run.window_store_bytes, run.atom_table_bytes, run.bytes_per_triple,
        run.completeness, static_cast<unsigned long long>(run.shed_windows),
        run.p99_emit_latency_ms, run.unaccounted_windows,
        i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
