// Ablation for the duplication overhead claim of §IV: "Time required for
// processing the duplicated predicate increases latency up to 30%. Note
// that the average percentage of instances of the duplicated predicate in
// a window is 25%."
//
// We sweep the stream share of car_number (the predicate the decomposing
// process duplicates for P') and compare PR_Dep latency on P' (duplicated)
// against PR_Dep latency on P (same stream, no duplication). The overhead
// column should grow with the duplicated share and sit near the paper's
// ~30% at a 25% share.

#include <cstdio>

#include "bench/figure_common.h"

namespace {

using namespace streamasp;

double MeasurePrDep(const Program& program, const PartitioningPlan& plan,
                    const std::vector<StreamPredicate>& schema,
                    size_t window_size, int reps, uint64_t seed,
                    double* duplication_share) {
  ParallelReasoner pr(&program, plan);
  double total = 0;
  double share = 0;
  for (int rep = 0; rep < reps; ++rep) {
    GeneratorOptions options;
    options.seed = seed + rep;
    SyntheticStreamGenerator generator(schema, options);
    const TripleWindow window = generator.GenerateTripleWindow(window_size);
    StatusOr<ParallelReasonerResult> result = pr.Process(window);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    total += result->critical_path_ms;
    share += static_cast<double>(result->total_partition_items -
                                 window.size()) /
             static_cast<double>(window.size());
  }
  if (duplication_share != nullptr) *duplication_share = share / reps;
  return total / reps;
}

}  // namespace

int main() {
  constexpr size_t kWindowSize = 20000;
  constexpr int kReps = 3;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> p =
      MakeTrafficProgram(symbols, TrafficProgramVariant::kP, true);
  StatusOr<Program> pprime =
      MakeTrafficProgram(symbols, TrafficProgramVariant::kPPrime, true);
  StatusOr<InputDependencyGraph> graph_p = InputDependencyGraph::Build(*p);
  StatusOr<InputDependencyGraph> graph_pp =
      InputDependencyGraph::Build(*pprime);
  StatusOr<PartitioningPlan> plan_p = DecomposeInputDependencyGraph(*graph_p);
  StatusOr<PartitioningPlan> plan_pp =
      DecomposeInputDependencyGraph(*graph_pp);
  if (!plan_p.ok() || !plan_pp.ok()) {
    std::fprintf(stderr, "plan construction failed\n");
    return 1;
  }

  std::printf("# Ablation: duplicated-predicate overhead (window %zu, "
              "critical-path ms)\n", kWindowSize);
  std::printf("# %12s %10s %14s %14s %10s\n", "cn_weight", "dup_share%",
              "PR_Dep(P)", "PR_Dep(P')", "overhead%");

  // Weights giving car_number shares of ~9%..44% of the stream.
  for (double weight : {0.5, 1.0, 5.0 / 3.0, 2.5, 4.0}) {
    std::vector<StreamPredicate> schema =
        streamasp::MakeTrafficSchema(*symbols);
    for (StreamPredicate& shape : schema) {
      if (symbols->NameOf(shape.predicate) == "car_number") {
        shape.weight = weight;
      }
    }
    double share = 0;
    const double base =
        MeasurePrDep(*p, *plan_p, schema, kWindowSize, kReps, 11, nullptr);
    const double duplicated = MeasurePrDep(*pprime, *plan_pp, schema,
                                           kWindowSize, kReps, 11, &share);
    std::printf("  %12.3f %10.1f %14.2f %14.2f %10.1f\n", weight,
                100.0 * share, base, duplicated,
                100.0 * (duplicated - base) / base);
  }
  std::printf("# paper reference point: ~25%% duplicated instances => "
              "PR_Dep latency up to +30%%\n");
  return 0;
}
