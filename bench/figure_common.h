// Shared harness for the figure-reproduction benches (Figures 7-10 of the
// paper). Each bench binary prints the same series the paper plots:
// reasoning latency and accuracy as functions of the window size, for the
// whole-window reasoner R, the dependency-partitioned reasoner PR_Dep and
// the random-partitioning baselines PR_Ran_k2..k5.
//
// Latency note (documented in EXPERIMENTS.md): the paper measured an
// 8-core machine; on boxes with fewer cores the wall time of the parallel
// phase is partially serialized, so the harness reports the
// hardware-independent critical-path latency (partition + slowest
// partition + combine) as the PR series, alongside the measured wall time.

#ifndef STREAMASP_BENCH_FIGURE_COMMON_H_
#define STREAMASP_BENCH_FIGURE_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "depgraph/decomposition.h"
#include "stream/generator.h"
#include "streamrule/accuracy.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/random_partitioner.h"
#include "streamrule/traffic_workload.h"

namespace streamasp::bench {

/// One measured point of a figure (all values averaged over repetitions).
struct FigurePoint {
  size_t window_size = 0;
  double r_latency_ms = 0;
  double pr_dep_latency_ms = 0;        // Critical path.
  double pr_dep_wall_ms = 0;           // Measured on this machine.
  double pr_dep_accuracy = 0;
  std::vector<double> pr_ran_latency_ms;  // k = 2..5, critical path.
  std::vector<double> pr_ran_accuracy;    // k = 2..5.
  double duplication_share = 0;  // (partition items - window) / window.
};

struct FigureConfig {
  TrafficProgramVariant variant = TrafficProgramVariant::kP;
  std::vector<size_t> window_sizes = {5000,  10000, 15000, 20000,
                                      25000, 30000, 35000, 40000};
  int repetitions = 3;
  uint64_t seed = 2017;  // ICDE 2017.
  /// Weight of car_number in the stream; 5/3 against five 1.0-weight
  /// predicates puts its share at 25%, the paper's quoted duplicated-
  /// instance share for P'.
  double car_number_weight = 5.0 / 3.0;
};

inline std::vector<FigurePoint> RunFigure(const FigureConfig& config) {
  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program =
      MakeTrafficProgram(symbols, config.variant, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    std::exit(1);
  }
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }

  std::vector<StreamPredicate> schema = MakeTrafficSchema(*symbols);
  for (StreamPredicate& shape : schema) {
    if (symbols->NameOf(shape.predicate) == "car_number") {
      shape.weight = config.car_number_weight;
    }
  }

  Reasoner r(&*program);
  ParallelReasoner pr(&*program, *plan);

  std::vector<FigurePoint> points;
  for (size_t window_size : config.window_sizes) {
    FigurePoint point;
    point.window_size = window_size;
    point.pr_ran_latency_ms.assign(4, 0.0);
    point.pr_ran_accuracy.assign(4, 0.0);

    for (int rep = 0; rep < config.repetitions; ++rep) {
      GeneratorOptions gen_options;
      gen_options.seed = config.seed + rep;
      SyntheticStreamGenerator generator(schema, gen_options);
      const TripleWindow window =
          generator.GenerateTripleWindow(window_size);

      StatusOr<ReasonerResult> reference = r.Process(window);
      StatusOr<ParallelReasonerResult> dep = pr.Process(window);
      if (!reference.ok() || !dep.ok()) {
        std::fprintf(stderr, "reasoning failed: %s / %s\n",
                     reference.status().ToString().c_str(),
                     dep.status().ToString().c_str());
        std::exit(1);
      }
      point.r_latency_ms += reference->latency_ms;
      point.pr_dep_latency_ms += dep->critical_path_ms;
      point.pr_dep_wall_ms += dep->latency_ms;
      point.pr_dep_accuracy +=
          MeanAccuracy(dep->answers, reference->answers);
      point.duplication_share +=
          static_cast<double>(dep->total_partition_items - window.size()) /
          static_cast<double>(window.size());

      for (size_t k = 2; k <= 5; ++k) {
        RandomPartitioner random(k, config.seed + rep * 31 + k);
        StatusOr<ParallelReasonerResult> ran =
            pr.ProcessPartitions(random.Partition(window.items));
        if (!ran.ok()) {
          std::fprintf(stderr, "random run failed: %s\n",
                       ran.status().ToString().c_str());
          std::exit(1);
        }
        point.pr_ran_latency_ms[k - 2] += ran->critical_path_ms;
        point.pr_ran_accuracy[k - 2] +=
            MeanAccuracy(ran->answers, reference->answers);
      }
    }

    const double reps = config.repetitions;
    point.r_latency_ms /= reps;
    point.pr_dep_latency_ms /= reps;
    point.pr_dep_wall_ms /= reps;
    point.pr_dep_accuracy /= reps;
    point.duplication_share /= reps;
    for (double& v : point.pr_ran_latency_ms) v /= reps;
    for (double& v : point.pr_ran_accuracy) v /= reps;
    points.push_back(point);
  }
  return points;
}

}  // namespace streamasp::bench

#endif  // STREAMASP_BENCH_FIGURE_COMMON_H_
