// Component microbenchmarks: grounding throughput on the paper's traffic
// program (window-size sweep) and on a recursive transitive-closure
// program (semi-naive evaluation stress).

#include <benchmark/benchmark.h>

#include "asp/parser.h"
#include "ground/grounder.h"
#include "stream/format.h"
#include "stream/generator.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

void BM_GroundTrafficWindow(benchmark::State& state) {
  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program =
      MakeTrafficProgram(symbols, TrafficProgramVariant::kP, false);
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols), {});
  DataFormatProcessor format;
  (void)format.DeclareInputPredicates(program->input_predicates());
  const std::vector<Triple> window =
      generator.GenerateWindow(static_cast<size_t>(state.range(0)));
  const std::vector<Atom> facts = *format.ToFacts(window);

  for (auto _ : state) {
    Grounder grounder;
    benchmark::DoNotOptimize(grounder.Ground(*program, facts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroundTrafficWindow)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_GroundTrafficWindowNoSimplify(benchmark::State& state) {
  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program =
      MakeTrafficProgram(symbols, TrafficProgramVariant::kP, false);
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols), {});
  DataFormatProcessor format;
  (void)format.DeclareInputPredicates(program->input_predicates());
  const std::vector<Atom> facts = *format.ToFacts(
      generator.GenerateWindow(static_cast<size_t>(state.range(0))));

  GroundingOptions options;
  options.simplify = false;
  for (auto _ : state) {
    Grounder grounder(options);
    benchmark::DoNotOptimize(grounder.Ground(*program, facts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroundTrafficWindowNoSimplify)->Arg(5000);

void BM_GroundTransitiveClosure(benchmark::State& state) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  // A chain of n edges: closure has n(n+1)/2 reach atoms.
  std::string text = R"(
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
  )";
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) +
            ").\n";
  }
  StatusOr<Program> program = parser.ParseProgram(text);

  for (auto _ : state) {
    Grounder grounder;
    benchmark::DoNotOptimize(grounder.Ground(*program));
  }
  state.SetItemsProcessed(state.iterations() * n * (n + 1) / 2);
}
BENCHMARK(BM_GroundTransitiveClosure)->Arg(50)->Arg(100)->Arg(200);

}  // namespace
}  // namespace streamasp

BENCHMARK_MAIN();
