// Ablation: degree of parallelism. The paper ran on 8 cores; this sweep
// shows how the measured wall latency of PR depends on the worker-thread
// count on the current machine, with the hardware-independent critical
// path as the reference line. On a single-core box the wall times
// converge regardless of thread count — which is exactly the point of
// reporting the critical path in the figure benches.

#include <cstdio>
#include <thread>

#include "bench/figure_common.h"

int main() {
  constexpr size_t kWindowSize = 20000;
  constexpr int kReps = 3;

  using namespace streamasp;
  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program =
      MakeTrafficProgram(symbols, TrafficProgramVariant::kP, true);
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }

  std::printf("# Ablation: PR worker threads (window %zu, program P, "
              "machine reports %u hardware thread(s))\n",
              kWindowSize, std::thread::hardware_concurrency());
  std::printf("# %8s %12s %16s\n", "threads", "wall_ms", "critical_path_ms");

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelReasonerOptions options;
    options.num_threads = threads;
    ParallelReasoner pr(&*program, *plan, options);

    double wall = 0;
    double critical = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      GeneratorOptions gen_options;
      gen_options.seed = 31 + rep;
      SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                         gen_options);
      const TripleWindow window =
          generator.GenerateTripleWindow(kWindowSize);
      StatusOr<ParallelReasonerResult> result = pr.Process(window);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      wall += result->latency_ms;
      critical += result->critical_path_ms;
    }
    std::printf("  %8zu %12.2f %16.2f\n", threads, wall / kReps,
                critical / kReps);
  }
  return 0;
}
