// Component microbenchmarks for the stable-model solver: propagation-only
// programs (the streaming fast path), choice programs with real search,
// the from-first-principles stable-model verification, and the
// cold-vs-incremental sliding-window comparison the solve-reuse CI gate
// is built on (high-overlap reach_tc windows, per-window Solver::Solve
// over the assembled output vs one persistent delta-patched
// IncrementalSolver).

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "asp/parser.h"
#include "ground/grounder.h"
#include "ground/incremental_grounder.h"
#include "solve/incremental_solver.h"
#include "solve/solver.h"
#include "util/rng.h"

namespace streamasp {
namespace {

GroundProgram PrepareGround(const std::string& text, bool simplify = true) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(text);
  GroundingOptions options;
  options.simplify = simplify;
  Grounder grounder(options);
  return *grounder.Ground(*program);
}

std::string StratifiedChain(int n) {
  // p0(i) facts, pk(X) :- pk-1(X) layers: pure propagation.
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += "p0(" + std::to_string(i) + ").\n";
  }
  for (int layer = 1; layer <= 4; ++layer) {
    text += "p" + std::to_string(layer) + "(X) :- p" +
            std::to_string(layer - 1) + "(X).\n";
  }
  return text;
}

void BM_SolvePropagationOnly(benchmark::State& state) {
  const GroundProgram ground = PrepareGround(
      StratifiedChain(static_cast<int>(state.range(0))), /*simplify=*/false);
  for (auto _ : state) {
    Solver solver;
    benchmark::DoNotOptimize(solver.Solve(ground));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5);
}
BENCHMARK(BM_SolvePropagationOnly)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_SolveChoiceEnumeration(benchmark::State& state) {
  // k independent even cycles: 2^k answer sets enumerated in full.
  std::string text;
  const int k = static_cast<int>(state.range(0));
  for (int i = 0; i < k; ++i) {
    const std::string a = "a" + std::to_string(i);
    const std::string b = "b" + std::to_string(i);
    text += a + " :- not " + b + ".\n" + b + " :- not " + a + ".\n";
  }
  const GroundProgram ground = PrepareGround(text);
  for (auto _ : state) {
    Solver solver;
    benchmark::DoNotOptimize(solver.Solve(ground));
  }
  state.SetItemsProcessed(state.iterations() * (1ll << k));
}
BENCHMARK(BM_SolveChoiceEnumeration)->Arg(4)->Arg(8)->Arg(10);

void BM_SolveWithVerificationOnVsOff(benchmark::State& state) {
  const GroundProgram ground = PrepareGround(StratifiedChain(2000),
                                             /*simplify=*/false);
  SolverOptions options;
  options.verify_models = state.range(0) != 0;
  for (auto _ : state) {
    Solver solver(options);
    benchmark::DoNotOptimize(solver.Solve(ground));
  }
}
BENCHMARK(BM_SolveWithVerificationOnVsOff)->Arg(0)->Arg(1);

void BM_IsStableModelCheck(benchmark::State& state) {
  const GroundProgram ground = PrepareGround(
      StratifiedChain(static_cast<int>(state.range(0))), /*simplify=*/false);
  Solver solver;
  const std::vector<AnswerSet> models = *solver.Solve(ground);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsStableModel(ground, models[0].atoms));
  }
}
BENCHMARK(BM_IsStableModelCheck)->Arg(1000)->Arg(10000);

void BM_SolveUnfoundedLoops(benchmark::State& state) {
  // n positive 2-loops, all fed by one guessed atom. In the branch where
  // the feeder is false every loop is unfounded, so the solver's
  // greatest-unfounded-set pass must falsify all of them. (Pure positive
  // loops without the feeder never survive grounding — the semi-naive
  // instantiator proves them underivable.)
  std::string text = "on :- not off.\noff :- not on.\n";
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    const std::string a = "x" + std::to_string(i);
    const std::string b = "y" + std::to_string(i);
    text += a + " :- on.\n";
    text += a + " :- " + b + ".\n" + b + " :- " + a + ".\n";
  }
  const GroundProgram ground = PrepareGround(text, /*simplify=*/false);
  for (auto _ : state) {
    Solver solver;
    benchmark::DoNotOptimize(solver.Solve(ground));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SolveUnfoundedLoops)->Arg(100)->Arg(1000);

// ---------------------------------------------------------------------------
// Cold vs incremental solving across overlapping windows. Both variants
// ground through an IncrementalGrounder (so the grounding work is
// identical); the cold leg assembles + simplifies the per-window output
// and rebuilds a fresh SearchEngine per window, the incremental leg
// patches one persistent IncrementalSolver with the grounder's delta.

constexpr char kSlidingReachProgram[] = R"(
  #input link/2.
  reach(X, Y) :- link(X, Y).
  reach(X, Z) :- reach(X, Y), link(Y, Z).
)";

/// Sliding windows of random link/2 facts over a small node universe
/// (dense transitive closure, the incremental grounder's target regime).
std::vector<std::vector<Atom>> MakeSlidingReachWindows(SymbolTable& symbols,
                                                       size_t window_size,
                                                       size_t num_windows) {
  const SymbolId link = symbols.Intern("link");
  const size_t slide = std::max<size_t>(1, window_size / 16);
  Rng rng(2017);
  std::vector<Atom> stream;
  stream.reserve(window_size + slide * num_windows);
  for (size_t i = 0; i < window_size + slide * num_windows; ++i) {
    stream.push_back(
        Atom(link, {Term::Integer(static_cast<int64_t>(rng.NextBounded(48))),
                    Term::Integer(static_cast<int64_t>(rng.NextBounded(48)))}));
  }
  std::vector<std::vector<Atom>> windows;
  windows.reserve(num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    const size_t begin = w * slide;
    windows.emplace_back(stream.begin() + begin,
                         stream.begin() + begin + window_size);
  }
  return windows;
}

void BM_SlidingReachSolveCold(benchmark::State& state) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  const Program program = *parser.ParseProgram(kSlidingReachProgram);
  const std::vector<std::vector<Atom>> windows = MakeSlidingReachWindows(
      *symbols, static_cast<size_t>(state.range(0)), 16);
  for (auto _ : state) {
    IncrementalGrounder grounder(&program);
    size_t total_models = 0;
    for (size_t w = 0; w < windows.size(); ++w) {
      const StatusOr<const GroundProgram*> ground =
          grounder.GroundWindow(w, windows[w]);
      if (!ground.ok()) std::abort();
      Solver solver;
      const StatusOr<std::vector<AnswerSet>> models = solver.Solve(**ground);
      if (!models.ok()) std::abort();
      total_models += models->size();
    }
    benchmark::DoNotOptimize(total_models);
  }
  state.SetItemsProcessed(state.iterations() * windows.size());
}
BENCHMARK(BM_SlidingReachSolveCold)->Arg(256)->Arg(512);

void RunSlidingReachIncremental(benchmark::State& state,
                                bool maintain_fixpoint) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  const Program program = *parser.ParseProgram(kSlidingReachProgram);
  const std::vector<std::vector<Atom>> windows = MakeSlidingReachWindows(
      *symbols, static_cast<size_t>(state.range(0)), 16);
  SolverOptions solver_options;
  solver_options.reuse_solving = true;
  solver_options.maintain_fixpoint = maintain_fixpoint;
  IncrementalGroundingOptions incremental;
  incremental.assemble_output = false;
  for (auto _ : state) {
    IncrementalGrounder grounder(&program, GroundingOptions{}, incremental);
    IncrementalSolver solver(solver_options);
    size_t total_models = 0;
    std::vector<AnswerSet> models;
    for (size_t w = 0; w < windows.size(); ++w) {
      if (!grounder.GroundWindow(w, windows[w]).ok()) std::abort();
      const Status status = solver.SolveWindow(
          grounder.last_delta(), grounder.cached_rules(),
          grounder.atom_table().size(), &models);
      if (!status.ok()) std::abort();
      total_models += models.size();
    }
    benchmark::DoNotOptimize(total_models);
  }
  state.SetItemsProcessed(state.iterations() * windows.size());
}

void BM_SlidingReachSolveIncremental(benchmark::State& state) {
  RunSlidingReachIncremental(state, /*maintain_fixpoint=*/true);
}
BENCHMARK(BM_SlidingReachSolveIncremental)->Arg(256)->Arg(512);

// Patched-rebuild variant: the persistent solver still applies the
// grounder's delta to its rule store, but recomputes the definite closure
// from scratch each window instead of maintaining the root fixpoint.
void BM_SlidingReachSolvePatched(benchmark::State& state) {
  RunSlidingReachIncremental(state, /*maintain_fixpoint=*/false);
}
BENCHMARK(BM_SlidingReachSolvePatched)->Arg(256)->Arg(512);

// Delta-sized maintained fixpoint: retraction de-justifies only the
// transitive cone, admission propagates forward only; atoms outside the
// cone keep the previous window's assignment verbatim.
void BM_SlidingReachSolveMaintained(benchmark::State& state) {
  RunSlidingReachIncremental(state, /*maintain_fixpoint=*/true);
}
BENCHMARK(BM_SlidingReachSolveMaintained)->Arg(256)->Arg(512);

}  // namespace
}  // namespace streamasp

BENCHMARK_MAIN();
