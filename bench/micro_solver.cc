// Component microbenchmarks for the stable-model solver: propagation-only
// programs (the streaming fast path), choice programs with real search,
// and the from-first-principles stable-model verification.

#include <string>

#include <benchmark/benchmark.h>

#include "asp/parser.h"
#include "ground/grounder.h"
#include "solve/solver.h"

namespace streamasp {
namespace {

GroundProgram PrepareGround(const std::string& text, bool simplify = true) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(text);
  GroundingOptions options;
  options.simplify = simplify;
  Grounder grounder(options);
  return *grounder.Ground(*program);
}

std::string StratifiedChain(int n) {
  // p0(i) facts, pk(X) :- pk-1(X) layers: pure propagation.
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += "p0(" + std::to_string(i) + ").\n";
  }
  for (int layer = 1; layer <= 4; ++layer) {
    text += "p" + std::to_string(layer) + "(X) :- p" +
            std::to_string(layer - 1) + "(X).\n";
  }
  return text;
}

void BM_SolvePropagationOnly(benchmark::State& state) {
  const GroundProgram ground = PrepareGround(
      StratifiedChain(static_cast<int>(state.range(0))), /*simplify=*/false);
  for (auto _ : state) {
    Solver solver;
    benchmark::DoNotOptimize(solver.Solve(ground));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5);
}
BENCHMARK(BM_SolvePropagationOnly)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_SolveChoiceEnumeration(benchmark::State& state) {
  // k independent even cycles: 2^k answer sets enumerated in full.
  std::string text;
  const int k = static_cast<int>(state.range(0));
  for (int i = 0; i < k; ++i) {
    const std::string a = "a" + std::to_string(i);
    const std::string b = "b" + std::to_string(i);
    text += a + " :- not " + b + ".\n" + b + " :- not " + a + ".\n";
  }
  const GroundProgram ground = PrepareGround(text);
  for (auto _ : state) {
    Solver solver;
    benchmark::DoNotOptimize(solver.Solve(ground));
  }
  state.SetItemsProcessed(state.iterations() * (1ll << k));
}
BENCHMARK(BM_SolveChoiceEnumeration)->Arg(4)->Arg(8)->Arg(10);

void BM_SolveWithVerificationOnVsOff(benchmark::State& state) {
  const GroundProgram ground = PrepareGround(StratifiedChain(2000),
                                             /*simplify=*/false);
  SolverOptions options;
  options.verify_models = state.range(0) != 0;
  for (auto _ : state) {
    Solver solver(options);
    benchmark::DoNotOptimize(solver.Solve(ground));
  }
}
BENCHMARK(BM_SolveWithVerificationOnVsOff)->Arg(0)->Arg(1);

void BM_IsStableModelCheck(benchmark::State& state) {
  const GroundProgram ground = PrepareGround(
      StratifiedChain(static_cast<int>(state.range(0))), /*simplify=*/false);
  Solver solver;
  const std::vector<AnswerSet> models = *solver.Solve(ground);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsStableModel(ground, models[0].atoms));
  }
}
BENCHMARK(BM_IsStableModelCheck)->Arg(1000)->Arg(10000);

void BM_SolveUnfoundedLoops(benchmark::State& state) {
  // n positive 2-loops, all fed by one guessed atom. In the branch where
  // the feeder is false every loop is unfounded, so the solver's
  // greatest-unfounded-set pass must falsify all of them. (Pure positive
  // loops without the feeder never survive grounding — the semi-naive
  // instantiator proves them underivable.)
  std::string text = "on :- not off.\noff :- not on.\n";
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    const std::string a = "x" + std::to_string(i);
    const std::string b = "y" + std::to_string(i);
    text += a + " :- on.\n";
    text += a + " :- " + b + ".\n" + b + " :- " + a + ".\n";
  }
  const GroundProgram ground = PrepareGround(text, /*simplify=*/false);
  for (auto _ : state) {
    Solver solver;
    benchmark::DoNotOptimize(solver.Solve(ground));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SolveUnfoundedLoops)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace streamasp

BENCHMARK_MAIN();
