// Component microbenchmarks for the ASP front end: program parsing, fact
// parsing (the per-window hot path when facts arrive as text), and
// arithmetic folding.

#include <string>

#include <benchmark/benchmark.h>

#include "asp/parser.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

void BM_ParseTrafficProgram(benchmark::State& state) {
  const std::string text =
      TrafficProgramText(TrafficProgramVariant::kPPrime, true);
  for (auto _ : state) {
    SymbolTablePtr symbols = MakeSymbolTable();
    Parser parser(symbols);
    benchmark::DoNotOptimize(parser.ParseProgram(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ParseTrafficProgram);

void BM_ParseGroundFacts(benchmark::State& state) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  std::vector<std::string> facts;
  for (int i = 0; i < state.range(0); ++i) {
    facts.push_back("average_speed(loc" + std::to_string(i % 100) + ", " +
                    std::to_string(i % 140) + ")");
  }
  for (auto _ : state) {
    for (const std::string& fact : facts) {
      benchmark::DoNotOptimize(parser.ParseGroundAtom(fact));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParseGroundFacts)->Arg(1000)->Arg(10000);

void BM_ParseRuleWithArithmetic(benchmark::State& state) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  const std::string rule =
      "alert(H, S * 2 + 1) :- load(H, L), cap(H, C), S = L * 100 / C, "
      "S > 80, L \\ 2 == 0.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.ParseProgram(rule));
  }
  state.SetBytesProcessed(state.iterations() * rule.size());
}
BENCHMARK(BM_ParseRuleWithArithmetic);

void BM_ConstantFolding(benchmark::State& state) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parser.ParseTerm("((1 + 2) * (3 + 4) - 5) / 2 \\ 7"));
  }
}
BENCHMARK(BM_ConstantFolding);

}  // namespace
}  // namespace streamasp

BENCHMARK_MAIN();
