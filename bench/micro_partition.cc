// Component microbenchmarks for the run-time handlers: Algorithm 1's
// plan-driven partitioning, the random baseline, answer combination, and
// RDF <-> ASP data-format conversion (all on the reasoner's critical
// path per the paper's latency definition).

#include <benchmark/benchmark.h>

#include "depgraph/decomposition.h"
#include "stream/format.h"
#include "stream/generator.h"
#include "streamrule/combining_handler.h"
#include "streamrule/partitioning_handler.h"
#include "streamrule/random_partitioner.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

struct Fixture {
  Fixture()
      : symbols(MakeSymbolTable()),
        program(*MakeTrafficProgram(symbols, TrafficProgramVariant::kPPrime,
                                    false)),
        plan(*DecomposeInputDependencyGraph(
            *InputDependencyGraph::Build(program))),
        generator(MakeTrafficSchema(*symbols), {}) {}

  SymbolTablePtr symbols;
  Program program;
  PartitioningPlan plan;
  SyntheticStreamGenerator generator;
};

void BM_PartitionByPlan(benchmark::State& state) {
  Fixture fixture;
  PartitioningHandler handler(fixture.plan);
  const std::vector<Triple> window =
      fixture.generator.GenerateWindow(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(handler.Partition(window));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionByPlan)->Arg(5000)->Arg(20000)->Arg(40000);

void BM_PartitionRandom(benchmark::State& state) {
  Fixture fixture;
  const std::vector<Triple> window =
      fixture.generator.GenerateWindow(static_cast<size_t>(state.range(0)));
  RandomPartitioner partitioner(4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner.Partition(window));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionRandom)->Arg(5000)->Arg(20000)->Arg(40000);

void BM_FormatConversion(benchmark::State& state) {
  Fixture fixture;
  DataFormatProcessor format;
  (void)format.DeclareInputPredicates(fixture.program.input_predicates());
  const std::vector<Triple> window =
      fixture.generator.GenerateWindow(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(format.ToFacts(window));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FormatConversion)->Arg(5000)->Arg(40000);

void BM_CombineAnswers(benchmark::State& state) {
  // Two partitions, `n`-atom answers, cross product of 4 picks.
  Fixture fixture;
  const size_t n = static_cast<size_t>(state.range(0));
  auto make_answer = [&](const char* pred, int salt) {
    GroundAnswer answer;
    for (size_t i = 0; i < n; ++i) {
      answer.push_back(
          Atom(fixture.symbols->Intern(pred),
               {Term::Integer(static_cast<int64_t>(i * 2 + salt))}));
    }
    NormalizeAnswer(&answer);
    return answer;
  };
  const std::vector<std::vector<GroundAnswer>> per_partition = {
      {make_answer("p", 0), make_answer("p", 1)},
      {make_answer("q", 0), make_answer("q", 1)}};
  CombiningHandler combiner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(combiner.Combine(per_partition));
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_CombineAnswers)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace streamasp

BENCHMARK_MAIN();
