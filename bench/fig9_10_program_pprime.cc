// Reproduces Figure 9 (reasoning latency) and Figure 10 (accuracy) of the
// paper for program P' = P + r7, whose input dependency graph is
// connected: the decomposing process duplicates car_number into both
// partitions (Figure 5), so PR_Dep pays a visible duplication overhead
// (paper: ~25% duplicated instances => up to 30% extra latency vs the P
// case) while accuracy stays at 1.0.

#include <cstdio>

#include "bench/figure_common.h"

int main() {
  using streamasp::bench::FigureConfig;
  using streamasp::bench::FigurePoint;
  using streamasp::bench::RunFigure;

  FigureConfig config;
  config.variant = streamasp::TrafficProgramVariant::kPPrime;

  const std::vector<FigurePoint> points = RunFigure(config);

  std::printf(
      "# Figure 9: Reasoning latency (program P'), critical-path ms\n");
  std::printf("# %10s %10s %10s %12s %12s %12s %12s %12s %8s\n", "window",
              "R", "PR_Dep", "PR_Dep_wall", "PR_Ran_k2", "PR_Ran_k3",
              "PR_Ran_k4", "PR_Ran_k5", "dup%");
  for (const FigurePoint& p : points) {
    std::printf(
        "  %10zu %10.2f %10.2f %12.2f %12.2f %12.2f %12.2f %12.2f %8.1f\n",
        p.window_size, p.r_latency_ms, p.pr_dep_latency_ms,
        p.pr_dep_wall_ms, p.pr_ran_latency_ms[0], p.pr_ran_latency_ms[1],
        p.pr_ran_latency_ms[2], p.pr_ran_latency_ms[3],
        100.0 * p.duplication_share);
  }

  std::printf("\n# Figure 10: Accuracy (program P')\n");
  std::printf("# %10s %10s %12s %12s %12s %12s\n", "window", "PR_Dep",
              "PR_Ran_k2", "PR_Ran_k3", "PR_Ran_k4", "PR_Ran_k5");
  for (const FigurePoint& p : points) {
    std::printf("  %10zu %10.3f %12.3f %12.3f %12.3f %12.3f\n",
                p.window_size, p.pr_dep_accuracy, p.pr_ran_accuracy[0],
                p.pr_ran_accuracy[1], p.pr_ran_accuracy[2],
                p.pr_ran_accuracy[3]);
  }

  double speedup = 0;
  double dup = 0;
  for (const FigurePoint& p : points) {
    speedup += p.r_latency_ms / p.pr_dep_latency_ms;
    dup += p.duplication_share;
  }
  std::printf("\n# mean R / PR_Dep latency ratio: %.2fx; mean duplicated "
              "instances: %.1f%% (paper: ~25%% duplication => PR_Dep "
              "latency up to 30%% above the P case)\n",
              speedup / points.size(), 100.0 * dup / points.size());
  return 0;
}
