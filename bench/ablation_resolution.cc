// Ablation for the Louvain resolution parameter (paper footnote 8 fixes
// resolution = 1.0 following Lambiotte et al.): how the community count,
// the duplicated-predicate count, and the resulting partitioning plan
// respond to gamma — on the paper's P' input dependency graph and on a
// synthetic ring of cliques where the "right" community count is known.

#include <cstdio>

#include "depgraph/decomposition.h"
#include "graph/louvain.h"
#include "streamrule/traffic_workload.h"

namespace {

using namespace streamasp;

UndirectedGraph RingOfCliques(int cliques, int clique_size) {
  UndirectedGraph g(static_cast<NodeId>(cliques * clique_size));
  for (int c = 0; c < cliques; ++c) {
    const NodeId base = static_cast<NodeId>(c * clique_size);
    for (int i = 0; i < clique_size; ++i) {
      for (int j = i + 1; j < clique_size; ++j) {
        g.AddEdge(base + i, base + j);
      }
    }
  }
  for (int c = 0; c < cliques; ++c) {
    g.AddEdge(static_cast<NodeId>(c * clique_size),
              static_cast<NodeId>(((c + 1) % cliques) * clique_size));
  }
  return g;
}

}  // namespace

int main() {
  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> pprime =
      MakeTrafficProgram(symbols, TrafficProgramVariant::kPPrime, false);
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*pprime);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  std::printf("# Ablation: Louvain resolution (paper uses 1.0)\n");
  std::printf("# P' input dependency graph (6 nodes, connected):\n");
  std::printf("# %10s %12s %12s %12s\n", "resolution", "communities",
              "duplicated", "modularity");
  for (double resolution : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    DecompositionOptions options;
    options.louvain.resolution = resolution;
    DecompositionInfo info;
    StatusOr<PartitioningPlan> plan =
        DecomposeInputDependencyGraph(*graph, options, &info);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    LouvainOptions louvain;
    louvain.resolution = resolution;
    const ComponentAssignment communities =
        LouvainCommunities(graph->graph(), louvain);
    std::printf("  %10.2f %12d %12d %12.4f\n", resolution,
                info.num_communities, info.num_duplicated_predicates,
                Modularity(graph->graph(), communities.component_of,
                           resolution));
  }

  std::printf("\n# Synthetic ring of 6 cliques of 5 (true structure: 6):\n");
  std::printf("# %10s %12s\n", "resolution", "communities");
  const UndirectedGraph ring = RingOfCliques(6, 5);
  for (double resolution : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    LouvainOptions options;
    options.resolution = resolution;
    std::printf("  %10.2f %12d\n", resolution,
                LouvainCommunities(ring, options).num_components);
  }
  return 0;
}
