// Shared JSON emission for the engine benches: one run record schema,
// keyed off the unified EngineStats snapshot, emitted identically by
// bench/async_pipeline and bench/sharded_pipeline. Every field is always
// present (zero when not applicable to the run's shape) so the schema is
// uniform across benches and runs; tools/check_bench_regression.py
// enforces the field list against the "schema" block in
// bench/baseline.json and fails on unknown or missing fields. The field
// semantics are documented in docs/benchmarks.md.
#ifndef STREAMASP_BENCH_BENCH_JSON_H_
#define STREAMASP_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "streamrule/engine.h"

namespace streamasp {
namespace bench {

/// One bench run: identity/shape fields set by the bench leg, the rest
/// filled from the engine's EngineStats snapshot.
struct BenchRun {
  // --- run identity (set by the bench) ---
  std::string mode;
  std::string workload = "traffic_pprime";
  size_t shards = 0;        ///< 0 for single-pipeline runs.
  size_t inflight = 0;      ///< 0 for sync runs.
  size_t workers = 0;
  size_t window_slide = 0;  ///< 0 for tumbling runs.
  bool reuse = false;
  bool reuse_solving = false;

  // --- wall-clock measurements (set by the bench) ---
  double wall_ms = 0;
  double triples_per_sec = 0;
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  double p99_emit_latency_ms = 0;  ///< Window close -> ordered delivery.
  long long unaccounted_windows = 0;

  // --- engine counters (FillFromEngineStats) ---
  uint64_t windows = 0;  ///< Delivered (merged, for sharded runs) windows.
  uint64_t answers = 0;
  uint64_t max_shard_items = 0;  ///< Router skew; reasoned items unsharded.
  size_t max_queue_depth = 0;
  size_t max_reorder_depth = 0;
  size_t max_merge_reorder_depth = 0;
  uint64_t delta_punctuations = 0;
  uint64_t incremental_windows = 0;
  uint64_t grounding_fallbacks = 0;
  uint64_t grounding_rules_retained = 0;
  uint64_t grounding_rules_retracted = 0;
  uint64_t grounding_rules_new = 0;
  uint64_t incremental_solve_windows = 0;
  uint64_t solve_rebuilds = 0;
  uint64_t solver_rules_retained = 0;
  uint64_t solver_rules_retracted = 0;
  uint64_t solver_rules_new = 0;
  uint64_t warm_start_hits = 0;
  uint64_t atoms_touched = 0;
  uint64_t assignments_reused = 0;
  uint64_t fixpoint_maintained_windows = 0;
  /// atoms_touched / (atoms_touched + assignments_reused): the fraction
  /// of per-window solve state actually recomputed. Machine-independent
  /// for a fixed workload, so bench/baseline.json puts a ceiling on it —
  /// the delta-sized-solve claim is this ratio staying ≪ 1 on
  /// high-overlap sliding legs. 0 when no solving happened.
  double atoms_touched_ratio = 0;
  double ground_ms_total = 0;
  double solve_ms_total = 0;
  double reason_ms_total = 0;
  size_t window_store_bytes = 0;
  size_t atom_table_bytes = 0;
  double bytes_per_triple = 0;
  double completeness = 1.0;
  uint64_t shed_windows = 0;
};

/// Fills the engine-derived half of a run from the unified snapshot.
/// Sharded runs report mean per-merged-window completeness and the
/// tombstoned sub-window count under completeness/shed_windows (matching
/// the pre-facade sharded bench); unsharded runs report stream-level
/// completeness and whole shed windows.
inline void FillFromEngineStats(const EngineStats& stats, BenchRun* run) {
  run->windows = stats.delivered_windows;
  run->answers = stats.delivered_answers;
  run->max_shard_items = stats.max_shard_items();
  run->max_queue_depth = stats.reasoning.max_queue_depth;
  run->max_reorder_depth = stats.reasoning.max_reorder_depth;
  run->max_merge_reorder_depth = stats.max_merge_reorder_depth;
  run->delta_punctuations = stats.delta_punctuations;
  run->incremental_windows = stats.reasoning.incremental_windows;
  run->grounding_fallbacks = stats.reasoning.grounding_fallbacks;
  run->grounding_rules_retained = stats.reasoning.grounding_rules_retained;
  run->grounding_rules_retracted = stats.reasoning.grounding_rules_retracted;
  run->grounding_rules_new = stats.reasoning.grounding_rules_new;
  run->incremental_solve_windows = stats.reasoning.incremental_solve_windows;
  run->solve_rebuilds = stats.reasoning.solve_rebuilds;
  run->solver_rules_retained = stats.reasoning.solver_rules_retained;
  run->solver_rules_retracted = stats.reasoning.solver_rules_retracted;
  run->solver_rules_new = stats.reasoning.solver_rules_new;
  run->warm_start_hits = stats.reasoning.warm_start_hits;
  run->atoms_touched = stats.reasoning.atoms_touched;
  run->assignments_reused = stats.reasoning.assignments_reused;
  run->fixpoint_maintained_windows =
      stats.reasoning.fixpoint_maintained_windows;
  const double touched_total = static_cast<double>(
      stats.reasoning.atoms_touched + stats.reasoning.assignments_reused);
  run->atoms_touched_ratio =
      touched_total > 0
          ? static_cast<double>(stats.reasoning.atoms_touched) / touched_total
          : 0.0;
  run->ground_ms_total = stats.reasoning.total_ground_ms;
  run->solve_ms_total = stats.reasoning.total_solve_ms;
  run->reason_ms_total =
      stats.reasoning.total_ground_ms + stats.reasoning.total_solve_ms;
  run->window_store_bytes = stats.reasoning.window_store_bytes;
  run->atom_table_bytes = stats.reasoning.atom_table_bytes;
  run->bytes_per_triple = stats.bytes_per_triple();
  if (stats.num_shards == 0) {
    run->completeness = stats.completeness();
    run->shed_windows = stats.shed_windows();
  } else {
    run->completeness = stats.mean_completeness;
    run->shed_windows = stats.shed_subwindows;
  }
}

/// Prints the whole bench document: header + every run, one JSON object
/// per run line, uniform field order. The field list here, the BenchRun
/// struct, and bench/baseline.json's "schema" block must stay in sync —
/// the regression checker cross-validates the latter two.
inline void PrintBenchJson(const char* bench_name, const char* workload,
                           size_t items, size_t window_size,
                           unsigned hardware_concurrency,
                           const std::vector<BenchRun>& runs) {
  std::printf("{\n");
  std::printf("  \"bench\": \"%s\",\n", bench_name);
  std::printf("  \"workload\": \"%s\",\n", workload);
  std::printf("  \"items\": %zu,\n", items);
  std::printf("  \"window_size\": %zu,\n", window_size);
  std::printf("  \"hardware_concurrency\": %u,\n", hardware_concurrency);
  std::printf("  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const BenchRun& run = runs[i];
    std::printf(
        "    {\"mode\": \"%s\", \"workload\": \"%s\", \"shards\": %zu, "
        "\"inflight\": %zu, \"workers\": %zu, \"window_slide\": %zu, "
        "\"reuse\": %s, \"reuse_solving\": %s, "
        "\"wall_ms\": %.2f, \"triples_per_sec\": %.1f, "
        "\"p50_latency_ms\": %.3f, \"p99_latency_ms\": %.3f, "
        "\"windows\": %llu, \"answers\": %llu, "
        "\"max_shard_items\": %llu, "
        "\"max_queue_depth\": %zu, \"max_reorder_depth\": %zu, "
        "\"max_merge_reorder_depth\": %zu, \"delta_punctuations\": %llu, "
        "\"incremental_windows\": %llu, \"grounding_fallbacks\": %llu, "
        "\"grounding_rules_retained\": %llu, "
        "\"grounding_rules_retracted\": %llu, "
        "\"grounding_rules_new\": %llu, "
        "\"incremental_solve_windows\": %llu, \"solve_rebuilds\": %llu, "
        "\"solver_rules_retained\": %llu, \"solver_rules_retracted\": %llu, "
        "\"solver_rules_new\": %llu, \"warm_start_hits\": %llu, "
        "\"atoms_touched\": %llu, \"assignments_reused\": %llu, "
        "\"fixpoint_maintained_windows\": %llu, "
        "\"atoms_touched_ratio\": %.4f, "
        "\"ground_ms_total\": %.2f, \"solve_ms_total\": %.2f, "
        "\"reason_ms_total\": %.2f, "
        "\"window_store_bytes\": %zu, \"atom_table_bytes\": %zu, "
        "\"bytes_per_triple\": %.1f, "
        "\"completeness\": %.4f, \"shed_windows\": %llu, "
        "\"p99_emit_latency_ms\": %.3f, \"unaccounted_windows\": %lld}%s\n",
        run.mode.c_str(), run.workload.c_str(), run.shards, run.inflight,
        run.workers, run.window_slide, run.reuse ? "true" : "false",
        run.reuse_solving ? "true" : "false", run.wall_ms,
        run.triples_per_sec, run.p50_latency_ms, run.p99_latency_ms,
        static_cast<unsigned long long>(run.windows),
        static_cast<unsigned long long>(run.answers),
        static_cast<unsigned long long>(run.max_shard_items),
        run.max_queue_depth, run.max_reorder_depth,
        run.max_merge_reorder_depth,
        static_cast<unsigned long long>(run.delta_punctuations),
        static_cast<unsigned long long>(run.incremental_windows),
        static_cast<unsigned long long>(run.grounding_fallbacks),
        static_cast<unsigned long long>(run.grounding_rules_retained),
        static_cast<unsigned long long>(run.grounding_rules_retracted),
        static_cast<unsigned long long>(run.grounding_rules_new),
        static_cast<unsigned long long>(run.incremental_solve_windows),
        static_cast<unsigned long long>(run.solve_rebuilds),
        static_cast<unsigned long long>(run.solver_rules_retained),
        static_cast<unsigned long long>(run.solver_rules_retracted),
        static_cast<unsigned long long>(run.solver_rules_new),
        static_cast<unsigned long long>(run.warm_start_hits),
        static_cast<unsigned long long>(run.atoms_touched),
        static_cast<unsigned long long>(run.assignments_reused),
        static_cast<unsigned long long>(run.fixpoint_maintained_windows),
        run.atoms_touched_ratio,
        run.ground_ms_total, run.solve_ms_total, run.reason_ms_total,
        run.window_store_bytes, run.atom_table_bytes, run.bytes_per_triple,
        run.completeness, static_cast<unsigned long long>(run.shed_windows),
        run.p99_emit_latency_ms, run.unaccounted_windows,
        i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
}

}  // namespace bench
}  // namespace streamasp

#endif  // STREAMASP_BENCH_BENCH_JSON_H_
