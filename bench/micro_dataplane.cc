// Micro-benchmarks for the compact data plane, self-timed (no external
// bench framework, so this target always builds): PackedTerm pack/unpack
// throughput, columnar WindowStore append/evict vs a deque baseline, and
// the packed-word join probe vs a deep-Term probe — the three primitives
// whose costs the pipeline-level benches can only observe in aggregate.
// Emits one machine-readable JSON document on stdout (schema in
// docs/benchmarks.md); human-readable notes go to stderr.
//
// Usage: micro_dataplane [scale]
//   scale multiplies every loop count (default 1); CI runs scale 1.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "asp/packed_term.h"
#include "asp/symbol_table.h"
#include "asp/term.h"
#include "stream/triple.h"
#include "stream/window_store.h"
#include "util/timer.h"

namespace {

using namespace streamasp;

/// Deterministic splitmix64 stream: the benches need varied but
/// reproducible values, never wall-clock entropy.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

double NsPerOp(double wall_ms, size_t ops) {
  return ops == 0 ? 0.0 : wall_ms * 1e6 / static_cast<double>(ops);
}

struct ProbeResult {
  std::string json;  // One already-formatted JSON object line.
};

/// Pack/unpack round trips over a mixed term population: ~45% inline
/// integers, ~45% symbols, ~10% compound terms (the arena escape path,
/// hash-consed so repeated packs of an equal term hit the intern map).
ProbeResult BenchPackUnpack(const SymbolTablePtr& symbols, size_t scale) {
  const size_t n = 200000 * scale;
  const SymbolId functor = symbols->Intern("f");
  std::vector<Term> terms;
  terms.reserve(n);
  Rng rng(2017);
  size_t escapes = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t r = rng.Next();
    switch (r % 10) {
      case 0: {
        // Compound: f(k) over a small k universe so interning mixes cold
        // and hot arena hits like grounding workloads do.
        terms.push_back(Term::Function(
            functor, {Term::Integer(static_cast<int64_t>(r >> 4 & 1023))}));
        ++escapes;
        break;
      }
      default:
        if (r % 2 == 0) {
          // Signed inline range, including negatives.
          terms.push_back(Term::Integer(static_cast<int64_t>(r >> 8) -
                                        (1LL << 55)));
        } else {
          terms.push_back(
              Term::Symbol(static_cast<SymbolId>(r >> 8 & 0xffff)));
        }
        break;
    }
  }

  WallTimer pack_timer;
  std::vector<PackedTerm> packed;
  packed.reserve(n);
  for (const Term& t : terms) packed.emplace_back(t);
  const double pack_ms = pack_timer.ElapsedMillis();

  uint64_t sink = 0;
  WallTimer unpack_timer;
  for (const PackedTerm& p : packed) {
    sink += p.ToTerm().Hash();
  }
  const double unpack_ms = unpack_timer.ElapsedMillis();

  std::fprintf(stderr, "pack_unpack: %zu terms, sink %llu\n", n,
               static_cast<unsigned long long>(sink));
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"probe\": \"pack_unpack\", \"items\": %zu, "
      "\"escape_fraction\": %.3f, \"pack_ns_per_op\": %.2f, "
      "\"unpack_ns_per_op\": %.2f, \"arena_terms\": %zu}",
      n, static_cast<double>(escapes) / static_cast<double>(n),
      NsPerOp(pack_ms, n), NsPerOp(unpack_ms, n),
      PackedTermArena::Global().size());
  return ProbeResult{buf};
}

/// What the pre-packing data plane retained per window item: a triple of
/// full Term objects behind optionals (each Term carrying kind, payload,
/// and an args vector even when empty).
struct DeepTriple {
  std::optional<Term> subject;
  SymbolId predicate = kInvalidSymbol;
  std::optional<Term> object;
};

/// Sliding append/evict through the windower/router retention pattern
/// (append at the tail, evict the global head once the window is full):
/// the columnar WindowStore over packed triples vs a deque of the old
/// deep-Term triples, plus each representation's retained bytes per
/// window item.
ProbeResult BenchColumnarWindow(const SymbolTablePtr& symbols, size_t scale) {
  const size_t n = 400000 * scale;
  const size_t window = 20000;
  const SymbolId pred = symbols->Intern("link");
  std::vector<uint64_t> raw;
  raw.reserve(n);
  Rng rng(4242);
  for (size_t i = 0; i < n; ++i) raw.push_back(rng.Next());

  WallTimer store_timer;
  WindowStore store(
      WindowStore::Options{/*with_timestamps=*/false, /*with_shards=*/true});
  uint64_t store_sink = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t r = raw[i];
    store.Append(
        Triple{PackedTerm::Symbol(static_cast<SymbolId>(r & 0xffff)), pred,
               PackedTerm::Integer(static_cast<int64_t>(r >> 16 & 0xffff))},
        0, static_cast<uint32_t>(i & 3));
    if (store.size() > window) {
      store_sink += store.Front().predicate;
      store.PopFront();
    }
  }
  const double store_ms = store_timer.ElapsedMillis();
  const size_t store_bytes = store.bytes();

  WallTimer deque_timer;
  std::deque<DeepTriple> baseline;
  uint64_t deque_sink = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t r = raw[i];
    baseline.push_back(DeepTriple{
        Term::Symbol(static_cast<SymbolId>(r & 0xffff)), pred,
        Term::Integer(static_cast<int64_t>(r >> 16 & 0xffff))});
    if (baseline.size() > window) {
      deque_sink += baseline.front().predicate;
      baseline.pop_front();
    }
  }
  const double deque_ms = deque_timer.ElapsedMillis();
  // Element footprint only; the deep plane's per-Term heap blocks and the
  // deque's block bookkeeping are not counted, so this under-counts the
  // baseline (favours it).
  const size_t deque_bytes = baseline.size() * sizeof(DeepTriple);

  std::fprintf(stderr, "columnar_window: sinks %llu/%llu\n",
               static_cast<unsigned long long>(store_sink),
               static_cast<unsigned long long>(deque_sink));
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"probe\": \"columnar_window\", \"items\": %zu, "
      "\"window\": %zu, \"store_ns_per_op\": %.2f, "
      "\"deep_deque_ns_per_op\": %.2f, \"store_bytes_per_triple\": %.1f, "
      "\"deep_bytes_per_triple\": %.1f}",
      n, window, NsPerOp(store_ms, n), NsPerOp(deque_ms, n),
      static_cast<double>(store_bytes) / static_cast<double>(window),
      static_cast<double>(deque_bytes) / static_cast<double>(window));
  return ProbeResult{buf};
}

struct DeepTermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

/// The grounder's join-index probe in isolation: hash a key and walk a
/// candidate bucket. Packed plane: the key is one 64-bit word, hashed by
/// splitmix and compared word-wise. Deep baseline: the same values as
/// Terms, hashed structurally and compared via deep equality — what the
/// PositionIndex did before the packed conversion.
ProbeResult BenchJoinProbe(const SymbolTablePtr& symbols, size_t scale) {
  const size_t keys = 1 << 15;
  const size_t probes = 2000000 * scale;
  const SymbolId functor = symbols->Intern("edge");

  std::unordered_map<uint64_t, uint32_t, PackedBitsHash> packed_index;
  std::unordered_map<Term, uint32_t, DeepTermHash> deep_index;
  packed_index.reserve(keys);
  deep_index.reserve(keys);
  std::vector<PackedTerm> packed_keys;
  std::vector<Term> deep_keys;
  packed_keys.reserve(keys);
  deep_keys.reserve(keys);
  Rng rng(7);
  for (size_t i = 0; i < keys; ++i) {
    const uint64_t r = rng.Next();
    // Half plain integers, half compound edge(a, b) keys: structural
    // hashing walks the compound args on every deep probe, while the
    // packed side probes the hash-consed word either way.
    const Term term =
        (i & 1) == 0
            ? Term::Integer(static_cast<int64_t>(r >> 16) - (1LL << 46))
            : Term::Function(functor,
                             {Term::Integer(static_cast<int64_t>(r & 0xffff)),
                              Term::Integer(static_cast<int64_t>(
                                  r >> 16 & 0xffff))});
    deep_keys.push_back(term);
    packed_keys.emplace_back(term);
    deep_index.emplace(term, static_cast<uint32_t>(i));
    packed_index.emplace(packed_keys.back().bits(),
                         static_cast<uint32_t>(i));
  }

  uint64_t packed_sink = 0;
  WallTimer packed_timer;
  for (size_t i = 0; i < probes; ++i) {
    const auto it = packed_index.find(packed_keys[i & (keys - 1)].bits());
    if (it != packed_index.end()) packed_sink += it->second;
  }
  const double packed_ms = packed_timer.ElapsedMillis();

  uint64_t deep_sink = 0;
  WallTimer deep_timer;
  for (size_t i = 0; i < probes; ++i) {
    const auto it = deep_index.find(deep_keys[i & (keys - 1)]);
    if (it != deep_index.end()) deep_sink += it->second;
  }
  const double deep_ms = deep_timer.ElapsedMillis();

  if (packed_sink != deep_sink) {
    std::fprintf(stderr, "join_probe: SINK MISMATCH %llu vs %llu\n",
                 static_cast<unsigned long long>(packed_sink),
                 static_cast<unsigned long long>(deep_sink));
    std::exit(1);
  }
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"probe\": \"join_probe\", \"keys\": %zu, \"probes\": %zu, "
      "\"packed_ns_per_probe\": %.2f, \"deep_ns_per_probe\": %.2f, "
      "\"packed_speedup\": %.2f}",
      keys, probes, NsPerOp(packed_ms, probes), NsPerOp(deep_ms, probes),
      packed_ms > 0 ? deep_ms / packed_ms : 0.0);
  return ProbeResult{buf};
}

}  // namespace

int main(int argc, char** argv) {
  const size_t scale =
      argc > 1 ? std::max<size_t>(1, std::strtoull(argv[1], nullptr, 10)) : 1;
  SymbolTablePtr symbols = MakeSymbolTable();

  std::vector<ProbeResult> results;
  // Warm-up pass pays allocator/page-fault costs, measured pass follows.
  BenchPackUnpack(symbols, scale);
  results.push_back(BenchPackUnpack(symbols, scale));
  results.push_back(BenchColumnarWindow(symbols, scale));
  results.push_back(BenchJoinProbe(symbols, scale));

  std::printf("{\n");
  std::printf("  \"bench\": \"micro_dataplane\",\n");
  std::printf("  \"scale\": %zu,\n", scale);
  std::printf("  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("%s%s\n", results[i].json.c_str(),
                i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
