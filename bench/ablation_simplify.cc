// Ablation: the grounder's equivalence-preserving simplification (fact
// propagation + satisfied-rule elimination). It shifts work from the
// solver to the grounder; this bench shows the net effect on end-to-end
// reasoner latency and the ground-program size it hands the solver.

#include <cstdio>

#include "bench/figure_common.h"
#include "stream/format.h"

int main() {
  using namespace streamasp;

  constexpr int kReps = 3;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  DataFormatProcessor format;
  (void)format.DeclareInputPredicates(program->input_predicates());

  std::printf("# Ablation: grounder simplification (program P', end-to-end "
              "reasoner latency, ms)\n");
  std::printf("# %8s %12s %12s %14s %14s\n", "window", "simplify_ms",
              "raw_ms", "rules_simpl", "rules_raw");

  for (size_t window_size : {5000u, 20000u, 40000u}) {
    double simplified_ms = 0;
    double raw_ms = 0;
    size_t rules_simplified = 0;
    size_t rules_raw = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      GeneratorOptions gen_options;
      gen_options.seed = 90 + rep;
      SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                         gen_options);
      const TripleWindow window = generator.GenerateTripleWindow(window_size);

      ReasonerOptions simplify_on;   // Default: simplify = true.
      ReasonerOptions simplify_off;
      simplify_off.grounding.simplify = false;
      Reasoner with(&*program, simplify_on);
      Reasoner without(&*program, simplify_off);

      StatusOr<ReasonerResult> a = with.Process(window);
      StatusOr<ReasonerResult> b = without.Process(window);
      if (!a.ok() || !b.ok()) {
        std::fprintf(stderr, "run failed\n");
        return 1;
      }
      simplified_ms += a->latency_ms;
      raw_ms += b->latency_ms;
      rules_simplified += a->grounding.num_rules;
      rules_raw += b->grounding.num_rules;
    }
    std::printf("  %8zu %12.2f %12.2f %14zu %14zu\n", window_size,
                simplified_ms / kReps, raw_ms / kReps,
                rules_simplified / kReps, rules_raw / kReps);
  }
  std::printf("# both settings produce identical answer sets (tested in "
              "integration_test and property_test)\n");
  return 0;
}
