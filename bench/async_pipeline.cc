// Sustained-throughput bench for the staged asynchronous pipeline engine:
// sync (the one-window-at-a-time oracle) vs async at in-flight depths
// {1, 2, 4, 8} on the paper's traffic workload, plus a high-overlap
// sliding-window triple (slide = window/16): grounding reuse off, on, and
// on with the persistent warm-started solver (reuse_solving).
// The sliding runs use a recursive reachability workload over a small
// node universe — transitive closure makes instantiation the dominant
// per-window cost, which is the regime the incremental grounder's delta
// replay targets (the flat traffic rules ground in linear time, so there
// is little instantiation to save there). A final burst-overload leg
// drives a self-clocked flash-crowd stream against an undersized
// kDropOldest pipeline and reports completeness/shed accounting.
// Emits one machine-readable JSON document on stdout for the perf
// trajectory; human-readable notes go to stderr.
//
// Throughput is items pushed / wall time of PushBatch+Flush (i.e. the rate
// the ingest side sustains while reasoning keeps up); window latency is the
// per-window reasoning latency distribution (p50/p99). Sliding runs emit
// more windows per item than tumbling runs and reason a different program,
// so their triples/s are only comparable to each other, which is exactly
// how the CI regression gate consumes them (reuse-on vs reuse-off ratio).
//
// Usage: async_pipeline [items] [window_size]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "asp/parser.h"
#include "stream/generator.h"
#include "streamrule/pipeline.h"
#include "streamrule/traffic_workload.h"
#include "util/timer.h"

namespace {

using namespace streamasp;

struct RunResult {
  std::string mode;        // "sync", "async", "sliding-tc[-reuse[-solve]]"
  std::string workload = "traffic_pprime";
  size_t inflight = 0;     // 0 for sync
  size_t workers = 0;
  size_t window_slide = 0;  // 0 for tumbling runs
  bool reuse = false;
  bool reuse_solving = false;
  double wall_ms = 0;
  double triples_per_sec = 0;
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  uint64_t windows = 0;
  uint64_t answers = 0;
  size_t max_queue_depth = 0;
  size_t max_reorder_depth = 0;
  // Grounding reuse counters (zero without reuse; docs/benchmarks.md).
  uint64_t incremental_windows = 0;
  uint64_t grounding_fallbacks = 0;
  uint64_t grounding_rules_retained = 0;
  uint64_t grounding_rules_retracted = 0;
  uint64_t grounding_rules_new = 0;
  // Solver reuse counters (zero without reuse_solving).
  uint64_t incremental_solve_windows = 0;
  uint64_t solve_rebuilds = 0;
  uint64_t solver_rules_retained = 0;
  uint64_t solver_rules_retracted = 0;
  uint64_t solver_rules_new = 0;
  uint64_t warm_start_hits = 0;
  // Phase-time totals summed over partitions of every reasoned window.
  // reuse_solving dissolves the boundary between the grounder's
  // simplification pass and the solve (the persistent solver absorbs the
  // pruning the assembled+simplified output used to prepay), so the
  // solve-reuse CI gate compares reason_ms_total = ground + solve — the
  // whole post-instantiation reasoning cost — across the sliding runs
  // (machine-independent ratio).
  double ground_ms_total = 0;
  double solve_ms_total = 0;
  double reason_ms_total = 0;
  // Compact-data-plane footprint (peaks; docs/benchmarks.md).
  size_t window_store_bytes = 0;
  size_t atom_table_bytes = 0;
  double bytes_per_triple = 0;
  // Graceful-degradation accounting (docs/benchmarks.md): always present
  // for a uniform schema; lossless runs report 1.0 / 0 / 0 / 0. The
  // burst-overload leg's completeness is gated by a machine-independent
  // minimum in bench/baseline.json; unaccounted_windows must be 0 (every
  // emitted window delivered or tombstoned — the no-stall invariant).
  double completeness = 1.0;
  uint64_t shed_windows = 0;
  double p99_emit_latency_ms = 0;  // Window close -> ordered delivery.
  long long unaccounted_windows = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

RunResult RunOnce(const Program& program, const std::vector<Triple>& stream,
                  size_t window_size, bool async, size_t inflight,
                  size_t window_slide = 0, bool reuse = false,
                  bool reuse_solving = false) {
  PipelineOptions options;
  options.window_size = window_size;
  options.window_slide = window_slide;
  options.reuse_grounding = reuse;
  options.reuse_solving = reuse_solving;
  options.async = async;
  options.max_inflight_windows = async ? inflight : 4;

  std::vector<double> latencies;
  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(
          &program, options,
          [&](const TripleWindow&, const ParallelReasonerResult& result) {
            latencies.push_back(result.latency_ms);
          });
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }

  WallTimer wall;
  (*pipeline)->PushBatch(stream);
  (*pipeline)->Flush();
  const double wall_ms = wall.ElapsedMillis();

  const PipelineStats stats = (*pipeline)->stats();
  RunResult run;
  run.mode = async ? "async" : "sync";
  run.inflight = async ? inflight : 0;
  run.workers = (*pipeline)->num_reason_workers();
  run.window_slide = window_slide;
  run.reuse = reuse;
  run.reuse_solving = reuse_solving;
  run.wall_ms = wall_ms;
  run.triples_per_sec =
      wall_ms > 0 ? static_cast<double>(stream.size()) / (wall_ms / 1000.0)
                  : 0;
  run.p50_latency_ms = Percentile(latencies, 0.50);
  run.p99_latency_ms = Percentile(latencies, 0.99);
  run.windows = stats.windows;
  run.answers = stats.answers;
  run.max_queue_depth = stats.max_queue_depth;
  run.max_reorder_depth = stats.max_reorder_depth;
  run.incremental_windows = stats.incremental_windows;
  run.grounding_fallbacks = stats.grounding_fallbacks;
  run.grounding_rules_retained = stats.grounding_rules_retained;
  run.grounding_rules_retracted = stats.grounding_rules_retracted;
  run.grounding_rules_new = stats.grounding_rules_new;
  run.incremental_solve_windows = stats.incremental_solve_windows;
  run.solve_rebuilds = stats.solve_rebuilds;
  run.solver_rules_retained = stats.solver_rules_retained;
  run.solver_rules_retracted = stats.solver_rules_retracted;
  run.solver_rules_new = stats.solver_rules_new;
  run.warm_start_hits = stats.warm_start_hits;
  run.ground_ms_total = stats.total_ground_ms;
  run.solve_ms_total = stats.total_solve_ms;
  run.reason_ms_total = stats.total_ground_ms + stats.total_solve_ms;
  run.window_store_bytes = stats.window_store_bytes;
  run.atom_table_bytes = stats.atom_table_bytes;
  run.bytes_per_triple = stats.bytes_per_triple();
  run.completeness = stats.completeness();
  run.shed_windows = stats.shed_windows();
  return run;
}

// Graceful-degradation leg: a flash-crowd burst stream against a
// deliberately undersized async pipeline (one worker, two in-flight
// windows) with kDropOldest shedding. Pacing is self-clocked rather than
// timed: valley windows are pushed behind a Flush() drain barrier, so
// during valleys ingest can never outrun service and nothing sheds;
// spike windows are pushed back-to-back, so during spikes ingest is
// effectively infinitely faster than service and the queue sheds
// spike_len - (capacity + 1) windows (the worker holds one, the queue
// retains `capacity`). The shed fraction therefore depends only on the
// spike shape and queue capacity — not on host speed — which is what
// makes the completeness minimum in bench/baseline.json a meaningful
// machine-independent gate (worst case: every spike window past the
// worker's sheds, completeness 110/120).
RunResult RunBurstOverload(const Program& program,
                           const SymbolTablePtr& symbols,
                           size_t window_size) {
  using Clock = std::chrono::steady_clock;
  const size_t burst_window = std::max<size_t>(100, window_size / 4);
  const size_t num_windows = 120;

  BurstOptions burst;
  burst.shape = BurstShape::kFlashCrowd;
  burst.period = 60 * burst_window;  // 6-window spikes, 54-window valleys.
  burst.burst_fraction = 0.1;

  PipelineOptions options;
  options.window_size = burst_window;
  options.async = true;
  options.num_reason_workers = 1;
  options.max_inflight_windows = 2;
  options.backpressure = BackpressurePolicy::kDropOldest;
  std::vector<Clock::time_point> close_times(num_windows);
  std::vector<double> latencies;
  std::vector<double> emit_latencies;
  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(
          &program, options,
          [&](const TripleWindow& window,
              const ParallelReasonerResult& result) {
            latencies.push_back(result.latency_ms);
            if (window.sequence < close_times.size()) {
              emit_latencies.push_back(
                  std::chrono::duration<double, std::milli>(
                      Clock::now() - close_times[window.sequence])
                      .count());
            }
          });
  if (!pipeline.ok()) {
    std::fprintf(stderr, "burst pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }

  BurstyStreamGenerator generator =
      MakeTrafficBurstGenerator(*symbols, 5, burst);
  WallTimer wall;
  for (size_t k = 0; k < num_windows; ++k) {
    const bool spike = generator.InBurst(generator.position());
    const std::vector<Triple> chunk = generator.Generate(burst_window);
    // Stamp before the push: the window closes inside PushBatch.
    close_times[k] = Clock::now();
    (*pipeline)->PushBatch(chunk);
    // Valley: drain before the next window (ingest at service rate).
    // Spike: no barrier — the next window lands immediately.
    if (!spike) (*pipeline)->Flush();
  }
  (*pipeline)->Flush();
  const double wall_ms = wall.ElapsedMillis();

  const PipelineStats stats = (*pipeline)->stats();
  RunResult run;
  run.mode = "burst-overload";
  run.workload = "traffic_pprime_flash_crowd";
  run.inflight = options.max_inflight_windows;
  run.workers = (*pipeline)->num_reason_workers();
  run.wall_ms = wall_ms;
  run.triples_per_sec =
      wall_ms > 0 ? static_cast<double>(num_windows * burst_window) /
                        (wall_ms / 1000.0)
                  : 0;
  run.p50_latency_ms = Percentile(latencies, 0.50);
  run.p99_latency_ms = Percentile(latencies, 0.99);
  run.windows = stats.windows;
  run.answers = stats.answers;
  run.max_queue_depth = stats.max_queue_depth;
  run.max_reorder_depth = stats.max_reorder_depth;
  run.window_store_bytes = stats.window_store_bytes;
  run.atom_table_bytes = stats.atom_table_bytes;
  run.bytes_per_triple = stats.bytes_per_triple();
  run.completeness = stats.completeness();
  run.shed_windows = stats.shed_windows();
  run.p99_emit_latency_ms = Percentile(emit_latencies, 0.99);
  run.unaccounted_windows =
      static_cast<long long>(num_windows) -
      static_cast<long long>(stats.windows + stats.shed_windows());
  return run;
}

// The sliding-reuse showcase: recursive reachability over a sliding edge
// stream. Grounding (transitive closure instantiation) dominates each
// window, and consecutive windows share all but `slide` edges, so the
// incremental grounder retracts/replays a small delta instead of
// re-deriving the closure from scratch.
constexpr char kReachProgram[] = R"(
  #input link/2.
  #input high/1.
  reach(X, Y) :- link(X, Y).
  reach(X, Z) :- reach(X, Y), link(Y, Z).
  alarm(X, Y) :- high(X), high(Y), reach(X, Y).
  #show alarm/2.
)";

RunResult RunSlidingReach(const SymbolTablePtr& symbols, size_t items,
                          size_t window_size, bool reuse,
                          bool reuse_solving = false) {
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(kReachProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "reach program: %s\n",
                 program.status().ToString().c_str());
    std::exit(1);
  }

  // A small node universe keeps the closure dense (subjects and objects
  // drawn from the same ~48 ids), which is what makes instantiation the
  // dominant cost.
  GeneratorOptions gen_options;
  gen_options.seed = 2017;
  gen_options.location_divisor = std::max<size_t>(1, items / 48);
  gen_options.value_range = 48;
  std::vector<StreamPredicate> schema(2);
  schema[0].predicate = symbols->Intern("link");
  schema[0].has_object = true;
  schema[0].weight = 4.0;
  schema[1].predicate = symbols->Intern("high");
  schema[1].has_object = false;
  schema[1].weight = 1.0;
  SyntheticStreamGenerator generator(schema, gen_options);
  const std::vector<Triple> stream = generator.GenerateWindow(items);

  const size_t slide = std::max<size_t>(1, window_size / 16);
  RunResult run = RunOnce(*program, stream, window_size, /*async=*/false,
                          0, slide, reuse, reuse_solving);
  run.mode = reuse_solving ? "sliding-tc-reuse-solve"
             : reuse      ? "sliding-tc-reuse"
                          : "sliding-tc";
  run.workload = "reach_tc";
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t items = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const size_t window_size =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  GeneratorOptions gen_options;
  gen_options.seed = 2017;
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     gen_options);
  const std::vector<Triple> stream = generator.GenerateWindow(items);

  std::fprintf(stderr,
               "async_pipeline bench: %zu items, window %zu, %u cores\n",
               items, window_size, std::thread::hardware_concurrency());

  std::vector<RunResult> runs;
  // Warm-up (first run pays allocator/page-fault costs), then measure.
  RunOnce(*program, stream, window_size, /*async=*/false, 0);
  runs.push_back(RunOnce(*program, stream, window_size, false, 0));
  for (const size_t depth : {1, 2, 4, 8}) {
    runs.push_back(RunOnce(*program, stream, window_size, true, depth));
  }
  // High-overlap sliding pair on the recursion-heavy reachability
  // workload: identical windows, grounding reuse off vs on. Windows are
  // kept large relative to the pipeline's fixed per-window machinery so
  // the ratio measures grounding, not dispatch overhead.
  const size_t tc_items = std::max<size_t>(6400, items / 5);
  const size_t tc_window = std::min<size_t>(1600, tc_items / 4);
  runs.push_back(
      RunSlidingReach(symbols, tc_items, tc_window, /*reuse=*/false));
  runs.push_back(
      RunSlidingReach(symbols, tc_items, tc_window, /*reuse=*/true));
  // Third leg of the sliding pair: grounding reuse + persistent
  // warm-started solver. The solve-reuse CI gate compares its
  // reason_ms_total against the grounding-reuse-only run's.
  runs.push_back(RunSlidingReach(symbols, tc_items, tc_window,
                                 /*reuse=*/true, /*reuse_solving=*/true));
  // Graceful-degradation leg: self-clocked flash-crowd overload against
  // an undersized kDropOldest pipeline (see RunBurstOverload). Gated by a
  // completeness minimum and an unaccounted_windows ceiling in
  // bench/baseline.json.
  runs.push_back(RunBurstOverload(*program, symbols, window_size));

  std::printf("{\n");
  std::printf("  \"bench\": \"async_pipeline\",\n");
  std::printf("  \"workload\": \"traffic_pprime\",\n");
  std::printf("  \"items\": %zu,\n", items);
  std::printf("  \"window_size\": %zu,\n", window_size);
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    std::printf(
        "    {\"mode\": \"%s\", \"workload\": \"%s\", "
        "\"inflight\": %zu, \"workers\": %zu, "
        "\"window_slide\": %zu, \"reuse\": %s, \"reuse_solving\": %s, "
        "\"wall_ms\": %.2f, \"triples_per_sec\": %.1f, "
        "\"p50_latency_ms\": %.3f, \"p99_latency_ms\": %.3f, "
        "\"windows\": %llu, \"answers\": %llu, "
        "\"max_queue_depth\": %zu, \"max_reorder_depth\": %zu, "
        "\"incremental_windows\": %llu, \"grounding_fallbacks\": %llu, "
        "\"grounding_rules_retained\": %llu, "
        "\"grounding_rules_retracted\": %llu, "
        "\"grounding_rules_new\": %llu, "
        "\"incremental_solve_windows\": %llu, \"solve_rebuilds\": %llu, "
        "\"solver_rules_retained\": %llu, \"solver_rules_retracted\": %llu, "
        "\"solver_rules_new\": %llu, \"warm_start_hits\": %llu, "
        "\"ground_ms_total\": %.2f, \"solve_ms_total\": %.2f, "
        "\"reason_ms_total\": %.2f, "
        "\"window_store_bytes\": %zu, \"atom_table_bytes\": %zu, "
        "\"bytes_per_triple\": %.1f, "
        "\"completeness\": %.4f, \"shed_windows\": %llu, "
        "\"p99_emit_latency_ms\": %.3f, \"unaccounted_windows\": %lld}%s\n",
        run.mode.c_str(), run.workload.c_str(), run.inflight, run.workers,
        run.window_slide, run.reuse ? "true" : "false",
        run.reuse_solving ? "true" : "false", run.wall_ms,
        run.triples_per_sec, run.p50_latency_ms, run.p99_latency_ms,
        static_cast<unsigned long long>(run.windows),
        static_cast<unsigned long long>(run.answers), run.max_queue_depth,
        run.max_reorder_depth,
        static_cast<unsigned long long>(run.incremental_windows),
        static_cast<unsigned long long>(run.grounding_fallbacks),
        static_cast<unsigned long long>(run.grounding_rules_retained),
        static_cast<unsigned long long>(run.grounding_rules_retracted),
        static_cast<unsigned long long>(run.grounding_rules_new),
        static_cast<unsigned long long>(run.incremental_solve_windows),
        static_cast<unsigned long long>(run.solve_rebuilds),
        static_cast<unsigned long long>(run.solver_rules_retained),
        static_cast<unsigned long long>(run.solver_rules_retracted),
        static_cast<unsigned long long>(run.solver_rules_new),
        static_cast<unsigned long long>(run.warm_start_hits),
        run.ground_ms_total, run.solve_ms_total, run.reason_ms_total,
        run.window_store_bytes, run.atom_table_bytes, run.bytes_per_triple,
        run.completeness, static_cast<unsigned long long>(run.shed_windows),
        run.p99_emit_latency_ms, run.unaccounted_windows,
        i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
