// Sustained-throughput bench for the staged asynchronous pipeline engine:
// sync (the one-window-at-a-time oracle) vs async at in-flight depths
// {1, 2, 4, 8} on the paper's traffic workload. Emits one machine-readable
// JSON document on stdout for the perf trajectory; human-readable notes go
// to stderr.
//
// Throughput is items pushed / wall time of PushBatch+Flush (i.e. the rate
// the ingest side sustains while reasoning keeps up); window latency is the
// per-window reasoning latency distribution (p50/p99).
//
// Usage: async_pipeline [items] [window_size]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "stream/generator.h"
#include "streamrule/pipeline.h"
#include "streamrule/traffic_workload.h"
#include "util/timer.h"

namespace {

using namespace streamasp;

struct RunResult {
  std::string mode;        // "sync" or "async"
  size_t inflight = 0;     // 0 for sync
  size_t workers = 0;
  double wall_ms = 0;
  double triples_per_sec = 0;
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
  uint64_t windows = 0;
  uint64_t answers = 0;
  size_t max_queue_depth = 0;
  size_t max_reorder_depth = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

RunResult RunOnce(const Program& program, const std::vector<Triple>& stream,
                  size_t window_size, bool async, size_t inflight) {
  PipelineOptions options;
  options.window_size = window_size;
  options.async = async;
  options.max_inflight_windows = async ? inflight : 4;

  std::vector<double> latencies;
  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(
          &program, options,
          [&](const TripleWindow&, const ParallelReasonerResult& result) {
            latencies.push_back(result.latency_ms);
          });
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }

  WallTimer wall;
  (*pipeline)->PushBatch(stream);
  (*pipeline)->Flush();
  const double wall_ms = wall.ElapsedMillis();

  const PipelineStats stats = (*pipeline)->stats();
  RunResult run;
  run.mode = async ? "async" : "sync";
  run.inflight = async ? inflight : 0;
  run.workers = (*pipeline)->num_reason_workers();
  run.wall_ms = wall_ms;
  run.triples_per_sec =
      wall_ms > 0 ? static_cast<double>(stream.size()) / (wall_ms / 1000.0)
                  : 0;
  run.p50_latency_ms = Percentile(latencies, 0.50);
  run.p99_latency_ms = Percentile(latencies, 0.99);
  run.windows = stats.windows;
  run.answers = stats.answers;
  run.max_queue_depth = stats.max_queue_depth;
  run.max_reorder_depth = stats.max_reorder_depth;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t items = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const size_t window_size =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  GeneratorOptions gen_options;
  gen_options.seed = 2017;
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     gen_options);
  const std::vector<Triple> stream = generator.GenerateWindow(items);

  std::fprintf(stderr,
               "async_pipeline bench: %zu items, window %zu, %u cores\n",
               items, window_size, std::thread::hardware_concurrency());

  std::vector<RunResult> runs;
  // Warm-up (first run pays allocator/page-fault costs), then measure.
  RunOnce(*program, stream, window_size, /*async=*/false, 0);
  runs.push_back(RunOnce(*program, stream, window_size, false, 0));
  for (const size_t depth : {1, 2, 4, 8}) {
    runs.push_back(RunOnce(*program, stream, window_size, true, depth));
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"async_pipeline\",\n");
  std::printf("  \"workload\": \"traffic_pprime\",\n");
  std::printf("  \"items\": %zu,\n", items);
  std::printf("  \"window_size\": %zu,\n", window_size);
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& run = runs[i];
    std::printf(
        "    {\"mode\": \"%s\", \"inflight\": %zu, \"workers\": %zu, "
        "\"wall_ms\": %.2f, \"triples_per_sec\": %.1f, "
        "\"p50_latency_ms\": %.3f, \"p99_latency_ms\": %.3f, "
        "\"windows\": %llu, \"answers\": %llu, "
        "\"max_queue_depth\": %zu, \"max_reorder_depth\": %zu}%s\n",
        run.mode.c_str(), run.inflight, run.workers, run.wall_ms,
        run.triples_per_sec, run.p50_latency_ms, run.p99_latency_ms,
        static_cast<unsigned long long>(run.windows),
        static_cast<unsigned long long>(run.answers), run.max_queue_depth,
        run.max_reorder_depth, i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
