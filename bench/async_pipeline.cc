// Sustained-throughput bench for the staged asynchronous pipeline engine:
// sync (the one-window-at-a-time oracle) vs async at in-flight depths
// {1, 2, 4, 8} on the paper's traffic workload, plus a high-overlap
// sliding-window triple (slide = window/16): grounding reuse off, on, and
// on with the persistent warm-started solver (reuse_solving).
// The sliding runs use a recursive reachability workload over a small
// node universe — transitive closure makes instantiation the dominant
// per-window cost, which is the regime the incremental grounder's delta
// replay targets (the flat traffic rules ground in linear time, so there
// is little instantiation to save there). A final burst-overload leg
// drives a self-clocked flash-crowd stream against an undersized
// kDropOldest pipeline and reports completeness/shed accounting.
// Every leg drives the unified StreamEngine facade (num_shards = 0);
// emission flows through the single ordered EmissionEvent handler. Emits
// one machine-readable JSON document on stdout (schema shared with
// bench/sharded_pipeline via bench/bench_json.h); human-readable notes
// go to stderr.
//
// Throughput is items pushed / wall time of PushBatch+Flush (i.e. the rate
// the ingest side sustains while reasoning keeps up); window latency is the
// per-window reasoning latency distribution (p50/p99). Sliding runs emit
// more windows per item than tumbling runs and reason a different program,
// so their triples/s are only comparable to each other, which is exactly
// how the CI regression gate consumes them (reuse-on vs reuse-off ratio).
//
// Usage: async_pipeline [items] [window_size]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "asp/parser.h"
#include "bench/bench_json.h"
#include "stream/generator.h"
#include "streamrule/engine.h"
#include "streamrule/traffic_workload.h"
#include "util/timer.h"

namespace {

using namespace streamasp;
using bench::BenchRun;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

BenchRun RunOnce(const Program& program, const std::vector<Triple>& stream,
                 size_t window_size, bool async, size_t inflight,
                 size_t window_slide = 0, bool reuse = false,
                 bool reuse_solving = false, bool maintain_fixpoint = true) {
  EngineConfig config;
  config.pipeline.window_size = window_size;
  config.pipeline.window_slide = window_slide;
  config.pipeline.reuse_grounding = reuse;
  config.pipeline.reuse_solving = reuse_solving;
  config.pipeline.reasoner.reasoner.solving.maintain_fixpoint =
      maintain_fixpoint;
  config.pipeline.async = async;
  config.pipeline.max_inflight_windows = async ? inflight : 4;

  std::vector<double> latencies;
  StatusOr<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      &program, config, [&](EmissionEvent& event) {
        if (event.kind == EmissionEvent::Kind::kResult) {
          latencies.push_back(event.result->latency_ms);
        }
      });
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }

  WallTimer wall;
  (*engine)->PushBatch(stream);
  (*engine)->Flush();
  const double wall_ms = wall.ElapsedMillis();

  BenchRun run;
  run.mode = async ? "async" : "sync";
  run.inflight = async ? inflight : 0;
  run.workers = (*engine)->num_reason_workers();
  run.window_slide = window_slide;
  run.reuse = reuse;
  run.reuse_solving = reuse_solving;
  run.wall_ms = wall_ms;
  run.triples_per_sec =
      wall_ms > 0 ? static_cast<double>(stream.size()) / (wall_ms / 1000.0)
                  : 0;
  run.p50_latency_ms = Percentile(latencies, 0.50);
  run.p99_latency_ms = Percentile(latencies, 0.99);
  bench::FillFromEngineStats((*engine)->stats(), &run);
  return run;
}

// Graceful-degradation leg: a flash-crowd burst stream against a
// deliberately undersized async pipeline (one worker, two in-flight
// windows) with kDropOldest shedding. Pacing is self-clocked rather than
// timed: valley windows are pushed behind a Flush() drain barrier, so
// during valleys ingest can never outrun service and nothing sheds;
// spike windows are pushed back-to-back, so during spikes ingest is
// effectively infinitely faster than service and the queue sheds
// spike_len - (capacity + 1) windows (the worker holds one, the queue
// retains `capacity`). The shed fraction therefore depends only on the
// spike shape and queue capacity — not on host speed — which is what
// makes the completeness minimum in bench/baseline.json a meaningful
// machine-independent gate (worst case: every spike window past the
// worker's sheds, completeness 110/120).
BenchRun RunBurstOverload(const Program& program,
                          const SymbolTablePtr& symbols, size_t window_size) {
  using Clock = std::chrono::steady_clock;
  const size_t burst_window = std::max<size_t>(100, window_size / 4);
  const size_t num_windows = 120;

  BurstOptions burst;
  burst.shape = BurstShape::kFlashCrowd;
  burst.period = 60 * burst_window;  // 6-window spikes, 54-window valleys.
  burst.burst_fraction = 0.1;

  EngineConfig config;
  config.pipeline.window_size = burst_window;
  config.pipeline.async = true;
  config.pipeline.num_reason_workers = 1;
  config.pipeline.max_inflight_windows = 2;
  config.pipeline.backpressure = BackpressurePolicy::kDropOldest;
  std::vector<Clock::time_point> close_times(num_windows);
  std::vector<double> latencies;
  std::vector<double> emit_latencies;
  StatusOr<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      &program, config, [&](EmissionEvent& event) {
        if (event.kind != EmissionEvent::Kind::kResult) return;
        latencies.push_back(event.result->latency_ms);
        if (event.sequence < close_times.size()) {
          emit_latencies.push_back(std::chrono::duration<double, std::milli>(
                                       Clock::now() -
                                       close_times[event.sequence])
                                       .count());
        }
      });
  if (!engine.ok()) {
    std::fprintf(stderr, "burst engine: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }

  BurstyStreamGenerator generator =
      MakeTrafficBurstGenerator(*symbols, 5, burst);
  WallTimer wall;
  for (size_t k = 0; k < num_windows; ++k) {
    const bool spike = generator.InBurst(generator.position());
    const std::vector<Triple> chunk = generator.Generate(burst_window);
    // Stamp before the push: the window closes inside PushBatch.
    close_times[k] = Clock::now();
    (*engine)->PushBatch(chunk);
    // Valley: drain before the next window (ingest at service rate).
    // Spike: no barrier — the next window lands immediately.
    if (!spike) (*engine)->Flush();
  }
  (*engine)->Flush();
  const double wall_ms = wall.ElapsedMillis();

  const EngineStats stats = (*engine)->stats();
  BenchRun run;
  run.mode = "burst-overload";
  run.workload = "traffic_pprime_flash_crowd";
  run.inflight = config.pipeline.max_inflight_windows;
  run.workers = (*engine)->num_reason_workers();
  run.wall_ms = wall_ms;
  run.triples_per_sec =
      wall_ms > 0 ? static_cast<double>(num_windows * burst_window) /
                        (wall_ms / 1000.0)
                  : 0;
  run.p50_latency_ms = Percentile(latencies, 0.50);
  run.p99_latency_ms = Percentile(latencies, 0.99);
  bench::FillFromEngineStats(stats, &run);
  run.p99_emit_latency_ms = Percentile(emit_latencies, 0.99);
  run.unaccounted_windows = static_cast<long long>(num_windows) -
                            static_cast<long long>(stats.accounted_windows());
  return run;
}

// The sliding-reuse showcase: recursive reachability over a sliding edge
// stream. Grounding (transitive closure instantiation) dominates each
// window, and consecutive windows share all but `slide` edges, so the
// incremental grounder retracts/replays a small delta instead of
// re-deriving the closure from scratch.
constexpr char kReachProgram[] = R"(
  #input link/2.
  #input high/1.
  reach(X, Y) :- link(X, Y).
  reach(X, Z) :- reach(X, Y), link(Y, Z).
  alarm(X, Y) :- high(X), high(Y), reach(X, Y).
  #show alarm/2.
)";

BenchRun RunSlidingReach(const SymbolTablePtr& symbols, size_t items,
                         size_t window_size, bool reuse,
                         bool reuse_solving = false,
                         bool maintain_fixpoint = true) {
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(kReachProgram);
  if (!program.ok()) {
    std::fprintf(stderr, "reach program: %s\n",
                 program.status().ToString().c_str());
    std::exit(1);
  }

  // A small node universe keeps the closure dense (subjects and objects
  // drawn from the same ~48 ids), which is what makes instantiation the
  // dominant cost.
  GeneratorOptions gen_options;
  gen_options.seed = 2017;
  gen_options.location_divisor = std::max<size_t>(1, items / 48);
  gen_options.value_range = 48;
  std::vector<StreamPredicate> schema(2);
  schema[0].predicate = symbols->Intern("link");
  schema[0].has_object = true;
  schema[0].weight = 4.0;
  schema[1].predicate = symbols->Intern("high");
  schema[1].has_object = false;
  schema[1].weight = 1.0;
  SyntheticStreamGenerator generator(schema, gen_options);
  const std::vector<Triple> stream = generator.GenerateWindow(items);

  const size_t slide = std::max<size_t>(1, window_size / 16);
  BenchRun run = RunOnce(*program, stream, window_size, /*async=*/false, 0,
                         slide, reuse, reuse_solving, maintain_fixpoint);
  run.mode = reuse_solving
                 ? (maintain_fixpoint ? "sliding-tc-reuse-solve"
                                      : "sliding-tc-reuse-solve-patched")
             : reuse ? "sliding-tc-reuse"
                     : "sliding-tc";
  run.workload = "reach_tc";
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t items = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const size_t window_size =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  GeneratorOptions gen_options;
  gen_options.seed = 2017;
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     gen_options);
  const std::vector<Triple> stream = generator.GenerateWindow(items);

  std::fprintf(stderr,
               "async_pipeline bench: %zu items, window %zu, %u cores\n",
               items, window_size, std::thread::hardware_concurrency());

  std::vector<BenchRun> runs;
  // Warm-up (first run pays allocator/page-fault costs), then measure.
  RunOnce(*program, stream, window_size, /*async=*/false, 0);
  runs.push_back(RunOnce(*program, stream, window_size, false, 0));
  for (const size_t depth : {1, 2, 4, 8}) {
    runs.push_back(RunOnce(*program, stream, window_size, true, depth));
  }
  // High-overlap sliding pair on the recursion-heavy reachability
  // workload: identical windows, grounding reuse off vs on. Windows are
  // kept large relative to the pipeline's fixed per-window machinery so
  // the ratio measures grounding, not dispatch overhead.
  const size_t tc_items = std::max<size_t>(6400, items / 5);
  const size_t tc_window = std::min<size_t>(1600, tc_items / 4);
  runs.push_back(
      RunSlidingReach(symbols, tc_items, tc_window, /*reuse=*/false));
  runs.push_back(
      RunSlidingReach(symbols, tc_items, tc_window, /*reuse=*/true));
  // Third leg of the sliding pair: grounding reuse + persistent
  // warm-started solver. The solve-reuse CI gate compares its
  // reason_ms_total against the grounding-reuse-only run's.
  runs.push_back(RunSlidingReach(symbols, tc_items, tc_window,
                                 /*reuse=*/true, /*reuse_solving=*/true));
  // Fourth leg: same persistent solver but with delta-sized model
  // maintenance disabled (PR 4's patched-rebuild behavior: every window
  // recomputes the definite closure from the patched rule store). The
  // maintained-fixpoint CI gate compares the previous leg's
  // reason_ms_total against this one's.
  runs.push_back(RunSlidingReach(symbols, tc_items, tc_window,
                                 /*reuse=*/true, /*reuse_solving=*/true,
                                 /*maintain_fixpoint=*/false));
  // Graceful-degradation leg: self-clocked flash-crowd overload against
  // an undersized kDropOldest pipeline (see RunBurstOverload). Gated by a
  // completeness minimum and an unaccounted_windows ceiling in
  // bench/baseline.json.
  runs.push_back(RunBurstOverload(*program, symbols, window_size));

  bench::PrintBenchJson("async_pipeline", "traffic_pprime", items,
                        window_size, std::thread::hardware_concurrency(),
                        runs);
  return 0;
}
