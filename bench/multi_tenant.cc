// Multi-tenant fairness bench for the shared reasoner pool: one steady
// tenant (DRR weight 4) measured self-clocked against three saturating
// tenants (weight 1 each) on a deliberately small 2-thread pool.
//
// Legs:
//   * solo-steady      — the steady tenant alone on the shared pool: the
//                        uncontended latency reference.
//   * shared-steady    — the same tenant, same pool, while three greedy
//                        tenants keep their lanes permanently backlogged.
//                        The isolation claim is its p99 emit latency
//                        staying within a small factor of solo-steady.
//   * shared-greedy    — one of the saturating tenants (representative):
//                        lossless under kBlock admission, so its
//                        completeness floor is 1.0 even while saturated.
//   * dedicated-steady — the same contention shape on per-tenant engine
//                        threads (no shared pool): the O(sessions)-thread
//                        baseline the pool replaces.
//
// Pacing is self-clocked, not timed. The steady tenant pushes one window
// and flushes (a delivery barrier) per round, so each round's emit
// latency — window close to ordered delivery — is set by how long the
// pool makes the window wait behind other tenants, not by host speed.
// The greedy pushers run under blocking backpressure against their own
// bounded window queues: each pusher parks inside PushBatch whenever its
// lane is full, so the lane backlog is pinned at queue capacity (maximal
// DRR pressure) without burning host CPU that would perturb the steady
// tenant's measurement on small CI machines. The solo/shared p99 ratio in
// bench/baseline.json is therefore machine-independent: weight 4 of 7
// and a per-lane inflight cap of 1 bound how many greedy windows a
// steady window can wait behind, on any host.
//
// Every leg reports the shared BenchRun schema (bench/bench_json.h);
// human-readable notes go to stderr.
//
// Usage: multi_tenant [items] [window_size]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "stream/generator.h"
#include "streamrule/engine.h"
#include "streamrule/traffic_workload.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace streamasp;
using bench::BenchRun;
using Clock = std::chrono::steady_clock;

constexpr size_t kPoolThreads = 2;
constexpr size_t kGreedyTenants = 3;
constexpr size_t kSteadyWeight = 4;
constexpr size_t kGreedyWeight = 1;
constexpr const char* kWorkload = "traffic_pprime_multi_tenant";

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

/// Pre-generates `count` exact windows of the traffic stream so window
/// boundaries land on PushBatch boundaries (every push closes exactly one
/// window — what makes the close-time stamps and the per-engine pushed
/// window counts exact).
std::vector<std::vector<Triple>> MakeWindows(const SymbolTablePtr& symbols,
                                             size_t count, size_t window_size,
                                             uint32_t seed) {
  GeneratorOptions options;
  options.seed = seed;
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols), options);
  std::vector<std::vector<Triple>> windows;
  windows.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    windows.push_back(generator.GenerateWindow(window_size));
  }
  return windows;
}

EngineConfig SteadyConfig(std::shared_ptr<SharedReasonerPool> pool,
                          size_t window_size) {
  EngineConfig config;
  config.pipeline.window_size = window_size;
  config.pipeline.async = true;
  config.pipeline.max_inflight_windows = 4;
  if (pool != nullptr) {
    config.pipeline.shared_pool = std::move(pool);
    config.pipeline.pool_weight = kSteadyWeight;
    config.pipeline.pool_max_inflight = 2;
  } else {
    config.pipeline.num_reason_workers = 1;
  }
  return config;
}

EngineConfig GreedyConfig(std::shared_ptr<SharedReasonerPool> pool,
                          size_t window_size) {
  EngineConfig config;
  config.pipeline.window_size = window_size;
  config.pipeline.async = true;
  // A deep-but-bounded window queue: the pusher parks against it under
  // kBlock backpressure, which is what pins the lane backlog at capacity.
  config.pipeline.max_inflight_windows = 8;
  if (pool != nullptr) {
    config.pipeline.shared_pool = std::move(pool);
    config.pipeline.pool_weight = kGreedyWeight;
    config.pipeline.pool_max_inflight = 1;
  } else {
    config.pipeline.num_reason_workers = 1;
  }
  return config;
}

/// One saturating tenant: an engine plus a pusher thread that cycles a
/// small set of pre-generated windows back-to-back until stopped. Under
/// blocking backpressure the pusher spends its life parked in PushBatch,
/// so the lane stays maximally backlogged at near-zero host CPU cost.
struct GreedyTenant {
  std::unique_ptr<StreamEngine> engine;
  std::thread pusher;
  std::vector<std::vector<Triple>> windows;
  std::atomic<uint64_t> pushed_windows{0};
};

/// The steady tenant's self-clocked measurement loop: one window + flush
/// barrier per round, emit latency stamped at window close. Returns the
/// filled run record (identity fields `mode`/`workers` set by the caller's
/// leg wrapper).
BenchRun RunSteady(const Program& program,
                   const std::vector<std::vector<Triple>>& windows,
                   const EngineConfig& config) {
  std::vector<Clock::time_point> close_times(windows.size());
  std::vector<double> latencies;
  std::vector<double> emit_latencies;
  StatusOr<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
      &program, config, [&](EmissionEvent& event) {
        if (event.kind != EmissionEvent::Kind::kResult) return;
        latencies.push_back(event.result->latency_ms);
        if (event.sequence < close_times.size()) {
          emit_latencies.push_back(std::chrono::duration<double, std::milli>(
                                       Clock::now() -
                                       close_times[event.sequence])
                                       .count());
        }
      });
  if (!engine.ok()) {
    std::fprintf(stderr, "steady engine: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }

  WallTimer wall;
  for (size_t k = 0; k < windows.size(); ++k) {
    // Stamp before the push: the window closes inside PushBatch.
    close_times[k] = Clock::now();
    (*engine)->PushBatch(windows[k]);
    (*engine)->Flush();
  }
  const double wall_ms = wall.ElapsedMillis();

  const EngineStats stats = (*engine)->stats();
  BenchRun run;
  run.workload = kWorkload;
  run.inflight = config.pipeline.max_inflight_windows;
  run.wall_ms = wall_ms;
  const size_t items = windows.size() * (windows.empty() ? 0 : windows[0].size());
  run.triples_per_sec =
      wall_ms > 0 ? static_cast<double>(items) / (wall_ms / 1000.0) : 0;
  run.p50_latency_ms = Percentile(latencies, 0.50);
  run.p99_latency_ms = Percentile(latencies, 0.99);
  bench::FillFromEngineStats(stats, &run);
  run.p99_emit_latency_ms = Percentile(emit_latencies, 0.99);
  run.unaccounted_windows = static_cast<long long>(windows.size()) -
                            static_cast<long long>(stats.accounted_windows());
  return run;
}

void StartGreedyTenants(const Program& program, const SymbolTablePtr& symbols,
                        std::shared_ptr<SharedReasonerPool> pool,
                        size_t window_size, std::atomic<bool>* stop,
                        std::vector<std::unique_ptr<GreedyTenant>>* tenants) {
  for (size_t i = 0; i < kGreedyTenants; ++i) {
    auto tenant = std::make_unique<GreedyTenant>();
    tenant->windows = MakeWindows(symbols, 8, window_size,
                                  /*seed=*/static_cast<uint32_t>(4000 + i));
    StatusOr<std::unique_ptr<StreamEngine>> engine = StreamEngine::Create(
        &program, GreedyConfig(pool, window_size), [](EmissionEvent&) {});
    if (!engine.ok()) {
      std::fprintf(stderr, "greedy engine: %s\n",
                   engine.status().ToString().c_str());
      std::exit(1);
    }
    tenant->engine = std::move(*engine);
    GreedyTenant* raw = tenant.get();
    tenant->pusher = std::thread([raw, stop] {
      size_t next = 0;
      while (!stop->load(std::memory_order_relaxed)) {
        raw->engine->PushBatch(raw->windows[next % raw->windows.size()]);
        raw->pushed_windows.fetch_add(1, std::memory_order_relaxed);
        ++next;
      }
    });
    tenants->push_back(std::move(tenant));
  }
}

/// Stops the pushers, drains every greedy engine, and returns the
/// representative (first) tenant's run record.
BenchRun SettleGreedyTenants(
    std::atomic<bool>* stop,
    std::vector<std::unique_ptr<GreedyTenant>>* tenants) {
  stop->store(true, std::memory_order_relaxed);
  for (auto& tenant : *tenants) tenant->pusher.join();
  for (auto& tenant : *tenants) tenant->engine->Flush();

  GreedyTenant& sample = *(*tenants)[0];
  const EngineStats stats = sample.engine->stats();
  const uint64_t pushed =
      sample.pushed_windows.load(std::memory_order_relaxed);
  BenchRun run;
  run.workload = kWorkload;
  run.inflight = 8;
  // wall_ms/throughput/latency percentiles stay 0: the leg is open-ended
  // (it runs exactly as long as the steady measurement), so only the
  // accounting fields are meaningful.
  bench::FillFromEngineStats(stats, &run);
  run.unaccounted_windows = static_cast<long long>(pushed) -
                            static_cast<long long>(stats.accounted_windows());
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t items = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60000;
  const size_t window_size =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;
  const size_t rounds = std::max<size_t>(20, items / window_size);

  SymbolTablePtr symbols = MakeSymbolTable();
  StatusOr<Program> program = MakeTrafficProgram(
      symbols, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::vector<Triple>> steady_windows =
      MakeWindows(symbols, rounds, window_size, /*seed=*/2017);

  std::fprintf(stderr,
               "multi_tenant bench: %zu rounds x window %zu, pool %zu "
               "threads, %zu greedy tenants, %u cores\n",
               rounds, window_size, kPoolThreads, kGreedyTenants,
               std::thread::hardware_concurrency());

  std::vector<BenchRun> runs;

  // Warm-up (allocator/page-fault costs), then the solo reference leg.
  {
    auto pool = std::make_shared<SharedReasonerPool>(kPoolThreads);
    RunSteady(*program, steady_windows, SteadyConfig(pool, window_size));
  }
  {
    auto pool = std::make_shared<SharedReasonerPool>(kPoolThreads);
    BenchRun solo =
        RunSteady(*program, steady_windows, SteadyConfig(pool, window_size));
    solo.mode = "solo-steady";
    solo.workers = kPoolThreads;
    runs.push_back(std::move(solo));
  }

  // Contended leg: greedy lanes saturate first, then the steady tenant
  // runs its self-clocked loop against them.
  {
    auto pool = std::make_shared<SharedReasonerPool>(kPoolThreads);
    std::atomic<bool> stop{false};
    std::vector<std::unique_ptr<GreedyTenant>> tenants;
    StartGreedyTenants(*program, symbols, pool, window_size, &stop,
                       &tenants);
    BenchRun steady =
        RunSteady(*program, steady_windows, SteadyConfig(pool, window_size));
    steady.mode = "shared-steady";
    steady.workers = kPoolThreads;
    BenchRun greedy = SettleGreedyTenants(&stop, &tenants);
    greedy.mode = "shared-greedy";
    greedy.workers = kPoolThreads;
    runs.push_back(std::move(steady));
    runs.push_back(std::move(greedy));
    tenants.clear();  // Engines drain their lanes before the pool dies.
  }

  // Per-tenant-threads baseline: same contention shape, every engine on
  // its own reasoning thread (the O(sessions) budget the pool replaces).
  {
    std::atomic<bool> stop{false};
    std::vector<std::unique_ptr<GreedyTenant>> tenants;
    StartGreedyTenants(*program, symbols, /*pool=*/nullptr, window_size,
                       &stop, &tenants);
    BenchRun steady = RunSteady(*program, steady_windows,
                                SteadyConfig(nullptr, window_size));
    steady.mode = "dedicated-steady";
    steady.workers = 1 + kGreedyTenants;  // One reasoning thread each.
    SettleGreedyTenants(&stop, &tenants);
    runs.push_back(std::move(steady));
    tenants.clear();
  }

  bench::PrintBenchJson("multi_tenant", kWorkload, rounds * window_size,
                        window_size, std::thread::hardware_concurrency(),
                        runs);
  return 0;
}
