// Component microbenchmarks for the graph substrate: Louvain community
// detection, connected components, SCC condensation, and the design-time
// dependency analysis end to end (which runs once per deployed program,
// but should stay interactive even for large rule sets).

#include <string>

#include <benchmark/benchmark.h>

#include "asp/parser.h"
#include "depgraph/decomposition.h"
#include "graph/components.h"
#include "graph/louvain.h"
#include "util/rng.h"

namespace streamasp {
namespace {

UndirectedGraph RandomGraph(NodeId n, size_t edges, uint64_t seed) {
  UndirectedGraph g(n);
  Rng rng(seed);
  for (size_t i = 0; i < edges; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<NodeId>(rng.NextBounded(n)));
  }
  return g;
}

void BM_Louvain(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const UndirectedGraph g = RandomGraph(n, 8 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LouvainCommunities(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Louvain)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ConnectedComponents(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  const UndirectedGraph g = RandomGraph(n, 2 * n, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConnectedComponents(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConnectedComponents)->Arg(1000)->Arg(100000);

void BM_StronglyConnectedComponents(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Digraph g(n);
  Rng rng(44);
  for (size_t i = 0; i < 4u * n; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<NodeId>(rng.NextBounded(n)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(StronglyConnectedComponents(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StronglyConnectedComponents)->Arg(1000)->Arg(100000);

void BM_DesignTimeAnalysis(benchmark::State& state) {
  // A synthetic rule set with `n` chained input predicates: measures the
  // full design-time pipeline (extended graph -> input graph -> plan).
  const int n = static_cast<int>(state.range(0));
  std::string text;
  for (int i = 0; i < n; ++i) {
    const std::string in = "in" + std::to_string(i);
    text += "#input " + in + "/1.\n";
    text += "d" + std::to_string(i) + "(X) :- " + in + "(X).\n";
    if (i % 3 == 2) {
      // Join three consecutive derived predicates into one event.
      text += "e" + std::to_string(i) + "(X) :- d" + std::to_string(i - 2) +
              "(X), d" + std::to_string(i - 1) + "(X), d" +
              std::to_string(i) + "(X).\n";
    }
  }
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(text);

  for (auto _ : state) {
    StatusOr<InputDependencyGraph> graph =
        InputDependencyGraph::Build(*program);
    benchmark::DoNotOptimize(DecomposeInputDependencyGraph(*graph));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DesignTimeAnalysis)->Arg(30)->Arg(90)->Arg(300);

}  // namespace
}  // namespace streamasp

BENCHMARK_MAIN();
