#!/usr/bin/env python3
"""CI bench regression gate.

Compares bench JSON documents (bench/async_pipeline, bench/sharded_pipeline)
against checked-in reference values in bench/baseline.json:

  * throughput floors: each baseline entry names a run (matched by the
    key/value pairs under "match") and its reference triples_per_sec; the
    gate fails when the measured run drops below
    reference * (1 - tolerance). The tolerance is deliberately generous —
    CI runners differ wildly from the machine that recorded the baseline —
    so the floor only catches order-of-magnitude regressions (a serialized
    pipeline, an accidental O(n^2) in the hot path), not scheduler noise.
  * ratio gates: machine-independent invariants between two runs of the
    same document, e.g. grounding reuse must keep a >= 1.3x throughput
    edge over the same sliding workload without reuse. Ratios divide out
    the host speed, so their bounds are tight. Each ratio may name the
    run field it divides via "field" (default "triples_per_sec"); time
    fields put the slower run in the numerator, e.g. the solve-reuse gate
    divides the grounding-reuse-only run's reason_ms_total (ground +
    solve — comparable across the phase boundary reuse_solving moves) by
    the reuse_solving run's, i.e. the reasoning-phase speedup.
  * ceilings: machine-independent upper bounds on a run field, used for
    the compact data plane's bytes_per_triple counter (retained window
    store + grounding atom table bytes per triple of the largest window)
    and the burst-overload leg's unaccounted_windows (emitted windows
    neither delivered nor tombstoned — any positive value means the
    ordered merge stalled on a shed slot). Bytes are deterministic for a
    fixed workload — no tolerance derating; the ceiling caps
    representation bloat (a reverted packed layout, a leaked per-window
    buffer) regardless of host speed.
  * minimums: machine-independent lower bounds on a run field, used for
    the burst-overload leg's completeness (items reasoned / items
    admitted). The leg is self-clocked — valleys push behind a drain
    barrier, spikes push back-to-back — so the shed fraction is set by
    queue capacity and spike shape, not host speed, and the bound holds
    with no tolerance derating.

Usage:
  check_bench_regression.py [--baseline bench/baseline.json] \
      async_pipeline=async.json sharded_pipeline=sharded.json

Exits non-zero (with a per-check report) on any violation. To refresh the
baseline after an intentional perf change, run the benches on a quiet
machine and copy the reported triples_per_sec values into
bench/baseline.json (see docs/benchmarks.md).
"""

import argparse
import json
import sys


def matches(run, match):
    return all(run.get(key) == value for key, value in match.items())


def find_run(runs, match, context):
    found = [run for run in runs if matches(run, match)]
    if not found:
        raise SystemExit(f"baseline {context}: no run matches {match}")
    if len(found) > 1:
        raise SystemExit(f"baseline {context}: {match} is ambiguous "
                         f"({len(found)} runs)")
    return found[0]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("benches", nargs="+",
                        help="<baseline-key>=<bench-json-path> pairs")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    tolerance = float(baseline.get("tolerance", 0.8))

    documents = {}
    for pair in args.benches:
        name, _, path = pair.partition("=")
        if not path:
            raise SystemExit(f"expected <name>=<path>, got: {pair!r}")
        with open(path) as f:
            documents[name] = json.load(f)

    failures = []
    checks = 0

    # Strict run schema: both benches emit the same record shape (see
    # bench/bench_json.h), and the baseline pins the exact field list.
    # Unknown fields mean the serializer and baseline drifted apart;
    # missing fields mean a bench stopped reporting something a gate may
    # silently depend on. Either way: fail loudly.
    run_fields = baseline.get("schema", {}).get("run_fields")
    if run_fields:
        expected = set(run_fields)
        for name, document in documents.items():
            for i, run in enumerate(document["runs"]):
                checks += 1
                unknown = sorted(set(run) - expected)
                missing = sorted(expected - set(run))
                if unknown or missing:
                    detail = []
                    if unknown:
                        detail.append(f"unknown fields {unknown}")
                    if missing:
                        detail.append(f"missing fields {missing}")
                    message = (f"{name} run {i} "
                               f"({run.get('mode', '?')}): "
                               + ", ".join(detail))
                    print(f"[FAIL] schema {message}")
                    failures.append(f"schema {message}")
        print(f"[ok] schema: {sum(len(d['runs']) for d in documents.values())}"
              f" runs checked against {len(expected)} fields")

    for name, floors in baseline.get("floors", {}).items():
        if name not in documents:
            continue
        runs = documents[name]["runs"]
        for floor in floors:
            checks += 1
            run = find_run(runs, floor["match"], name)
            reference = float(floor["triples_per_sec"])
            minimum = reference * (1.0 - tolerance)
            measured = float(run["triples_per_sec"])
            verdict = "ok" if measured >= minimum else "FAIL"
            print(f"[{verdict}] {name} {floor['match']}: "
                  f"{measured:.0f} triples/s "
                  f"(floor {minimum:.0f} = {reference:.0f} * "
                  f"{1.0 - tolerance:.2f})")
            if measured < minimum:
                failures.append(f"{name} {floor['match']}")

    for ratio in baseline.get("ratios", []):
        name = ratio["bench"]
        if name not in documents:
            continue
        checks += 1
        runs = documents[name]["runs"]
        field = ratio.get("field", "triples_per_sec")
        numerator = find_run(runs, ratio["numerator"], name)
        denominator = find_run(runs, ratio["denominator"], name)
        for run, role in ((numerator, "numerator"), (denominator,
                                                     "denominator")):
            if field not in run:
                raise SystemExit(
                    f"baseline {name} {ratio.get('name', 'ratio')}: "
                    f"{role} run has no field {field!r} "
                    f"(older bench binary?)")
        denom_value = float(denominator[field])
        measured = (float(numerator[field]) / denom_value
                    if denom_value > 0 else 0.0)
        minimum = float(ratio["min_ratio"])
        verdict = "ok" if measured >= minimum else "FAIL"
        print(f"[{verdict}] {name} {ratio.get('name', 'ratio')} ({field}): "
              f"{measured:.2f}x (minimum {minimum:.2f}x)")
        if measured < minimum:
            failures.append(f"{name} {ratio.get('name', 'ratio')}")

    for name, ceilings in baseline.get("ceilings", {}).items():
        if name not in documents:
            continue
        runs = documents[name]["runs"]
        for ceiling in ceilings:
            checks += 1
            run = find_run(runs, ceiling["match"], name)
            field = ceiling.get("field", "bytes_per_triple")
            if field not in run:
                raise SystemExit(
                    f"baseline {name} ceiling {ceiling['match']}: run has "
                    f"no field {field!r} (older bench binary?)")
            maximum = float(ceiling["max"])
            measured = float(run[field])
            verdict = "ok" if measured <= maximum else "FAIL"
            print(f"[{verdict}] {name} {ceiling['match']} ({field}): "
                  f"{measured:.1f} (ceiling {maximum:.1f})")
            if measured > maximum:
                failures.append(f"{name} ceiling {ceiling['match']}")

    for name, minimums in baseline.get("minimums", {}).items():
        if name not in documents:
            continue
        runs = documents[name]["runs"]
        for floor in minimums:
            checks += 1
            run = find_run(runs, floor["match"], name)
            field = floor.get("field", "completeness")
            if field not in run:
                raise SystemExit(
                    f"baseline {name} minimum {floor['match']}: run has "
                    f"no field {field!r} (older bench binary?)")
            minimum = float(floor["min"])
            measured = float(run[field])
            verdict = "ok" if measured >= minimum else "FAIL"
            print(f"[{verdict}] {name} {floor['match']} ({field}): "
                  f"{measured:.4f} (minimum {minimum:.4f})")
            if measured < minimum:
                failures.append(f"{name} minimum {floor['match']}")

    if checks == 0:
        raise SystemExit("no checks ran: baseline keys do not match the "
                         "supplied bench documents")
    if failures:
        print(f"\n{len(failures)} bench regression check(s) failed:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall {checks} bench regression checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
