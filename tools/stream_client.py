#!/usr/bin/env python3
"""Smoke-test client for the StreamRule session server (examples/stream_server).

Speaks the length-prefixed wire protocol from src/server/wire.h: opens a
session running the paper's traffic program, pushes triples crafted to
fire the traffic_jam and car_fire/give_notification rules, flushes, and
asserts that at least one result event carrying answers came back.

Usage:
  stream_client.py --port N [--windows 3] [--window-size 60] [-v]

Exits 0 on success (nonzero answers observed), 1 otherwise.
"""

import argparse
import socket
import struct
import sys

# The paper's traffic program (P variant, listing 1) plus #show — kept in
# sync with src/streamrule/traffic_workload.cc by the rule names the
# assertions below rely on (traffic_jam, car_fire, give_notification).
TRAFFIC_PROGRAM = """\
very_slow_speed(X) :- average_speed(X, S), S < 20.
many_cars(X) :- car_number(X, N), N > 60.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), traffic_light(X).
car_fire(Y) :- car_in_smoke(Y, N), N > 70, car_speed(Y, 0).
car_fire(Y) :- car_in_smoke(Y, N), N > 85.
give_notification(X) :- traffic_jam(X), car_location(Y, X).
#input average_speed/2, car_number/2, traffic_light/1, car_in_smoke/2.
#input car_speed/2, car_location/2.
#show traffic_jam/1, car_fire/1, give_notification/1.
"""


def send_frame(sock, payload: str):
    data = payload.encode()
    sock.sendall(struct.pack(">I", len(data)) + data)


class FrameReader:
    def __init__(self, sock):
        self.sock = sock
        self.buffer = b""

    def next_frame(self) -> str:
        while True:
            if len(self.buffer) >= 4:
                (length,) = struct.unpack(">I", self.buffer[:4])
                if len(self.buffer) >= 4 + length:
                    payload = self.buffer[4:4 + length]
                    self.buffer = self.buffer[4 + length:]
                    return payload.decode()
            chunk = self.sock.recv(65536)
            if not chunk:
                raise SystemExit("server closed the connection")
            self.buffer += chunk


def window_triples(window_size: int, seq: int):
    """One window of triples guaranteed to fire the rules: a jammed,
    smoky junction plus filler traffic_light facts to pad the window."""
    lines = [
        # traffic_jam(j<seq>): slow average speed, many cars, a light.
        f"average_speed j{seq} 10",
        f"car_number j{seq} 80",
        f"traffic_light j{seq}",
        # give_notification(j<seq>): a car located at the jammed junction.
        f"car_location c{seq} j{seq}",
        # car_fire(c<seq>): heavy smoke while standing still.
        f"car_in_smoke c{seq} 90",
        f"car_speed c{seq} 0",
    ]
    filler = 0
    while len(lines) < window_size:
        lines.append(f"traffic_light pad{seq}_{filler}")
        filler += 1
    return lines[:window_size]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--windows", type=int, default=3)
    parser.add_argument("--window-size", type=int, default=60)
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args()

    sock = socket.create_connection((args.host, args.port), timeout=30)
    reader = FrameReader(sock)

    result_events = 0
    answers = 0

    def await_reply(expect_verb):
        """Reads frames until the pending request's reply; counts the
        subscription events that interleave before it."""
        nonlocal result_events, answers
        while True:
            frame = reader.next_frame()
            if args.verbose:
                print(frame)
                print("--")
            head = frame.split("\n", 1)[0].split()
            if head[0] == "event":
                if head[2] == "result":
                    result_events += 1
                    for field in head[3:]:
                        if field.startswith("answers="):
                            answers += int(field.split("=", 1)[1])
                continue
            if head[0] == "error":
                raise SystemExit(f"server error: {frame}")
            assert head[0] == "ok" and head[1] == expect_verb, frame
            return frame

    send_frame(sock, "ping")
    await_reply("ping")

    open_line = (f"open smoke window={args.window_size} "
                 f"async=1 inflight=2 workers=1")
    send_frame(sock, open_line + "\n" + TRAFFIC_PROGRAM)
    await_reply("open")

    for seq in range(args.windows):
        lines = window_triples(args.window_size, seq)
        send_frame(sock, "push smoke\n" + "\n".join(lines))
        await_reply("push")

    send_frame(sock, "flush smoke")
    await_reply("flush")

    send_frame(sock, "stats smoke")
    stats_frame = await_reply("stats")
    stats = dict(line.split("=", 1) for line in stats_frame.split("\n")[1:]
                 if "=" in line)

    send_frame(sock, "close smoke")
    await_reply("close")
    sock.close()

    print(f"stream_client: {result_events} result events, "
          f"{answers} answers, server stats: "
          f"windows={stats.get('delivered_windows')} "
          f"answers={stats.get('delivered_answers')} "
          f"completeness={stats.get('completeness')}")
    if result_events < args.windows:
        print(f"FAIL: expected >= {args.windows} result events")
        return 1
    if answers <= 0:
        print("FAIL: no answers came back (expected traffic_jam/car_fire "
              "events every window)")
        return 1
    if int(stats.get("delivered_answers", "0")) <= 0:
        print("FAIL: server-side delivered_answers is zero")
        return 1
    print("stream_client: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
