#!/usr/bin/env python3
"""Smoke-test client for the StreamRule session server (examples/stream_server).

Speaks the length-prefixed wire protocol from src/server/wire.h at
protocol v=1: opens one or more sessions running the paper's traffic
program (one TCP connection per session, so N sessions exercise the
server's shared reasoner pool and single event-loop transport), pushes
triples crafted to fire the traffic_jam and car_fire/give_notification
rules, flushes, and asserts that every session saw nonzero answers.

Error replies carry machine-readable codes (`error <verb> <session>
code=<slug> <message>`); the client surfaces the slug on failure.

Usage:
  stream_client.py --port N [--sessions 8] [--windows 3]
                   [--window-size 60] [--protocol-version 1] [-v]

With --protocol-version != 1 the client expects the server to refuse the
open with code=unsupported_version and exits 0 when it does (negative
test for version negotiation).

Exits 0 on success, 1 otherwise.
"""

import argparse
import socket
import struct
import sys
import threading

PROTOCOL_VERSION = 1

# The paper's traffic program (P variant, listing 1) plus #show — kept in
# sync with src/streamrule/traffic_workload.cc by the rule names the
# assertions below rely on (traffic_jam, car_fire, give_notification).
TRAFFIC_PROGRAM = """\
very_slow_speed(X) :- average_speed(X, S), S < 20.
many_cars(X) :- car_number(X, N), N > 60.
traffic_jam(X) :- very_slow_speed(X), many_cars(X), traffic_light(X).
car_fire(Y) :- car_in_smoke(Y, N), N > 70, car_speed(Y, 0).
car_fire(Y) :- car_in_smoke(Y, N), N > 85.
give_notification(X) :- traffic_jam(X), car_location(Y, X).
#input average_speed/2, car_number/2, traffic_light/1, car_in_smoke/2.
#input car_speed/2, car_location/2.
#show traffic_jam/1, car_fire/1, give_notification/1.
"""


class ServerError(Exception):
    """An `error` reply; `.code` carries the machine-readable slug."""

    def __init__(self, frame: str):
        self.frame = frame
        self.code = "unknown"
        for field in frame.split("\n", 1)[0].split():
            if field.startswith("code="):
                self.code = field.split("=", 1)[1]
        super().__init__(frame)


def send_frame(sock, payload: str):
    data = payload.encode()
    sock.sendall(struct.pack(">I", len(data)) + data)


class FrameReader:
    def __init__(self, sock):
        self.sock = sock
        self.buffer = b""

    def next_frame(self) -> str:
        while True:
            if len(self.buffer) >= 4:
                (length,) = struct.unpack(">I", self.buffer[:4])
                if len(self.buffer) >= 4 + length:
                    payload = self.buffer[4:4 + length]
                    self.buffer = self.buffer[4 + length:]
                    return payload.decode()
            chunk = self.sock.recv(65536)
            if not chunk:
                raise SystemExit("server closed the connection")
            self.buffer += chunk


def window_triples(window_size: int, seq: int):
    """One window of triples guaranteed to fire the rules: a jammed,
    smoky junction plus filler traffic_light facts to pad the window."""
    lines = [
        # traffic_jam(j<seq>): slow average speed, many cars, a light.
        f"average_speed j{seq} 10",
        f"car_number j{seq} 80",
        f"traffic_light j{seq}",
        # give_notification(j<seq>): a car located at the jammed junction.
        f"car_location c{seq} j{seq}",
        # car_fire(c<seq>): heavy smoke while standing still.
        f"car_in_smoke c{seq} 90",
        f"car_speed c{seq} 0",
    ]
    filler = 0
    while len(lines) < window_size:
        lines.append(f"traffic_light pad{seq}_{filler}")
        filler += 1
    return lines[:window_size]


class SessionRun:
    """One session over its own TCP connection: open (negotiating the
    protocol version), push windows, flush, stats, close."""

    def __init__(self, name: str, args):
        self.name = name
        self.args = args
        self.result_events = 0
        self.answers = 0
        self.stats = {}
        self.negotiated_version = None

    def await_reply(self, reader, expect_verb):
        """Reads frames until the pending request's reply; counts the
        subscription events that interleave before it."""
        while True:
            frame = reader.next_frame()
            if self.args.verbose:
                print(f"[{self.name}] {frame}")
                print("--")
            head = frame.split("\n", 1)[0].split()
            if head[0] == "event":
                if head[2] == "result":
                    self.result_events += 1
                    for field in head[3:]:
                        if field.startswith("answers="):
                            self.answers += int(field.split("=", 1)[1])
                continue
            if head[0] == "error":
                raise ServerError(frame)
            assert head[0] == "ok" and head[1] == expect_verb, frame
            return frame

    def run(self):
        sock = socket.create_connection(
            (self.args.host, self.args.port), timeout=60)
        try:
            reader = FrameReader(sock)
            send_frame(sock, "ping")
            self.await_reply(reader, "ping")

            open_line = (f"open {self.name} window={self.args.window_size} "
                         f"async=1 inflight=2 "
                         f"v={self.args.protocol_version}")
            send_frame(sock, open_line + "\n" + TRAFFIC_PROGRAM)
            open_reply = self.await_reply(reader, "open")
            # `ok open <session> v=N`: the version the server speaks.
            for field in open_reply.split():
                if field.startswith("v="):
                    self.negotiated_version = int(field.split("=", 1)[1])

            for seq in range(self.args.windows):
                lines = window_triples(self.args.window_size, seq)
                send_frame(sock, f"push {self.name}\n" + "\n".join(lines))
                self.await_reply(reader, "push")

            send_frame(sock, f"flush {self.name}")
            self.await_reply(reader, "flush")

            send_frame(sock, f"stats {self.name}")
            stats_frame = self.await_reply(reader, "stats")
            self.stats = dict(
                line.split("=", 1)
                for line in stats_frame.split("\n")[1:] if "=" in line)

            send_frame(sock, f"close {self.name}")
            self.await_reply(reader, "close")
        finally:
            sock.close()

    def check(self):
        """Returns a list of failure messages (empty on success)."""
        failures = []
        if self.negotiated_version != PROTOCOL_VERSION:
            failures.append(
                f"{self.name}: server spoke v={self.negotiated_version}, "
                f"expected v={PROTOCOL_VERSION}")
        if self.result_events < self.args.windows:
            failures.append(
                f"{self.name}: expected >= {self.args.windows} result "
                f"events, saw {self.result_events}")
        if self.answers <= 0:
            failures.append(
                f"{self.name}: no answers came back (expected "
                f"traffic_jam/car_fire events every window)")
        if int(self.stats.get("delivered_answers", "0")) <= 0:
            failures.append(
                f"{self.name}: server-side delivered_answers is zero")
        return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--sessions", type=int, default=1,
                        help="concurrent sessions, one connection each")
    parser.add_argument("--windows", type=int, default=3)
    parser.add_argument("--window-size", type=int, default=60)
    parser.add_argument("--protocol-version", type=int,
                        default=PROTOCOL_VERSION)
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args()

    if args.protocol_version != PROTOCOL_VERSION:
        # Negative test: an unsupported version must be refused cleanly
        # with the machine-readable slug, not crash the connection.
        run = SessionRun("smoke", args)
        try:
            run.run()
        except ServerError as error:
            if error.code == "unsupported_version":
                print(f"stream_client: v={args.protocol_version} open "
                      f"rejected cleanly (code={error.code})")
                return 0
            print(f"FAIL: expected code=unsupported_version, got: "
                  f"{error.frame}")
            return 1
        print("FAIL: server accepted an unsupported protocol version")
        return 1

    runs = [SessionRun(f"smoke{i}" if args.sessions > 1 else "smoke", args)
            for i in range(args.sessions)]
    errors = []

    def drive(run):
        try:
            run.run()
        except ServerError as error:
            errors.append(f"{run.name}: server error code={error.code}: "
                          f"{error.frame}")
        except (SystemExit, OSError, AssertionError) as error:
            errors.append(f"{run.name}: {error}")

    if args.sessions == 1:
        drive(runs[0])
    else:
        threads = [threading.Thread(target=drive, args=(run,))
                   for run in runs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    failures = list(errors)
    for run in runs:
        if not any(message.startswith(run.name + ":") for message in errors):
            failures.extend(run.check())

    total_results = sum(run.result_events for run in runs)
    total_answers = sum(run.answers for run in runs)
    print(f"stream_client: {len(runs)} session(s), {total_results} result "
          f"events, {total_answers} answers, v={PROTOCOL_VERSION}")
    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        return 1
    print("stream_client: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
