#!/usr/bin/env python3
"""Intra-repo link hygiene for the documentation surface.

Scans the given markdown files (default: README.md, ARCHITECTURE.md and
docs/**/*.md) for inline links and fails when a relative link points at a
file that does not exist, or an intra-document anchor has no matching
heading. External (http/https/mailto) links are not fetched — CI must not
depend on the network.

Usage: tools/check_links.py [files...]
"""

import glob
import os
import re
import sys

LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def heading_anchor(heading: str) -> str:
    """GitHub's anchor algorithm, close enough: lowercase, drop
    punctuation, spaces to hyphens."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    return {heading_anchor(m.group(1)) for m in HEADING_RE.finditer(text)}


def check_file(path: str, repo_root: str) -> list:
    errors = []
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    base = os.path.dirname(path)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, fragment = target.partition("#")
        if target:
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                errors.append(f"{path}: broken link -> {target}")
                continue
        else:
            resolved = path  # Pure fragment: #section in the same file.
        if fragment and resolved.endswith(".md"):
            if heading_anchor(fragment) not in anchors_of(resolved):
                errors.append(f"{path}: missing anchor -> {target}#{fragment}")
    return errors


def main(argv: list) -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if argv:
        files = argv
    else:
        files = [
            os.path.join(repo_root, "README.md"),
            os.path.join(repo_root, "ARCHITECTURE.md"),
        ] + sorted(glob.glob(os.path.join(repo_root, "docs", "**", "*.md"),
                             recursive=True))
    errors = []
    checked = 0
    for path in files:
        if not os.path.exists(path):
            errors.append(f"{path}: file not found")
            continue
        checked += 1
        errors.extend(check_file(path, repo_root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"check_links: {checked} file(s), {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
